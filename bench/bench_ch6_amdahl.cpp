/**
 * @file
 * Thesis Figures 6.6 and 6.7: Amdahl's law (f = 0.93) and the modified
 * Amdahl's law (f = 0.63, g = 0.3) speed-up curves, printed as the
 * series the figures plot, side by side with the measured matmul
 * throughput ratios for comparison.
 */
#include <iostream>

#include "programs/benchmarks.hpp"
#include "sim/amdahl.hpp"
#include "sim/bench_json.hpp"
#include "sim/experiment.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

using namespace qm;

int
main()
{
    std::cout << "Fig 6.6: Amdahl's law, f = 0.93\n"
              << "Fig 6.7: modified Amdahl's law, f = 0.63, g = 0.3\n"
              << "(modified form: overhead fraction g amortizes "
                 "quadratically with PEs; see sim/amdahl.hpp)\n\n";

    programs::Benchmark matmul = programs::thesisBenchmarks()[0];
    sim::SpeedupSeries measured = sim::runSpeedupSweep(
        matmul.name, matmul.source, matmul.resultArray, matmul.expected,
        {1, 2, 3, 4, 5, 6, 7, 8});

    TextTable table({"PEs", "Amdahl f=0.93", "modified f=0.63 g=0.3",
                     "measured (matmul)"});
    for (int n = 1; n <= 8; ++n)
        table.addRow({std::to_string(n),
                      fixed(sim::amdahlSpeedup(0.93, n), 3),
                      fixed(sim::modifiedAmdahlSpeedup(0.63, 0.3, n), 3),
                      fixed(measured.ratio(static_cast<size_t>(n - 1)),
                            3)});
    std::cout << table.render();
    std::cout << "wrote "
              << sim::writeBenchJson("ch6_amdahl", {measured}) << "\n";
    return 0;
}
