/**
 * @file
 * Thesis Fig 4.14 and Tables 4.4/4.5: the input-sequencing analysis for
 * e <- ((a+b) * (-c)) / d - depth-first list, predecessor sets P*,
 * required input sets I*, computation costs C, and input weights W.
 */
#include <iostream>

#include "dfg/graph.hpp"
#include "dfg/sequencing.hpp"
#include "support/table.hpp"

using namespace qm;
using namespace qm::dfg;

int
main()
{
    Dfg graph;
    int a = graph.addInput("a");
    int b = graph.addInput("b");
    int c = graph.addInput("c");
    int d = graph.addInput("d");
    int sum = graph.addNode("+", {a, b});
    int neg = graph.addNode("neg", {c});
    int prod = graph.addNode("*", {sum, neg});
    int quot = graph.addNode("/", {prod, d});
    graph.addNode("store", {quot});

    auto name = [&](int v) {
        const DfgNode &n = graph.node(v);
        if (n.op == "in")
            return n.name;
        if (n.op == "store")
            return std::string("e");
        return n.op;
    };

    std::cout << "e <- ((a+b) * (-c)) / d   (thesis Fig 4.14)\n\n";
    std::cout << "Depth-first list (Fig 4.13): ";
    for (int v : depthFirstList(graph))
        std::cout << name(v) << " ";
    std::cout << "\n\nTable 4.4: P*, I*, C per node\n";

    CostAnalysis costs = analyzeCosts(graph);
    TextTable t44({"node", "P*(v)", "I*(v)", "C(v)"});
    for (int v = 0; v < graph.size(); ++v) {
        std::string pstar, istar;
        for (int u : costs.predecessorSet[static_cast<size_t>(v)])
            pstar += name(u) + " ";
        for (int u : costs.requiredInputs[static_cast<size_t>(v)])
            istar += name(u) + " ";
        t44.addRow({name(v), pstar, istar,
                    std::to_string(
                        costs.cost[static_cast<size_t>(v)])});
    }
    std::cout << t44.render() << "\n";

    std::cout << "Table 4.5: input weights W(v)\n";
    std::vector<long> weights = inputWeights(graph, costs);
    TextTable t45({"input", "W(v)"});
    for (int v : graph.inputs())
        t45.addRow({name(v),
                    std::to_string(weights[static_cast<size_t>(v)])});
    std::cout << t45.render() << "\n";

    std::cout << "Preferred input order (pi_I): ";
    for (int v : orderInputs(graph))
        std::cout << name(v) << " ";
    std::cout << "\n(thesis: {a,b,c,d} and {b,a,c,d} are both "
                 "acceptable)\n";
    return 0;
}
