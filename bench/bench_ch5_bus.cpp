/**
 * @file
 * Partitioned ring-bus study (thesis section 5.6, Fig 5.18).
 *
 * The thesis multiprocessor connects PEs with a shared bus segmented
 * into partitions closed in a ring: transfers through disjoint
 * partitions proceed concurrently, transfers sharing one serialize.
 * This bench sweeps the partition count at 8 PEs for the most
 * communication-heavy benchmark and reports elapsed cycles together
 * with bus contention, showing the concurrency the partitioning buys.
 * The partition runs are independent simulations of one compiled
 * program, fanned across worker threads (--jobs).
 */
#include <iostream>
#include <vector>

#include "bench_cli.hpp"
#include "programs/benchmarks.hpp"
#include "sim/bench_json.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

using namespace qm;

int
main(int argc, char **argv)
{
    benchcli::BenchArgs args =
        benchcli::parseBenchArgs(argc, argv, "bench_ch5_bus");
    if (!args.ok)
        return 2;
    const int pes = 8;
    const std::vector<int> partition_counts = {1, 2, 4, 8};
    programs::Benchmark bench = programs::thesisBenchmarks()[3];
    occam::CompiledProgram program =
        occam::compileOccam(bench.source);

    std::vector<sim::RunSpec> specs;
    for (int partitions : partition_counts) {
        sim::RunSpec spec;
        spec.program = &program;
        spec.resultArray = bench.resultArray;
        spec.expected = bench.expected;
        spec.pes = pes;
        spec.config.busPartitions = partitions;
        spec.config.faultPlan = args.faults;
        spec.config.recovery = args.recovery;
        spec.config.core = args.core;
        args.applyTelemetry(spec.config);
        // The sweep varies partitions at one PE count, so the label
        // is what distinguishes the runs' telemetry lines.
        spec.config.telemetryLabel = cat("ch5_bus:p", partitions);
        if (!args.traceDir.empty()) {
            // The sweep varies partitions at a fixed PE count, so the
            // partition count is what keeps the paths distinct.
            spec.config.traceConfig.enabled = true;
            spec.config.traceConfig.chromeJsonPath =
                cat(args.traceDir, "/",
                    sim::sanitizeFileStem(bench.name), "-p", partitions,
                    "-pe", pes, ".json");
        }
        specs.push_back(std::move(spec));
    }
    sim::RunPolicy policy = args.runPolicy();
    policy.journalLabel = "ch5_bus";
    std::vector<sim::RunReport> reports =
        sim::runAll(specs, args.jobs, policy);

    std::cout << "Ring-bus partition sweep (Fig 5.18 axis): "
              << bench.name << " at " << pes << " PEs\n";
    if (args.faults.enabled())
        std::cout << "fault injection: " << fault::toString(args.faults)
                  << "\n";
    if (args.recovery.enabled) {
        std::cout << "recovery: enabled";
        if (args.recovery.checkpointEvery > 0)
            std::cout << " (checkpoint every "
                      << args.recovery.checkpointEvery << " cycles)";
        std::cout << "\n";
    }
    std::cout << "\n";
    TextTable table({"partitions", "cycles", "vs 1 partition", "ok"});
    mp::Cycle base = reports.front().cycles;
    sim::SpeedupSeries series;
    series.name = bench.name;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const sim::RunReport &report = reports[i];
        series.runs.push_back(report);
        bool has_ratio = base > 0 && report.cycles > 0;
        table.addRow({std::to_string(partition_counts[i]),
                      std::to_string(report.cycles),
                      has_ratio
                          ? fixed(static_cast<double>(base) /
                                      static_cast<double>(report.cycles),
                                  3)
                          : "-",
                      report.verified ? "yes" : "NO"});
    }
    std::cout << table.render();
    for (const sim::RunReport &report : reports)
        if (!report.failureReason.empty())
            std::cout << "  partitions="
                      << partition_counts[&report - reports.data()]
                      << " failed: " << report.failureReason << "\n";
    for (const sim::RunReport &report : reports)
        if (report.recovered)
            std::cout << "  partitions="
                      << partition_counts[&report - reports.data()]
                      << " recovered after " << report.replays
                      << " checkpoint replay(s)\n";
    for (const sim::RunReport &report : reports)
        if (report.quarantined)
            std::cout << "  partitions="
                      << partition_counts[&report - reports.data()]
                      << " quarantined after " << report.attempts
                      << " attempt(s)\n";
    for (const sim::RunReport &report : reports)
        if (report.traceDropped > 0)
            std::cout << "  partitions="
                      << partition_counts[&report - reports.data()]
                      << " WARNING: trace truncated ("
                      << report.traceDropped
                      << " events dropped past the cap)\n";
    std::cout << "\n(partitioning trades per-message latency - each "
                 "segment crossed adds hop cycles - against segment "
                 "concurrency; at this message rate latency dominates, "
                 "matching the thesis choice of FEW partitions: 2 for "
                 "4 PEs in Fig 5.18)\n";
    std::cout << "wrote "
              << sim::writeBenchJson("ch5_bus", {series}, "",
                                     args.hostTime)
              << "\n";
    if (!args.metricsPath.empty()) {
        std::string where =
            sim::writeMetricsJson("ch5_bus", {series}, args.metricsPath);
        if (args.metricsPath != "-")
            std::cout << "wrote " << where << "\n";
    }
    benchcli::writeTelemetryStream(args, "bench_ch5_bus", {series});
    return benchcli::benchExitCode();
}
