/**
 * @file
 * Partitioned ring-bus study (thesis section 5.6, Fig 5.18).
 *
 * The thesis multiprocessor connects PEs with a shared bus segmented
 * into partitions closed in a ring: transfers through disjoint
 * partitions proceed concurrently, transfers sharing one serialize.
 * This bench sweeps the partition count at 8 PEs for the most
 * communication-heavy benchmark and reports elapsed cycles together
 * with bus contention, showing the concurrency the partitioning buys.
 */
#include <iostream>

#include "programs/benchmarks.hpp"
#include "sim/experiment.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

using namespace qm;

int
main()
{
    const int pes = 8;
    programs::Benchmark bench = programs::thesisBenchmarks()[3];
    occam::CompiledProgram program =
        occam::compileOccam(bench.source);

    std::cout << "Ring-bus partition sweep (Fig 5.18 axis): "
              << bench.name << " at " << pes << " PEs\n\n";
    TextTable table({"partitions", "cycles", "vs 1 partition", "ok"});
    mp::Cycle base = 0;
    for (int partitions : {1, 2, 4, 8}) {
        mp::SystemConfig config;
        config.busPartitions = partitions;
        sim::RunReport report = sim::runOnce(
            program, bench.resultArray, bench.expected, pes, config);
        if (base == 0)
            base = report.cycles;
        table.addRow({std::to_string(partitions),
                      std::to_string(report.cycles),
                      fixed(static_cast<double>(base) /
                                static_cast<double>(report.cycles),
                            3),
                      report.verified ? "yes" : "NO"});
    }
    std::cout << table.render()
              << "\n(partitioning trades per-message latency - each "
                 "segment crossed adds hop cycles - against segment "
                 "concurrency; at this message rate latency dominates, "
                 "matching the thesis choice of FEW partitions: 2 for "
                 "4 PEs in Fig 5.18)\n";
    return 0;
}
