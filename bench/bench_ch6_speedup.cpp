/**
 * @file
 * Chapter 6 simulation study: system throughput ratio vs number of
 * processing elements for the four thesis benchmarks.
 *
 * Regenerates: Fig 6.8 + Table 6.2 (matrix multiplication),
 *              Fig 6.10 + Table 6.3 (FFT),
 *              Fig 6.11 + Table 6.4 (Cholesky decomposition),
 *              Fig 6.12 + Table 6.5 (congruence transformation),
 *              Fig 6.9 (recursive vs iterative binary fan-out).
 *
 * Every run is verified against the reference result before its
 * statistics are reported.
 */
#include <iostream>
#include <vector>

#include "bench_cli.hpp"
#include "programs/benchmarks.hpp"
#include "sim/bench_json.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

using namespace qm;

namespace {

/** Fraction of total PE-cycles spent in @p part, as "12.3%". */
std::string
pct(mp::Cycle part, const sim::RunReport &run)
{
    double total =
        static_cast<double>(run.cycles) * static_cast<double>(run.pes);
    return total > 0 ? fixed(100.0 * static_cast<double>(part) / total,
                             1) + "%"
                     : "-";
}

void
reportSeries(const sim::SpeedupSeries &series,
             const std::string &figure)
{
    std::cout << "=== " << series.name << " (" << figure << ") ===\n";
    TextTable table({"PEs", "cycles", "throughput ratio", "instrs",
                     "contexts", "rendezvous", "switches", "util",
                     "compute", "kernel", "blocked", "ok"});
    for (std::size_t i = 0; i < series.runs.size(); ++i) {
        const sim::RunReport &run = series.runs[i];
        bool has_ratio =
            run.cycles > 0 && series.runs.front().cycles > 0;
        table.addRow({std::to_string(run.pes),
                      std::to_string(run.cycles),
                      has_ratio ? fixed(series.ratio(i), 3) : "-",
                      std::to_string(run.instructions),
                      std::to_string(run.contexts),
                      std::to_string(run.rendezvous),
                      std::to_string(run.contextSwitches),
                      fixed(run.utilization, 3),
                      pct(run.computeCycles, run),
                      pct(run.kernelCycles, run),
                      pct(run.blockedCycles, run),
                      run.verified ? "yes" : "NO"});
    }
    std::cout << table.render();
    for (const sim::RunReport &run : series.runs)
        if (!run.failureReason.empty())
            std::cout << "  PEs=" << run.pes
                      << " failed: " << run.failureReason << "\n";
    for (const sim::RunReport &run : series.runs)
        if (run.recovered)
            std::cout << "  PEs=" << run.pes << " recovered after "
                      << run.replays << " checkpoint replay(s)\n";
    for (const sim::RunReport &run : series.runs)
        if (run.quarantined)
            std::cout << "  PEs=" << run.pes << " quarantined after "
                      << run.attempts << " attempt(s)\n";
    for (const sim::RunReport &run : series.runs)
        if (run.traceDropped > 0)
            std::cout << "  PEs=" << run.pes
                      << " WARNING: trace truncated ("
                      << run.traceDropped
                      << " events dropped past the cap)\n";
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    benchcli::BenchArgs args =
        benchcli::parseBenchArgs(argc, argv, "bench_ch6_speedup");
    if (!args.ok)
        return 2;
    mp::SystemConfig base_config;
    base_config.faultPlan = args.faults;
    base_config.recovery = args.recovery;
    base_config.core = args.core;
    base_config.hostThreads = args.threads;
    args.applyTelemetry(base_config);
    const sim::RunPolicy policy = args.runPolicy();
    const std::vector<int> pe_counts = {1, 2, 3, 4, 5, 6, 7, 8};

    std::cout << "Queue-machine multiprocessor simulation study "
                 "(thesis Chapter 6)\n"
              << "Throughput ratio = cycles(1 PE) / cycles(N PEs)\n";
    if (args.faults.enabled())
        std::cout << "fault injection: "
                  << fault::toString(args.faults) << "\n";
    if (args.recovery.enabled) {
        std::cout << "recovery: enabled";
        if (args.recovery.checkpointEvery > 0)
            std::cout << " (checkpoint every "
                      << args.recovery.checkpointEvery << " cycles)";
        std::cout << "\n";
    }
    std::cout << "\n";

    std::vector<sim::SpeedupSeries> all;
    for (const programs::Benchmark &bench :
         programs::thesisBenchmarks()) {
        sim::SpeedupSeries series = sim::runSpeedupSweep(
            bench.name, bench.source, bench.resultArray, bench.expected,
            pe_counts, {}, base_config, args.jobs, args.traceDir,
            policy);
        reportSeries(series, bench.thesisFigure);
        all.push_back(series);
    }

    // Fig 6.9: recursive vs non-recursive fan-out.
    sim::SpeedupSeries recursive = sim::runSpeedupSweep(
        "binary fan-out (recursive)", programs::binaryFanRecursiveSource(),
        "v", programs::expectedBinaryFan(), pe_counts, {}, base_config,
        args.jobs, args.traceDir, policy);
    reportSeries(recursive, "Fig 6.9 recursive");
    all.push_back(recursive);
    sim::SpeedupSeries iterative = sim::runSpeedupSweep(
        "binary fan-out (iterative)", programs::binaryFanIterativeSource(),
        "v", programs::expectedBinaryFan(), pe_counts, {}, base_config,
        args.jobs, args.traceDir, policy);
    reportSeries(iterative, "Fig 6.9 non-recursive");
    all.push_back(iterative);

    std::cout << "wrote "
              << sim::writeBenchJson("ch6_speedup", all, "",
                                     args.hostTime,
                                     args.threads)
              << "\n";
    if (!args.metricsPath.empty()) {
        std::string where = sim::writeMetricsJson("ch6_speedup", all,
                                                  args.metricsPath);
        if (args.metricsPath != "-")
            std::cout << "wrote " << where << "\n";
    }
    benchcli::writeTelemetryStream(args, "bench_ch6_speedup", all);
    return benchcli::benchExitCode();
}
