/**
 * @file
 * Command line shared by the sweep benches (ch5 bus, ch6 speedup, ch6
 * ablation): `--jobs N` fans the independent simulations of a sweep
 * over N worker threads. The default (0) uses all hardware threads;
 * `--jobs 1` reproduces the historical serial run exactly. Reports in
 * either mode are identical - parallelism only changes wall-clock.
 */
#pragma once

#include <iostream>
#include <string>

#include "support/cli.hpp"

namespace qm::benchcli {

/**
 * Parse argv for `--jobs N`. Returns the job count (0 = all cores),
 * or -1 after printing a usage error for unknown or malformed
 * arguments.
 */
inline int
parseJobsArgs(int argc, char **argv, const char *bench_name)
{
    int jobs = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            try {
                jobs = parsePositiveIntArg(argv[++i], "--jobs",
                                           /*max=*/1024);
            } catch (const FatalError &e) {
                std::cerr << bench_name << ": " << e.what() << "\n";
                return -1;
            }
        } else {
            std::cerr << "usage: " << bench_name << " [--jobs N]\n";
            return -1;
        }
    }
    return jobs;
}

} // namespace qm::benchcli
