/**
 * @file
 * Command line shared by the sweep benches (ch5 bus, ch6 speedup, ch6
 * ablation): `--jobs N` fans the independent simulations of a sweep
 * over N worker threads. The default (0) uses all hardware threads;
 * `--jobs 1` reproduces the historical serial run exactly. Reports in
 * either mode are identical - parallelism only changes wall-clock.
 * `--faults SPEC` (see fault::parseFaultPlan) runs the whole sweep
 * under seeded fault injection; the fault schedule depends only on
 * the spec, never on `--jobs`.
 * `--recover` enables the recovery layer (end-to-end retransmission,
 * heal, dedup, fail-stop re-dispatch, bounded checkpoint replay) and
 * `--checkpoint-every N` adds periodic snapshots on top of the boot
 * one. Recovered runs, like faulty ones, are identical for any
 * `--jobs` value.
 * `--metrics FILE` exports every run's full statistics registry
 * (counters, scalars, latency/occupancy histograms) as a
 * schema-versioned JSON document (see sim/metrics.hpp); the document
 * is byte-identical for any `--jobs` value.
 * `--trace-dir DIR` records a Chrome trace per run into
 * DIR/<name>-pe<N>.json (distinct paths, so it composes with
 * parallel sweeps; DIR must exist).
 * `--topology ring|ring:P|rings:KxM` overrides the ring-bus shape for
 * every run of the sweep (see mp::parseTopology); without it each
 * bench keeps its historical default.
 * `--max-pes N` drops sweep points above N PEs - the sanitizer CI leg
 * uses it to fit the partitioned sweep into its wall-clock budget.
 * `--threads N` runs every simulation of the sweep on N host worker
 * threads (the event core's PDES window scheduler; see
 * SystemConfig::hostThreads). Reports stay byte-identical for any
 * value; the chosen value is recorded as host_threads in the BENCH
 * JSON metadata so speedup tooling can compare like against like.
 * `--core tick|event` selects the simulation core: `event` (default)
 * is the next-event calendar scheduler, `tick` the unit-tick scan it
 * replaced. Both produce byte-identical reports; tick exists for the
 * differential gate and for host-speed comparisons.
 * `--host-time` adds host_wall_ms / sim_cycles_per_sec to the BENCH
 * JSON. Off by default because those fields are machine-dependent and
 * the default document must stay byte-stable.
 * `--resume-dir DIR` makes the sweep crash-safe resumable: every
 * finished run is appended (fsync'd) to DIR/<series>.journal, and a
 * re-run after a mid-sweep kill replays the journaled rows instead of
 * re-simulating them - final stdout and BENCH/metrics JSON are
 * byte-identical to a sweep that was never interrupted. DIR must
 * exist. A journal for a different sweep configuration is refused.
 * `--deadline-ms N` bounds each run's host wall-clock time; a run
 * that exceeds it becomes a structured `deadline:` failed row instead
 * of wedging the sweep.
 * `--retries N` re-drives a failed run up to N extra times (host-side
 * transients only - simulated failures are deterministic), with
 * `--backoff-ms M` deterministic exponential backoff between
 * attempts; a spec still failing after the budget is quarantined as
 * a structured failed row.
 * `--telemetry FILE` streams every run's live qm.telemetry.v1 NDJSON
 * snapshots (one line every `--telemetry-every N` simulated cycles,
 * default 1000) into FILE. Runs buffer their lines and the bench
 * writes them in spec order after the sweep, so the file is
 * byte-identical for any `--jobs`/`--threads` value and across a
 * journal resume.
 * With `--resume-dir DIR` the flight recorder also lands per-run
 * black boxes in DIR: a run-start marker before each simulation and
 * a full qm.flight.v1 dump on any structured failure, so a killed or
 * quarantined sweep leaves machine-readable evidence next to its
 * journal.
 * Benches install a SIGINT/SIGTERM handler: on the first signal the
 * running simulations wind down, finished rows are already durable in
 * the journal, and the bench exits 128+signo after flushing.
 */
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "mp/system.hpp"
#include "sim/experiment.hpp"
#include "support/cli.hpp"
#include "support/shutdown.hpp"

namespace qm::benchcli {

/** Parsed sweep-bench command line. */
struct BenchArgs
{
    bool ok = true;  ///< False after a usage error (exit 2).
    int jobs = 0;    ///< 0 = all hardware threads.
    fault::FaultPlan faults{};      ///< Disabled unless --faults given.
    fault::RecoveryPlan recovery{}; ///< Disabled unless --recover given.
    std::string metricsPath;        ///< Empty = no metrics export.
    std::string traceDir;           ///< Empty = no per-run traces.
    mp::SimCore core = mp::SimCore::Event; ///< --core tick|event.
    bool hostTime = false;          ///< --host-time in BENCH JSON.
    bool topologyGiven = false;     ///< --topology present.
    mp::RingTopology topology{};    ///< Parsed --topology value.
    int maxPes = 0;                 ///< 0 = no cap on sweep points.
    int threads = 1;                ///< Host threads per simulation.
    std::string resumeDir;          ///< Empty = no completion journal.
    long deadlineMs = 0;            ///< 0 = no per-run deadline.
    int retries = 0;                ///< Extra attempts per failed run.
    int backoffMs = 0;              ///< Base backoff between attempts.
    std::string telemetryPath;      ///< Empty = no telemetry stream.
    long telemetryEvery = 1000;     ///< Cycles between snapshots.

    /** The self-healing policy these flags select (see sim::RunPolicy). */
    sim::RunPolicy
    runPolicy() const
    {
        sim::RunPolicy policy;
        policy.journalDir = resumeDir;
        // Black boxes land next to the journal they explain.
        policy.flightDir = resumeDir;
        policy.deadlineMs = deadlineMs;
        policy.maxAttempts = 1 + retries;
        policy.backoffMs = backoffMs;
        return policy;
    }

    /** Fold the telemetry cadence into a sweep's base config. */
    void
    applyTelemetry(mp::SystemConfig &config) const
    {
        if (!telemetryPath.empty())
            config.telemetryEvery = telemetryEvery;
    }
};

/**
 * Write every run's buffered telemetry lines to --telemetry FILE in
 * spec order (byte-identical for any --jobs value). No-op without the
 * flag; prints the "wrote" breadcrumb on success, a stderr diagnostic
 * on an unwritable path (the sweep's results are already out, so a
 * bad telemetry path does not fail the bench).
 */
inline void
writeTelemetryStream(const BenchArgs &args, const char *bench_name,
                     const std::vector<sim::SpeedupSeries> &all)
{
    if (args.telemetryPath.empty())
        return;
    std::ofstream out(args.telemetryPath,
                      std::ios::out | std::ios::trunc);
    if (!out) {
        std::cerr << bench_name << ": cannot open telemetry file "
                  << args.telemetryPath << "\n";
        return;
    }
    for (const sim::SpeedupSeries &series : all)
        for (const sim::RunReport &run : series.runs)
            out << run.telemetry;
    std::cout << "wrote " << args.telemetryPath << "\n";
}

/**
 * Exit status for a finished sweep: 128+signo when a shutdown signal
 * interrupted it (after flushing), otherwise 0. Call last, after every
 * report/JSON flush.
 */
inline int
benchExitCode()
{
    int sig = support::shutdownSignal();
    return sig > 0 ? 128 + sig : 0;
}

/**
 * Parse argv for
 * `[--jobs N] [--faults SPEC] [--recover] [--checkpoint-every N]
 *  [--metrics FILE] [--trace-dir DIR] [--core tick|event]
 *  [--topology SPEC] [--max-pes N] [--host-time]`.
 * On malformed or unknown arguments prints a usage error and returns
 * ok=false.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv, const char *bench_name)
{
    // First signal = wind down and flush; second = die immediately.
    support::installShutdownSignals();
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            try {
                args.jobs = parsePositiveIntArg(argv[++i], "--jobs",
                                                /*max=*/1024);
            } catch (const FatalError &e) {
                std::cerr << bench_name << ": " << e.what() << "\n";
                args.ok = false;
                return args;
            }
        } else if (arg == "--faults" && i + 1 < argc) {
            try {
                args.faults = fault::parseFaultPlan(argv[++i]);
            } catch (const FatalError &e) {
                std::cerr << bench_name << ": " << e.what() << "\n";
                args.ok = false;
                return args;
            }
        } else if (arg == "--metrics" && i + 1 < argc) {
            args.metricsPath = argv[++i];
        } else if (arg == "--trace-dir" && i + 1 < argc) {
            args.traceDir = argv[++i];
        } else if (arg == "--recover") {
            args.recovery.enabled = true;
        } else if (arg == "--core" && i + 1 < argc) {
            std::string core = argv[++i];
            if (core == "tick") {
                args.core = mp::SimCore::Tick;
            } else if (core == "event") {
                args.core = mp::SimCore::Event;
            } else {
                std::cerr << bench_name << ": --core expects 'tick' or "
                             "'event', got '" << core << "'\n";
                args.ok = false;
                return args;
            }
        } else if (arg == "--host-time") {
            args.hostTime = true;
        } else if (arg == "--topology" && i + 1 < argc) {
            try {
                args.topology = mp::parseTopology(argv[++i]);
                args.topologyGiven = true;
            } catch (const FatalError &e) {
                std::cerr << bench_name << ": " << e.what() << "\n";
                args.ok = false;
                return args;
            }
        } else if (arg == "--max-pes" && i + 1 < argc) {
            try {
                args.maxPes = parsePositiveIntArg(argv[++i],
                                                  "--max-pes",
                                                  /*max=*/4096);
            } catch (const FatalError &e) {
                std::cerr << bench_name << ": " << e.what() << "\n";
                args.ok = false;
                return args;
            }
        } else if (arg == "--threads" && i + 1 < argc) {
            try {
                args.threads = parsePositiveIntArg(argv[++i],
                                                   "--threads",
                                                   /*max=*/1024);
            } catch (const FatalError &e) {
                std::cerr << bench_name << ": " << e.what() << "\n";
                args.ok = false;
                return args;
            }
        } else if (arg == "--resume-dir" && i + 1 < argc) {
            args.resumeDir = argv[++i];
        } else if (arg == "--deadline-ms" && i + 1 < argc) {
            try {
                args.deadlineMs = parsePositiveIntArg(
                    argv[++i], "--deadline-ms", /*max=*/1'000'000'000);
            } catch (const FatalError &e) {
                std::cerr << bench_name << ": " << e.what() << "\n";
                args.ok = false;
                return args;
            }
        } else if (arg == "--retries" && i + 1 < argc) {
            try {
                args.retries = parsePositiveIntArg(argv[++i],
                                                   "--retries",
                                                   /*max=*/100);
            } catch (const FatalError &e) {
                std::cerr << bench_name << ": " << e.what() << "\n";
                args.ok = false;
                return args;
            }
        } else if (arg == "--backoff-ms" && i + 1 < argc) {
            try {
                args.backoffMs = parsePositiveIntArg(
                    argv[++i], "--backoff-ms", /*max=*/60'000);
            } catch (const FatalError &e) {
                std::cerr << bench_name << ": " << e.what() << "\n";
                args.ok = false;
                return args;
            }
        } else if (arg == "--telemetry" && i + 1 < argc) {
            args.telemetryPath = argv[++i];
        } else if (arg == "--telemetry-every" && i + 1 < argc) {
            try {
                args.telemetryEvery = parsePositiveIntArg(
                    argv[++i], "--telemetry-every",
                    /*max=*/1'000'000'000);
            } catch (const FatalError &e) {
                std::cerr << bench_name << ": " << e.what() << "\n";
                args.ok = false;
                return args;
            }
        } else if (arg == "--checkpoint-every" && i + 1 < argc) {
            try {
                args.recovery.checkpointEvery = parsePositiveIntArg(
                    argv[++i], "--checkpoint-every",
                    /*max=*/1'000'000'000);
                args.recovery.enabled = true;
            } catch (const FatalError &e) {
                std::cerr << bench_name << ": " << e.what() << "\n";
                args.ok = false;
                return args;
            }
        } else {
            std::cerr << "usage: " << bench_name
                      << " [--jobs N] [--faults SPEC] [--recover] "
                         "[--checkpoint-every N] [--metrics FILE] "
                         "[--trace-dir DIR] [--core tick|event] "
                         "[--topology SPEC] [--max-pes N] "
                         "[--threads N] [--host-time] "
                         "[--resume-dir DIR] [--deadline-ms N] "
                         "[--retries N] [--backoff-ms N] "
                         "[--telemetry FILE] [--telemetry-every N]\n";
            args.ok = false;
            return args;
        }
    }
    return args;
}

} // namespace qm::benchcli
