/**
 * @file
 * Thesis Table 3.4 / Fig 3.6: the indexed-queue-machine instruction
 * sequence for d <- a/(a+b) + (a+b)c, where the common subexpression
 * (a+b) fans out through result indices.
 */
#include <iostream>

#include "dfg/graph.hpp"
#include "dfg/iqm.hpp"
#include "dfg/scheduler.hpp"
#include "support/table.hpp"

using namespace qm;
using namespace qm::dfg;

int
main()
{
    Dfg graph;
    int a = graph.addInput("a");
    int b = graph.addInput("b");
    int c = graph.addInput("c");
    int sum = graph.addNode("+", {a, b});
    int quot = graph.addNode("/", {a, sum});
    int prod = graph.addNode("*", {sum, c});
    graph.addNode("+", {quot, prod});

    std::cout << "d <- a/(a+b) + (a+b)c   (thesis Table 3.4 / Fig "
                 "3.6)\n"
              << "Parse tree: 11 nodes; shared-subexpression DAG: "
              << graph.size() << " nodes\n\n";

    std::vector<int> order = schedule(graph);
    IqmProgram program = buildProgram(graph, order);

    TextTable table({"instruction", "result indices (absolute)",
                     "front"});
    auto lines = renderProgram(graph, program);
    for (std::size_t i = 0; i < program.instrs.size(); ++i) {
        std::string indices;
        for (int index : program.instrs[i].resultIndices)
            indices += (indices.empty() ? "" : ",") +
                       std::to_string(index);
        table.addRow({lines[i], indices,
                      std::to_string(program.instrs[i].frontIndex)});
    }
    std::cout << table.render() << "\n";

    NodeValues values =
        evalProgram(graph, program, {{"a", 40}, {"b", 10}, {"c", 3}});
    std::cout << "evaluation with a=40 b=10 c=3: d = "
              << values[static_cast<size_t>(graph.size() - 1)]
              << " (expected 150)\n";
    std::cout << "queue page requirement: " << program.queueDepth()
              << " words\n";
    return 0;
}
