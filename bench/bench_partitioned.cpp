/**
 * @file
 * Scale study past the thesis's 8-PE sweep: the same benchmark run on
 * the flat partitioned ring and on hierarchical "rings:KxM" topologies
 * at 8..64+ PEs, to show where the single ring saturates and how the
 * bridged hierarchy moves the wall (ROADMAP item 1; see DESIGN.md
 * "Hierarchical topology" and EXPERIMENTS.md for the measured tables).
 *
 * Two programs are swept: the thesis matmul (6 rows of parallelism -
 * deliberately narrow, so it shows the *limits* of adding PEs) and a
 * 64-way fan-out whose worker count matches the largest machine. Each
 * (program, topology) pair is one BENCH series named
 * "<program> <topology>"; every series shares the same 1-PE flat-ring
 * base row so throughput ratios are comparable across topologies.
 *
 * The final "scale summary" block is deterministic (pure simulated
 * cycles, no host timing) - CI greps it to enforce that at >= 64 PEs
 * the best hierarchical topology beats the flat ring on both speedup
 * and blocked-cycle share.
 */
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_cli.hpp"
#include "programs/benchmarks.hpp"
#include "sim/bench_json.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

using namespace qm;

namespace {

/** 64 workers, each with a real compute loop: v[i] = 24 + 276*i. */
const std::string &
wideFanSource()
{
    static const std::string source =
        "-- 64-way fan-out: one context per worker, each running a\n"
        "-- 24-iteration accumulation so dispatch cost is amortized.\n"
        "def w = 64:\n"
        "var v[64]:\n"
        "par i = [0 for w]\n"
        "  var acc, k:\n"
        "  seq\n"
        "    acc := 0\n"
        "    k := 0\n"
        "    while k < 24\n"
        "      seq\n"
        "        acc := acc + ((i * k) + 1)\n"
        "        k := k + 1\n"
        "    v[i] := acc\n";
    return source;
}

std::vector<std::int32_t>
expectedWideFan()
{
    std::vector<std::int32_t> v(64);
    for (int i = 0; i < 64; ++i)
        v[static_cast<std::size_t>(i)] = 24 + 276 * i;
    return v;
}

/** One benchmark program of the scale study. */
struct ScaleProgram
{
    std::string name;
    const std::string &source;
    std::string resultArray;
    std::vector<std::int32_t> expected;
};

/** Can a K-ring, M-partition hierarchy be built over @p pes PEs? */
bool
topologyFits(const mp::RingTopology &topology, int pes)
{
    if (topology.rings <= 1)
        return topology.partitions <= pes;
    // The smallest local ring is floor(pes / K) PEs and must still
    // hold M partitions (mirrors the RingBus constructor's check).
    return topology.rings <= pes &&
           pes / topology.rings >= topology.partitions;
}

double
blockedShare(const sim::RunReport &run)
{
    double total =
        static_cast<double>(run.cycles) * static_cast<double>(run.pes);
    return total > 0 ? static_cast<double>(run.blockedCycles) / total
                     : 0.0;
}

void
reportSeries(const sim::SpeedupSeries &series)
{
    std::cout << "=== " << series.name << " ===\n";
    TextTable table({"PEs", "cycles", "throughput ratio", "contexts",
                     "rendezvous", "util", "blocked", "bus", "ok"});
    for (std::size_t i = 0; i < series.runs.size(); ++i) {
        const sim::RunReport &run = series.runs[i];
        bool has_ratio =
            run.cycles > 0 && series.runs.front().cycles > 0;
        table.addRow({std::to_string(run.pes),
                      std::to_string(run.cycles),
                      has_ratio ? fixed(series.ratio(i), 3) : "-",
                      std::to_string(run.contexts),
                      std::to_string(run.rendezvous),
                      fixed(run.utilization, 3),
                      fixed(100.0 * blockedShare(run), 1) + "%",
                      std::to_string(run.busCycles),
                      run.verified ? "yes" : "NO"});
    }
    std::cout << table.render();
    for (const sim::RunReport &run : series.runs)
        if (!run.failureReason.empty())
            std::cout << "  PEs=" << run.pes
                      << " failed: " << run.failureReason << "\n";
    for (const sim::RunReport &run : series.runs)
        if (run.quarantined)
            std::cout << "  PEs=" << run.pes << " quarantined after "
                      << run.attempts << " attempt(s)\n";
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    benchcli::BenchArgs args =
        benchcli::parseBenchArgs(argc, argv, "bench_partitioned");
    if (!args.ok)
        return 2;

    mp::SystemConfig base_config;
    base_config.faultPlan = args.faults;
    base_config.recovery = args.recovery;
    base_config.core = args.core;
    base_config.hostThreads = args.threads;
    args.applyTelemetry(base_config);

    std::vector<mp::RingTopology> topologies;
    if (args.topologyGiven) {
        topologies.push_back(args.topology);
    } else {
        topologies.push_back({1, 2});   // the historical flat ring
        topologies.push_back({2, 1});   // two bridged bus clusters
        topologies.push_back({4, 2});
        topologies.push_back({8, 2});
        topologies.push_back({16, 1});  // pure backbone machine
    }
    std::vector<int> pe_counts = {8, 16, 32, 64, 128, 256};
    if (args.maxPes > 0) {
        pe_counts.erase(std::remove_if(pe_counts.begin(),
                                       pe_counts.end(),
                                       [&](int pes) {
                                           return pes > args.maxPes;
                                       }),
                        pe_counts.end());
    }
    if (pe_counts.empty()) {
        std::cerr << "bench_partitioned: --max-pes leaves no sweep "
                     "points\n";
        return 2;
    }

    std::cout << "Partitioned-ring scale study (flat ring vs "
                 "hierarchical rings:KxM)\n"
              << "Throughput ratio = cycles(1 PE) / cycles(N PEs); "
                 "blocked = share of PE-cycles parked\n";
    if (args.faults.enabled())
        std::cout << "fault injection: " << fault::toString(args.faults)
                  << "\n";
    std::cout << "\n";

    const std::vector<ScaleProgram> benches = {
        {"matmul", programs::matmulSource(), "c",
         programs::expectedMatmul()},
        {"wide fan-out", wideFanSource(), "v", expectedWideFan()},
    };

    std::vector<sim::SpeedupSeries> all;
    for (const ScaleProgram &bench : benches) {
        occam::CompiledProgram program =
            occam::compileOccam(bench.source, {});
        for (const mp::RingTopology &topology : topologies) {
            sim::SpeedupSeries series;
            series.name =
                cat(bench.name, " ", mp::topologyName(topology));
            std::vector<sim::RunSpec> specs;
            // Shared 1-PE flat base row: the sequential machine is
            // the same regardless of topology, and every series
            // carrying it keeps ratios comparable across series.
            {
                sim::RunSpec base;
                base.program = &program;
                base.resultArray = bench.resultArray;
                base.expected = bench.expected;
                base.pes = 1;
                base.config = base_config;
                base.config.telemetryLabel = series.name;
                specs.push_back(std::move(base));
            }
            for (int pes : pe_counts) {
                if (!topologyFits(topology, pes))
                    continue;
                sim::RunSpec spec;
                spec.program = &program;
                spec.resultArray = bench.resultArray;
                spec.expected = bench.expected;
                spec.pes = pes;
                spec.config = base_config;
                spec.config.setTopology(topology);
                spec.config.telemetryLabel = series.name;
                if (!args.traceDir.empty()) {
                    spec.config.traceConfig.enabled = true;
                    spec.config.traceConfig.chromeJsonPath =
                        cat(args.traceDir, "/",
                            sim::sanitizeFileStem(series.name), "-pe",
                            pes, ".json");
                }
                specs.push_back(std::move(spec));
            }
            sim::RunPolicy policy = args.runPolicy();
            policy.journalLabel = series.name;
            series.runs = sim::runAll(specs, args.jobs, policy);
            reportSeries(series);
            all.push_back(std::move(series));
        }
    }

    // Deterministic acceptance summary: at the largest swept PE
    // count, does the best hierarchical topology beat the flat ring
    // on speedup AND blocked share? CI greps the verdict token.
    int top_pes = pe_counts.back();
    std::cout << "scale summary @ " << top_pes << " PEs:\n";
    for (const ScaleProgram &bench : benches) {
        const sim::RunReport *flat = nullptr;
        const sim::RunReport *best = nullptr;
        std::string best_name;
        double flat_ratio = 0.0, best_ratio = 0.0;
        for (const sim::SpeedupSeries &series : all) {
            if (series.name.compare(0, bench.name.size(), bench.name) !=
                0)
                continue;
            for (std::size_t i = 0; i < series.runs.size(); ++i) {
                const sim::RunReport &run = series.runs[i];
                if (run.pes != top_pes || !run.verified)
                    continue;
                bool is_flat =
                    series.name.find("rings:") == std::string::npos;
                double ratio = series.ratio(i);
                if (is_flat) {
                    flat = &run;
                    flat_ratio = ratio;
                } else if (!best || ratio > best_ratio) {
                    best = &run;
                    best_ratio = ratio;
                    best_name = series.name.substr(
                        bench.name.size() + 1);
                }
            }
        }
        std::cout << "  " << bench.name << ": ";
        if (!flat || !best) {
            std::cout << "(topology sweep incomplete at this size)\n";
            continue;
        }
        bool beats = best_ratio > flat_ratio &&
                     blockedShare(*best) < blockedShare(*flat);
        std::cout << "ring speedup " << fixed(flat_ratio, 3)
                  << " blocked "
                  << fixed(100.0 * blockedShare(*flat), 1)
                  << "%, best " << best_name << " speedup "
                  << fixed(best_ratio, 3) << " blocked "
                  << fixed(100.0 * blockedShare(*best), 1)
                  << "% -> partitioned_beats_flat="
                  << (beats ? "yes" : "no") << "\n";
    }

    std::cout << "wrote "
              << sim::writeBenchJson("partitioned", all, "",
                                     args.hostTime,
                                     args.threads)
              << "\n";
    if (!args.metricsPath.empty()) {
        std::string where = sim::writeMetricsJson("partitioned", all,
                                                  args.metricsPath);
        if (args.metricsPath != "-")
            std::cout << "wrote " << where << "\n";
    }
    benchcli::writeTelemetryStream(args, "bench_partitioned", all);
    return benchcli::benchExitCode();
}
