/**
 * @file
 * Thesis Tables 3.2 and 3.3: mean queue-over-stack speed-up with a
 * pipelined ALU, averaged over every binary expression parse tree of a
 * given size (exhaustive enumeration).
 */
#include <iostream>

#include "expr/enumerate.hpp"
#include "expr/pipeline_model.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

using namespace qm;
using namespace qm::expr;

int
main()
{
    std::cout << "Table 3.2: speed-up vs parse-tree size, two-stage "
                 "pipelined ALU\n"
                 "(speed-up = stack-machine cycles / queue-machine "
                 "cycles, averaged over all trees)\n\n";
    {
        TextTable table({"nodes", "trees", "case 1 (non-overlapped)",
                         "case 2 (overlapped)"});
        for (int n = 1; n <= 11; ++n) {
            SpeedupResult case1 =
                averageSpeedup(n, PipelineConfig{2, false});
            SpeedupResult case2 =
                averageSpeedup(n, PipelineConfig{2, true});
            table.addRow({std::to_string(n),
                          std::to_string(case1.trees),
                          fixed(case1.meanSpeedup, 2),
                          fixed(case2.meanSpeedup, 2)});
        }
        std::cout << table.render() << "\n";
    }

    std::cout << "Table 3.3: speed-up vs pipeline depth, 11-node "
                 "trees\n\n";
    {
        TextTable table({"stages", "case 1 (non-overlapped)",
                         "case 2 (overlapped)"});
        for (int stages = 1; stages <= 6; ++stages) {
            SpeedupResult case1 =
                averageSpeedup(11, PipelineConfig{stages, false});
            SpeedupResult case2 =
                averageSpeedup(11, PipelineConfig{stages, true});
            table.addRow({std::to_string(stages),
                          fixed(case1.meanSpeedup, 2),
                          fixed(case2.meanSpeedup, 2)});
        }
        std::cout << table.render() << "\n";
    }
    std::cout << "Note: tree counts are the unary-binary (Motzkin) "
                 "numbers; the thesis's Solomon-style enumeration "
                 "differs slightly above 5 nodes (see EXPERIMENTS.md).\n";
    return 0;
}
