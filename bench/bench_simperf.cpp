/**
 * @file
 * Host-side performance of the simulator itself (google-benchmark):
 * instruction throughput of a single PE, whole-system simulation rate,
 * and compiler throughput. Not a thesis experiment - this guards the
 * usability of the reproduction.
 */
#include <benchmark/benchmark.h>

#include "isa/assembler.hpp"
#include "mp/system.hpp"
#include "occam/compiler.hpp"
#include "pe/memory.hpp"
#include "pe/pe.hpp"
#include "programs/benchmarks.hpp"

using namespace qm;

namespace {

void
BM_PeInstructionRate(benchmark::State &state)
{
    // A tight register loop: measures raw PE step() throughput.
    isa::ObjectCode code = isa::assemble(
        "  plus #100000,#0 :r17\n"
        "loop:\n"
        "  minus r17,#1 :r17\n"
        "  bne r17,@loop\n"
        "  fret\n");
    pe::Memory memory(1 << 16);
    pe::NullHost host;
    for (auto _ : state) {
        pe::ProcessingElement pe(memory, code, host);
        pe::ContextState ctx;
        ctx.qp = 0x1000;
        ctx.pom = pe::pomForPageWords(64);
        pe.loadContext(ctx);
        std::uint64_t instructions = 0;
        while (pe.step().status == pe::StepStatus::Executed)
            ++instructions;
        state.SetItemsProcessed(
            static_cast<std::int64_t>(instructions));
    }
}
BENCHMARK(BM_PeInstructionRate)->Unit(benchmark::kMillisecond);

void
BM_CompileMatmul(benchmark::State &state)
{
    for (auto _ : state) {
        occam::CompiledProgram program =
            occam::compileOccam(programs::matmulSource());
        benchmark::DoNotOptimize(program.object.words.data());
    }
}
BENCHMARK(BM_CompileMatmul)->Unit(benchmark::kMillisecond);

void
BM_SimulateMatmul(benchmark::State &state)
{
    occam::CompiledProgram program =
        occam::compileOccam(programs::matmulSource());
    int pes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        mp::SystemConfig config;
        config.numPes = pes;
        mp::System system(program.object, config);
        mp::RunResult result = system.run(program.mainLabel);
        state.SetItemsProcessed(
            static_cast<std::int64_t>(result.instructions));
    }
}
BENCHMARK(BM_SimulateMatmul)->Arg(1)->Arg(8)->Unit(
    benchmark::kMillisecond);

/**
 * Core-vs-core host speed on the same workload: items processed is the
 * SIMULATED cycle count, so items/sec reads directly as simulated
 * cycles per host second - the number the calendar-queue rework is
 * meant to multiply. The two benchmarks run the identical matmul (the
 * cores are byte-identical in output), differing only in SimCore.
 */
void
simCyclesRate(benchmark::State &state, mp::SimCore core)
{
    occam::CompiledProgram program =
        occam::compileOccam(programs::matmulSource());
    int pes = static_cast<int>(state.range(0));
    std::int64_t total_cycles = 0;
    for (auto _ : state) {
        mp::SystemConfig config;
        config.numPes = pes;
        config.core = core;
        mp::System system(program.object, config);
        mp::RunResult result = system.run(program.mainLabel);
        total_cycles += static_cast<std::int64_t>(result.cycles);
    }
    // Accumulated across iterations: SetItemsProcessed is the total
    // for the whole run, so per-iteration counts would divide away
    // the very speedup this benchmark exists to show.
    state.SetItemsProcessed(total_cycles);
}

void
BM_SimCyclesTick(benchmark::State &state)
{
    simCyclesRate(state, mp::SimCore::Tick);
}
BENCHMARK(BM_SimCyclesTick)->Arg(1)->Arg(8)->Unit(
    benchmark::kMillisecond);

void
BM_SimCyclesEvent(benchmark::State &state)
{
    simCyclesRate(state, mp::SimCore::Event);
}
BENCHMARK(BM_SimCyclesEvent)->Arg(1)->Arg(8)->Unit(
    benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
