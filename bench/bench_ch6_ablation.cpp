/**
 * @file
 * Thesis Table 6.6: compiler optimization speed-up factors.
 *
 * Each optimization is disabled in turn and every benchmark re-run at
 * 4 PEs; the factor is cycles(optimization off) / cycles(all on). The
 * three knobs are the ones Chapter 4 develops:
 *   - live-value analysis (only live values cross context splices),
 *   - pi_I input sequencing of splice transfers,
 *   - actor-priority instruction scheduling (Fig 4.20 heuristic).
 *
 * All (benchmark x option-set) cells are independent simulations, so
 * they are compiled up front and fanned across worker threads
 * (--jobs); the table and JSON are assembled from the ordered reports
 * and identical for any job count.
 */
#include <deque>
#include <iostream>
#include <vector>

#include "bench_cli.hpp"
#include "programs/benchmarks.hpp"
#include "sim/bench_json.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

using namespace qm;

int
main(int argc, char **argv)
{
    benchcli::BenchArgs args =
        benchcli::parseBenchArgs(argc, argv, "bench_ch6_ablation");
    if (!args.ok)
        return 2;
    const int pes = 4;
    std::cout << "Table 6.6: compiler optimization speed-up factors "
                 "(4 PEs)\n"
                 "factor = cycles with the optimization disabled / "
                 "cycles with all optimizations on\n";
    if (args.faults.enabled())
        std::cout << "fault injection: " << fault::toString(args.faults)
                  << "\n";
    if (args.recovery.enabled) {
        std::cout << "recovery: enabled";
        if (args.recovery.checkpointEvery > 0)
            std::cout << " (checkpoint every "
                      << args.recovery.checkpointEvery << " cycles)";
        std::cout << "\n";
    }
    std::cout << "\n";

    // The five option sets per benchmark, in JSON run order.
    occam::CompileOptions all_on;
    occam::CompileOptions no_live = all_on;
    no_live.liveAnalysis = false;
    occam::CompileOptions no_seq = all_on;
    no_seq.inputSequencing = false;
    occam::CompileOptions no_prio = all_on;
    no_prio.priorityScheduling = false;
    occam::CompileOptions none = all_on;
    none.liveAnalysis = false;
    none.inputSequencing = false;
    none.priorityScheduling = false;
    const std::vector<occam::CompileOptions> variants = {
        all_on, no_live, no_seq, no_prio, none};

    // Compile every (benchmark, option-set) cell once, then run the
    // whole grid through the parallel experiment runner. The deque
    // keeps compiled programs at stable addresses for the specs.
    std::vector<programs::Benchmark> benches =
        programs::thesisBenchmarks();
    std::deque<occam::CompiledProgram> compiled;
    std::vector<sim::RunSpec> specs;
    for (const programs::Benchmark &bench : benches) {
        for (std::size_t v = 0; v < variants.size(); ++v) {
            compiled.push_back(occam::compileOccam(bench.source,
                                                   variants[v]));
            sim::RunSpec spec;
            spec.program = &compiled.back();
            spec.resultArray = bench.resultArray;
            spec.expected = bench.expected;
            spec.pes = pes;
            spec.config.faultPlan = args.faults;
            spec.config.recovery = args.recovery;
            spec.config.core = args.core;
            args.applyTelemetry(spec.config);
            // The grid varies compile options at one PE count; the
            // variant index distinguishes the telemetry lines.
            spec.config.telemetryLabel = cat(bench.name, ":v", v);
            if (!args.traceDir.empty()) {
                // The grid varies the compile options at a fixed PE
                // count; the variant index keeps the paths distinct.
                spec.config.traceConfig.enabled = true;
                spec.config.traceConfig.chromeJsonPath =
                    cat(args.traceDir, "/",
                        sim::sanitizeFileStem(bench.name), "-v", v,
                        "-pe", pes, ".json");
            }
            specs.push_back(std::move(spec));
        }
    }
    sim::RunPolicy policy = args.runPolicy();
    policy.journalLabel = "ch6_ablation";
    std::vector<sim::RunReport> reports =
        sim::runAll(specs, args.jobs, policy);

    TextTable table({"program", "baseline cycles", "live-value",
                     "input-seq", "priority-sched", "all off"});
    std::vector<sim::SpeedupSeries> all;
    for (std::size_t b = 0; b < benches.size(); ++b) {
        const sim::RunReport &base = reports[b * variants.size()];
        sim::SpeedupSeries series;
        series.name = benches[b].name;
        std::vector<std::string> row = {benches[b].name,
                                        std::to_string(base.cycles)};
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const sim::RunReport &run = reports[b * variants.size() + v];
            series.runs.push_back(run);
            if (v == 0)
                continue;  // the baseline column is raw cycles
            row.push_back(!run.verified || base.cycles == 0
                              ? std::string("BAD")
                              : fixed(static_cast<double>(run.cycles) /
                                          static_cast<double>(
                                              base.cycles),
                                      3));
        }
        table.addRow(row);
        all.push_back(series);
    }
    std::cout << table.render();
    for (std::size_t i = 0; i < reports.size(); ++i)
        if (reports[i].recovered)
            std::cout << "  " << benches[i / variants.size()].name
                      << " variant " << i % variants.size()
                      << " recovered after " << reports[i].replays
                      << " checkpoint replay(s)\n";
    for (std::size_t i = 0; i < reports.size(); ++i)
        if (reports[i].quarantined)
            std::cout << "  " << benches[i / variants.size()].name
                      << " variant " << i % variants.size()
                      << " quarantined after " << reports[i].attempts
                      << " attempt(s)\n";
    for (std::size_t i = 0; i < reports.size(); ++i)
        if (reports[i].traceDropped > 0)
            std::cout << "  " << benches[i / variants.size()].name
                      << " variant " << i % variants.size()
                      << " WARNING: trace truncated ("
                      << reports[i].traceDropped
                      << " events dropped past the cap)\n";
    std::cout << "\n(values > 1.0 mean the optimization saves cycles; "
                 "all runs verified against reference results)\n"
              << "(JSON runs order: all-on, no live-value, no "
                 "input-seq, no priority-sched, all off)\n";
    std::cout << "wrote "
              << sim::writeBenchJson("ch6_ablation", all, "",
                                     args.hostTime)
              << "\n";
    if (!args.metricsPath.empty()) {
        std::string where = sim::writeMetricsJson("ch6_ablation", all,
                                                  args.metricsPath);
        if (args.metricsPath != "-")
            std::cout << "wrote " << where << "\n";
    }
    benchcli::writeTelemetryStream(args, "bench_ch6_ablation", all);
    return benchcli::benchExitCode();
}
