/**
 * @file
 * Thesis Table 6.6: compiler optimization speed-up factors.
 *
 * Each optimization is disabled in turn and every benchmark re-run at
 * 4 PEs; the factor is cycles(optimization off) / cycles(all on). The
 * three knobs are the ones Chapter 4 develops:
 *   - live-value analysis (only live values cross context splices),
 *   - pi_I input sequencing of splice transfers,
 *   - actor-priority instruction scheduling (Fig 4.20 heuristic).
 */
#include <iostream>
#include <vector>

#include "programs/benchmarks.hpp"
#include "sim/bench_json.hpp"
#include "sim/experiment.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

using namespace qm;

namespace {

sim::RunReport
measure(const programs::Benchmark &bench,
        const occam::CompileOptions &options, int pes)
{
    occam::CompiledProgram program =
        occam::compileOccam(bench.source, options);
    return sim::runOnce(program, bench.resultArray, bench.expected,
                        pes);
}

} // namespace

int
main()
{
    const int pes = 4;
    std::cout << "Table 6.6: compiler optimization speed-up factors "
                 "(4 PEs)\n"
                 "factor = cycles with the optimization disabled / "
                 "cycles with all optimizations on\n\n";

    TextTable table({"program", "baseline cycles", "live-value",
                     "input-seq", "priority-sched", "all off"});
    std::vector<sim::SpeedupSeries> all;
    for (const programs::Benchmark &bench :
         programs::thesisBenchmarks()) {
        occam::CompileOptions all_on;
        sim::RunReport base = measure(bench, all_on, pes);

        sim::SpeedupSeries series;
        series.name = bench.name;
        series.runs.push_back(base);
        auto factor = [&](occam::CompileOptions options) {
            sim::RunReport run = measure(bench, options, pes);
            series.runs.push_back(run);
            if (!run.verified)
                return std::string("BAD");
            return fixed(static_cast<double>(run.cycles) /
                             static_cast<double>(base.cycles),
                         3);
        };
        occam::CompileOptions no_live = all_on;
        no_live.liveAnalysis = false;
        occam::CompileOptions no_seq = all_on;
        no_seq.inputSequencing = false;
        occam::CompileOptions no_prio = all_on;
        no_prio.priorityScheduling = false;
        occam::CompileOptions none = all_on;
        none.liveAnalysis = false;
        none.inputSequencing = false;
        none.priorityScheduling = false;

        table.addRow({bench.name, std::to_string(base.cycles),
                      factor(no_live), factor(no_seq),
                      factor(no_prio), factor(none)});
        all.push_back(series);
    }
    std::cout << table.render();
    std::cout << "\n(values > 1.0 mean the optimization saves cycles; "
                 "all runs verified against reference results)\n"
              << "(JSON runs order: all-on, no live-value, no "
                 "input-seq, no priority-sched, all off)\n";
    std::cout << "wrote " << sim::writeBenchJson("ch6_ablation", all)
              << "\n";
    return 0;
}
