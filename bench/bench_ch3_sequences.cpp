/**
 * @file
 * Thesis Table 3.1 and Fig 3.1: queue-machine vs stack-machine
 * instruction sequences for f <- a*b + (c-d)/e, the level order of the
 * parse tree, and the level-order conjugate tree construction.
 */
#include <iostream>

#include "expr/conjugate.hpp"
#include "expr/eval.hpp"
#include "expr/parse_tree.hpp"
#include "expr/traversal.hpp"
#include "support/table.hpp"

using namespace qm;
using namespace qm::expr;

int
main()
{
    ParseTree tree = ParseTree::parse("a*b + (c-d)/e");
    std::cout << "Statement: f <- ab + (c-d)/e   (thesis Table 3.1)\n";
    std::cout << "Parse tree: " << tree.toString() << "\n\n";

    auto queue_seq = levelOrder(tree);
    auto stack_seq = postOrder(tree);
    auto queue_text = renderSequence(tree, queue_seq);
    auto stack_text = renderSequence(tree, stack_seq);

    TextTable table({"stack machine", "queue machine"});
    for (std::size_t i = 0; i < queue_text.size(); ++i)
        table.addRow({stack_text[i], queue_text[i]});
    table.addRow({"store f", "store f"});
    std::cout << table.render() << "\n";

    Env env = {{"a", 6}, {"b", 7}, {"c", 20}, {"d", 8}, {"e", 3}};
    std::cout << "stack evaluation: " << evalStack(tree, stack_seq, env)
              << "\n";
    std::cout << "queue evaluation: " << evalQueue(tree, queue_seq, env)
              << "\n\n";

    std::cout << "Level-order traversal via the conjugate tree "
                 "(Fig 3.1(c)/Fig 3.3):\n  ";
    for (int id : levelOrderViaConjugate(tree))
        std::cout << tree.node(id).label << " ";
    std::cout << "\nmatches the direct level order: "
              << (levelOrderViaConjugate(tree) == levelOrder(tree)
                      ? "yes"
                      : "NO")
              << "\n";
    return 0;
}
