/**
 * @file
 * occamc - the OCCAM queue-machine compiler driver (thesis Fig 4.21).
 *
 * Usage: occamc [--asm] [--dot] [--run] [--pes N] [--threads N]
 *               [--stats] [--topology SPEC] [--trace out.json]
 *               [--metrics out.json] [--faults SPEC] [--recover]
 *               [--checkpoint-every N] [--checkpoint-file ckpt.qmc]
 *               [--resume ckpt.qmc] [--deadline-ms N]
 *               [--flight PATH|off] [--telemetry FILE]
 *               [--telemetry-every N] file.occ
 *
 * Compiles an OCCAM source file into queue-machine object code and, on
 * request, prints the generated assembly, dumps each context's data-flow
 * graph in Graphviz DOT form (the thesis draw/drawpic role), or runs the
 * program on the simulated multiprocessor and reports statistics.
 * --trace records a cycle-level event trace of the run and writes it as
 * Chrome trace_event JSON (open in chrome://tracing, Perfetto, or feed
 * it to the qmprof analyzer).
 * --metrics exports the run's full statistics registry (counters,
 * scalars, latency/occupancy histograms) as a schema-versioned JSON
 * document ("-" = stdout; see sim/metrics.hpp).
 * --topology selects the ring-bus shape: "ring" (flat default),
 * "ring:P" (flat with P partitions), or "rings:KxM" (K local rings of
 * M partitions joined by bridges and a backbone; the kernel shards its
 * ready queues, channel map, and placement per local ring).
 * --faults runs under seeded fault injection (see fault::parseFaultPlan
 * for the spec grammar, e.g. "seed=42,rate=0.05,kinds=drop+delay").
 * --recover enables the recovery layer on top of the fault plan
 * (end-to-end retransmission, checksum heal, dedup, fail-stop
 * re-dispatch, and bounded replay from the last checkpoint);
 * --checkpoint-every N adds periodic snapshots on top of the boot one.
 * --checkpoint-file persists every snapshot durably (atomic write) so a
 * killed run can be warm-started with --resume, byte-identically to an
 * uninterrupted run on every deterministic surface (result line, stats,
 * trace, metrics). A corrupt or mismatched --resume file is refused
 * with a one-line diagnostic and the run falls back to a cold start.
 * --deadline-ms bounds the run's host wall-clock time.
 * The flight recorder (src/obs) is always on: every run keeps ring
 * buffers of its most recent scheduling/bus/kernel/fault events, and
 * any failure (watchdog, deadline, structured run failure, fatal
 * error, SIGINT/SIGTERM) dumps them as a qm.flight.v1 JSON black box.
 * --flight overrides where the dump lands (default: next to the
 * checkpoint/resume/metrics/trace file, else ./qm.flight.json);
 * "--flight off" suppresses the dump file (the in-memory recorder
 * stays on; set QM_FLIGHT=0 to disable recording entirely).
 * --telemetry streams periodic qm.telemetry.v1 NDJSON snapshots of
 * the statistics registry mid-run, one line every --telemetry-every
 * simulated cycles (default 1000); the stream is cycle-deterministic
 * (byte-identical across --threads and both simulation cores).
 *
 * Exit codes are structured per failure class:
 *   0  success
 *   2  usage / bad arguments / unreadable input
 *   3  OCCAM compile error
 *   4  watchdog trip (simulated watchdog or host deadline)
 *   5  run failed for a structured simulated reason (e.g. lost
 *      message, fault-starved) without recovering
 *   6  fatal error / kernel panic during the run
 *   128+N  interrupted by signal N (SIGINT -> 130, SIGTERM -> 143)
 *      after flushing trace/metrics
 */
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fault/fault.hpp"
#include "mp/system.hpp"
#include "occam/compiler.hpp"
#include "persist/io.hpp"
#include "sim/metrics.hpp"
#include "sim/telemetry.hpp"
#include "support/cli.hpp"
#include "support/shutdown.hpp"
#include "trace/export.hpp"
#include "occam/graph_interp.hpp"
#include "occam/ift.hpp"
#include "occam/parser.hpp"

namespace {

// Structured exit codes, one per failure class (documented above and
// asserted by tests/occamc_cli_test.py).
constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitCompile = 3;
constexpr int kExitWatchdog = 4;
constexpr int kExitRunFailed = 5;
constexpr int kExitFatal = 6;

int
usage()
{
    std::cerr << "usage: occamc [--asm] [--dot] [--run] [--interp] "
                 "[--pes N] [--threads N] [--stats] "
                 "[--topology ring|ring:P|rings:KxM] "
                 "[--trace out.json] "
                 "[--metrics out.json] [--faults SPEC] [--recover] "
                 "[--checkpoint-every N] [--checkpoint-file ckpt.qmc] "
                 "[--resume ckpt.qmc] [--deadline-ms N] "
                 "[--flight PATH|off] [--telemetry FILE] "
                 "[--telemetry-every N] file.occ\n";
    return kExitUsage;
}

/** Map a finished run onto its exit-code class. */
int
exitCodeFor(const qm::mp::RunResult &result)
{
    if (result.completed)
        return kExitOk;
    if (result.hostAborted) {
        int sig = qm::support::shutdownSignal();
        if (sig > 0)
            return 128 + sig;  // interrupted: flushed, then signal code
        return kExitWatchdog;  // host deadline = a wall-clock watchdog
    }
    if (result.watchdogTripped)
        return kExitWatchdog;
    return kExitRunFailed;
}

} // namespace

int
main(int argc, char **argv)
{
    bool show_asm = false, show_dot = false, run = false,
         stats = false, interp_mode = false;
    int pes = 1;
    int threads = 1;
    bool topology_given = false;
    qm::mp::RingTopology topology;
    qm::fault::FaultPlan faults;
    qm::fault::RecoveryPlan recovery;
    long deadline_ms = 0;
    long telemetry_every = 1000;
    std::string path, trace_path, metrics_path, checkpoint_file,
        resume_file, flight_arg, telemetry_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--asm") {
            show_asm = true;
        } else if (arg == "--dot") {
            show_dot = true;
        } else if (arg == "--run") {
            run = true;
        } else if (arg == "--interp") {
            interp_mode = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--pes" && i + 1 < argc) {
            // stoi would throw an uncaught std::invalid_argument on
            // "--pes foo"; validate and report a usage error instead.
            try {
                pes = qm::parsePositiveIntArg(argv[++i], "--pes",
                                              /*max=*/4096);
            } catch (const qm::FatalError &e) {
                std::cerr << "occamc: " << e.what() << "\n";
                return usage();
            }
        } else if (arg == "--threads" && i + 1 < argc) {
            try {
                threads = qm::parsePositiveIntArg(argv[++i],
                                                  "--threads",
                                                  /*max=*/1024);
            } catch (const qm::FatalError &e) {
                std::cerr << "occamc: " << e.what() << "\n";
                return usage();
            }
        } else if (arg == "--topology" && i + 1 < argc) {
            try {
                topology = qm::mp::parseTopology(argv[++i]);
            } catch (const qm::FatalError &e) {
                std::cerr << "occamc: " << e.what() << "\n";
                return usage();
            }
            topology_given = true;
            run = true;  // a topology only matters for a run
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
            run = true;  // tracing implies running
        } else if (arg == "--metrics" && i + 1 < argc) {
            metrics_path = argv[++i];
            run = true;  // metrics imply running
        } else if (arg == "--faults" && i + 1 < argc) {
            try {
                faults = qm::fault::parseFaultPlan(argv[++i]);
            } catch (const qm::FatalError &e) {
                std::cerr << "occamc: " << e.what() << "\n";
                return usage();
            }
            run = true;  // fault injection implies running
        } else if (arg == "--recover") {
            recovery.enabled = true;
            run = true;  // recovery implies running
        } else if (arg == "--checkpoint-every" && i + 1 < argc) {
            try {
                recovery.checkpointEvery = qm::parsePositiveIntArg(
                    argv[++i], "--checkpoint-every",
                    /*max=*/1'000'000'000);
            } catch (const qm::FatalError &e) {
                std::cerr << "occamc: " << e.what() << "\n";
                return usage();
            }
            recovery.enabled = true;
            run = true;
        } else if (arg == "--checkpoint-file" && i + 1 < argc) {
            checkpoint_file = argv[++i];
            recovery.enabled = true;  // checkpoints require snapshots
            run = true;
        } else if (arg == "--resume" && i + 1 < argc) {
            resume_file = argv[++i];
            recovery.enabled = true;
            run = true;
        } else if (arg == "--deadline-ms" && i + 1 < argc) {
            try {
                deadline_ms = qm::parsePositiveIntArg(
                    argv[++i], "--deadline-ms", /*max=*/1'000'000'000);
            } catch (const qm::FatalError &e) {
                std::cerr << "occamc: " << e.what() << "\n";
                return usage();
            }
            run = true;
        } else if (arg == "--flight" && i + 1 < argc) {
            flight_arg = argv[++i];
            run = true;  // the black box only matters for a run
        } else if (arg == "--telemetry" && i + 1 < argc) {
            telemetry_path = argv[++i];
            run = true;  // telemetry implies running
        } else if (arg == "--telemetry-every" && i + 1 < argc) {
            try {
                telemetry_every = qm::parsePositiveIntArg(
                    argv[++i], "--telemetry-every",
                    /*max=*/1'000'000'000);
            } catch (const qm::FatalError &e) {
                std::cerr << "occamc: " << e.what() << "\n";
                return usage();
            }
            run = true;
        } else if (!arg.empty() && arg[0] != '-') {
            path = arg;
        } else {
            return usage();
        }
    }
    if (path.empty())
        return usage();

    std::ifstream in(path);
    if (!in) {
        std::cerr << "occamc: cannot open " << path << "\n";
        return kExitUsage;
    }
    std::ostringstream source;
    source << in.rdbuf();

    qm::occam::CompiledProgram program;
    try {
        qm::occam::CompileOptions options;
        options.emitDot = show_dot;
        program = qm::occam::compileOccam(source.str(), options);
    } catch (const std::exception &e) {
        std::cerr << "occamc: " << e.what() << "\n";
        return kExitCompile;
    }

    int exit_code = kExitOk;
    try {
        std::cout << "; " << program.contextCount << " contexts, "
                  << program.object.words.size() << " code words\n";
        if (show_asm)
            std::cout << program.assembly;
        if (show_dot)
            for (const auto &[label, dot] : program.dot)
                std::cout << dot;
        if (run) {
            qm::mp::SystemConfig config;
            config.numPes = pes;
            config.hostThreads = threads;
            config.hostDeadlineMs = deadline_ms;
            config.traceConfig.enabled = !trace_path.empty();
            config.faultPlan = faults;
            config.recovery = recovery;
            // Black-box dump destination: explicit --flight wins, else
            // land next to whichever artifact the run already writes,
            // else the cwd fallback (failure-only, so a clean run
            // leaves no file behind). "--flight off" keeps the
            // in-memory recorder but never writes the dump.
            std::string flight_path = flight_arg;
            if (flight_path.empty()) {
                if (!checkpoint_file.empty())
                    flight_path = checkpoint_file + ".flight.json";
                else if (!resume_file.empty())
                    flight_path = resume_file + ".flight.json";
                else if (!metrics_path.empty() && metrics_path != "-")
                    flight_path = metrics_path + ".flight.json";
                else if (!trace_path.empty())
                    flight_path = trace_path + ".flight.json";
                else
                    flight_path = "qm.flight.json";
            }
            if (flight_path == "off")
                flight_path.clear();
            config.flightPath = flight_path;
            if (!telemetry_path.empty())
                config.telemetryEvery = telemetry_every;
            // One chance to flush trace/metrics on SIGINT/SIGTERM;
            // the run loop notices the flag and winds down.
            qm::support::installShutdownSignals();
            if (topology_given) {
                config.setTopology(topology);
                std::cout << "topology: "
                          << qm::mp::topologyName(topology) << "\n";
            }
            if (faults.enabled())
                std::cout << "fault injection: "
                          << qm::fault::toString(faults) << "\n";
            if (recovery.enabled) {
                std::cout << "recovery: enabled";
                if (recovery.checkpointEvery > 0)
                    std::cout << " (checkpoint every "
                              << recovery.checkpointEvery << " cycles)";
                std::cout << "\n";
            }
            qm::mp::System system(program.object, config);
            std::ofstream telemetry_out;
            if (!telemetry_path.empty()) {
                telemetry_out.open(telemetry_path,
                                   std::ios::out | std::ios::trunc);
                if (!telemetry_out) {
                    std::cerr << "occamc: cannot open telemetry file "
                              << telemetry_path << "\n";
                    return kExitUsage;
                }
                // occamc streams live (one flushed line per boundary)
                // so a killed run still leaves its partial stream;
                // sweeps buffer per-run instead (see sim::runAll).
                system.setTelemetrySink([&](qm::mp::System &s,
                                            qm::mp::Cycle cycle) {
                    telemetry_out << qm::sim::telemetryLine(
                        path, pes, cycle, s.statsSnapshot());
                    telemetry_out.flush();
                });
            }
            if (!checkpoint_file.empty())
                system.setCheckpointSink([&](qm::mp::System &s) {
                    qm::persist::Status st =
                        s.saveCheckpoint(checkpoint_file);
                    if (!st.ok())
                        std::cerr << "occamc: checkpoint save failed: "
                                  << st.toString() << "\n";
                });
            bool resumed = false;
            if (!resume_file.empty()) {
                qm::persist::Status st =
                    system.loadCheckpoint(resume_file);
                if (st.ok()) {
                    resumed = true;
                    // stderr only: a resumed run's stdout must be
                    // byte-identical to an uninterrupted one.
                    std::cerr << "occamc: resumed from " << resume_file
                              << "\n";
                } else {
                    std::cerr << "occamc: cannot resume from "
                              << resume_file << " (" << st.toString()
                              << "); starting cold\n";
                }
            }
            qm::mp::RunResult result;
            int replays = 0;
            try {
                result = resumed ? system.resume()
                                 : system.run(program.mainLabel);
                while (!result.completed && recovery.enabled &&
                       system.replayable() && system.canRestore() &&
                       replays < recovery.maxReplays) {
                    system.restore();
                    ++replays;
                    result = system.resume();
                }
            } catch (const std::exception &e) {
                // A kernel panic / fatal error unwinds past the run
                // loop's own dump sites, so write the black box here
                // before the System goes out of scope, then let the
                // outer handler report the error (exit code 6).
                if (!flight_path.empty() &&
                    system.writeFlightDump(
                              flight_path,
                              std::string("fatal: ") + e.what())
                        .ok())
                    std::cerr << "occamc: flight recorder dump -> "
                              << flight_path << "\n";
                throw;
            }
            std::cout << "completed=" << result.completed
                      << " cycles=" << result.cycles
                      << " instructions=" << result.instructions
                      << " contexts=" << result.contexts
                      << " rendezvous=" << result.rendezvous << "\n";
            if (faults.enabled())
                std::cout << "faults: injected="
                          << result.faultsInjected
                          << " recoveries=" << result.faultRecoveries
                          << " watchdog=" << result.watchdogTripped
                          << "\n";
            if (replays > 0)
                std::cout << "recovery: " << replays
                          << " checkpoint replay(s), "
                          << (result.completed ? "run recovered"
                                               : "run still failed")
                          << "\n";
            if (!result.failureReason.empty())
                std::cout << "failure: " << result.failureReason
                          << "\n";
            exit_code = exitCodeFor(result);
            // stderr only: stdout must stay byte-identical to runs
            // predating the flight recorder.
            if (exit_code != kExitOk && !flight_path.empty())
                std::cerr << "occamc: flight recorder dump -> "
                          << flight_path << "\n";
            std::cout << "breakdown: compute=" << result.computeCycles
                      << " kernel=" << result.kernelCycles
                      << " blocked=" << result.blockedCycles
                      << " bus=" << result.busCycles << "\n";
            if (!trace_path.empty()) {
                qm::trace::writeChromeTraceFile(trace_path,
                                                system.tracer());
                std::cout << "trace: "
                          << system.tracer().events().size()
                          << " events -> " << trace_path << "\n";
                if (system.tracer().dropped() > 0)
                    std::cout << "WARNING: trace truncated ("
                              << system.tracer().dropped()
                              << " events dropped past the cap); "
                                 "trace-derived analyses undercount\n";
            }
            if (!metrics_path.empty()) {
                qm::sim::RunReport report;
                report.pes = pes;
                report.completed = result.completed;
                report.verified = result.completed;
                report.cycles = result.cycles;
                report.traceDropped = result.traceDropped;
                report.stats = system.stats();
                qm::sim::SpeedupSeries series;
                series.name = path;
                series.runs.push_back(std::move(report));
                qm::sim::writeMetricsJson("occamc", {series},
                                          metrics_path);
                if (metrics_path != "-")
                    std::cout << "metrics: -> " << metrics_path << "\n";
            }
            for (const auto &[name, addr] : program.dataMap) {
                std::cout << name << "[0..3] =";
                for (int i = 0; i < 4; ++i)
                    std::cout << " "
                              << static_cast<qm::isa::SWord>(
                                     system.memory().readWord(
                                         addr + static_cast<qm::isa::
                                                    Addr>(i) * 4));
                std::cout << "\n";
            }
            if (stats)
                std::cout << system.stats().render();
        }
        if (interp_mode) {
            // Abstract context-graph interpretation (no ISA): useful
            // to separate compiler-graph bugs from codegen bugs.
            qm::occam::Program ast = qm::occam::parse(source.str());
            qm::occam::SymbolTable table = qm::occam::analyze(ast);
            qm::occam::Ift ift = qm::occam::Ift::build(ast, table);
            qm::occam::ContextProgram ctxs =
                qm::occam::buildContextGraphs(ast, table, ift);
            qm::occam::GraphInterpreter interp(ctxs);
            qm::occam::InterpResult r = interp.run();
            std::cout << "abstract: steps=" << r.steps
                      << " contexts=" << r.contexts
                      << " transfers=" << r.transfers << "\n";
            for (const auto &[name, addr] : program.dataMap) {
                std::cout << name << "[0..3] =";
                for (int i = 0; i < 4; ++i)
                    std::cout << " "
                              << interp.readWord(
                                     addr +
                                     static_cast<qm::isa::Addr>(i) * 4);
                std::cout << "\n";
            }
        }
    } catch (const std::exception &e) {
        std::cerr << "occamc: " << e.what() << "\n";
        return kExitFatal;
    }
    return exit_code;
}
