/**
 * @file
 * Domain example: a CSP pipeline sieve of Eratosthenes.
 *
 * The classic OCCAM/CSP demonstration - a chain of filter processes,
 * each holding one prime and forwarding non-multiples to the next
 * stage - mapped onto queue-machine contexts connected by channels.
 * This exercises everything the dynamic data-flow splicing mechanism
 * exists for: a static chain of communicating contexts doing real work
 * in parallel as candidates stream through.
 *
 * Build and run:  ./build/examples/prime_sieve [pes]
 */
#include <iostream>
#include <string>

#include "mp/system.hpp"
#include "occam/compiler.hpp"

namespace {

/**
 * Six filter stages catch the primes up to 13 among candidates
 * 2..limit; each stage records its prime into the result vector and
 * passes everything else downstream. The last stage drains the
 * leftovers. Channels chain the stages; a 0 terminates the stream.
 */
const char *kSieve = R"(
def limit = 30:
var primes[8]:
chan c0, c1, c2, c3, c4, c5, c6:
proc filter (value idx, chan cin, chan cout, var sink[]) =
  var p, x, stop:
  seq
    cin ? p
    sink[idx] := p
    stop := 0
    while stop = 0
      seq
        cin ? x
        if
          x = 0
            seq
              cout ! 0
              stop := 1
          (x \ p) <> 0
            cout ! x
          (x \ p) = 0
            skip
:
proc drain (chan cin) =
  var x, stop:
  seq
    stop := 0
    while stop = 0
      seq
        cin ? x
        if
          x = 0
            stop := 1
          x <> 0
            skip
:
par
  seq
    seq n = [2 for limit - 1]
      c0 ! n
    c0 ! 0
  filter (0, c0, c1, primes)
  filter (1, c1, c2, primes)
  filter (2, c2, c3, primes)
  filter (3, c3, c4, primes)
  filter (4, c4, c5, primes)
  filter (5, c5, c6, primes)
  drain (c6)
)";

} // namespace

int
main(int argc, char **argv)
{
    int pes = argc > 1 ? std::stoi(argv[1]) : 4;
    try {
        qm::occam::CompiledProgram program =
            qm::occam::compileOccam(kSieve);
        qm::mp::SystemConfig config;
        config.numPes = pes;
        qm::mp::System system(program.object, config);
        qm::mp::RunResult result = system.run(program.mainLabel);

        std::cout << "pipeline sieve on " << pes << " PEs: "
                  << result.cycles << " cycles, " << result.rendezvous
                  << " channel transfers, " << result.contexts
                  << " contexts\n";
        qm::isa::Addr base = program.arrayAddress("primes");
        std::cout << "primes caught by the six filter stages:";
        for (int i = 0; i < 6; ++i)
            std::cout << " "
                      << system.memory().readWord(
                             base + static_cast<qm::isa::Addr>(i) * 4);
        std::cout << "  (expect 2 3 5 7 11 13)\n";
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
