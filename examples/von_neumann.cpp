/**
 * @file
 * Domain example: dual-mode execution.
 *
 * A design goal of the thesis processing element is supporting the
 * conventional Von Neumann execution model alongside the queue-based
 * model (section 5.1): global registers, branches, and a program
 * counter coexist with the operand queue. This example runs one
 * hand-written program that mixes the two styles - a register-machine
 * loop computing Fibonacci numbers into memory, followed by a
 * queue-mode reduction over them - on a bare processing element.
 *
 * Build and run:  ./build/examples/von_neumann
 */
#include <iostream>

#include "isa/assembler.hpp"
#include "pe/memory.hpp"
#include "pe/pe.hpp"

int
main()
{
    // Registers: r17 = F(i), r18 = F(i+1), r19 = cursor, r20 = count.
    // Phase 1 is pure Von Neumann (globals + branch); phase 2 sums the
    // stored table queue-style: fetches feed the operand queue, the
    // adds consume from its front.
    const char *source =
        "  ; phase 1: fib table at 0x2000, register style\n"
        "  plus #0,#1 :r17\n"
        "  plus #0,#1 :r18\n"
        "  plus #8192,#0 :r19\n"
        "  plus #10,#0 :r20\n"
        "fib_loop:\n"
        "  store r19,r17\n"
        "  plus r17,r18 :r21\n"
        "  plus r18,#0 :r17\n"
        "  plus r21,#0 :r18\n"
        "  plus r19,#4 :r19\n"
        "  minus r20,#1 :r20\n"
        "  bne r20,@fib_loop\n"
        "\n"
        "  ; phase 2: queue-mode pairwise reduction of the 10 entries\n"
        "  fetch #8192 :r0\n"
        "  fetch #8196 :r1\n"
        "  fetch #8200 :r2\n"
        "  fetch #8204 :r3\n"
        "  fetch #8208 :r4\n"
        "  fetch #8212 :r5\n"
        "  fetch #8216 :r6\n"
        "  fetch #8220 :r7\n"
        "  fetch #8224 :r8\n"
        "  fetch #8228 :r9\n"
        "  plus++ r0,r1 :r8\n"   // level 1 results land contiguously
        "  plus++ r0,r1 :r7\n"
        "  plus++ r0,r1 :r6\n"
        "  plus++ r0,r1 :r5\n"
        "  plus++ r0,r1 :r4\n"
        "  plus++ r0,r1 :r3\n"   // level 2
        "  plus++ r0,r1 :r2\n"
        "  plus++ r0,r1 :r1\n"   // level 3
        "  plus++ r0,r1 :r0\n"   // final sum at the queue front
        "  store #8232,r0\n"
        "  fret\n";

    try {
        qm::isa::ObjectCode code = qm::isa::assemble(source);
        qm::pe::Memory memory(1 << 16);
        qm::pe::NullHost host;
        qm::pe::ProcessingElement pe(memory, code, host);

        qm::pe::ContextState ctx;
        ctx.qp = 0x1000;
        ctx.pom = qm::pe::pomForPageWords(64);
        pe.loadContext(ctx);

        long cycles = 0;
        for (;;) {
            qm::pe::StepResult r = pe.step();
            cycles += r.cycles;
            if (r.status != qm::pe::StepStatus::Executed)
                break;
        }

        std::cout << "fib table:";
        for (int i = 0; i < 10; ++i)
            std::cout << " " << memory.readWord(0x2000 +
                                                static_cast<qm::isa::
                                                    Addr>(i) * 4);
        std::cout << "\nqueue-mode sum = " << memory.readWord(0x2028)
                  << " (expect 143)\n"
                  << cycles << " cycles, window hits "
                  << pe.stats().counter("pe.window_hits")
                  << ", window misses "
                  << pe.stats().counter("pe.window_misses") << "\n";
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
