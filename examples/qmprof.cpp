/**
 * @file
 * qmprof - trace analyzer for the queue-machine simulator.
 *
 * Usage: qmprof [--top K] [--buckets N] trace.json
 *        qmprof [--top K] [--buckets N] --run file.occ [--pes N]
 *        qmprof diff [--tolerance F] [--host-tolerance F]
 *                    baseline.json current.json
 *        qmprof flight [--last N] dump.flight.json
 *
 * The first form re-ingests a Chrome trace_event JSON file written by
 * occamc --trace (or a bench --trace-dir sweep) and prints the qmprof
 * report: the run's critical path (the chain of run spans and blocked
 * gaps its length hinged on), the top-K contexts by blocked time with
 * park-reason attribution, per-PE bucketed utilization timelines, and
 * a deadlock/starvation digest of contexts that never finished.
 *
 * The second form compiles and runs an OCCAM program with tracing
 * enabled and analyzes the live event stream directly - no trace file
 * needed. Both forms are deterministic: the same trace (or the same
 * program at the same PE count) always prints the same report.
 *
 * `qmprof diff` compares two qm.metrics.v1 or BENCH JSON documents
 * (baseline first) and prints per-run metric deltas, histogram
 * percentile divergence, and a regression verdict per cell using the
 * same thresholds as tools/bench_compare.py (--tolerance for
 * simulated cycles, --host-tolerance for host wall time). Exit 0 =
 * within tolerance, 1 = regression, 2 = unreadable input.
 *
 * `qmprof flight` ingests a qm.flight.v1 black-box dump (written
 * automatically by any failed occamc/bench run) and prints the
 * last-N-cycles event timeline per ring, blocked-context attribution,
 * and a probable-cause digest. Exit 2 = not a flight dump.
 */
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "mp/system.hpp"
#include "obs/analytics.hpp"
#include "occam/compiler.hpp"
#include "support/cli.hpp"
#include "trace/analyze.hpp"

namespace {

int
usage()
{
    std::cerr << "usage: qmprof [--top K] [--buckets N] trace.json\n"
                 "       qmprof [--top K] [--buckets N] --run file.occ "
                 "[--pes N]\n"
                 "       qmprof diff [--tolerance F] "
                 "[--host-tolerance F] baseline.json current.json\n"
                 "       qmprof flight [--last N] dump.flight.json\n";
    return 2;
}

/** `qmprof diff baseline.json current.json`: cross-run analytics. */
int
mainDiff(int argc, char **argv)
{
    qm::obs::DiffOptions options;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        try {
            if (arg == "--tolerance" && i + 1 < argc) {
                options.tolerance =
                    qm::parseNonNegativeDoubleArg(argv[++i],
                                                  "--tolerance");
            } else if (arg == "--host-tolerance" && i + 1 < argc) {
                options.hostTolerance =
                    qm::parseNonNegativeDoubleArg(argv[++i],
                                                  "--host-tolerance");
            } else if (arg == "--quiet") {
                options.showMetrics = false;
            } else if (!arg.empty() && arg[0] != '-') {
                paths.push_back(arg);
            } else {
                return usage();
            }
        } catch (const qm::FatalError &e) {
            std::cerr << "qmprof: " << e.what() << "\n";
            return usage();
        }
    }
    if (paths.size() != 2)
        return usage();
    return qm::obs::diffReports(paths[0], paths[1], options, std::cout,
                                std::cerr);
}

/** `qmprof flight dump.flight.json`: black-box post-mortem. */
int
mainFlight(int argc, char **argv)
{
    qm::obs::FlightOptions options;
    std::string path;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        try {
            if (arg == "--last" && i + 1 < argc) {
                options.lastEvents = qm::parsePositiveIntArg(
                    argv[++i], "--last", /*max=*/100000);
            } else if (!arg.empty() && arg[0] != '-') {
                path = arg;
            } else {
                return usage();
            }
        } catch (const qm::FatalError &e) {
            std::cerr << "qmprof: " << e.what() << "\n";
            return usage();
        }
    }
    if (path.empty())
        return usage();
    return qm::obs::analyzeFlight(path, options, std::cout, std::cerr);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "diff")
        return mainDiff(argc, argv);
    if (argc > 1 && std::string(argv[1]) == "flight")
        return mainFlight(argc, argv);
    bool run = false;
    int pes = 2;
    qm::trace::AnalyzeOptions options;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        try {
            if (arg == "--run") {
                run = true;
            } else if (arg == "--pes" && i + 1 < argc) {
                pes = qm::parsePositiveIntArg(argv[++i], "--pes",
                                              /*max=*/4096);
            } else if (arg == "--top" && i + 1 < argc) {
                options.topK = qm::parsePositiveIntArg(argv[++i],
                                                       "--top",
                                                       /*max=*/100000);
            } else if (arg == "--buckets" && i + 1 < argc) {
                options.timelineBuckets = qm::parsePositiveIntArg(
                    argv[++i], "--buckets", /*max=*/1024);
            } else if (!arg.empty() && arg[0] != '-') {
                path = arg;
            } else {
                return usage();
            }
        } catch (const qm::FatalError &e) {
            std::cerr << "qmprof: " << e.what() << "\n";
            return usage();
        }
    }
    if (path.empty())
        return usage();

    try {
        qm::trace::Profile profile;
        if (run) {
            std::ifstream in(path);
            if (!in) {
                std::cerr << "qmprof: cannot open " << path << "\n";
                return 1;
            }
            std::ostringstream source;
            source << in.rdbuf();
            qm::occam::CompiledProgram program =
                qm::occam::compileOccam(source.str());
            qm::mp::SystemConfig config;
            config.numPes = pes;
            config.traceConfig.enabled = true;
            qm::mp::System system(program.object, config);
            qm::mp::RunResult result = system.run(program.mainLabel);
            std::cout << "ran " << path << " on " << pes
                      << " PEs: completed=" << result.completed
                      << " cycles=" << result.cycles << "\n\n";
            profile =
                qm::trace::analyzeTrace(system.tracer().events(),
                                        options);
            profile.dropped = system.tracer().dropped();
        } else {
            std::uint64_t dropped = 0;
            std::vector<qm::trace::Event> events =
                qm::trace::loadChromeTrace(path, &dropped);
            profile = qm::trace::analyzeTrace(events, options);
            profile.dropped = dropped;
        }
        std::cout << profile.render(options);
    } catch (const std::exception &e) {
        std::cerr << "qmprof: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
