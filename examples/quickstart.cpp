/**
 * @file
 * Quickstart: the complete pipeline in one page.
 *
 * 1. Compile an OCCAM program (a producer/consumer pair connected by a
 *    channel) into queue-machine object code.
 * 2. Boot a 2-PE queue-machine multiprocessor and run it.
 * 3. Read the results back out of the simulated data memory.
 *
 * Build and run:  ./build/examples/quickstart
 */
#include <iostream>

#include "mp/system.hpp"
#include "occam/compiler.hpp"

int
main()
{
    // An OCCAM program: a producer streams the first 10 squares over a
    // channel; a consumer accumulates them. The par components become
    // separate contexts that may land on different processing elements
    // and rendezvous through the message cache.
    const std::string source =
        "var results[2]:\n"
        "chan c:\n"
        "var total, count:\n"
        "seq\n"
        "  total := 0\n"
        "  count := 0\n"
        "  par\n"
        "    seq i = [1 for 10]\n"
        "      c ! i * i\n"
        "    seq j = [1 for 10]\n"
        "      var got:\n"
        "      seq\n"
        "        c ? got\n"
        "        total := total + got\n"
        "        count := count + 1\n"
        "  results[0] := total\n"
        "  results[1] := count\n";

    try {
        // Compile: OCCAM -> data-flow graphs -> queue-machine assembly
        // -> 32-bit object code.
        qm::occam::CompiledProgram program =
            qm::occam::compileOccam(source);
        std::cout << "compiled " << program.contextCount
                  << " context graphs into "
                  << program.object.words.size() << " code words\n";

        // Simulate on 2 PEs joined by the partitioned ring bus.
        qm::mp::SystemConfig config;
        config.numPes = 2;
        qm::mp::System system(program.object, config);
        qm::mp::RunResult result = system.run(program.mainLabel);

        std::cout << "completed in " << result.cycles << " cycles, "
                  << result.instructions << " instructions, "
                  << result.contexts << " contexts, "
                  << result.rendezvous << " channel transfers\n";

        // Results live in the data segment at the compiler-assigned
        // address of the top-level array.
        qm::isa::Addr base = program.arrayAddress("results");
        std::cout << "sum of squares 1..10 = "
                  << system.memory().readWord(base) << " (expect 385)\n"
                  << "values received     = "
                  << system.memory().readWord(base + 4)
                  << " (expect 10)\n";
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
