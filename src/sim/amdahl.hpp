/**
 * @file
 * Analytic speed-up models (thesis Figures 6.6 and 6.7).
 *
 * Fig 6.6 plots classic Amdahl's law with parallel fraction f = 0.93.
 * Fig 6.7 plots the thesis's modified law (f = 0.63, g = 0.3), which
 * adds a multiprogramming-overhead term: with one PE every context
 * multiplexes on the same processor, paying window roll-out and kernel
 * scheduling costs that fade as contexts spread over more PEs. The
 * surviving text does not give the exact functional form, so this
 * reproduction uses
 *
 *     S(n) = (1 + g) / ((1 - f) + f/n + g/n^2)
 *
 * - the overhead fraction g falls off quadratically because both the
 * switch frequency per PE and the ready-queue depth drop roughly as
 * 1/n. The qualitative feature matches the thesis: measured speed-up
 * exceeds the plain-Amdahl prediction because the one-PE baseline
 * carries overhead the parallel runs shed.
 */
#pragma once

namespace qm::sim {

/** Classic Amdahl speed-up with parallel fraction @p f on @p n PEs. */
double amdahlSpeedup(double f, int n);

/** Modified Amdahl speed-up with overhead fraction @p g (see above). */
double modifiedAmdahlSpeedup(double f, double g, int n);

} // namespace qm::sim
