/**
 * @file
 * Live telemetry stream (`--telemetry FILE`): periodic NDJSON
 * snapshots of the qm.metrics.v1 statistics registry, emitted mid-run
 * at deterministic cycle boundaries (mp::SystemConfig::telemetryEvery)
 * instead of once at the end.
 *
 * One snapshot = one line = one self-contained JSON object:
 *
 *   {"schema":"qm.telemetry.v1","label":...,"pes":N,"cycle":C,
 *    "counters":{...},"scalars":{...},"histograms":{name:{count,sum,
 *    min,max,mean,p50,p90,p99}}}
 *
 * Histograms carry their summary/percentile fields only (no buckets):
 * a stream samples the same registry dozens of times, and the full
 * bucket vectors belong in the end-of-run metrics document.
 *
 * Determinism contract: boundaries are evaluated at the same guard
 * points as periodic checkpoints, the registry fold is the same one
 * finalizeRun uses, and every map is name-ordered - so the stream is
 * byte-identical across cores, --threads, and (with per-run buffering
 * in sim::runAll) --jobs. Counters are monotone along one timeline; a
 * checkpoint replay rewinds the registry with the machine, so a
 * faulted run's stream records the replayed timeline too (stamps can
 * repeat), which is the truthful account of what the machine did.
 */
#pragma once

#include <string>

#include "support/stats.hpp"

namespace qm::sim {

/** Schema tag stamped into every telemetry line. */
inline constexpr const char *kTelemetrySchema = "qm.telemetry.v1";

/**
 * Render one telemetry snapshot line (newline-terminated) from a
 * folded registry view (mp::System::statsSnapshot()).
 */
std::string telemetryLine(const std::string &label, int pes,
                          std::int64_t cycle, const StatSet &stats);

} // namespace qm::sim
