#include "sim/journal.hpp"

#include <cstdint>

#include "persist/state_codec.hpp"
#include "support/format.hpp"

namespace qm::sim {

namespace {

// Version 2 appended the buffered telemetry stream and flight-dump
// path to each row; a v1 journal fails the magic check and is rebuilt
// from scratch (it is only a cache of deterministic results).
constexpr const char *kJournalMagic = "QMSWJNL2";

} // namespace

void
encodeRunReport(persist::Encoder &enc, const RunReport &report)
{
    enc.i64(report.pes);
    enc.u8(report.completed ? 1 : 0);
    enc.u8(report.verified ? 1 : 0);
    enc.i64(report.cycles);
    enc.u64(report.instructions);
    enc.u64(report.contexts);
    enc.u64(report.rendezvous);
    enc.u64(report.contextSwitches);
    enc.f64(report.utilization);
    enc.i64(report.computeCycles);
    enc.i64(report.kernelCycles);
    enc.i64(report.blockedCycles);
    enc.i64(report.busCycles);
    enc.u8(report.watchdogTripped ? 1 : 0);
    enc.str(report.failureReason);
    enc.u64(report.faultsInjected);
    enc.u64(report.faultRecoveries);
    enc.u8(report.recovered ? 1 : 0);
    enc.i64(report.replays);
    enc.u64(report.faultKinds.size());
    for (const auto &k : report.faultKinds) {
        enc.u64(k.injected);
        enc.u64(k.detected);
        enc.u64(k.recovered);
    }
    enc.u64(report.traceDropped);
    enc.i64(report.attempts);
    enc.u8(report.quarantined ? 1 : 0);
    enc.u8(report.hostAborted ? 1 : 0);
    persist::encodeStatSet(enc, report.stats);
    // Host performance figures ride along so --host-time output is
    // stable across a resume (they describe the attempt that actually
    // simulated the row, which is exactly what the journal replays).
    enc.f64(report.hostWallMs);
    enc.f64(report.simCyclesPerSec);
    // v2: replayed rows keep their telemetry stream (so the NDJSON
    // file is identical across a resume) and their black-box path.
    enc.str(report.telemetry);
    enc.str(report.flightDumpPath);
}

RunReport
decodeRunReport(persist::Decoder &dec)
{
    RunReport report;
    report.pes = static_cast<int>(dec.i64());
    report.completed = dec.u8() != 0;
    report.verified = dec.u8() != 0;
    report.cycles = dec.i64();
    report.instructions = dec.u64();
    report.contexts = dec.u64();
    report.rendezvous = dec.u64();
    report.contextSwitches = dec.u64();
    report.utilization = dec.f64();
    report.computeCycles = dec.i64();
    report.kernelCycles = dec.i64();
    report.blockedCycles = dec.i64();
    report.busCycles = dec.i64();
    report.watchdogTripped = dec.u8() != 0;
    report.failureReason = dec.str();
    report.faultsInjected = dec.u64();
    report.faultRecoveries = dec.u64();
    report.recovered = dec.u8() != 0;
    report.replays = static_cast<int>(dec.i64());
    if (dec.u64() != report.faultKinds.size()) {
        dec.fail("fault-kind count mismatch");
        return report;
    }
    for (auto &k : report.faultKinds) {
        k.injected = dec.u64();
        k.detected = dec.u64();
        k.recovered = dec.u64();
    }
    report.traceDropped = dec.u64();
    report.attempts = static_cast<int>(dec.i64());
    report.quarantined = dec.u8() != 0;
    report.hostAborted = dec.u8() != 0;
    report.stats = persist::decodeStatSet(dec);
    report.hostWallMs = dec.f64();
    report.simCyclesPerSec = dec.f64();
    report.telemetry = dec.str();
    report.flightDumpPath = dec.str();
    return report;
}

std::string
sweepFingerprint(const std::string &label,
                 const std::vector<RunSpec> &specs)
{
    persist::Encoder digest;
    for (const RunSpec &spec : specs) {
        mp::SystemConfig cfg = spec.config;
        cfg.numPes = spec.pes;  // runOnce overrides the same way
        digest.str(mp::configFingerprint(cfg));
        const auto &words = spec.program->object.words;
        digest.u32(persist::crc32(words.data(),
                                  words.size() * sizeof(isa::Word)));
        digest.str(spec.resultArray);
        digest.u64(spec.expected.size());
        for (std::int32_t v : spec.expected)
            digest.i64(v);
    }
    return cat(label, ";specs=", specs.size(), ";digest=",
               persist::crc32(digest.bytes().data(),
                              digest.bytes().size()));
}

persist::Status
SweepJournal::open(const std::string &path, const std::string &label,
                   const std::vector<RunSpec> &specs)
{
    using persist::ErrCode;
    using persist::Status;
    std::lock_guard<std::mutex> lock(mu_);
    done_.assign(specs.size(), std::nullopt);
    recreated_ = false;
    std::string fingerprint = sweepFingerprint(label, specs);

    std::vector<std::vector<std::uint8_t>> records;
    Status read = persist::readJournal(path, kJournalMagic, fingerprint,
                                       records);
    if (read.code == ErrCode::Mismatch)
        return read;  // valid journal, different sweep: refuse
    bool truncate = false;
    if (!read.ok() && read.code != ErrCode::Io) {
        // Unreadable header: the journal is a cache of deterministic
        // results, so start over rather than refuse the whole sweep.
        recreated_ = true;
        truncate = true;
        records.clear();
    }
    for (const std::vector<std::uint8_t> &payload : records) {
        persist::Decoder dec(payload);
        std::uint64_t index = dec.u64();
        RunReport report = decodeRunReport(dec);
        // Every record passed its CRC, so failures here mean a format
        // drift; skip the row (it will simply be re-run) rather than
        // trusting a misdecoded report.
        if (!dec.ok() || !dec.atEnd() || index >= done_.size())
            continue;
        report.journalReplayed = true;
        done_[index] = std::move(report);
    }
    return writer_.open(path, kJournalMagic, fingerprint, truncate);
}

bool
SweepJournal::has(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return index < done_.size() && done_[index].has_value();
}

const RunReport &
SweepJournal::get(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return *done_[index];
}

persist::Status
SweepJournal::record(std::size_t index, const RunReport &report)
{
    persist::Encoder enc;
    enc.u64(index);
    encodeRunReport(enc, report);
    std::lock_guard<std::mutex> lock(mu_);
    if (!writer_.isOpen())
        return persist::Status::error(persist::ErrCode::Io,
                                      "journal is not open");
    return writer_.append(enc.bytes());
}

std::size_t
SweepJournal::completedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &row : done_)
        n += row.has_value() ? 1 : 0;
    return n;
}

} // namespace qm::sim
