/**
 * @file
 * Schema-versioned metrics export (`--metrics FILE`): the complete
 * statistics registry of every run in a sweep - counters, scalars, and
 * the latency/occupancy histograms with their percentile estimates and
 * non-empty log2 buckets - as one deterministic JSON document.
 *
 * Determinism contract: every run's StatSet is produced by its own
 * isolated mp::System and every map is name-ordered, so the document
 * is byte-identical for any `--jobs` value and across locales (the
 * JsonWriter pins the classic locale and fixes double precision).
 */
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace qm::sim {

/** Schema tag stamped into every metrics document. */
inline constexpr const char *kMetricsSchema = "qm.metrics.v1";

/**
 * Write @p series as a metrics document to @p path ("-" = stdout).
 * Returns the path written. Throws FatalError when the file cannot
 * be opened.
 */
std::string writeMetricsJson(const std::string &bench,
                             const std::vector<SpeedupSeries> &series,
                             const std::string &path);

} // namespace qm::sim
