#include "sim/bench_json.hpp"

#include <fstream>

#include "support/diagnostics.hpp"
#include "support/json.hpp"

namespace qm::sim {

std::string
writeBenchJson(const std::string &bench,
               const std::vector<SpeedupSeries> &series,
               const std::string &path, bool host_time,
               int host_threads)
{
    std::string out_path =
        path.empty() ? "BENCH_" + bench + ".json" : path;
    std::ofstream out(out_path);
    fatalIf(!out, "cannot open bench report file: ", out_path);

    JsonWriter json(out);
    json.beginObject();
    json.key("bench").value(bench);
    // Emitted only when the bench was explicitly run multi-threaded,
    // so single-threaded documents keep the historical bytes.
    if (host_threads > 1)
        json.key("host_threads").value(host_threads);
    json.key("series").beginArray();
    for (const SpeedupSeries &s : series) {
        json.beginObject();
        json.key("name").value(s.name);
        json.key("runs").beginArray();
        for (std::size_t i = 0; i < s.runs.size(); ++i) {
            const RunReport &run = s.runs[i];
            json.beginObject()
                .key("pes").value(run.pes)
                .key("completed").value(run.completed)
                .key("verified").value(run.verified)
                .key("cycles").value(run.cycles)
                .key("instructions").value(run.instructions)
                .key("contexts").value(run.contexts)
                .key("rendezvous").value(run.rendezvous)
                .key("context_switches").value(run.contextSwitches)
                .key("utilization").value(run.utilization)
                .key("compute_cycles").value(run.computeCycles)
                .key("kernel_cycles").value(run.kernelCycles)
                .key("blocked_cycles").value(run.blockedCycles)
                .key("bus_cycles").value(run.busCycles);
            // Host-side simulator speed, opt-in: machine-dependent, so
            // it never appears in the determinism-compared documents.
            if (host_time && run.hostWallMs >= 0.0) {
                json.key("host_wall_ms").value(run.hostWallMs);
                if (run.simCyclesPerSec >= 0.0)
                    json.key("sim_cycles_per_sec")
                        .value(run.simCyclesPerSec);
            }
            // Fault/failure fields appear only when set, so fault-free
            // reports stay byte-identical to the historical format.
            if (run.watchdogTripped)
                json.key("watchdog_tripped").value(true);
            if (!run.failureReason.empty())
                json.key("failure_reason").value(run.failureReason);
            if (run.faultsInjected > 0)
                json.key("faults_injected").value(run.faultsInjected);
            if (run.faultRecoveries > 0)
                json.key("fault_recoveries").value(run.faultRecoveries);
            if (run.recovered)
                json.key("recovered").value(true);
            if (run.replays > 0)
                json.key("replays").value(run.replays);
            // Non-zero only when a trace was recorded AND truncated:
            // flags that trace-derived analyses undercount this run.
            if (run.traceDropped > 0)
                json.key("trace_dropped").value(run.traceDropped);
            // Per-kind breakdown, only for kinds that actually fired.
            bool any_kind = false;
            for (const auto &kc : run.faultKinds)
                if (kc.injected > 0 || kc.detected > 0 ||
                    kc.recovered > 0)
                    any_kind = true;
            if (any_kind) {
                json.key("faults").beginObject();
                for (std::size_t k = 0; k < run.faultKinds.size();
                     ++k) {
                    const auto &kc = run.faultKinds[k];
                    if (kc.injected == 0 && kc.detected == 0 &&
                        kc.recovered == 0)
                        continue;
                    json.key(fault::toString(
                                 static_cast<fault::FaultKind>(1u << k)))
                        .beginObject()
                        .key("injected").value(kc.injected)
                        .key("detected").value(kc.detected)
                        .key("recovered").value(kc.recovered)
                        .endObject();
                }
                json.endObject();
            }
            if (run.cycles > 0 && !s.runs.empty() &&
                s.runs.front().cycles > 0)
                json.key("throughput_ratio").value(s.ratio(i));
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    out << "\n";
    return out_path;
}

} // namespace qm::sim
