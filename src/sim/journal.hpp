/**
 * @file
 * Append-only completion journal for sweep benches: each finished
 * RunSpec's full RunReport is appended (and fsync'd) to a journal
 * file, so a sweep killed mid-flight can be re-run and replay the
 * already-finished rows byte-identically while executing only the
 * unfinished ones. The journal is keyed by a sweep fingerprint
 * (series label + per-spec config/program/verification digests), so
 * a stale journal from a different sweep is refused rather than
 * silently replayed.
 */
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "persist/io.hpp"
#include "sim/experiment.hpp"

namespace qm::sim {

/** Serialize every field of @p report (including the StatSet). */
void encodeRunReport(persist::Encoder &enc, const RunReport &report);

/**
 * Inverse of encodeRunReport. On malformed input the decoder's sticky
 * failed state is set and the partial report must be discarded.
 */
RunReport decodeRunReport(persist::Decoder &dec);

/**
 * Deterministic digest of a sweep: @p label plus, per spec, the
 * simulation-relevant config fingerprint (PE count folded in, host
 * choices excluded), a CRC of the program's object code, and the
 * verification reference. Two sweeps with the same fingerprint run
 * the same simulations in the same order, so their journals are
 * interchangeable; anything else is a Mismatch.
 */
std::string sweepFingerprint(const std::string &label,
                             const std::vector<RunSpec> &specs);

/**
 * The completion journal itself. Thread-safe appends (runAll records
 * rows from its worker threads); loads tolerate a torn final record
 * (the partial tail is ignored and overwritten by the next append).
 */
class SweepJournal
{
public:
    /**
     * Open (or create) the journal at @p path for this sweep and load
     * any rows a previous attempt already completed. A corrupt header
     * is treated as no-journal: the file is recreated from scratch and
     * recreated() reports it. A *valid* journal for a different sweep
     * (fingerprint mismatch) is refused with ErrCode::Mismatch - the
     * caller decides whether that is fatal.
     */
    persist::Status open(const std::string &path, const std::string &label,
                         const std::vector<RunSpec> &specs);

    /** Row for spec @p index already journaled by a previous attempt? */
    bool has(std::size_t index) const;

    /** The replayed report for spec @p index (requires has(index)). */
    const RunReport &get(std::size_t index) const;

    /**
     * Append spec @p index's finished report and fsync. Failures are
     * returned, not thrown: a journal that stops persisting degrades
     * the sweep to non-resumable but never kills it.
     */
    persist::Status record(std::size_t index, const RunReport &report);

    /** Rows loaded from a previous attempt. */
    std::size_t completedCount() const;

    /** True when open() found a corrupt header and started fresh. */
    bool recreated() const { return recreated_; }

    bool isOpen() const { return writer_.isOpen(); }

private:
    mutable std::mutex mu_;
    persist::JournalWriter writer_;
    std::vector<std::optional<RunReport>> done_;
    bool recreated_ = false;
};

} // namespace qm::sim
