#include "sim/experiment.hpp"

#include <cctype>
#include <chrono>
#include <iostream>
#include <set>
#include <thread>

#include "obs/flight.hpp"
#include "sim/journal.hpp"
#include "sim/telemetry.hpp"
#include "support/diagnostics.hpp"
#include "support/format.hpp"
#include "support/shutdown.hpp"
#include "support/thread_pool.hpp"
#include "trace/export.hpp"

namespace qm::sim {

double
SpeedupSeries::ratio(std::size_t index) const
{
    panicIf(runs.empty(), "empty speed-up series");
    panicIf(index >= runs.size(), "speed-up index ", index,
            " out of range (", runs.size(), " runs)");
    panicIf(runs[index].cycles == 0,
            "speed-up ratio against a zero-cycle run (index ", index,
            "): run never executed or timed out before any work");
    double base = static_cast<double>(runs.front().cycles);
    return base / static_cast<double>(runs[index].cycles);
}

RunReport
runOnce(const occam::CompiledProgram &program,
        const std::string &result_array,
        const std::vector<std::int32_t> &expected, int pes,
        const mp::SystemConfig &base_config)
{
    // Host-side cost of the whole simulation, construction included:
    // zeroing the simulated memory is part of what the run costs the
    // host, so both cores are timed over the same span.
    auto host_start = std::chrono::steady_clock::now();
    auto stamp_host = [&](RunReport &r) {
        std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - host_start;
        r.hostWallMs = elapsed.count();
        if (r.hostWallMs > 0.0 && r.cycles > 0)
            r.simCyclesPerSec = static_cast<double>(r.cycles) /
                                (r.hostWallMs / 1000.0);
    };

    mp::SystemConfig config = base_config;
    config.numPes = pes;
    mp::System system(program.object, config);

    RunReport report;
    report.pes = pes;
    // Buffer the live telemetry stream into the report instead of
    // writing it here: the sweep writes every run's lines in spec
    // order afterwards, so the stream file is --jobs-independent.
    if (config.telemetryEvery > 0) {
        std::string label = config.telemetryLabel;
        system.setTelemetrySink(
            [&report, label, pes](mp::System &sys, mp::Cycle cycle) {
                report.telemetry += telemetryLine(label, pes, cycle,
                                                  sys.statsSnapshot());
            });
    }
    mp::RunResult result;
    try {
        result = system.run(program.mainLabel);
        // Bounded retry-from-checkpoint: a structured failure under an
        // enabled recovery plan rolls the machine back to its last
        // snapshot and re-drives it (the injector draws a fresh
        // deterministic fault schedule each replay, so this is not a
        // futile re-execution of the same loss).
        while (!result.completed && config.recovery.enabled &&
               system.replayable() && system.canRestore() &&
               report.replays < config.recovery.maxReplays) {
            system.restore();
            ++report.replays;
            result = system.resume();
        }
        report.recovered = result.completed && report.replays > 0;
    } catch (const FatalError &e) {
        // A run that dies (e.g. kernel deadlock panic) still yields a
        // report row: the sweep survives and records the failure. The
        // System outlives the try block precisely so the flight
        // recorder's last-moments evidence survives the unwinding.
        report.failureReason = cat("fatal: ", e.what());
        if (!config.flightPath.empty() &&
            system.writeFlightDump(config.flightPath,
                                   report.failureReason).ok())
            report.flightDumpPath = config.flightPath;
        stamp_host(report);
        return report;
    } catch (const PanicError &e) {
        report.failureReason = cat("panic: ", e.what());
        if (!config.flightPath.empty() &&
            system.writeFlightDump(config.flightPath,
                                   report.failureReason).ok())
            report.flightDumpPath = config.flightPath;
        stamp_host(report);
        return report;
    }
    report.completed = result.completed;
    report.cycles = result.cycles;
    report.instructions = result.instructions;
    report.contexts = result.contexts;
    report.rendezvous = result.rendezvous;
    report.contextSwitches = result.contextSwitches;
    report.utilization = result.utilization;
    report.computeCycles = result.computeCycles;
    report.kernelCycles = result.kernelCycles;
    report.blockedCycles = result.blockedCycles;
    report.busCycles = result.busCycles;
    report.watchdogTripped = result.watchdogTripped;
    report.hostAborted = result.hostAborted;
    report.failureReason = result.failureReason;
    report.faultsInjected = result.faultsInjected;
    report.faultRecoveries = result.faultRecoveries;
    report.faultKinds = result.faultKinds;
    report.traceDropped = result.traceDropped;
    // Structured failures (watchdog, deadline, corruption, signal,
    // cycle limit) already dumped the black box inside System; the
    // report just records where it landed.
    if (!report.completed && !config.flightPath.empty())
        report.flightDumpPath = config.flightPath;
    stamp_host(report);
    report.stats = system.stats();
    report.verified = result.completed;
    if (report.verified && !expected.empty()) {
        isa::Addr base = program.arrayAddress(result_array);
        for (std::size_t i = 0; i < expected.size(); ++i) {
            auto got = static_cast<std::int32_t>(system.memory().readWord(
                base + static_cast<isa::Addr>(i) * 4));
            if (got != expected[i]) {
                report.verified = false;
                break;
            }
        }
    }
    if (config.traceConfig.enabled &&
        !config.traceConfig.chromeJsonPath.empty())
        trace::writeChromeTraceFile(config.traceConfig.chromeJsonPath,
                                    system.tracer());
    return report;
}

std::string
RunPolicy::resolvedJournalPath(const std::string &label) const
{
    if (!journalPath.empty())
        return journalPath;
    if (!journalDir.empty())
        return cat(journalDir, "/", sanitizeFileStem(label), ".journal");
    return "";
}

std::vector<RunReport>
runAll(const std::vector<RunSpec> &specs, int jobs,
       const RunPolicy &policy)
{
    unsigned workers = jobs < 1 ? ThreadPool::defaultWorkers()
                                : static_cast<unsigned>(jobs);
    if (workers > 1) {
        // Tracing and parallelism compose as long as no two traced
        // specs write the same file; only a shared path would race.
        std::set<std::string> trace_paths;
        for (const RunSpec &spec : specs) {
            if (!spec.config.traceConfig.enabled ||
                spec.config.traceConfig.chromeJsonPath.empty())
                continue;
            fatalIf(
                !trace_paths.insert(spec.config.traceConfig.chromeJsonPath)
                     .second,
                "two traced specs share the trace file '",
                spec.config.traceConfig.chromeJsonPath,
                "' and would race under a parallel sweep; give each "
                "spec its own path (or run with jobs=1)");
        }
    }

    std::string journal_path =
        policy.resolvedJournalPath(policy.journalLabel);
    SweepJournal journal;
    if (!journal_path.empty()) {
        persist::Status st =
            journal.open(journal_path, policy.journalLabel, specs);
        // A valid journal for a *different* sweep means the caller
        // pointed --resume-dir at stale results; replaying them would
        // be silently wrong, so refuse loudly.
        fatalIf(!st.ok(), "sweep journal '", journal_path,
                "': ", st.toString());
        if (journal.recreated())
            std::cerr << "[journal] " << journal_path
                      << ": corrupt header, starting a fresh journal\n";
        else if (journal.completedCount() > 0)
            std::cerr << "[journal] " << journal_path << ": replaying "
                      << journal.completedCount() << "/" << specs.size()
                      << " completed runs\n";
    }
    int max_attempts = std::max(1, policy.maxAttempts);

    std::vector<RunReport> reports(specs.size());
    parallelFor(specs.size(), workers, [&](std::size_t i) {
        const RunSpec &spec = specs[i];
        panicIf(spec.program == nullptr, "RunSpec without a program");
        if (journal.has(i)) {
            reports[i] = journal.get(i);
            return;
        }
        if (support::shutdownRequested()) {
            // Wind-down: specs not yet started become structured
            // interrupted rows (never journaled - they never ran).
            RunReport report;
            report.pes = spec.pes;
            report.hostAborted = true;
            report.attempts = 0;
            report.failureReason =
                cat("interrupted: ", support::shutdownSignalName(),
                    " received before this run started");
            reports[i] = report;
            return;
        }
        mp::SystemConfig config = spec.config;
        if (policy.deadlineMs > 0)
            config.hostDeadlineMs = policy.deadlineMs;
        if (!policy.flightDir.empty() && config.flightPath.empty()) {
            std::string stem = policy.journalLabel.empty()
                                   ? std::string("run")
                                   : policy.journalLabel;
            // The spec index keeps paths unique even when a sweep
            // varies something other than the PE count (ablation
            // variants, bus partitions).
            config.flightPath =
                cat(policy.flightDir, "/", sanitizeFileStem(stem), "-r",
                    i, "-pe", spec.pes, ".flight.json");
            // Drop a minimal marker before the run starts: a kill -9
            // that lands mid-simulation still leaves a parseable
            // qm.flight.v1 document saying a run began here. A
            // structured failure overwrites it with the full dump.
            obs::writeFlightMarker(config.flightPath, "run-start");
        }
        RunReport report;
        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
            report = runOnce(*spec.program, spec.resultArray,
                             spec.expected, spec.pes, config);
            report.attempts = attempt;
            if (report.completed && report.verified)
                break;
            // Retries exist for host-side transients; once the host
            // itself is shutting down there is nothing to heal.
            if (support::shutdownRequested())
                break;
            if (attempt < max_attempts && policy.backoffMs > 0)
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    static_cast<long>(policy.backoffMs) << (attempt - 1)));
        }
        bool failed = !(report.completed && report.verified);
        bool interrupted = report.hostAborted && support::shutdownRequested();
        // Quarantine = the retry budget existed, was spent, and the
        // spec still failed: the row is set aside as a structured
        // failure instead of poisoning the sweep.
        report.quarantined = failed && !interrupted && max_attempts > 1;
        reports[i] = report;
        // Host-aborted rows are wall-clock artifacts, not results;
        // journaling one would replay a non-deterministic outcome.
        if (journal.isOpen() && !report.hostAborted) {
            persist::Status st = journal.record(i, report);
            if (!st.ok())
                std::cerr << "[journal] " << journal_path
                          << ": append failed (" << st.toString()
                          << "); sweep continues non-resumable\n";
        }
    });
    return reports;
}

std::vector<RunReport>
runAll(const std::vector<RunSpec> &specs, int jobs)
{
    return runAll(specs, jobs, RunPolicy{});
}

std::string
sanitizeFileStem(const std::string &name)
{
    std::string stem;
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
            c == '_' || c == '.')
            stem += c;
        else if (!stem.empty() && stem.back() != '-')
            stem += '-';
    }
    while (!stem.empty() && stem.back() == '-')
        stem.pop_back();
    return stem.empty() ? "bench" : stem;
}

SpeedupSeries
runSpeedupSweep(const std::string &name, const std::string &source,
                const std::string &result_array,
                const std::vector<std::int32_t> &expected,
                const std::vector<int> &pe_counts,
                const occam::CompileOptions &options,
                const mp::SystemConfig &base_config, int jobs,
                const std::string &trace_dir, const RunPolicy &policy)
{
    occam::CompiledProgram program = occam::compileOccam(source, options);
    std::vector<RunSpec> specs;
    specs.reserve(pe_counts.size());
    for (int pes : pe_counts) {
        RunSpec spec;
        spec.program = &program;
        spec.resultArray = result_array;
        spec.expected = expected;
        spec.pes = pes;
        spec.config = base_config;
        if (spec.config.telemetryEvery > 0 &&
            spec.config.telemetryLabel.empty())
            spec.config.telemetryLabel = name;
        if (!trace_dir.empty()) {
            spec.config.traceConfig.enabled = true;
            spec.config.traceConfig.chromeJsonPath =
                cat(trace_dir, "/", sanitizeFileStem(name), "-pe", pes,
                    ".json");
        }
        specs.push_back(std::move(spec));
    }
    SpeedupSeries series;
    series.name = name;
    RunPolicy run_policy = policy;
    if (run_policy.journalLabel.empty())
        run_policy.journalLabel = name;
    series.runs = runAll(specs, jobs, run_policy);
    return series;
}

} // namespace qm::sim
