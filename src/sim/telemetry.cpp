#include "sim/telemetry.hpp"

#include <sstream>

#include "support/json.hpp"

namespace qm::sim {

std::string
telemetryLine(const std::string &label, int pes, std::int64_t cycle,
              const StatSet &stats)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.key("schema").value(kTelemetrySchema);
    json.key("label").value(label);
    json.key("pes").value(pes);
    json.key("cycle").value(cycle);
    json.key("counters").beginObject();
    for (const auto &[name, value] : stats.counterMap())
        json.key(name).value(value);
    json.endObject();
    json.key("scalars").beginObject();
    for (const auto &[name, value] : stats.scalarMap())
        json.key(name).value(value);
    json.endObject();
    json.key("histograms").beginObject();
    for (const auto &[name, h] : stats.histogramMap()) {
        json.key(name).beginObject()
            .key("count").value(h.count())
            .key("sum").value(h.sum())
            .key("min").value(h.min())
            .key("max").value(h.max())
            .key("mean").value(h.mean())
            .key("p50").value(h.percentile(50.0))
            .key("p90").value(h.percentile(90.0))
            .key("p99").value(h.percentile(99.0))
            .endObject();
    }
    json.endObject();
    json.endObject();
    os << "\n";
    return os.str();
}

} // namespace qm::sim
