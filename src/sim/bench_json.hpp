/**
 * @file
 * Machine-readable bench reports: every Chapter-6 bench writes a
 * BENCH_<name>.json next to its stdout tables so the performance
 * trajectory (cycles, utilization, per-phase breakdowns) can be
 * tracked across commits by tooling instead of by eyeballing tables.
 */
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace qm::sim {

/**
 * Write @p series as JSON to BENCH_<bench>.json in the working
 * directory (or to @p path when given). Returns the path written.
 * Throws FatalError when the file cannot be opened.
 *
 * With @p host_time set, runs that measured host-side performance
 * additionally carry host_wall_ms and sim_cycles_per_sec. Off by
 * default: those fields are machine-dependent, and the default
 * document must stay byte-stable for determinism comparisons.
 *
 * With @p host_threads > 1 the document carries a host_threads
 * metadata key recording how many PDES worker threads each simulation
 * ran on (--threads). Simulation results are byte-identical for any
 * value - the key exists so host-speed tooling (bench_compare.py
 * --min-thread-speedup) can verify it is comparing a threaded run
 * against a sequential baseline.
 */
std::string writeBenchJson(const std::string &bench,
                           const std::vector<SpeedupSeries> &series,
                           const std::string &path = "",
                           bool host_time = false,
                           int host_threads = 1);

} // namespace qm::sim
