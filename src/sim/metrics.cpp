#include "sim/metrics.hpp"

#include <fstream>
#include <iostream>

#include "support/diagnostics.hpp"
#include "support/json.hpp"

namespace qm::sim {

namespace {

void
writeHistogram(JsonWriter &json, const Histogram &h)
{
    json.beginObject()
        .key("count").value(h.count())
        .key("sum").value(h.sum())
        .key("min").value(h.min())
        .key("max").value(h.max())
        .key("mean").value(h.mean())
        .key("p50").value(h.percentile(50.0))
        .key("p90").value(h.percentile(90.0))
        .key("p99").value(h.percentile(99.0));
    json.key("buckets").beginArray();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        if (h.bucketCount(i) == 0)
            continue;
        json.beginObject()
            .key("lo").value(Histogram::bucketLow(i))
            .key("hi").value(Histogram::bucketHigh(i))
            .key("count").value(h.bucketCount(i))
            .endObject();
    }
    json.endArray();
    json.endObject();
}

void
writeRun(JsonWriter &json, const RunReport &run)
{
    json.beginObject()
        .key("pes").value(run.pes)
        .key("completed").value(run.completed)
        .key("verified").value(run.verified)
        .key("cycles").value(run.cycles)
        .key("trace_dropped").value(run.traceDropped);
    json.key("counters").beginObject();
    for (const auto &[name, value] : run.stats.counterMap())
        json.key(name).value(value);
    json.endObject();
    json.key("scalars").beginObject();
    for (const auto &[name, value] : run.stats.scalarMap())
        json.key(name).value(value);
    json.endObject();
    json.key("histograms").beginObject();
    for (const auto &[name, hist] : run.stats.histogramMap()) {
        json.key(name);
        writeHistogram(json, hist);
    }
    json.endObject();
    json.endObject();
}

} // namespace

std::string
writeMetricsJson(const std::string &bench,
                 const std::vector<SpeedupSeries> &series,
                 const std::string &path)
{
    std::ofstream file;
    if (path != "-") {
        file.open(path);
        fatalIf(!file, "cannot open metrics file: ", path);
    }
    std::ostream &out = path == "-" ? std::cout : file;

    JsonWriter json(out);
    json.beginObject();
    json.key("schema").value(kMetricsSchema);
    json.key("bench").value(bench);
    json.key("series").beginArray();
    for (const SpeedupSeries &s : series) {
        json.beginObject();
        json.key("name").value(s.name);
        json.key("runs").beginArray();
        for (const RunReport &run : s.runs)
            writeRun(json, run);
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    out << "\n";
    return path;
}

} // namespace qm::sim
