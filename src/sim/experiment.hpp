/**
 * @file
 * Experiment runner for the Chapter 6 simulation study: compiles an
 * OCCAM benchmark, runs it at a given PE count, verifies the result
 * against the reference, and reports the statistics the thesis tables
 * record (instructions, contexts, channel transfers, cycles,
 * throughput ratio, PE utilization).
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mp/system.hpp"
#include "occam/compiler.hpp"
#include "support/stats.hpp"

namespace qm::sim {

/** Statistics of one benchmark run (one thesis table row). */
struct RunReport
{
    int pes = 0;
    bool completed = false;  ///< Run finished before the cycle limit.
    bool verified = false;   ///< Completed AND produced the reference.
    mp::Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t contexts = 0;
    std::uint64_t rendezvous = 0;
    std::uint64_t contextSwitches = 0;
    double utilization = 0.0;

    // Per-phase cycle breakdown (see mp::RunResult).
    mp::Cycle computeCycles = 0;
    mp::Cycle kernelCycles = 0;
    mp::Cycle blockedCycles = 0;
    mp::Cycle busCycles = 0;

    // Degraded-run reporting (see src/fault): a run that fails -
    // watchdog, lost message, detected corruption, or even a kernel
    // panic - still yields a report row instead of aborting the whole
    // sweep. All-default on a healthy fault-free run.
    bool watchdogTripped = false;
    std::string failureReason;  ///< Empty unless the run failed.
    std::uint64_t faultsInjected = 0;
    std::uint64_t faultRecoveries = 0;

    // Recovery reporting (see mp::SystemConfig::recovery): a failed
    // run may be replayed from the last checkpoint up to
    // RecoveryPlan::maxReplays times; `recovered` marks a run that
    // completed only thanks to at least one such replay.
    bool recovered = false;
    int replays = 0;            ///< Checkpoint replays consumed.
    /** Per-kind injected/detected/recovered (FaultKind bit order). */
    std::array<mp::RunResult::FaultKindCounts, fault::kNumFaultKinds>
        faultKinds{};

    /**
     * Events the tracer discarded after its maxEvents cap: non-zero
     * means the exported trace (and anything derived from it) is
     * truncated. Always zero with tracing off.
     */
    std::uint64_t traceDropped = 0;

    // Self-healing runner bookkeeping (see RunPolicy). `attempts` is
    // how many times the spec was driven end to end (1 unless retries
    // were requested and needed); `quarantined` marks a spec that
    // exhausted its retry budget without a verified completion and was
    // set aside as a structured failed row instead of aborting the
    // sweep; `hostAborted` marks a run cut short by the host (deadline
    // or SIGINT/SIGTERM) - such rows are never journaled, because the
    // abort point is wall-clock-dependent, not deterministic;
    // `journalReplayed` marks a row served from a previous attempt's
    // completion journal instead of being re-simulated.
    int attempts = 1;
    bool quarantined = false;
    bool hostAborted = false;
    bool journalReplayed = false;

    /**
     * The run's complete statistics registry (counters, scalars, and
     * the latency/occupancy histograms), copied out of the run's
     * mp::System so the metrics exporter can see past the summary
     * fields above. Empty when the run died before finalizing.
     */
    StatSet stats;

    // Host-side simulator performance: wall-clock time for this run
    // (System construction + run + any checkpoint replays, measured on
    // a steady clock) and the derived simulated-cycles-per-host-second
    // rate. These describe the simulator, not the simulated machine -
    // they are machine-dependent and excluded from every determinism
    // comparison; BENCH JSON only carries them under --host-time.
    double hostWallMs = -1.0;
    double simCyclesPerSec = -1.0;

    /**
     * Buffered live-telemetry stream (qm.telemetry.v1 NDJSON lines,
     * see sim/telemetry.hpp). Runs buffer instead of streaming so a
     * parallel sweep (--jobs) can write every run's lines in spec
     * order after the fact, keeping the stream file byte-identical
     * for any job count. Empty unless telemetryEvery was armed.
     */
    std::string telemetry;

    /**
     * Path of the qm.flight.v1 black-box dump this run wrote, if the
     * run failed with a flight path armed (empty otherwise). Journaled
     * with the row, so a resumed sweep still points at the evidence.
     */
    std::string flightDumpPath;
};

/** One benchmark swept over PE counts. */
struct SpeedupSeries
{
    std::string name;
    std::vector<RunReport> runs;  ///< Indexed by sweep position.

    /** Throughput ratio vs the 1-PE run (thesis Figs 6.8-6.12). */
    double ratio(std::size_t index) const;
};

/**
 * One simulation to execute: a compiled program (shared read-only
 * across runs; the pointee must outlive runAll), the verification
 * reference, and the machine configuration. Each executed spec gets
 * its own mp::System - and with it its own Memory, Tracer, RingBus,
 * MessageCache, and StatSet - so specs are fully isolated from each
 * other and safe to run on concurrent threads.
 */
struct RunSpec
{
    const occam::CompiledProgram *program = nullptr;
    std::string resultArray;
    std::vector<std::int32_t> expected;
    int pes = 1;
    mp::SystemConfig config{};
};

/**
 * Run-level robustness policy for runAll: completion journaling (for
 * crash-safe resumable sweeps), per-run host wall-clock deadlines,
 * and bounded deterministic retry with quarantine. All-default means
 * the historical behavior: no journal, no deadline, one attempt.
 */
struct RunPolicy
{
    /**
     * Completion journal file (see sim::SweepJournal). Empty disables
     * journaling. Rows already journaled by a previous attempt are
     * replayed byte-identically instead of re-simulated; a valid
     * journal for a *different* sweep is refused (fatal), a corrupt
     * one is recreated from scratch with a stderr notice.
     */
    std::string journalPath;

    /**
     * Directory for auto-named journals: sweeps derive
     * <journalDir>/<sanitized-label>.journal when journalPath is
     * empty. Empty disables.
     */
    std::string journalDir;

    /** Human label folded into the journal fingerprint. */
    std::string journalLabel;

    /**
     * Per-attempt host wall-clock budget in milliseconds (0 = none).
     * A run that exceeds it ends as a structured `deadline:` failed
     * row (RunReport::hostAborted) instead of wedging the sweep.
     */
    long deadlineMs = 0;

    /**
     * Total attempts per spec (minimum 1). The simulator is
     * deterministic, so retries exist for *host*-side transients
     * (deadline trips on a loaded machine, resource exhaustion
     * surfacing as fatal rows) - a deterministic simulated failure
     * fails identically every attempt and is quarantined after the
     * budget without having wasted more than maxAttempts runs.
     */
    int maxAttempts = 1;

    /**
     * Base backoff between attempts in milliseconds; attempt k sleeps
     * backoffMs * 2^(k-1) (deterministic exponential schedule, no
     * jitter - there is no thundering herd to avoid, only a host to
     * let recover).
     */
    int backoffMs = 0;

    /**
     * Directory for per-run flight-recorder black boxes. When set,
     * every executed spec gets
     * <flightDir>/<sanitized-label>-pe<N>.flight.json: a minimal
     * "run-start" marker is written before the run (so a kill -9 that
     * lands mid-run still leaves a parseable qm.flight.v1 document),
     * and the run overwrites it with a full dump on any structured
     * failure. Empty disables.
     */
    std::string flightDir;

    /** Journal path for @p label, honoring journalPath > journalDir. */
    std::string resolvedJournalPath(const std::string &label) const;
};

/**
 * Execute every spec across @p jobs worker threads and return the
 * reports in spec order. The sweep grid is a set of independent
 * simulations, so the reports are identical for any job count:
 * jobs <= 1 runs inline on the calling thread (the historical serial
 * behavior), jobs == 0 uses all hardware threads. Tracing composes
 * with parallelism as long as no two traced specs share the same
 * Chrome trace output path (they would race on it); duplicate paths
 * are refused when workers > 1.
 *
 * With a journaling @p policy, finished rows are appended to the
 * completion journal as they complete and previously-journaled rows
 * are replayed without re-simulation, so a sweep killed mid-flight
 * resumes where it left off yet emits byte-identical reports. After
 * a shutdown signal (support::shutdownRequested) remaining specs are
 * returned as structured `interrupted:` rows instead of being run.
 */
std::vector<RunReport> runAll(const std::vector<RunSpec> &specs,
                              int jobs, const RunPolicy &policy);
std::vector<RunReport> runAll(const std::vector<RunSpec> &specs,
                              int jobs = 1);

/** "my bench!" -> "my-bench" (filesystem-safe trace file stem). */
std::string sanitizeFileStem(const std::string &name);

/**
 * Compile @p source once per configuration and run it at every PE
 * count in @p pe_counts, checking @p expected in @p result_array.
 * The independent runs are fanned over @p jobs threads (see runAll);
 * the resulting series is identical for any job count.
 *
 * When @p trace_dir is non-empty, every run records a full event
 * trace and exports it to <trace_dir>/<sanitized-name>-pe<N>.json.
 * The per-run paths are distinct, so this composes with jobs > 1
 * (unlike a single shared trace file).
 */
SpeedupSeries
runSpeedupSweep(const std::string &name, const std::string &source,
                const std::string &result_array,
                const std::vector<std::int32_t> &expected,
                const std::vector<int> &pe_counts,
                const occam::CompileOptions &options = {},
                const mp::SystemConfig &base_config = {},
                int jobs = 1, const std::string &trace_dir = "",
                const RunPolicy &policy = {});

/** Single run helper used by the sweep and the ablation bench. */
RunReport runOnce(const occam::CompiledProgram &program,
                  const std::string &result_array,
                  const std::vector<std::int32_t> &expected, int pes,
                  const mp::SystemConfig &base_config = {});

} // namespace qm::sim
