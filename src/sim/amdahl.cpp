#include "sim/amdahl.hpp"

#include "support/diagnostics.hpp"

namespace qm::sim {

double
amdahlSpeedup(double f, int n)
{
    fatalIf(f < 0.0 || f > 1.0, "parallel fraction must be in [0,1]");
    fatalIf(n < 1, "need at least one PE");
    return 1.0 / ((1.0 - f) + f / n);
}

double
modifiedAmdahlSpeedup(double f, double g, int n)
{
    fatalIf(f < 0.0 || f > 1.0, "parallel fraction must be in [0,1]");
    fatalIf(g < 0.0, "overhead fraction must be non-negative");
    fatalIf(n < 1, "need at least one PE");
    double nn = static_cast<double>(n);
    return (1.0 + g) / ((1.0 - f) + f / nn + g / (nn * nn));
}

} // namespace qm::sim
