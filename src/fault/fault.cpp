#include "fault/fault.hpp"

#include <bit>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "support/cli.hpp"
#include "support/diagnostics.hpp"

namespace qm::fault {

namespace {

/** Stream index of a (single-bit) fault kind. */
int
kindIndex(FaultKind kind)
{
    int index = std::countr_zero(static_cast<unsigned>(kind));
    panicIf(index >= kNumFaultKinds ||
                (static_cast<unsigned>(kind) & (static_cast<unsigned>(kind) - 1u)) != 0,
            "fire() takes exactly one fault kind");
    return index;
}

/** Parse one `kinds=` term ("drop", "all", ...) into a mask. */
unsigned
kindMaskOf(const std::string &term)
{
    if (term == "drop")
        return kBusDrop;
    if (term == "dup")
        return kBusDup;
    if (term == "delay")
        return kBusDelay;
    if (term == "corrupt")
        return kCacheCorrupt;
    if (term == "stall")
        return kPeStall;
    if (term == "pekill")
        return kPeKill;
    if (term == "all")
        return kAllKinds;
    fatal("--faults: unknown fault kind '", term,
          "' (expected drop, dup, delay, corrupt, stall, pekill, or "
          "all)");
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        auto end = text.find(sep, start);
        if (end == std::string::npos)
            end = text.size();
        parts.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return parts;
}

std::uint64_t
parseSeed(const std::string &text)
{
    const char *begin = text.c_str();
    char *end = nullptr;
    errno = 0;
    unsigned long long value = std::strtoull(begin, &end, 0);
    fatalIf(end == begin || *end != '\0' || errno == ERANGE ||
                text[0] == '-',
            "--faults: seed expects a non-negative integer, got '",
            text, "'");
    return value;
}

} // namespace

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case kBusDrop: return "drop";
      case kBusDup: return "dup";
      case kBusDelay: return "delay";
      case kCacheCorrupt: return "corrupt";
      case kPeStall: return "stall";
      case kPeKill: return "pekill";
    }
    return "?";
}

FaultPlan
parseFaultPlan(const std::string &spec)
{
    fatalIf(spec.empty(), "--faults: empty spec");
    FaultPlan plan;
    plan.rate = 0.01;
    plan.kinds = kDefaultKinds;
    for (const std::string &pair : split(spec, ',')) {
        auto eq = pair.find('=');
        fatalIf(eq == std::string::npos || eq == 0,
                "--faults: expected key=value, got '", pair, "'");
        std::string key = pair.substr(0, eq);
        std::string value = pair.substr(eq + 1);
        fatalIf(value.empty(), "--faults: empty value for '", key, "'");
        if (key == "seed") {
            plan.seed = parseSeed(value);
        } else if (key == "rate") {
            const char *begin = value.c_str();
            char *end = nullptr;
            double rate = std::strtod(begin, &end);
            fatalIf(end == begin || *end != '\0' || !(rate > 0.0) ||
                        rate > 1.0,
                    "--faults: rate must be in (0, 1], got '", value,
                    "'");
            plan.rate = rate;
        } else if (key == "kinds") {
            unsigned mask = 0;
            for (const std::string &term : split(value, '+'))
                mask |= kindMaskOf(term);
            plan.kinds = mask;
        } else if (key == "retries") {
            plan.maxRetries = static_cast<int>(
                parseIntArg(value, "--faults retries", 0, 64));
        } else if (key == "backoff") {
            plan.retryBackoff =
                parseIntArg(value, "--faults backoff", 1, 1 << 20);
        } else if (key == "delay") {
            plan.maxDelay =
                parseIntArg(value, "--faults delay", 1, 1 << 20);
        } else if (key == "stall") {
            plan.maxStall =
                parseIntArg(value, "--faults stall", 1, 1 << 20);
        } else if (key == "killat") {
            plan.killAt =
                parseIntArg(value, "--faults killat", 1, 1 << 30);
        } else if (key == "killpe") {
            plan.killPe = static_cast<int>(
                parseIntArg(value, "--faults killpe", 0, 4095));
        } else {
            fatal("--faults: unknown key '", key,
                  "' (expected seed, rate, kinds, retries, backoff, "
                  "delay, stall, killat, or killpe)");
        }
    }
    // The fail-stop kill is addressed by name either way: killat=N
    // implies the kind, and kinds=...+pekill implies a default cycle.
    if (plan.killAt > 0)
        plan.kinds |= kPeKill;
    else if (plan.kinds & kPeKill)
        plan.killAt = 10'000;
    return plan;
}

std::string
toString(const FaultPlan &plan)
{
    std::ostringstream os;
    os << "seed=" << plan.seed << ",rate=" << plan.rate << ",kinds=";
    bool first = true;
    for (int i = 0; i < kNumFaultKinds; ++i) {
        auto kind = static_cast<FaultKind>(1u << i);
        if (!(plan.kinds & kind))
            continue;
        os << (first ? "" : "+") << toString(kind);
        first = false;
    }
    if (first)
        os << "none";
    os << ",retries=" << plan.maxRetries << ",backoff="
       << plan.retryBackoff << ",delay=" << plan.maxDelay << ",stall="
       << plan.maxStall;
    if (plan.kinds & kPeKill) {
        os << ",killat=" << plan.killAt;
        if (plan.killPe >= 0)
            os << ",killpe=" << plan.killPe;
    }
    return os.str();
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan),
      streams_{SplitMix64(0), SplitMix64(0), SplitMix64(0),
               SplitMix64(0), SplitMix64(0)},
      payload_(0)
{
    fatalIf(plan_.rate < 0.0 || plan_.rate > 1.0,
            "fault rate must be in [0, 1]");
    fatalIf(plan_.maxRetries < 0, "fault retries must be >= 0");
    fatalIf(plan_.retryBackoff < 1 || plan_.maxDelay < 1 ||
                plan_.maxStall < 1,
            "fault backoff/delay/stall bounds must be >= 1");
    // Derive an independent sub-seed per stream from the plan seed, so
    // one kind's decision sequence never depends on the others.
    SplitMix64 root(plan_.seed);
    for (auto &stream : streams_)
        stream = SplitMix64(root.next());
    payload_ = SplitMix64(root.next());
}

bool
FaultInjector::fire(FaultKind kind)
{
    if (!(plan_.kinds & kind))
        return false;
    int index = kindIndex(kind);
    panicIf(index >= kNumRandomKinds,
            "fire() takes a stochastic fault kind (pekill is "
            "scheduled by FaultPlan::killAt)");
    // Top 53 bits -> uniform double in [0, 1); exact across platforms.
    double u = static_cast<double>(streams_[static_cast<std::size_t>(
                                       index)].next() >>
                                   11) *
               0x1.0p-53;
    if (u >= plan_.rate)
        return false;
    ++counts_[static_cast<std::size_t>(index)];
    ++injected_;
    return true;
}

Cycle
FaultInjector::delayCycles()
{
    return 1 + static_cast<Cycle>(
                   payload_.below(static_cast<std::uint64_t>(
                       plan_.maxDelay)));
}

Cycle
FaultInjector::stallCycles()
{
    return 1 + static_cast<Cycle>(
                   payload_.below(static_cast<std::uint64_t>(
                       plan_.maxStall)));
}

std::uint32_t
FaultInjector::corruptWord(std::uint32_t value)
{
    return value ^ (1u << payload_.below(32));
}

void
FaultInjector::notePlanned(FaultKind kind)
{
    ++counts_[static_cast<std::size_t>(kindIndex(kind))];
    ++injected_;
}

std::uint64_t
FaultInjector::injectedOf(FaultKind kind) const
{
    return counts_[static_cast<std::size_t>(kindIndex(kind))];
}

} // namespace qm::fault
