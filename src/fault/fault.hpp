/**
 * @file
 * Deterministic fault injection for the message-passing fabric.
 *
 * The thesis evaluates the ring bus, message cache, and kernel trap
 * path only on the happy path; this layer lets every experiment also
 * run them degraded. A FaultPlan (seed + rate + fault-kind mask)
 * drives a FaultInjector whose decisions are drawn from independent
 * per-kind SplitMix64 streams, so a plan reproduces the identical
 * fault schedule on every run, on every platform, independent of how
 * many sweep runs execute concurrently (each mp::System owns its own
 * injector seeded from the plan).
 *
 * Injectable faults:
 *   - BusDrop:      a remote ring-bus transfer is lost; the fabric
 *                   retries with exponential backoff up to a bound,
 *                   after which the message is permanently lost and
 *                   the run ends via the System watchdog.
 *   - BusDup:       a transfer is delivered twice; delivery is
 *                   idempotent, the duplicate only perturbs timing.
 *   - BusDelay:     a transfer arrives late by a bounded extra delay.
 *   - CacheCorrupt: a bit of a message-cache token flips in place;
 *                   detected on receive via a per-token checksum and
 *                   converted into a clean structured run failure.
 *   - PeStall:      a PE wastes stall cycles without retiring an
 *                   instruction (transient hardware hiccup).
 *   - PeKill:       a PE fail-stops at a planned cycle (killat=N);
 *                   scheduled rather than stochastic, so a kill is
 *                   reproducible independent of the rate. Without the
 *                   recovery layer the machine starves and the
 *                   watchdog reports a clean failure; with recovery
 *                   the kernel detects the expired lease and
 *                   re-dispatches the dead PE's contexts.
 *
 * All injection sites are pointer-gated exactly like the tracer: with
 * no plan the fabric pays one predictable branch per site and produces
 * byte-identical results to a build without this layer.
 *
 * RecoveryPlan (opt-in, mp::SystemConfig::recovery) turns detection
 * into survival: end-to-end ack/retransmit on the ring, checksum-heal
 * from the sender's pristine copy, sequence-number dedup, PE-lease
 * fail-stop recovery, and bounded checkpoint replay (see DESIGN.md
 * "Recoverable execution").
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "support/rng.hpp"

namespace qm::fault {

using Cycle = std::int64_t;

/** Fault kinds, usable as a bitmask in FaultPlan::kinds. */
enum FaultKind : unsigned
{
    kBusDrop = 1u << 0,
    kBusDup = 1u << 1,
    kBusDelay = 1u << 2,
    kCacheCorrupt = 1u << 3,
    kPeStall = 1u << 4,
    kPeKill = 1u << 5,
};

constexpr int kNumFaultKinds = 6;

/**
 * Kinds decided stochastically per site. PeKill is scheduled by
 * FaultPlan::killAt instead of drawn, so it has no decision stream
 * (this also keeps the stream seeding - and with it every PR 3 fault
 * schedule - unchanged).
 */
constexpr int kNumRandomKinds = 5;

/** Default mask: the value-preserving kinds (corruption is opt-in). */
constexpr unsigned kDefaultKinds =
    kBusDrop | kBusDup | kBusDelay | kPeStall;

/** Every kind, including flag-gated cache corruption. */
constexpr unsigned kAllKinds = kDefaultKinds | kCacheCorrupt;

/** Short lower-case label ("drop", "dup", "delay", "corrupt", "stall"). */
const char *toString(FaultKind kind);

/**
 * A reproducible fault schedule: everything needed to replay a faulty
 * run byte-for-byte. Threads from sim::RunSpec / occamc --faults down
 * to the emit sites via mp::SystemConfig.
 */
struct FaultPlan
{
    std::uint64_t seed = 0;
    /** Per-decision-site injection probability in (0, 1]. */
    double rate = 0.0;
    /** FaultKind bitmask of enabled faults. */
    unsigned kinds = 0;
    /** Bounded retry attempts after a dropped bus transfer. */
    int maxRetries = 4;
    /** Base retry backoff in cycles; doubles per attempt. */
    Cycle retryBackoff = 8;
    /** Upper bound on an injected message delay, in cycles. */
    Cycle maxDelay = 64;
    /** Upper bound on an injected PE stall, in cycles. */
    Cycle maxStall = 32;
    /** Fail-stop a PE at this cycle (0 = no kill). */
    Cycle killAt = 0;
    /** PE to kill, modulo the PE count; -1 = the last PE. */
    int killPe = -1;

    /**
     * A pekill is scheduled. The kill is timer-driven, not drawn from
     * the decision stream, so both simulation cores (the unit-tick scan
     * and the event calendar) arm it the same way: it fires the first
     * time the next dispatch cycle reaches killAt.
     */
    bool
    killPlanned() const
    {
        return killAt > 0;
    }

    bool
    enabled() const
    {
        return (rate > 0.0 && kinds != 0) ||
               ((kinds & kPeKill) != 0 && killPlanned());
    }
};

/**
 * Opt-in recovery policy layered over a FaultPlan (carried in
 * mp::SystemConfig::recovery). With enabled=false every fabric
 * component behaves exactly as before this layer existed, so PR 3's
 * detect-and-fail semantics (and byte-identical fault-off output) are
 * preserved.
 */
struct RecoveryPlan
{
    bool enabled = false;
    /** End-to-end retransmissions after the link-layer retry bound. */
    int maxResends = 16;
    /** Sender ack timeout before an end-to-end retransmission. */
    Cycle ackTimeout = 64;
    /** PE heartbeat lease; a fail-stop is detected when it expires. */
    Cycle leaseCycles = 256;
    /** Cycles charged for a NACK + pristine-copy resend on a heal. */
    Cycle nackPenalty = 16;
    /** Periodic System::snapshot() interval (0 = boot snapshot only). */
    Cycle checkpointEvery = 0;
    /** Bounded retry-from-checkpoint attempts in sim::runOnce. */
    int maxReplays = 2;
    /** Host-op log bound per run span; overflow forbids span restart. */
    std::size_t maxLogOps = 4096;
    /** Memory undo-log bound per run span (words). */
    std::size_t maxUndoWords = 1u << 18;
};

/**
 * Parse a `--faults` spec: comma-separated key=value pairs.
 *
 *   seed=42,rate=0.05,kinds=drop+dup+delay+corrupt+stall,
 *   retries=4,backoff=8,delay=64,stall=32,killat=10000,killpe=1
 *
 * Every key is optional; `rate` defaults to 0.01 and `kinds` to the
 * value-preserving set (drop+dup+delay+stall). `kinds=all` enables
 * everything including corruption but not the fail-stop kill, which
 * must be asked for by name: `kinds=...+pekill` (killat then defaults
 * to 10000) or `killat=N` (which implies the pekill kind). Throws
 * FatalError on malformed specs (unknown key, unknown kind, rate
 * outside (0, 1], ...).
 */
FaultPlan parseFaultPlan(const std::string &spec);

/** Render a plan back to its canonical spec string. */
std::string toString(const FaultPlan &plan);

/**
 * The seeded decision engine. One instance per mp::System; decisions
 * are drawn from an independent stream per fault kind, in simulation
 * order, which is deterministic for a given plan and configuration.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    const FaultPlan &plan() const { return plan_; }

    /**
     * One decision on @p kind's stream: true with probability
     * plan().rate when the kind is enabled; always false (and no
     * stream advance) when it is masked off.
     */
    bool fire(FaultKind kind);

    /** Injected extra message delay in [1, maxDelay]. */
    Cycle delayCycles();

    /** Injected PE stall in [1, maxStall]. */
    Cycle stallCycles();

    /** Flip one deterministically-chosen bit of @p value. */
    std::uint32_t corruptWord(std::uint32_t value);

    /**
     * Record a scheduled (non-stochastic) fault - the pekill at
     * FaultPlan::killAt - so injected counters cover every kind.
     */
    void notePlanned(FaultKind kind);

    /** Total decisions that fired, and per-kind counts. */
    std::uint64_t injected() const { return injected_; }
    std::uint64_t injectedOf(FaultKind kind) const;

    /**
     * Raw generator + counter state for durable checkpoints. Saving
     * the stream positions at snapshot time is what makes a resumed
     * fault-injected run draw the same decisions an uninterrupted run
     * would from that point on - i.e. byte-identical.
     */
    struct PersistState
    {
        std::array<std::uint64_t, kNumRandomKinds> streams{};
        std::uint64_t payload = 0;
        std::array<std::uint64_t, kNumFaultKinds> counts{};
        std::uint64_t injected = 0;
    };

    PersistState
    persistState() const
    {
        PersistState s;
        for (int i = 0; i < kNumRandomKinds; ++i)
            s.streams[static_cast<std::size_t>(i)] =
                streams_[static_cast<std::size_t>(i)].rawState();
        s.payload = payload_.rawState();
        s.counts = counts_;
        s.injected = injected_;
        return s;
    }

    void
    restorePersistState(const PersistState &s)
    {
        for (int i = 0; i < kNumRandomKinds; ++i)
            streams_[static_cast<std::size_t>(i)].setRawState(
                s.streams[static_cast<std::size_t>(i)]);
        payload_.setRawState(s.payload);
        counts_ = s.counts;
        injected_ = s.injected;
    }

  private:
    FaultPlan plan_;
    /** One decision stream per stochastic kind + one payload stream. */
    std::array<SplitMix64, kNumRandomKinds> streams_;
    SplitMix64 payload_;
    std::array<std::uint64_t, kNumFaultKinds> counts_{};
    std::uint64_t injected_ = 0;
};

} // namespace qm::fault
