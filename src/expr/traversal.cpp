#include "expr/traversal.hpp"

#include <deque>
#include <functional>

#include "support/diagnostics.hpp"

namespace qm::expr {

std::vector<int>
levelOrder(const ParseTree &tree)
{
    if (tree.root() < 0)
        return {};

    // BFS collects each level left-to-right; emit deepest level first.
    std::vector<std::vector<int>> levels;
    std::deque<std::pair<int, int>> frontier{{tree.root(), 0}};
    while (!frontier.empty()) {
        auto [id, depth] = frontier.front();
        frontier.pop_front();
        if (static_cast<int>(levels.size()) <= depth)
            levels.resize(static_cast<size_t>(depth) + 1);
        levels[static_cast<size_t>(depth)].push_back(id);
        const Node &n = tree.node(id);
        if (n.left >= 0)
            frontier.emplace_back(n.left, depth + 1);
        if (n.right >= 0)
            frontier.emplace_back(n.right, depth + 1);
    }

    std::vector<int> order;
    order.reserve(static_cast<size_t>(tree.size()));
    for (auto it = levels.rbegin(); it != levels.rend(); ++it)
        for (int id : *it)
            order.push_back(id);
    return order;
}

std::vector<int>
postOrder(const ParseTree &tree)
{
    std::vector<int> order;
    order.reserve(static_cast<size_t>(tree.size()));
    std::function<void(int)> walk = [&](int id) {
        if (id < 0)
            return;
        walk(tree.node(id).left);
        walk(tree.node(id).right);
        order.push_back(id);
    };
    walk(tree.root());
    return order;
}

std::vector<int>
preOrder(const ParseTree &tree)
{
    std::vector<int> order;
    order.reserve(static_cast<size_t>(tree.size()));
    std::function<void(int)> walk = [&](int id) {
        if (id < 0)
            return;
        order.push_back(id);
        walk(tree.node(id).left);
        walk(tree.node(id).right);
    };
    walk(tree.root());
    return order;
}

} // namespace qm::expr
