#include "expr/enumerate.hpp"

#include "support/diagnostics.hpp"

namespace qm::expr {

namespace {

/** Recursive shape: node with optional left/right sub-shapes. */
struct Shape
{
    int left = -1;   ///< Index into the shape pool, -1 if absent.
    int right = -1;
};

/** Pool-based shape builder so enumeration can share subtree lists. */
class ShapeEnumerator
{
  public:
    /** All shapes with n nodes, as indices of pool roots. */
    const std::vector<int> &
    shapes(int n)
    {
        panicIf(n < 1, "tree must have at least one node");
        while (static_cast<int>(byCount.size()) <= n)
            grow();
        return byCount[static_cast<size_t>(n)];
    }

    const Shape &at(int id) const { return pool[static_cast<size_t>(id)]; }

  private:
    void
    grow()
    {
        int n = static_cast<int>(byCount.size());
        std::vector<int> result;
        if (n == 0) {
            byCount.push_back(std::move(result));
            return;
        }
        if (n == 1) {
            pool.push_back(Shape{-1, -1});
            result.push_back(static_cast<int>(pool.size()) - 1);
            byCount.push_back(std::move(result));
            return;
        }
        // Unary root over every (n-1)-node shape.
        for (int child : byCount[static_cast<size_t>(n - 1)]) {
            pool.push_back(Shape{child, -1});
            result.push_back(static_cast<int>(pool.size()) - 1);
        }
        // Binary root over every split of the remaining n-1 nodes.
        for (int i = 1; i <= n - 2; ++i) {
            for (int l : byCount[static_cast<size_t>(i)]) {
                for (int r : byCount[static_cast<size_t>(n - 1 - i)]) {
                    pool.push_back(Shape{l, r});
                    result.push_back(static_cast<int>(pool.size()) - 1);
                }
            }
        }
        byCount.push_back(std::move(result));
    }

    std::vector<Shape> pool;
    std::vector<std::vector<int>> byCount;
};

int
materialize(const ShapeEnumerator &shapes, int shapeId, ParseTree &tree,
            int &leafCounter)
{
    const Shape &s = shapes.at(shapeId);
    if (s.left < 0 && s.right < 0)
        return tree.addLeaf("x" + std::to_string(leafCounter++));
    if (s.right < 0) {
        int child = materialize(shapes, s.left, tree, leafCounter);
        return tree.addUnary("neg", child);
    }
    int left = materialize(shapes, s.left, tree, leafCounter);
    int right = materialize(shapes, s.right, tree, leafCounter);
    return tree.addBinary("+", left, right);
}

} // namespace

void
forEachTree(int node_count,
            const std::function<void(const ParseTree &)> &visit)
{
    ShapeEnumerator shapes;
    for (int shapeId : shapes.shapes(node_count)) {
        ParseTree tree;
        int leaves = 0;
        int root = materialize(shapes, shapeId, tree, leaves);
        tree.setRoot(root);
        visit(tree);
    }
}

std::uint64_t
treeCount(int node_count)
{
    std::uint64_t count = 0;
    forEachTree(node_count, [&](const ParseTree &) { ++count; });
    return count;
}

} // namespace qm::expr
