/**
 * @file
 * Level-order conjugate tree construction (thesis Figure 3.3).
 *
 * The conjugate tree δ(T) is a tree of right-only binary trees with the
 * property that an in-order traversal of δ(T) equals the level-order
 * traversal Π(T). BuildConjugate runs in O(|N(T)|) time and space, giving
 * an efficient way to produce queue-machine instruction sequences.
 */
#pragma once

#include <vector>

#include "expr/parse_tree.hpp"

namespace qm::expr {

/**
 * The level-order conjugate tree. Nodes reference the parse-tree node
 * they stand for; node 0 is the sentinel root (parseNode == -1).
 */
class ConjugateTree
{
  public:
    struct ConjNode
    {
        int parseNode = -1;  ///< Handle into the source parse tree.
        int left = -1;       ///< Head of the next (deeper) level.
        int right = -1;      ///< Next node within the same level.
    };

    /** Run BuildConjugate (Fig 3.3) on @p tree. */
    static ConjugateTree build(const ParseTree &tree);

    /**
     * In-order traversal of the conjugate tree, skipping the sentinel.
     * By the thesis lemma this equals levelOrder() on the source tree.
     */
    std::vector<int> inOrder() const;

    int size() const { return static_cast<int>(nodes.size()); }
    const ConjNode &node(int id) const
    {
        return nodes[static_cast<size_t>(id)];
    }

  private:
    void buildRec(const ParseTree &tree, int parseId, int conjCursor);
    int insertBelow(const ParseTree &tree, int parseId, int conjCursor);

    std::vector<ConjNode> nodes;
};

/** Convenience: level-order traversal computed via the conjugate tree. */
std::vector<int> levelOrderViaConjugate(const ParseTree &tree);

} // namespace qm::expr
