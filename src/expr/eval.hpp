/**
 * @file
 * Simple queue-machine and stack-machine evaluators (thesis 3.2-3.3).
 *
 * Both machines execute an instruction sequence that is a permutation of
 * the parse-tree nodes: leaves are fetch instructions, interior nodes are
 * ALU instructions. The queue machine takes operands from the front of a
 * FIFO and appends results at the rear; the stack machine pops operands
 * from and pushes results onto a stack.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "expr/parse_tree.hpp"

namespace qm::expr {

/** Leaf-name -> value bindings. Unbound numeric labels parse as literals. */
using Env = std::map<std::string, std::int64_t>;

/** Value of leaf @p label under @p env (literal if numeric). */
std::int64_t leafValue(const std::string &label, const Env &env);

/** Apply unary operator @p label ("neg"). */
std::int64_t applyUnary(const std::string &label, std::int64_t x);

/** Apply binary operator @p label ("+","-","*","/"). */
std::int64_t applyBinary(const std::string &label, std::int64_t x,
                         std::int64_t y);

/**
 * Evaluate @p sequence on a simple queue machine.
 *
 * Fails (panics) if an instruction finds too few operands at the queue
 * front or if the final state is not a single queued result — i.e. if the
 * sequence is not a valid queue-machine program for the tree.
 */
std::int64_t evalQueue(const ParseTree &tree, const std::vector<int> &sequence,
                       const Env &env);

/** Evaluate @p sequence on a stack machine (post-order sequences). */
std::int64_t evalStack(const ParseTree &tree, const std::vector<int> &sequence,
                       const Env &env);

/** Reference recursive evaluation of the tree itself. */
std::int64_t evalTree(const ParseTree &tree, const Env &env);

/**
 * Render an instruction sequence as assembly-like text lines
 * ("fetch a", "mul", ...), as in thesis Table 3.1.
 */
std::vector<std::string> renderSequence(const ParseTree &tree,
                                        const std::vector<int> &sequence);

} // namespace qm::expr
