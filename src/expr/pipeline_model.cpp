#include "expr/pipeline_model.hpp"

#include <algorithm>

#include "expr/enumerate.hpp"
#include "expr/traversal.hpp"
#include "support/diagnostics.hpp"

namespace qm::expr {

namespace {

/**
 * Shared issue simulator. @p serialize_alu models the stack machine's
 * requirement that each ALU operation wait for the previous one to
 * retire its result to the stack top.
 */
long
simulate(const ParseTree &tree, const std::vector<int> &sequence,
         const PipelineConfig &config, bool serialize_alu)
{
    panicIf(config.aluStages < 1, "pipeline needs at least one stage");
    std::vector<long> done(static_cast<size_t>(tree.size()), 0);
    long next_issue = 0;  // One instruction issued per cycle at most.
    long alu_idle = 0;    // Cycle at which every issued ALU op is done.
    long finish = 0;

    for (int id : sequence) {
        const Node &n = tree.node(id);
        long t = next_issue;
        if (n.kind == OpKind::Leaf) {
            if (!config.overlappedFetch)
                t = std::max(t, alu_idle);
            done[static_cast<size_t>(id)] = t + 1;
        } else {
            long ready = done[static_cast<size_t>(n.left)];
            if (n.kind == OpKind::Binary)
                ready = std::max(ready, done[static_cast<size_t>(n.right)]);
            t = std::max(t, ready);
            if (serialize_alu)
                t = std::max(t, alu_idle);
            done[static_cast<size_t>(id)] = t + config.aluStages;
            alu_idle = std::max(alu_idle, done[static_cast<size_t>(id)]);
        }
        finish = std::max(finish, done[static_cast<size_t>(id)]);
        next_issue = t + 1;
    }
    return finish;
}

} // namespace

long
queueCycles(const ParseTree &tree, const std::vector<int> &sequence,
            const PipelineConfig &config)
{
    return simulate(tree, sequence, config, /*serialize_alu=*/false);
}

long
stackCycles(const ParseTree &tree, const std::vector<int> &sequence,
            const PipelineConfig &config)
{
    return simulate(tree, sequence, config, /*serialize_alu=*/true);
}

SpeedupResult
averageSpeedup(int node_count, const PipelineConfig &config)
{
    SpeedupResult result;
    double sum = 0.0;
    forEachTree(node_count, [&](const ParseTree &tree) {
        long queue = queueCycles(tree, levelOrder(tree), config);
        long stack = stackCycles(tree, postOrder(tree), config);
        double ratio = static_cast<double>(stack) /
                       static_cast<double>(queue);
        if (result.trees == 0) {
            result.minSpeedup = ratio;
            result.maxSpeedup = ratio;
        } else {
            result.minSpeedup = std::min(result.minSpeedup, ratio);
            result.maxSpeedup = std::max(result.maxSpeedup, ratio);
        }
        sum += ratio;
        ++result.trees;
    });
    result.meanSpeedup =
        result.trees ? sum / static_cast<double>(result.trees) : 0.0;
    return result;
}

} // namespace qm::expr
