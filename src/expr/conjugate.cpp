#include "expr/conjugate.hpp"

#include <functional>

#include "support/diagnostics.hpp"

namespace qm::expr {

ConjugateTree
ConjugateTree::build(const ParseTree &tree)
{
    ConjugateTree conj;
    conj.nodes.push_back(ConjNode{});  // sentinel, level -1
    if (tree.root() >= 0)
        conj.buildRec(tree, tree.root(), 0);
    return conj;
}

/**
 * Insert @p parseId at the head of the level list hanging off
 * @p conjCursor's left pointer, per the two cases of Fig 3.3. The head
 * node keeps its identity (so the cursor for the next level is stable);
 * its contents are swapped into a freshly spliced second node.
 */
int
ConjugateTree::insertBelow(const ParseTree &, int parseId, int conjCursor)
{
    ConjNode &cursor = nodes[static_cast<size_t>(conjCursor)];
    if (cursor.left < 0) {
        // Case 1: first node on this level.
        nodes.push_back(ConjNode{parseId, -1, -1});
        int fresh = static_cast<int>(nodes.size()) - 1;
        nodes[static_cast<size_t>(conjCursor)].left = fresh;
        return fresh;
    }
    // Case 2: push-front. The level head keeps its identity; the old head
    // contents move into a new node spliced just after it.
    int head = cursor.left;
    nodes.push_back(ConjNode{nodes[static_cast<size_t>(head)].parseNode,
                             -1,
                             nodes[static_cast<size_t>(head)].right});
    int moved = static_cast<int>(nodes.size()) - 1;
    nodes[static_cast<size_t>(head)].right = moved;
    nodes[static_cast<size_t>(head)].parseNode = parseId;
    return head;
}

void
ConjugateTree::buildRec(const ParseTree &tree, int parseId, int conjCursor)
{
    // Reverse post-order walk: visit node, then right subtree, then left,
    // inserting each visited node at the head of its level's list.
    int levelHead = insertBelow(tree, parseId, conjCursor);
    const Node &n = tree.node(parseId);
    if (n.right >= 0)
        buildRec(tree, n.right, levelHead);
    if (n.left >= 0)
        buildRec(tree, n.left, levelHead);
}

std::vector<int>
ConjugateTree::inOrder() const
{
    std::vector<int> order;
    std::function<void(int)> walk = [&](int id) {
        if (id < 0)
            return;
        walk(nodes[static_cast<size_t>(id)].left);
        order.push_back(nodes[static_cast<size_t>(id)].parseNode);
        walk(nodes[static_cast<size_t>(id)].right);
    };
    // Skip the sentinel itself: traverse only its left subtree.
    walk(nodes[0].left);
    return order;
}

std::vector<int>
levelOrderViaConjugate(const ParseTree &tree)
{
    return ConjugateTree::build(tree).inOrder();
}

} // namespace qm::expr
