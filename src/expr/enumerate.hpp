/**
 * @file
 * Exhaustive enumeration of binary expression parse trees (thesis 3.4).
 *
 * A parse tree with n nodes has leaves (no children), unary nodes (left
 * child only), and binary nodes (both children); these are the
 * unary-binary (Motzkin) trees. The thesis enumerates all trees of a
 * given size to average the pipelined-ALU speed-up over every shape.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "expr/parse_tree.hpp"

namespace qm::expr {

/**
 * Invoke @p visit on every distinct parse-tree shape with exactly
 * @p node_count nodes. Unary nodes are labelled "neg", binary nodes "+",
 * and leaves "x<k>" numbered in pre-order.
 */
void forEachTree(int node_count,
                 const std::function<void(const ParseTree &)> &visit);

/** Number of distinct shapes with @p node_count nodes (Motzkin number). */
std::uint64_t treeCount(int node_count);

} // namespace qm::expr
