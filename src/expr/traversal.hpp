/**
 * @file
 * Parse-tree traversals (thesis section 3.3).
 *
 * The level-order traversal Π(T) lists nodes from the deepest level to the
 * root, left-to-right within each level; evaluating it on a simple queue
 * machine computes the expression. The post-order traversal is the classic
 * stack-machine sequence used for comparison.
 */
#pragma once

#include <vector>

#include "expr/parse_tree.hpp"

namespace qm::expr {

/**
 * Level-order traversal Π(T): nodes ordered by decreasing level, then
 * left-to-right within a level. Computed directly (BFS by level); the
 * conjugate-tree route in conjugate.hpp must agree with this.
 */
std::vector<int> levelOrder(const ParseTree &tree);

/** Post-order traversal (the stack-machine instruction sequence). */
std::vector<int> postOrder(const ParseTree &tree);

/** Pre-order traversal (root, left, right). */
std::vector<int> preOrder(const ParseTree &tree);

} // namespace qm::expr
