/**
 * @file
 * Binary expression parse trees (thesis section 3.3).
 *
 * A parse tree node is a nullary operator (a leaf: variable or literal),
 * a unary operator (left child only), or a binary operator (both
 * children). Trees are stored in an index-based arena so traversals and
 * the conjugate-tree construction can use plain ints as node handles.
 */
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qm::expr {

/** Arity class of a parse-tree node (O0, O1, O2 in the thesis). */
enum class OpKind { Leaf, Unary, Binary };

/** One node of a binary expression parse tree. */
struct Node
{
    OpKind kind = OpKind::Leaf;
    /** Operator symbol ("+", "neg", ...) or leaf name ("a", "42"). */
    std::string label;
    int left = -1;   ///< Arena index of the left child, -1 if none.
    int right = -1;  ///< Arena index of the right child, -1 if none.
};

/**
 * A binary expression parse tree held in an arena.
 *
 * Node handles are indices into the arena; the root is root().
 */
class ParseTree
{
  public:
    /** Append a leaf node; returns its handle. */
    int addLeaf(std::string label);

    /** Append a unary node over @p child; returns its handle. */
    int addUnary(std::string label, int child);

    /** Append a binary node over @p left and @p right; returns handle. */
    int addBinary(std::string label, int left, int right);

    /** Set the root node handle. */
    void setRoot(int node) { root_ = node; }

    int root() const { return root_; }
    int size() const { return static_cast<int>(nodes.size()); }
    const Node &node(int id) const { return nodes[static_cast<size_t>(id)]; }
    bool empty() const { return nodes.empty(); }

    /** Arity of node @p id (0, 1, or 2). */
    int arity(int id) const;

    /** Depth of node @p id below the root (root is level 0). */
    int level(int id) const;

    /** Number of leaf nodes. */
    int leafCount() const;

    /** Height: maximum level over all nodes. */
    int height() const;

    /**
     * Parse an infix expression into a tree.
     *
     * Grammar: expr := term (('+'|'-') term)*;
     *          term := factor (('*'|'/') factor)*;
     *          factor := '-' factor | IDENT | NUMBER | '(' expr ')'.
     * Unary minus becomes a "neg" node. Throws FatalError on bad input.
     */
    static ParseTree parse(std::string_view text);

    /** Render the tree as a parenthesized infix string (for debugging). */
    std::string toString() const;

  private:
    std::string toStringRec(int id) const;

    std::vector<Node> nodes;
    int root_ = -1;
};

} // namespace qm::expr
