/**
 * @file
 * Pipelined-ALU cycle cost model (thesis section 3.4, Tables 3.2/3.3).
 *
 * Both machines issue at most one instruction per cycle. An ALU operation
 * entering an S-stage pipeline at cycle T completes at T+S; a fetch takes
 * one cycle. The machines differ in what can overlap:
 *
 *  - Queue machine: an ALU op may issue as soon as its operands (the
 *    results of its children) are complete; independent ops pipeline.
 *  - Stack machine: an ALU op must additionally wait for the previous ALU
 *    op to complete, because its results must be pushed back onto the top
 *    of the stack before they can become the operands of the next
 *    operation (thesis Fig 3.4 argument) - the stack derives no benefit
 *    from ALU pipelining.
 *
 * Fetch issue discipline (thesis cases):
 *  - Case 1 (non-overlapped fetch/execute): a fetch cannot issue until
 *    the ALU is idle, on either machine.
 *  - Case 2 (overlapped): a fetch issues immediately and takes one cycle.
 */
#pragma once

#include <vector>

#include "expr/parse_tree.hpp"

namespace qm::expr {

/** Timing parameters for the cost model. */
struct PipelineConfig
{
    int aluStages = 2;           ///< Number of ALU pipeline stages (>= 1).
    bool overlappedFetch = false;///< false = case 1, true = case 2.
};

/**
 * Cycles to evaluate @p sequence on the queue machine (data-dependence
 * limited issue).
 */
long queueCycles(const ParseTree &tree, const std::vector<int> &sequence,
                 const PipelineConfig &config);

/**
 * Cycles to evaluate @p sequence on the stack machine (ALU operations
 * fully serialized).
 */
long stackCycles(const ParseTree &tree, const std::vector<int> &sequence,
                 const PipelineConfig &config);

/** Aggregate speed-up statistics over all trees of one size. */
struct SpeedupResult
{
    std::uint64_t trees = 0;       ///< Number of tree shapes evaluated.
    double meanSpeedup = 0.0;      ///< Mean of stack/queue cycle ratios.
    double minSpeedup = 0.0;       ///< Worst-case ratio over all shapes.
    double maxSpeedup = 0.0;       ///< Best-case ratio over all shapes.
};

/**
 * Enumerate every parse tree with @p node_count nodes, evaluate the
 * stack machine on its post-order sequence and the queue machine on its
 * level-order sequence, and average stack/queue cycle ratios
 * (thesis Tables 3.2 and 3.3).
 */
SpeedupResult averageSpeedup(int node_count, const PipelineConfig &config);

} // namespace qm::expr
