#include "expr/eval.hpp"

#include <cctype>
#include <deque>
#include <functional>

#include "support/diagnostics.hpp"

namespace qm::expr {

std::int64_t
leafValue(const std::string &label, const Env &env)
{
    auto it = env.find(label);
    if (it != env.end())
        return it->second;
    fatalIf(label.empty() ||
                !std::isdigit(static_cast<unsigned char>(label[0])),
            "unbound variable '", label, "'");
    return std::stoll(label);
}

std::int64_t
applyUnary(const std::string &label, std::int64_t x)
{
    if (label == "neg" || label == "-")
        return -x;
    fatal("unknown unary operator '", label, "'");
}

std::int64_t
applyBinary(const std::string &label, std::int64_t x, std::int64_t y)
{
    if (label == "+")
        return x + y;
    if (label == "-")
        return x - y;
    if (label == "*")
        return x * y;
    if (label == "/") {
        fatalIf(y == 0, "division by zero");
        return x / y;
    }
    fatal("unknown binary operator '", label, "'");
}

std::int64_t
evalQueue(const ParseTree &tree, const std::vector<int> &sequence,
          const Env &env)
{
    std::deque<std::int64_t> queue;
    for (int id : sequence) {
        const Node &n = tree.node(id);
        switch (n.kind) {
          case OpKind::Leaf:
            queue.push_back(leafValue(n.label, env));
            break;
          case OpKind::Unary: {
            panicIf(queue.empty(), "queue underflow at unary op");
            std::int64_t x = queue.front();
            queue.pop_front();
            queue.push_back(applyUnary(n.label, x));
            break;
          }
          case OpKind::Binary: {
            panicIf(queue.size() < 2, "queue underflow at binary op");
            std::int64_t x = queue.front();
            queue.pop_front();
            std::int64_t y = queue.front();
            queue.pop_front();
            queue.push_back(applyBinary(n.label, x, y));
            break;
          }
        }
    }
    panicIf(queue.size() != 1,
            "queue-machine evaluation left ", queue.size(),
            " values (expected 1)");
    return queue.front();
}

std::int64_t
evalStack(const ParseTree &tree, const std::vector<int> &sequence,
          const Env &env)
{
    std::vector<std::int64_t> stack;
    for (int id : sequence) {
        const Node &n = tree.node(id);
        switch (n.kind) {
          case OpKind::Leaf:
            stack.push_back(leafValue(n.label, env));
            break;
          case OpKind::Unary: {
            panicIf(stack.empty(), "stack underflow at unary op");
            std::int64_t x = stack.back();
            stack.pop_back();
            stack.push_back(applyUnary(n.label, x));
            break;
          }
          case OpKind::Binary: {
            panicIf(stack.size() < 2, "stack underflow at binary op");
            std::int64_t y = stack.back();
            stack.pop_back();
            std::int64_t x = stack.back();
            stack.pop_back();
            stack.push_back(applyBinary(n.label, x, y));
            break;
          }
        }
    }
    panicIf(stack.size() != 1,
            "stack-machine evaluation left ", stack.size(),
            " values (expected 1)");
    return stack.back();
}

std::int64_t
evalTree(const ParseTree &tree, const Env &env)
{
    std::function<std::int64_t(int)> walk = [&](int id) -> std::int64_t {
        const Node &n = tree.node(id);
        switch (n.kind) {
          case OpKind::Leaf:
            return leafValue(n.label, env);
          case OpKind::Unary:
            return applyUnary(n.label, walk(n.left));
          case OpKind::Binary:
            return applyBinary(n.label, walk(n.left), walk(n.right));
        }
        panic("unreachable op kind");
    };
    return walk(tree.root());
}

std::vector<std::string>
renderSequence(const ParseTree &tree, const std::vector<int> &sequence)
{
    static const std::map<std::string, std::string> mnemonics = {
        {"+", "add"}, {"-", "sub"}, {"*", "mul"}, {"/", "div"},
        {"neg", "neg"},
    };
    std::vector<std::string> lines;
    lines.reserve(sequence.size());
    for (int id : sequence) {
        const Node &n = tree.node(id);
        if (n.kind == OpKind::Leaf) {
            lines.push_back("fetch " + n.label);
        } else {
            auto it = mnemonics.find(n.label);
            lines.push_back(it == mnemonics.end() ? n.label : it->second);
        }
    }
    return lines;
}

} // namespace qm::expr
