#include "expr/parse_tree.hpp"

#include <cctype>
#include <functional>

#include "support/diagnostics.hpp"

namespace qm::expr {

int
ParseTree::addLeaf(std::string label)
{
    nodes.push_back(Node{OpKind::Leaf, std::move(label), -1, -1});
    return static_cast<int>(nodes.size()) - 1;
}

int
ParseTree::addUnary(std::string label, int child)
{
    panicIf(child < 0 || child >= size(), "bad unary child handle");
    nodes.push_back(Node{OpKind::Unary, std::move(label), child, -1});
    return static_cast<int>(nodes.size()) - 1;
}

int
ParseTree::addBinary(std::string label, int left, int right)
{
    panicIf(left < 0 || left >= size() || right < 0 || right >= size(),
            "bad binary child handle");
    nodes.push_back(Node{OpKind::Binary, std::move(label), left, right});
    return static_cast<int>(nodes.size()) - 1;
}

int
ParseTree::arity(int id) const
{
    switch (node(id).kind) {
      case OpKind::Leaf: return 0;
      case OpKind::Unary: return 1;
      case OpKind::Binary: return 2;
    }
    panic("unreachable op kind");
}

int
ParseTree::level(int id) const
{
    // Walk down from the root looking for the node; trees are small, so
    // the O(n) search per query is fine for the theory experiments.
    int result = -1;
    std::function<void(int, int)> walk = [&](int cur, int depth) {
        if (cur < 0)
            return;
        if (cur == id) {
            result = depth;
            return;
        }
        walk(node(cur).left, depth + 1);
        walk(node(cur).right, depth + 1);
    };
    walk(root_, 0);
    panicIf(result < 0, "node ", id, " not reachable from root");
    return result;
}

int
ParseTree::leafCount() const
{
    int count = 0;
    for (const Node &n : nodes)
        if (n.kind == OpKind::Leaf)
            ++count;
    return count;
}

int
ParseTree::height() const
{
    std::function<int(int)> walk = [&](int cur) -> int {
        if (cur < 0)
            return -1;
        int hl = walk(node(cur).left);
        int hr = walk(node(cur).right);
        return 1 + std::max(hl, hr);
    };
    return walk(root_);
}

namespace {

/** Tiny recursive-descent parser for infix expressions. */
class ExprParser
{
  public:
    ExprParser(std::string_view text, ParseTree &out)
        : src(text), tree(out)
    {
    }

    int
    parseExpr()
    {
        int lhs = parseTerm();
        for (;;) {
            skipSpace();
            if (peek() == '+' || peek() == '-') {
                char op = take();
                int rhs = parseTerm();
                lhs = tree.addBinary(std::string(1, op), lhs, rhs);
            } else {
                return lhs;
            }
        }
    }

    void
    expectEnd()
    {
        skipSpace();
        fatalIf(pos != src.size(),
                "trailing characters in expression at offset ", pos);
    }

  private:
    int
    parseTerm()
    {
        int lhs = parseFactor();
        for (;;) {
            skipSpace();
            if (peek() == '*' || peek() == '/') {
                char op = take();
                int rhs = parseFactor();
                lhs = tree.addBinary(std::string(1, op), lhs, rhs);
            } else {
                return lhs;
            }
        }
    }

    int
    parseFactor()
    {
        skipSpace();
        char c = peek();
        if (c == '-') {
            take();
            return tree.addUnary("neg", parseFactor());
        }
        if (c == '(') {
            take();
            int inner = parseExpr();
            skipSpace();
            fatalIf(peek() != ')', "expected ')' at offset ", pos);
            take();
            return inner;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string name;
            while (pos < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[pos])) ||
                    src[pos] == '_'))
                name += src[pos++];
            return tree.addLeaf(std::move(name));
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::string digits;
            while (pos < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[pos])))
                digits += src[pos++];
            return tree.addLeaf(std::move(digits));
        }
        fatal("unexpected character '", c, "' at offset ", pos);
    }

    char peek() const { return pos < src.size() ? src[pos] : '\0'; }
    char take() { return src[pos++]; }

    void
    skipSpace()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos])))
            ++pos;
    }

    std::string_view src;
    ParseTree &tree;
    std::size_t pos = 0;
};

} // namespace

ParseTree
ParseTree::parse(std::string_view text)
{
    ParseTree tree;
    ExprParser parser(text, tree);
    int root = parser.parseExpr();
    parser.expectEnd();
    tree.setRoot(root);
    return tree;
}

std::string
ParseTree::toString() const
{
    return root_ < 0 ? std::string() : toStringRec(root_);
}

std::string
ParseTree::toStringRec(int id) const
{
    const Node &n = node(id);
    switch (n.kind) {
      case OpKind::Leaf:
        return n.label;
      case OpKind::Unary:
        return "(" + n.label + " " + toStringRec(n.left) + ")";
      case OpKind::Binary:
        return "(" + toStringRec(n.left) + " " + n.label + " " +
               toStringRec(n.right) + ")";
    }
    panic("unreachable op kind");
}

} // namespace qm::expr
