#include "persist/io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "support/format.hpp"

namespace qm::persist {

const char *
errCodeName(ErrCode code)
{
    switch (code) {
    case ErrCode::None: return "ok";
    case ErrCode::Io: return "io";
    case ErrCode::BadMagic: return "bad-magic";
    case ErrCode::BadVersion: return "bad-version";
    case ErrCode::Truncated: return "truncated";
    case ErrCode::BadChecksum: return "bad-checksum";
    case ErrCode::BadFormat: return "bad-format";
    case ErrCode::Mismatch: return "mismatch";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return cat(errCodeName(code), ": ", message);
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected), table generated on first use.
// ---------------------------------------------------------------------------

namespace {

const std::uint32_t *
crcTable()
{
    static std::uint32_t table[256];
    static bool ready = [] {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        return true;
    }();
    (void)ready;
    return table;
}

} // namespace

std::uint32_t
crc32Update(std::uint32_t seed, const void *data, std::size_t size)
{
    const std::uint32_t *table = crcTable();
    const std::uint8_t *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::uint32_t
crc32(const void *data, std::size_t size)
{
    return crc32Update(0, data, size);
}

// ---------------------------------------------------------------------------
// Encoder / Decoder.
// ---------------------------------------------------------------------------

void
Encoder::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Encoder::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Encoder::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Encoder::str(const std::string &v)
{
    blob(v.data(), v.size());
}

void
Encoder::blob(const void *data, std::size_t size)
{
    u64(size);
    const std::uint8_t *bytes = static_cast<const std::uint8_t *>(data);
    bytes_.insert(bytes_.end(), bytes, bytes + size);
}

bool
Decoder::take(std::size_t n, const std::uint8_t **out)
{
    if (failed_)
        return false;
    if (n > size_ - pos_) {
        fail(cat("need ", n, " bytes at offset ", pos_, ", have ",
                 size_ - pos_));
        return false;
    }
    *out = data_ + pos_;
    pos_ += n;
    return true;
}

void
Decoder::fail(const std::string &why)
{
    if (!failed_) {
        failed_ = true;
        error_ = why;
    }
}

std::uint8_t
Decoder::u8()
{
    const std::uint8_t *p = nullptr;
    if (!take(1, &p))
        return 0;
    return p[0];
}

std::uint32_t
Decoder::u32()
{
    const std::uint8_t *p = nullptr;
    if (!take(4, &p))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
Decoder::u64()
{
    const std::uint8_t *p = nullptr;
    if (!take(8, &p))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

double
Decoder::f64()
{
    std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::size_t
Decoder::length(std::uint64_t limit)
{
    std::uint64_t n = u64();
    if (!failed_ && n > limit)
        fail(cat("length ", n, " exceeds limit ", limit));
    return failed_ ? 0 : static_cast<std::size_t>(n);
}

std::string
Decoder::str()
{
    std::size_t n = length(remaining());
    const std::uint8_t *p = nullptr;
    if (!take(n, &p))
        return {};
    return std::string(reinterpret_cast<const char *>(p), n);
}

std::vector<std::uint8_t>
Decoder::blob()
{
    std::size_t n = length(remaining());
    return blobOf(n);
}

std::vector<std::uint8_t>
Decoder::blobOf(std::size_t n)
{
    const std::uint8_t *p = nullptr;
    if (!take(n, &p))
        return {};
    return std::vector<std::uint8_t>(p, p + n);
}

// ---------------------------------------------------------------------------
// Section container.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kMagicLen = 8;
constexpr std::size_t kHeaderLen = kMagicLen + 4 + 4 + 4;

} // namespace

std::vector<std::uint8_t>
buildContainer(const std::string &magic, std::uint32_t version,
               const std::vector<Section> &sections)
{
    Encoder enc;
    std::string m = magic;
    m.resize(kMagicLen, '\0');
    enc.blobRaw(m);
    enc.u32(version);
    enc.u32(static_cast<std::uint32_t>(sections.size()));
    std::uint32_t header_crc = crc32(enc.bytes().data(), enc.bytes().size());
    enc.u32(header_crc);
    for (const Section &s : sections) {
        std::string tag = s.tag;
        tag.resize(4, '\0');
        enc.blobRaw(tag);
        enc.u64(s.payload.size());
        enc.u32(crc32(s.payload.data(), s.payload.size()));
        enc.blobRaw(
            std::string(reinterpret_cast<const char *>(s.payload.data()),
                        s.payload.size()));
    }
    return enc.take();
}

Status
parseContainer(const std::vector<std::uint8_t> &bytes, const std::string &magic,
               std::uint32_t version, std::vector<Section> &out)
{
    out.clear();
    if (bytes.size() < kHeaderLen)
        return Status::error(ErrCode::Truncated,
                             cat("file is ", bytes.size(),
                                 " bytes, smaller than the ", kHeaderLen,
                                 "-byte header"));
    std::string m = magic;
    m.resize(kMagicLen, '\0');
    if (std::memcmp(bytes.data(), m.data(), kMagicLen) != 0)
        return Status::error(ErrCode::BadMagic,
                             cat("expected magic \"", magic, "\""));
    Decoder dec(bytes.data() + kMagicLen, bytes.size() - kMagicLen);
    std::uint32_t file_version = dec.u32();
    std::uint32_t count = dec.u32();
    std::uint32_t header_crc = dec.u32();
    std::uint32_t want_crc = crc32(bytes.data(), kMagicLen + 8);
    if (header_crc != want_crc)
        return Status::error(ErrCode::BadChecksum, "header crc mismatch");
    if (file_version != version)
        return Status::error(ErrCode::BadVersion,
                             cat("file version ", file_version,
                                 ", this build reads version ", version));
    std::vector<Section> sections;
    for (std::uint32_t i = 0; i < count; ++i) {
        Section s;
        std::vector<std::uint8_t> tag = dec.blobOf(4);
        if (!dec.ok())
            return Status::error(ErrCode::Truncated,
                                 cat("section ", i, " tag truncated"));
        s.tag.assign(reinterpret_cast<const char *>(tag.data()), 4);
        std::uint64_t len = dec.u64();
        std::uint32_t payload_crc = dec.u32();
        if (!dec.ok())
            return Status::error(ErrCode::Truncated,
                                 cat("section ", s.tag, " header truncated"));
        if (len > dec.remaining())
            return Status::error(ErrCode::Truncated,
                                 cat("section ", s.tag, " declares ", len,
                                     " bytes, only ", dec.remaining(),
                                     " remain"));
        s.payload = dec.blobOf(static_cast<std::size_t>(len));
        std::uint32_t got = crc32(s.payload.data(), s.payload.size());
        if (got != payload_crc)
            return Status::error(ErrCode::BadChecksum,
                                 cat("section ", s.tag, " crc mismatch"));
        sections.push_back(std::move(s));
    }
    if (dec.remaining() != 0)
        return Status::error(ErrCode::BadFormat,
                             cat(dec.remaining(),
                                 " trailing bytes after last section"));
    out = std::move(sections);
    return Status::okStatus();
}

// ---------------------------------------------------------------------------
// File I/O.
// ---------------------------------------------------------------------------

Status
readFile(const std::string &path, std::vector<std::uint8_t> &out)
{
    out.clear();
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return Status::error(ErrCode::Io, cat("open ", path, ": ",
                                              std::strerror(errno)));
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            return Status::error(ErrCode::Io, cat("read ", path, ": ",
                                                  std::strerror(err)));
        }
        if (n == 0)
            break;
        bytes.insert(bytes.end(), buf, buf + n);
    }
    ::close(fd);
    out = std::move(bytes);
    return Status::okStatus();
}

namespace {

Status
writeAll(int fd, const std::uint8_t *data, std::size_t size,
         const std::string &what)
{
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::error(ErrCode::Io, cat("write ", what, ": ",
                                                  std::strerror(errno)));
        }
        off += static_cast<std::size_t>(n);
    }
    return Status::okStatus();
}

/** fsync the directory containing @p path so a rename is durable. */
void
fsyncParentDir(const std::string &path)
{
    std::string dir = ".";
    std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos)
        dir = slash == 0 ? "/" : path.substr(0, slash);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

} // namespace

Status
writeFileAtomic(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::string tmp = cat(path, ".tmp.", static_cast<long>(::getpid()));
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0)
        return Status::error(ErrCode::Io, cat("open ", tmp, ": ",
                                              std::strerror(errno)));
    Status st = writeAll(fd, bytes.data(), bytes.size(), tmp);
    if (st.ok() && ::fsync(fd) != 0)
        st = Status::error(ErrCode::Io, cat("fsync ", tmp, ": ",
                                            std::strerror(errno)));
    ::close(fd);
    if (!st.ok()) {
        ::unlink(tmp.c_str());
        return st;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        return Status::error(ErrCode::Io, cat("rename ", tmp, " -> ", path,
                                              ": ", std::strerror(err)));
    }
    fsyncParentDir(path);
    return Status::okStatus();
}

// ---------------------------------------------------------------------------
// Journal.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kRecordMarker = 0x4A434552u; // "RECJ" little-endian.

} // namespace

JournalWriter::~JournalWriter()
{
    close();
}

void
JournalWriter::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Status
JournalWriter::open(const std::string &path, const std::string &magic,
                    const std::string &fingerprint, bool truncate)
{
    close();
    int flags = O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC;
    if (truncate)
        flags |= O_TRUNC;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0)
        return Status::error(ErrCode::Io, cat("open ", path, ": ",
                                              std::strerror(errno)));
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        int err = errno;
        ::close(fd);
        return Status::error(ErrCode::Io, cat("stat ", path, ": ",
                                              std::strerror(err)));
    }
    fd_ = fd;
    if (st.st_size == 0) {
        Encoder enc;
        std::string m = magic;
        m.resize(kMagicLen, '\0');
        enc.blobRaw(m);
        enc.str(fingerprint);
        Status ws = writeAll(fd_, enc.bytes().data(), enc.bytes().size(),
                             path);
        if (ws.ok() && ::fsync(fd_) != 0)
            ws = Status::error(ErrCode::Io, cat("fsync ", path, ": ",
                                                std::strerror(errno)));
        if (!ws.ok()) {
            close();
            return ws;
        }
        fsyncParentDir(path);
    }
    return Status::okStatus();
}

Status
JournalWriter::append(const std::vector<std::uint8_t> &payload)
{
    if (fd_ < 0)
        return Status::error(ErrCode::Io, "journal is not open");
    Encoder enc;
    enc.u32(kRecordMarker);
    enc.u64(payload.size());
    enc.u32(crc32(payload.data(), payload.size()));
    enc.blobRaw(std::string(reinterpret_cast<const char *>(payload.data()),
                            payload.size()));
    Status st = writeAll(fd_, enc.bytes().data(), enc.bytes().size(),
                         "journal record");
    if (st.ok() && ::fsync(fd_) != 0)
        st = Status::error(ErrCode::Io, cat("fsync journal: ",
                                            std::strerror(errno)));
    return st;
}

Status
readJournal(const std::string &path, const std::string &magic,
            const std::string &fingerprint,
            std::vector<std::vector<std::uint8_t>> &records)
{
    records.clear();
    std::vector<std::uint8_t> bytes;
    Status st = readFile(path, bytes);
    if (!st.ok())
        return st;
    if (bytes.size() < kMagicLen)
        return Status::error(ErrCode::Truncated,
                             "journal smaller than its magic");
    std::string m = magic;
    m.resize(kMagicLen, '\0');
    if (std::memcmp(bytes.data(), m.data(), kMagicLen) != 0)
        return Status::error(ErrCode::BadMagic,
                             cat("expected journal magic \"", magic, "\""));
    Decoder header(bytes.data() + kMagicLen, bytes.size() - kMagicLen);
    std::string got_fp = header.str();
    if (!header.ok())
        return Status::error(ErrCode::Truncated, "journal header truncated");
    if (got_fp != fingerprint)
        return Status::error(
            ErrCode::Mismatch,
            cat("journal was written for a different sweep (fingerprint \"",
                got_fp, "\", expected \"", fingerprint, "\")"));
    // Data records: any torn/corrupt record ends the journal cleanly.
    std::size_t pos = bytes.size() - header.remaining();
    std::vector<std::vector<std::uint8_t>> recs;
    while (pos < bytes.size()) {
        Decoder rec(bytes.data() + pos, bytes.size() - pos);
        std::uint32_t marker = rec.u32();
        std::uint64_t len = rec.u64();
        std::uint32_t crc = rec.u32();
        if (!rec.ok() || marker != kRecordMarker || len > rec.remaining())
            break; // torn tail
        std::vector<std::uint8_t> payload =
            rec.blobOf(static_cast<std::size_t>(len));
        if (crc32(payload.data(), payload.size()) != crc)
            break; // torn tail
        recs.push_back(std::move(payload));
        pos += 4 + 8 + 4 + static_cast<std::size_t>(len);
    }
    records = std::move(recs);
    return Status::okStatus();
}

} // namespace qm::persist
