/**
 * @file
 * Binary codecs for the simulator state that travels inside a durable
 * checkpoint: the statistics registry, the trace event stream, the
 * message-cache and ring-bus snapshots, and kernel context records.
 *
 * Decode never throws and never trusts the input: every length is
 * bounds-checked against the remaining bytes and every enum/index is
 * range-checked, flipping the Decoder into its sticky failed state on
 * the first problem. The section CRC catches random corruption; these
 * checks catch *structurally* hostile bytes behind a valid CRC, so a
 * bad checkpoint is always refused, never undefined behavior.
 */
#pragma once

#include <vector>

#include "msg/message_cache.hpp"
#include "mp/ring_bus.hpp"
#include "mp/system.hpp"
#include "persist/io.hpp"
#include "support/stats.hpp"
#include "trace/trace.hpp"

namespace qm::persist {

void encodeStatSet(Encoder &enc, const StatSet &stats);
StatSet decodeStatSet(Decoder &dec);

/** The full recorder content: events + dropped count + kind counts. */
struct TraceState
{
    std::vector<trace::Event> events;
    std::uint64_t dropped = 0;
    std::array<std::size_t, trace::kEventKinds> kindCounts{};
};

void encodeTraceState(Encoder &enc, const TraceState &state);
TraceState decodeTraceState(Decoder &dec);

void encodeCacheSnapshot(Encoder &enc, const msg::MessageCache::Snapshot &snap);
msg::MessageCache::Snapshot decodeCacheSnapshot(Decoder &dec);

void encodeBusSnapshot(Encoder &enc, const mp::RingBus::Snapshot &snap);
mp::RingBus::Snapshot decodeBusSnapshot(Decoder &dec);

void encodeContext(Encoder &enc, const mp::Context &ctx);
mp::Context decodeContext(Decoder &dec);

void encodeHostOp(Encoder &enc, const mp::HostOp &op);
mp::HostOp decodeHostOp(Decoder &dec);

/**
 * Sparse memory image: 4 KiB pages that are entirely zero are skipped,
 * so a 32 MiB address space with a small working set persists in a few
 * hundred KiB. Decode fails unless the declared size matches
 * @p expected_size exactly.
 */
void encodeSparseMemory(Encoder &enc, const std::vector<std::uint8_t> &bytes);
std::vector<std::uint8_t> decodeSparseMemory(Decoder &dec,
                                             std::size_t expected_size);

} // namespace qm::persist
