#include "persist/state_codec.hpp"

#include <cstring>

#include "support/format.hpp"

namespace qm::persist {

namespace {

/** Cap on decoded container sizes (entries, not bytes): a corrupt
 * length field must not be able to drive a multi-gigabyte allocation
 * before the bounds check on the payload bytes kicks in. Every decoded
 * element is at least one byte, so remaining() is always a safe cap. */
std::size_t
mapLimit(Decoder &dec)
{
    return dec.remaining();
}

} // namespace

// ---------------------------------------------------------------------------
// StatSet.
// ---------------------------------------------------------------------------

void
encodeStatSet(Encoder &enc, const StatSet &stats)
{
    const auto &counters = stats.counterMap();
    enc.u64(counters.size());
    for (const auto &[name, value] : counters) {
        enc.str(name);
        enc.u64(value);
    }
    const auto &scalars = stats.scalarMap();
    enc.u64(scalars.size());
    for (const auto &[name, value] : scalars) {
        enc.str(name);
        enc.f64(value);
    }
    const auto &dists = stats.distributionMap();
    enc.u64(dists.size());
    for (const auto &[name, d] : dists) {
        enc.str(name);
        enc.u64(d.count());
        enc.f64(d.min());
        enc.f64(d.max());
        enc.f64(d.sum());
    }
    const auto &hists = stats.histogramMap();
    enc.u64(hists.size());
    for (const auto &[name, h] : hists) {
        enc.str(name);
        enc.u64(h.count());
        enc.u64(h.sum());
        enc.u64(h.min());
        enc.u64(h.max());
        for (int i = 0; i < Histogram::kNumBuckets; ++i)
            enc.u64(h.bucketCount(i));
    }
}

StatSet
decodeStatSet(Decoder &dec)
{
    StatSet stats;
    std::size_t n = dec.length(mapLimit(dec));
    for (std::size_t i = 0; i < n && dec.ok(); ++i) {
        std::string name = dec.str();
        std::uint64_t value = dec.u64();
        if (dec.ok())
            stats.inc(name, value);
    }
    n = dec.length(mapLimit(dec));
    for (std::size_t i = 0; i < n && dec.ok(); ++i) {
        std::string name = dec.str();
        double value = dec.f64();
        if (dec.ok())
            stats.set(name, value);
    }
    n = dec.length(mapLimit(dec));
    for (std::size_t i = 0; i < n && dec.ok(); ++i) {
        std::string name = dec.str();
        std::uint64_t count = dec.u64();
        double min = dec.f64();
        double max = dec.f64();
        double sum = dec.f64();
        if (dec.ok())
            stats.distributionRef(name) =
                Distribution::fromRaw(count, min, max, sum);
    }
    n = dec.length(mapLimit(dec));
    for (std::size_t i = 0; i < n && dec.ok(); ++i) {
        std::string name = dec.str();
        std::uint64_t count = dec.u64();
        std::uint64_t sum = dec.u64();
        std::uint64_t min = dec.u64();
        std::uint64_t max = dec.u64();
        std::array<std::uint64_t, Histogram::kNumBuckets> buckets{};
        for (int b = 0; b < Histogram::kNumBuckets; ++b)
            buckets[static_cast<std::size_t>(b)] = dec.u64();
        if (dec.ok())
            stats.histogramRef(name) =
                Histogram::fromRaw(count, sum, min, max, buckets);
    }
    return stats;
}

// ---------------------------------------------------------------------------
// Trace stream.
// ---------------------------------------------------------------------------

void
encodeTraceState(Encoder &enc, const TraceState &state)
{
    enc.u64(state.dropped);
    for (int i = 0; i < trace::kEventKinds; ++i)
        enc.u64(state.kindCounts[static_cast<std::size_t>(i)]);
    enc.u64(state.events.size());
    for (const trace::Event &e : state.events) {
        enc.u8(static_cast<std::uint8_t>(e.kind));
        enc.u64(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(e.pe)));
        enc.u32(e.ctx);
        enc.i64(e.at);
        enc.i64(e.end);
        enc.u64(e.a);
        enc.u64(e.b);
    }
}

TraceState
decodeTraceState(Decoder &dec)
{
    TraceState state;
    state.dropped = dec.u64();
    for (int i = 0; i < trace::kEventKinds; ++i)
        state.kindCounts[static_cast<std::size_t>(i)] =
            static_cast<std::size_t>(dec.u64());
    std::size_t n = dec.length(mapLimit(dec));
    state.events.reserve(n);
    for (std::size_t i = 0; i < n && dec.ok(); ++i) {
        trace::Event e;
        std::uint8_t kind = dec.u8();
        if (kind >= trace::kEventKinds) {
            dec.fail(cat("trace event kind ", int(kind), " out of range"));
            break;
        }
        e.kind = static_cast<trace::EventKind>(kind);
        std::int64_t pe = static_cast<std::int64_t>(dec.u64());
        if (pe < -1 || pe > 0x7FFF) {
            dec.fail(cat("trace event pe ", pe, " out of range"));
            break;
        }
        e.pe = static_cast<std::int16_t>(pe);
        e.ctx = dec.u32();
        e.at = dec.i64();
        e.end = dec.i64();
        e.a = dec.u64();
        e.b = dec.u64();
        state.events.push_back(e);
    }
    return state;
}

// ---------------------------------------------------------------------------
// Message cache.
// ---------------------------------------------------------------------------

void
encodeCacheSnapshot(Encoder &enc, const msg::MessageCache::Snapshot &snap)
{
    enc.u64(snap.entries.size());
    for (const auto &[channel, entry] : snap.entries) {
        enc.u32(channel);
        enc.u64(entry.nextSeq);
        enc.u64(entry.values.size());
        for (const msg::Token &t : entry.values) {
            enc.u32(t.value);
            enc.u8(t.sum);
            enc.u64(t.seq);
            enc.u32(t.pristine);
            enc.i64(t.sentAt);
        }
        enc.u64(entry.sendWaiters.size());
        for (msg::CtxId ctx : entry.sendWaiters)
            enc.u32(ctx);
        enc.u64(entry.recvWaiters.size());
        for (msg::CtxId ctx : entry.recvWaiters)
            enc.u32(ctx);
    }
    encodeStatSet(enc, snap.stats);
}

msg::MessageCache::Snapshot
decodeCacheSnapshot(Decoder &dec)
{
    msg::MessageCache::Snapshot snap;
    std::size_t entries = dec.length(mapLimit(dec));
    for (std::size_t i = 0; i < entries && dec.ok(); ++i) {
        isa::Word channel = dec.u32();
        msg::ChannelEntry entry;
        entry.nextSeq = dec.u64();
        std::size_t values = dec.length(mapLimit(dec));
        for (std::size_t v = 0; v < values && dec.ok(); ++v) {
            msg::Token t;
            t.value = dec.u32();
            t.sum = dec.u8();
            t.seq = dec.u64();
            t.pristine = dec.u32();
            t.sentAt = dec.i64();
            entry.values.push_back(t);
        }
        std::size_t sends = dec.length(mapLimit(dec));
        for (std::size_t s = 0; s < sends && dec.ok(); ++s)
            entry.sendWaiters.push_back(dec.u32());
        std::size_t recvs = dec.length(mapLimit(dec));
        for (std::size_t r = 0; r < recvs && dec.ok(); ++r)
            entry.recvWaiters.push_back(dec.u32());
        if (dec.ok())
            snap.entries.emplace(channel, std::move(entry));
    }
    snap.stats = decodeStatSet(dec);
    return snap;
}

// ---------------------------------------------------------------------------
// Ring bus.
// ---------------------------------------------------------------------------

namespace {

void
encodeCycleVector(Encoder &enc, const std::vector<mp::Cycle> &v)
{
    enc.u64(v.size());
    for (mp::Cycle c : v)
        enc.i64(c);
}

std::vector<mp::Cycle>
decodeCycleVector(Decoder &dec)
{
    std::vector<mp::Cycle> v;
    std::size_t n = dec.length(mapLimit(dec));
    v.reserve(n);
    for (std::size_t i = 0; i < n && dec.ok(); ++i)
        v.push_back(dec.i64());
    return v;
}

} // namespace

void
encodeBusSnapshot(Encoder &enc, const mp::RingBus::Snapshot &snap)
{
    encodeCycleVector(enc, snap.partitionFree);
    encodeCycleVector(enc, snap.bridgeFree);
    encodeCycleVector(enc, snap.backboneFree);
    encodeStatSet(enc, snap.stats);
}

mp::RingBus::Snapshot
decodeBusSnapshot(Decoder &dec)
{
    mp::RingBus::Snapshot snap;
    snap.partitionFree = decodeCycleVector(dec);
    snap.bridgeFree = decodeCycleVector(dec);
    snap.backboneFree = decodeCycleVector(dec);
    snap.stats = decodeStatSet(dec);
    return snap;
}

// ---------------------------------------------------------------------------
// Kernel contexts.
// ---------------------------------------------------------------------------

void
encodeHostOp(Encoder &enc, const mp::HostOp &op)
{
    enc.u8(static_cast<std::uint8_t>(op.kind));
    enc.u32(op.arg);
    enc.u32(op.result);
    enc.i64(op.kernelCycles);
    enc.u8(op.hasResult ? 1 : 0);
}

mp::HostOp
decodeHostOp(Decoder &dec)
{
    mp::HostOp op;
    std::uint8_t kind = dec.u8();
    if (kind > static_cast<std::uint8_t>(mp::HostOp::Kind::Trap)) {
        dec.fail(cat("host-op kind ", int(kind), " out of range"));
        return op;
    }
    op.kind = static_cast<mp::HostOp::Kind>(kind);
    op.arg = dec.u32();
    op.result = dec.u32();
    op.kernelCycles = static_cast<long>(dec.i64());
    op.hasResult = dec.u8() != 0;
    return op;
}

void
encodeContext(Encoder &enc, const mp::Context &ctx)
{
    enc.u32(ctx.id);
    enc.u32(ctx.regs.pc);
    enc.u32(ctx.regs.qp);
    enc.u32(ctx.regs.pom);
    enc.u32(ctx.regs.nar);
    enc.u32(ctx.regs.lastResult);
    for (isa::Word g : ctx.regs.generals)
        enc.u32(g);
    enc.u8(static_cast<std::uint8_t>(ctx.status));
    enc.u64(static_cast<std::uint64_t>(ctx.homePe));
    enc.u32(ctx.inChan);
    enc.u32(ctx.outChan);
    enc.u32(ctx.queuePage);
    enc.i64(ctx.readyAt);
    enc.u64(ctx.pendingReplay.size());
    for (const mp::HostOp &op : ctx.pendingReplay)
        encodeHostOp(enc, op);
}

mp::Context
decodeContext(Decoder &dec)
{
    mp::Context ctx;
    ctx.id = dec.u32();
    ctx.regs.pc = dec.u32();
    ctx.regs.qp = dec.u32();
    ctx.regs.pom = dec.u32();
    ctx.regs.nar = dec.u32();
    ctx.regs.lastResult = dec.u32();
    for (isa::Word &g : ctx.regs.generals)
        g = dec.u32();
    std::uint8_t status = dec.u8();
    if (status > static_cast<std::uint8_t>(mp::CtxStatus::Done)) {
        dec.fail(cat("context status ", int(status), " out of range"));
        return ctx;
    }
    ctx.status = static_cast<mp::CtxStatus>(status);
    std::uint64_t home = dec.u64();
    if (home > 0xFFFF) {
        dec.fail(cat("context homePe ", home, " out of range"));
        return ctx;
    }
    ctx.homePe = static_cast<int>(home);
    ctx.inChan = dec.u32();
    ctx.outChan = dec.u32();
    ctx.queuePage = dec.u32();
    ctx.readyAt = dec.i64();
    std::size_t replay = dec.length(mapLimit(dec));
    ctx.pendingReplay.reserve(replay);
    for (std::size_t i = 0; i < replay && dec.ok(); ++i)
        ctx.pendingReplay.push_back(decodeHostOp(dec));
    return ctx;
}

// ---------------------------------------------------------------------------
// Sparse memory image.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kPageBytes = 4096;

bool
pageIsZero(const std::uint8_t *page, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (page[i] != 0)
            return false;
    return true;
}

} // namespace

void
encodeSparseMemory(Encoder &enc, const std::vector<std::uint8_t> &bytes)
{
    enc.u64(bytes.size());
    std::uint64_t pages = 0;
    // First pass: count non-zero pages, so the decoder knows how many
    // page records follow without a sentinel.
    for (std::size_t off = 0; off < bytes.size(); off += kPageBytes) {
        std::size_t n = std::min(kPageBytes, bytes.size() - off);
        if (!pageIsZero(bytes.data() + off, n))
            ++pages;
    }
    enc.u64(pages);
    for (std::size_t off = 0; off < bytes.size(); off += kPageBytes) {
        std::size_t n = std::min(kPageBytes, bytes.size() - off);
        if (pageIsZero(bytes.data() + off, n))
            continue;
        enc.u64(off);
        enc.blob(bytes.data() + off, n);
    }
}

std::vector<std::uint8_t>
decodeSparseMemory(Decoder &dec, std::size_t expected_size)
{
    std::vector<std::uint8_t> bytes;
    std::uint64_t size = dec.u64();
    if (!dec.ok())
        return bytes;
    if (size != expected_size) {
        dec.fail(cat("memory image is ", size, " bytes, this machine has ",
                     expected_size));
        return bytes;
    }
    bytes.assign(expected_size, 0);
    std::uint64_t pages = dec.u64();
    for (std::uint64_t p = 0; p < pages && dec.ok(); ++p) {
        std::uint64_t off = dec.u64();
        std::vector<std::uint8_t> page = dec.blob();
        if (!dec.ok())
            break;
        if (off % kPageBytes != 0 || off >= bytes.size() ||
            page.size() > bytes.size() - off || page.empty()) {
            dec.fail(cat("memory page at offset ", off, " of ", page.size(),
                         " bytes is out of bounds"));
            break;
        }
        std::memcpy(bytes.data() + off, page.data(), page.size());
    }
    return bytes;
}

} // namespace qm::persist
