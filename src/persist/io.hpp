/**
 * @file
 * Durable-state primitives: structured I/O errors, CRC32, a
 * bounds-checked binary encoder/decoder pair, a versioned
 * per-section-checksummed container file written atomically, and an
 * append-only record journal whose torn tail (after kill -9 mid-write)
 * reads as a clean end of file.
 *
 * Everything here is host-side plumbing: nothing in this library knows
 * about the simulated machine. Higher layers (mp, sim) provide codecs
 * for their own state on top of Encoder/Decoder.
 *
 * Corruption is a *value*, never an exception escaping to the caller:
 * every read path returns a Status carrying a machine-readable code
 * plus a one-line human diagnostic, so callers can refuse a bad file
 * and fall back to a cold start without crashing.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qm::persist {

/** Machine-readable failure class for persistence operations. */
enum class ErrCode
{
    None = 0,     ///< Success.
    Io,           ///< open/read/write/fsync/rename failed (see message).
    BadMagic,     ///< File does not start with the expected magic.
    BadVersion,   ///< Format version is newer/older than this build.
    Truncated,    ///< File ends before a declared length.
    BadChecksum,  ///< A section or record CRC does not match its payload.
    BadFormat,    ///< Structurally invalid payload (lengths, tags, enums).
    Mismatch,     ///< Valid file, but for a different configuration.
};

/** Short stable name for an ErrCode ("io", "bad-checksum", ...). */
const char *errCodeName(ErrCode code);

/** Result of a persistence operation: ok() or a code + diagnostic. */
struct Status
{
    ErrCode code = ErrCode::None;
    std::string message;

    bool ok() const { return code == ErrCode::None; }
    /** "bad-checksum: section MEMS crc mismatch" style one-liner. */
    std::string toString() const;

    static Status okStatus() { return {}; }
    static Status error(ErrCode code, std::string message)
    {
        return Status{code, std::move(message)};
    }
};

/** CRC-32 (IEEE 802.3 polynomial, reflected) over @p size bytes. */
std::uint32_t crc32(const void *data, std::size_t size);

/** Incremental variant: pass the previous return as @p seed. */
std::uint32_t crc32Update(std::uint32_t seed, const void *data,
                          std::size_t size);

/**
 * Little-endian binary encoder. Append-only; the buffer is plain
 * bytes so a whole message can be CRC'd and written in one go.
 */
class Encoder
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    /** Doubles travel as their IEEE-754 bit pattern (exact roundtrip). */
    void f64(double v);
    /** Length-prefixed (u64) byte string. */
    void str(const std::string &v);
    /** Length-prefixed (u64) raw blob. */
    void blob(const void *data, std::size_t size);
    /** Raw bytes, no length prefix (fixed-size fields like magics). */
    void blobRaw(const std::string &v)
    {
        bytes_.insert(bytes_.end(), v.begin(), v.end());
    }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Bounds-checked decoder over a byte span. Any out-of-bounds or
 * malformed read flips the decoder into a sticky failed state and
 * returns zero values; callers check ok() once at the end instead of
 * wrapping every field read. A failed decode is always BadFormat /
 * Truncated — never UB, never an exception.
 */
class Decoder
{
  public:
    Decoder(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    explicit Decoder(const std::vector<std::uint8_t> &bytes)
        : Decoder(bytes.data(), bytes.size())
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    std::string str();
    std::vector<std::uint8_t> blob();
    /** Exactly @p n raw bytes (no length prefix). */
    std::vector<std::uint8_t> blobOf(std::size_t n);
    /** u64 length check helper: fails unless at most @p limit. */
    std::size_t length(std::uint64_t limit);

    /** Mark the decode failed (semantic validation by codecs). */
    void fail(const std::string &why);

    bool ok() const { return !failed_; }
    bool atEnd() const { return !failed_ && pos_ == size_; }
    const std::string &error() const { return error_; }
    std::size_t remaining() const { return failed_ ? 0 : size_ - pos_; }

  private:
    bool take(std::size_t n, const std::uint8_t **out);

    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

// ---------------------------------------------------------------------------
// Section container file.
// ---------------------------------------------------------------------------

/** One named, individually-checksummed payload inside a container. */
struct Section
{
    std::string tag;  ///< Four ASCII characters, e.g. "MEMS".
    std::vector<std::uint8_t> payload;
};

/**
 * Serialize @p sections into a container image:
 *
 *   [magic 8B][version u32][section count u32][header crc u32]
 *   repeated: [tag 4B][length u64][payload crc u32][payload bytes]
 *
 * The header CRC covers magic+version+count; each payload CRC covers
 * only that section, so corruption is localized in diagnostics.
 */
std::vector<std::uint8_t> buildContainer(const std::string &magic,
                                         std::uint32_t version,
                                         const std::vector<Section> &sections);

/**
 * Parse and fully verify a container image. On any structural or
 * checksum problem returns a non-ok Status and leaves @p out empty.
 */
Status parseContainer(const std::vector<std::uint8_t> &bytes,
                      const std::string &magic, std::uint32_t version,
                      std::vector<Section> &out);

/** Read a whole file; Io error with errno text on failure. */
Status readFile(const std::string &path, std::vector<std::uint8_t> &out);

/**
 * Crash-safe whole-file write: write to `<path>.tmp.<pid>`, fsync the
 * file, rename over @p path, then fsync the directory. A reader never
 * observes a half-written file: either the old content or the new.
 */
Status writeFileAtomic(const std::string &path,
                       const std::vector<std::uint8_t> &bytes);

// ---------------------------------------------------------------------------
// Append-only journal.
// ---------------------------------------------------------------------------

/**
 * Append-only record journal. Layout:
 *
 *   header record:  [magic 8B][fingerprint str (u64 len + bytes)]
 *   data records:   [marker u32 = 0x5245434Au "JCER"][length u64]
 *                   [payload crc u32][payload bytes]
 *
 * Every append is fsync'd, so a record is durable once append()
 * returns. A process killed mid-append leaves a torn final record;
 * readers verify marker+length+CRC and treat the first bad record as
 * a clean end of journal (the torn tail is simply re-run), never an
 * error. A *header* that is corrupt or carries the wrong fingerprint
 * is a different situation — the whole file is untrustworthy or
 * belongs to a different sweep — and is reported as such.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Open @p path for appending. If the file does not exist (or
     * @p truncate is set), it is created and a header record with
     * @p magic + @p fingerprint is written and fsync'd first.
     */
    Status open(const std::string &path, const std::string &magic,
                const std::string &fingerprint, bool truncate = false);

    /** Append one record (marker+length+crc+payload) and fsync. */
    Status append(const std::vector<std::uint8_t> &payload);

    void close();
    bool isOpen() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

/**
 * Read all intact records of a journal. Returns ok with the records
 * read so far even when the tail is torn (kill -9 mid-append); returns
 * Mismatch when the header fingerprint differs from @p fingerprint,
 * and BadMagic/BadChecksum/... when the header itself is unusable.
 */
Status readJournal(const std::string &path, const std::string &magic,
                   const std::string &fingerprint,
                   std::vector<std::vector<std::uint8_t>> &records);

} // namespace qm::persist
