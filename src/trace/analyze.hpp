/**
 * @file
 * Trace analysis for the qmprof profiler: re-ingests a Chrome
 * trace_event JSON file written by export.hpp (or consumes a live
 * Tracer's event stream) and answers the questions the raw timeline
 * makes you eyeball:
 *
 *   - critical path: the time-respecting chain of run spans and
 *     blocked gaps from the boot context to the last context to
 *     finish - the sequence of work the run's length actually hinged
 *     on (its length never exceeds the run's total cycles);
 *   - top-k contexts by blocked time, attributed to why they were
 *     parked (channel roll-out, timer, lazy-resident wait, or the
 *     startup gap between fork and first dispatch);
 *   - per-PE utilization timelines, bucketed over the run;
 *   - a deadlock/starvation digest of contexts that never finished.
 *
 * Everything here is integer arithmetic over the recorded cycle
 * stamps, so the analysis (and its rendering) is deterministic for a
 * given trace.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace qm::trace {

/**
 * Load the events of a Chrome trace_event JSON file produced by
 * writeChromeTrace back into Event records. Metadata ("M") rows are
 * skipped; the exporter's dur>=1 clamp means sub-cycle spans
 * reconstruct one cycle long. @p dropped (optional) receives the
 * file's qmDroppedEvents count. Throws FatalError on malformed input.
 */
std::vector<Event> loadChromeTrace(const std::string &path,
                                   std::uint64_t *dropped = nullptr);

/** One link of the critical path, latest first. */
struct PathSegment
{
    enum class Kind
    {
        Run,     ///< The context was executing on its PE.
        Blocked, ///< The context existed but was off-PE / waiting.
        Fork,    ///< Crossing from a context to its forking parent.
    };
    Kind kind = Kind::Run;
    CtxId ctx = kNoCtx;
    int pe = -1;              ///< PE (Run), -1 when not PE-bound.
    Cycle from = 0;
    Cycle to = 0;
    /** Blocked-gap attribution ("channel", "timer", ...), else "". */
    std::string reason;

    Cycle length() const { return to - from; }
};

/** Per-context blocked-time attribution (top-k table row). */
struct BlockedReport
{
    CtxId ctx = kNoCtx;
    Cycle total = 0;    ///< All cycles the context spent not running.
    Cycle startup = 0;  ///< Fork-to-first-dispatch shipping/queue wait.
    Cycle channel = 0;  ///< Parked on a channel rendezvous (rolled out).
    Cycle timer = 0;    ///< Parked on a TrapWait deadline.
    Cycle resident = 0; ///< Blocked but kept loaded (lazy switch).
};

/** One PE's bucketed utilization timeline. */
struct PeTimeline
{
    int pe = 0;
    Cycle busy = 0;               ///< Total busy cycles over the run.
    std::vector<double> buckets;  ///< Busy fraction per time bucket.
};

/** A context that never finished (deadlock/starvation digest row). */
struct StarvedContext
{
    CtxId ctx = kNoCtx;
    Cycle createdAt = 0;
    bool dispatched = false;  ///< Ever ran at all.
    /** Last thing the context did ("never dispatched", "parked (channel)
     *  at cycle N", "running at trace end"). */
    std::string lastState;
};

/** Analysis knobs. */
struct AnalyzeOptions
{
    int topK = 10;            ///< Rows in the blocked-time table.
    int timelineBuckets = 24; ///< Buckets per PE utilization row.
};

/** The complete analysis of one trace. */
struct Profile
{
    Cycle totalCycles = 0;     ///< Last cycle stamp in the trace.
    int numPes = 0;
    std::uint64_t contexts = 0;
    std::uint64_t finished = 0;
    std::uint64_t dropped = 0; ///< Events the tracer discarded.

    /** Ring-bus / topology attribution (zero on bus-quiet traces). */
    std::uint64_t busTransfers = 0;  ///< Remote transfer spans.
    Cycle busCycles = 0;             ///< Summed transfer span lengths.
    Cycle bridgeWaitCycles = 0;      ///< Bridge/backbone arbitration wait.
    std::uint64_t migrations = 0;    ///< Cross-shard context placements.

    /** Latest-first chain; sum of lengths <= totalCycles. */
    std::vector<PathSegment> criticalPath;
    Cycle criticalPathCycles = 0;  ///< Sum of segment lengths.

    std::vector<BlockedReport> blockedTop;   ///< Sorted, worst first.
    std::vector<PeTimeline> peTimelines;     ///< Indexed by PE.
    std::vector<StarvedContext> starved;     ///< Never-finished contexts.

    /** Render the whole profile as the qmprof text report. */
    std::string render(const AnalyzeOptions &options = {}) const;
};

/** Analyze a raw event stream (from a Tracer or loadChromeTrace). */
Profile analyzeTrace(const std::vector<Event> &events,
                     const AnalyzeOptions &options = {});

} // namespace qm::trace
