#include "trace/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace qm::trace {

Tracer::Tracer(const TraceConfig &config)
    : enabled_(config.enabled), maxEvents_(config.maxEvents)
{
    if (enabled_)
        events_.reserve(std::min<std::size_t>(maxEvents_, 1u << 16));
}

void
Tracer::push(const Event &event)
{
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return;
    }
    events_.push_back(event);
    ++kindCounts_[static_cast<std::size_t>(event.kind)];
}

const char *
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::CtxCreate: return "ctx-create";
      case EventKind::CtxDispatch: return "ctx-dispatch";
      case EventKind::CtxPark: return "ctx-park";
      case EventKind::CtxFinish: return "ctx-finish";
      case EventKind::Rendezvous: return "rendezvous";
      case EventKind::BusTransfer: return "bus-transfer";
      case EventKind::TrapEnter: return "trap";
      case EventKind::PeBusy: return "pe-busy";
      case EventKind::FaultInject: return "fault-inject";
      case EventKind::FaultRecover: return "fault-recover";
      case EventKind::CtxMigrate: return "ctx-migrate";
    }
    return "?";
}

const char *
toString(ParkReason reason)
{
    switch (reason) {
      case ParkReason::Channel: return "channel";
      case ParkReason::Timer: return "timer";
      case ParkReason::Resident: return "resident";
    }
    return "?";
}

namespace {

void
renderEvent(std::ostream &os, const Event &e)
{
    os << "t=" << e.at;
    if (e.pe >= 0)
        os << " pe" << e.pe;
    if (e.ctx != kNoCtx)
        os << " ctx" << e.ctx;
    os << " " << toString(e.kind);
    switch (e.kind) {
      case EventKind::CtxCreate:
        os << " from-pe" << e.a;
        break;
      case EventKind::CtxPark:
        os << " (" << toString(static_cast<ParkReason>(e.a)) << ")";
        break;
      case EventKind::Rendezvous:
        os << " ch" << e.a << " val="
           << static_cast<std::int64_t>(static_cast<std::int32_t>(e.b));
        break;
      case EventKind::BusTransfer:
        os << " ->pe" << e.a << " hops=" << (e.b & 0xFFFFu);
        if ((e.b >> 16) != 0)
            os << " bridge-wait=" << (e.b >> 16);
        os << " arrives=" << e.end;
        break;
      case EventKind::CtxMigrate:
        os << " from-pe" << e.a;
        break;
      case EventKind::TrapEnter:
        os << " #" << e.a << " service=" << e.b;
        break;
      case EventKind::PeBusy:
        os << " until=" << e.end;
        break;
      case EventKind::FaultInject:
      case EventKind::FaultRecover:
        os << " kind-bit=" << e.a << " info=" << e.b;
        break;
      default:
        break;
    }
    os << "\n";
}

} // namespace

std::string
Tracer::summary(std::size_t tailEvents) const
{
    std::ostringstream os;
    os << "trace: " << events_.size() << " events";
    if (dropped_ > 0)
        os << " (+" << dropped_ << " dropped at cap)";
    os << "\n";
    for (int k = 0; k < kEventKinds; ++k) {
        auto kind = static_cast<EventKind>(k);
        if (countOf(kind) > 0)
            os << "  " << toString(kind) << ": " << countOf(kind)
               << "\n";
    }

    // Per-PE busy time from completed spans.
    std::map<int, Cycle> busy;
    std::map<int, std::size_t> spans;
    for (const Event &e : events_) {
        if (e.kind != EventKind::PeBusy)
            continue;
        busy[e.pe] += e.end - e.at;
        ++spans[e.pe];
    }
    for (const auto &[pe, cycles] : busy)
        os << "  pe" << pe << ": busy " << cycles << " cycles over "
           << spans[pe] << " spans\n";

    if (!events_.empty() && tailEvents > 0) {
        std::size_t first =
            events_.size() > tailEvents ? events_.size() - tailEvents : 0;
        os << "  last " << (events_.size() - first) << " events:\n";
        for (std::size_t i = first; i < events_.size(); ++i) {
            os << "    ";
            renderEvent(os, events_[i]);
        }
    }
    return os.str();
}

} // namespace qm::trace
