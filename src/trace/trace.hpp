/**
 * @file
 * Cycle-level event trace for the multiprocessor simulator.
 *
 * The thesis's Chapter 6 study reports aggregate statistics (Tables
 * 6.2-6.5); this layer records *where* those cycles went: typed,
 * cycle-stamped events for the Fig 6.4 context lifecycle, channel
 * rendezvous in the message cache, ring-bus transfers, kernel trap
 * entries with their charged service cycles, and PE busy spans.
 *
 * The recorder is flag-gated: every emit helper is an inline one-branch
 * no-op when tracing is disabled, so the hot simulation loop pays one
 * predictable-not-taken branch per emit point. Events live in a flat
 * preallocated vector with a hard cap; past the cap events are counted
 * as dropped rather than recorded, keeping memory bounded on runaway
 * programs.
 *
 * Exporters (export.hpp) turn the event stream into Chrome
 * trace_event JSON (one "process" per PE, contexts as flow events) and
 * a plain-text timeline summary reused by deadlock reports.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace qm::trace {

using Cycle = std::int64_t;

/** Context ids mirror msg::CtxId; kNoCtx marks "not applicable". */
using CtxId = std::uint32_t;
constexpr CtxId kNoCtx = 0xFFFFFFFFu;

/** Event taxonomy (see DESIGN.md "Observability"). */
enum class EventKind : std::uint8_t
{
    CtxCreate,   ///< Context allocated (a = forking PE).
    CtxDispatch, ///< Context loaded/resumed onto a PE.
    CtxPark,     ///< Context left the PE still live (a = ParkReason).
    CtxFinish,   ///< Context terminated (kernel exit).
    Rendezvous,  ///< Receive completed on a channel (a = channel, b = value).
    /**
     * Remote ring-bus message (a = dst PE, b = hops in the low 16
     * bits; hierarchical topologies pack the bridge/backbone wait
     * into the bits above, zero on the flat ring).
     */
    BusTransfer,
    TrapEnter,   ///< Kernel trap serviced (a = trap number, b = cycles).
    PeBusy,      ///< One context's uninterrupted run span on a PE.
    FaultInject, ///< Injected fault (a = fault-kind bit, b = payload).
    FaultRecover,///< Recovery action (a = fault-kind bit, b = payload).
    CtxMigrate,  ///< Context placed across shards (a = source PE).
};

constexpr int kEventKinds = 11;

/** Why a context left its PE (payload of CtxPark). */
enum class ParkReason : std::uint8_t
{
    Channel,  ///< Blocked on a channel rendezvous (rolled out).
    Timer,    ///< TrapWait deadline in the future.
    Resident, ///< Blocked on a channel but stayed loaded (lazy switch).
};

/** One recorded event; `end` is only meaningful for span kinds. */
struct Event
{
    EventKind kind = EventKind::CtxCreate;
    std::int16_t pe = -1;  ///< Emitting PE, -1 when not PE-bound.
    CtxId ctx = kNoCtx;
    Cycle at = 0;          ///< Cycle stamp (span start for spans).
    Cycle end = 0;         ///< Span end (PeBusy, BusTransfer).
    std::uint64_t a = 0;   ///< Kind-specific payload (see EventKind).
    std::uint64_t b = 0;   ///< Kind-specific payload (see EventKind).
};

/** Trace knobs, carried inside mp::SystemConfig. */
struct TraceConfig
{
    bool enabled = false;
    /** Hard cap on recorded events; beyond it events are dropped. */
    std::size_t maxEvents = 1u << 22;
    /**
     * When non-empty, run drivers (sim::runOnce, occamc) write the
     * Chrome trace_event JSON here after the run.
     */
    std::string chromeJsonPath;
};

/**
 * Passive observer of the emit stream. A sink sees every event the
 * Tracer's emit helpers are called with, regardless of whether the
 * flag-gated recorder itself is enabled; the flight recorder
 * (src/obs) implements this to keep a bounded ring of recent events
 * always on. Sinks must be cheap: they run inline at emit points.
 */
class EventSink
{
  public:
    virtual ~EventSink() = default;
    virtual void record(const Event &event) = 0;
};

/** The flag-gated event recorder. One instance per mp::System. */
class Tracer
{
  public:
    Tracer() = default;
    explicit Tracer(const TraceConfig &config);

    bool enabled() const { return enabled_; }

    /** Attach/detach the always-on sink (nullptr detaches). */
    void setSink(EventSink *sink) { sink_ = sink; }

    // --- Emit points (inline no-ops when disabled) -----------------------

    void
    ctxCreate(Cycle at, int homePe, CtxId ctx, int forkingPe)
    {
        if (enabled_ || sink_)
            emit({EventKind::CtxCreate, static_cast<std::int16_t>(homePe),
                  ctx, at, 0, static_cast<std::uint64_t>(forkingPe), 0});
    }

    void
    ctxDispatch(Cycle at, int pe, CtxId ctx)
    {
        if (enabled_ || sink_)
            emit({EventKind::CtxDispatch, static_cast<std::int16_t>(pe),
                  ctx, at, 0, 0, 0});
    }

    void
    ctxPark(Cycle at, int pe, CtxId ctx, ParkReason reason)
    {
        if (enabled_ || sink_)
            emit({EventKind::CtxPark, static_cast<std::int16_t>(pe), ctx,
                  at, 0, static_cast<std::uint64_t>(reason), 0});
    }

    void
    ctxFinish(Cycle at, int pe, CtxId ctx)
    {
        if (enabled_ || sink_)
            emit({EventKind::CtxFinish, static_cast<std::int16_t>(pe),
                  ctx, at, 0, 0, 0});
    }

    void
    rendezvous(Cycle at, std::uint64_t channel, CtxId receiver,
               std::uint64_t value)
    {
        if (enabled_ || sink_)
            emit({EventKind::Rendezvous, -1, receiver, at, 0, channel,
                  value});
    }

    void
    busTransfer(Cycle start, Cycle end, int src, int dst, int hops,
                Cycle bridgeWait = 0)
    {
        if (enabled_ || sink_)
            // Hops stay in the low 16 bits so flat-ring traces (bridge
            // wait always zero) keep their historical payload bytes.
            emit({EventKind::BusTransfer, static_cast<std::int16_t>(src),
                  kNoCtx, start, end, static_cast<std::uint64_t>(dst),
                  static_cast<std::uint64_t>(hops) |
                      (static_cast<std::uint64_t>(bridgeWait) << 16)});
    }

    /**
     * A context descriptor crossed a shard boundary: distance-aware
     * placement or fail-stop recovery homed @p ctx on a PE in a
     * different local ring than @p fromPe's (hierarchical topologies
     * only; never emitted on the flat ring).
     */
    void
    ctxMigrate(Cycle at, int pe, CtxId ctx, int fromPe)
    {
        if (enabled_ || sink_)
            emit({EventKind::CtxMigrate, static_cast<std::int16_t>(pe),
                  ctx, at, 0, static_cast<std::uint64_t>(fromPe), 0});
    }

    void
    trapEnter(Cycle at, int pe, std::uint64_t number, long serviceCycles)
    {
        if (enabled_ || sink_)
            emit({EventKind::TrapEnter, static_cast<std::int16_t>(pe),
                  kNoCtx, at, 0, number,
                  static_cast<std::uint64_t>(serviceCycles)});
    }

    void
    peBusy(Cycle start, Cycle end, int pe, CtxId ctx)
    {
        if (enabled_ || sink_)
            emit({EventKind::PeBusy, static_cast<std::int16_t>(pe), ctx,
                  start, end, 0, 0});
    }

    /**
     * An injected fault (src/fault). @p kindBit is the fault::FaultKind
     * bit; @p payload is kind-specific (destination PE for bus faults,
     * delay/stall cycles, corrupted channel id).
     */
    void
    faultInject(Cycle at, int pe, std::uint64_t kindBit,
                std::uint64_t payload)
    {
        if (enabled_ || sink_)
            emit({EventKind::FaultInject, static_cast<std::int16_t>(pe),
                  kNoCtx, at, 0, kindBit, payload});
    }

    /**
     * A recovery action for an injected fault: a bus retry (@p payload
     * = attempt number) or a checksum-detected corruption (@p payload
     * = channel id).
     */
    void
    faultRecover(Cycle at, int pe, std::uint64_t kindBit,
                 std::uint64_t payload)
    {
        if (enabled_ || sink_)
            emit({EventKind::FaultRecover, static_cast<std::int16_t>(pe),
                  kNoCtx, at, 0, kindBit, payload});
    }

    // --- Inspection ------------------------------------------------------

    const std::vector<Event> &events() const { return events_; }
    std::size_t dropped() const { return dropped_; }

    /**
     * Rewind support for checkpoint restore (mp::System): a mark
     * captures the recorder position, and rewinding to it discards
     * every event recorded since, so a replayed run's trace does not
     * contain the abandoned timeline.
     */
    struct Mark
    {
        std::size_t events = 0;
        std::size_t dropped = 0;
        std::array<std::size_t, kEventKinds> kindCounts{};
    };

    Mark
    mark() const
    {
        return {events_.size(), dropped_, kindCounts_};
    }

    void
    rewind(const Mark &mark)
    {
        events_.resize(mark.events);
        dropped_ = mark.dropped;
        kindCounts_ = mark.kindCounts;
    }

    /**
     * Replace the recorded stream outright (durable checkpoint
     * restore in a fresh process): the events captured up to the
     * persisted mark are reinstated so the resumed run's exported
     * trace is byte-identical to an uninterrupted run's.
     */
    void
    restoreStream(std::vector<Event> events, std::size_t dropped,
                  const std::array<std::size_t, kEventKinds> &kindCounts)
    {
        events_ = std::move(events);
        dropped_ = dropped;
        kindCounts_ = kindCounts;
    }

    /** Number of recorded events of @p kind. */
    std::size_t
    countOf(EventKind kind) const
    {
        return kindCounts_[static_cast<std::size_t>(kind)];
    }

    /**
     * Plain-text timeline summary: per-kind totals, per-PE busy time,
     * and the tail of the event stream. Reused by deadlock reports.
     */
    std::string summary(std::size_t tailEvents = 16) const;

  private:
    void push(const Event &event);

    /** Fan one built event out to the sink and the gated recorder. */
    void
    emit(const Event &event)
    {
        if (sink_)
            sink_->record(event);
        if (enabled_)
            push(event);
    }

    EventSink *sink_ = nullptr;
    bool enabled_ = false;
    std::size_t maxEvents_ = 0;
    std::size_t dropped_ = 0;
    std::vector<Event> events_;
    std::array<std::size_t, kEventKinds> kindCounts_{};
};

/** Short lower-case label for an event kind ("ctx-create", ...). */
const char *toString(EventKind kind);

/** Short label for a park reason ("channel", "timer", "resident"). */
const char *toString(ParkReason reason);

} // namespace qm::trace
