#include "trace/analyze.hpp"

#include <algorithm>
#include <cstdlib>
#include <locale>
#include <map>
#include <set>
#include <sstream>

#include "support/cli.hpp"
#include "support/diagnostics.hpp"
#include "support/format.hpp"
#include "support/json_parse.hpp"
#include "support/table.hpp"

namespace qm::trace {

namespace {

/**
 * "pe3 -> pe5" -> 5; -1 when the pattern is absent or the destination
 * is not a plain integer ("pe3 -> pe", "pe3 -> peXL"). A malformed
 * name must not silently attribute the transfer to PE 0.
 */
int
parseBusDst(const std::string &name)
{
    const std::string arrow = " -> pe";
    std::size_t pos = name.find(arrow);
    if (pos == std::string::npos)
        return -1;
    auto dst = tryParseInt(name.substr(pos + arrow.size()));
    if (!dst || *dst < 0)
        return -1;
    return static_cast<int>(*dst);
}

/** "park (channel)" -> ParkReason::Channel (Channel on no match). */
ParkReason
parseParkReason(const std::string &name)
{
    if (name.find("(timer)") != std::string::npos)
        return ParkReason::Timer;
    if (name.find("(resident)") != std::string::npos)
        return ParkReason::Resident;
    return ParkReason::Channel;
}

/** "fault kind-bit 8" -> 8 (the trailing integer of the name). */
std::uint64_t
parseTrailingInt(const std::string &name)
{
    std::size_t pos = name.find_last_of(' ');
    if (pos == std::string::npos)
        return 0;
    return static_cast<std::uint64_t>(
        std::strtoull(name.c_str() + pos + 1, nullptr, 10));
}

const char *
reasonWord(ParkReason reason)
{
    switch (reason) {
      case ParkReason::Channel: return "channel";
      case ParkReason::Timer: return "timer";
      case ParkReason::Resident: return "resident";
    }
    return "channel";
}

/** Everything the analyses need to know about one context. */
struct CtxInfo
{
    bool created = false;
    Cycle createAt = 0;
    int forkingPe = -1;
    bool finished = false;
    Cycle finishAt = 0;
    std::vector<std::pair<Cycle, int>> dispatches;  ///< (at, pe).
    std::vector<std::pair<Cycle, ParkReason>> parks;
    /** Busy spans (at, end, pe), ascending by start. */
    struct Span
    {
        Cycle at;
        Cycle end;
        int pe;
    };
    std::vector<Span> spans;
};

/** Park reason governing the blocked gap that ends at @p redispatch. */
ParkReason
gapReason(const CtxInfo &info, Cycle gapStart, Cycle redispatch)
{
    // The park event that opened the gap carries the reason; it is
    // stamped at the gap's start (roll-out completion). Pick the last
    // park at or before the redispatch but not before the gap.
    ParkReason reason = ParkReason::Channel;
    for (const auto &[at, r] : info.parks) {
        if (at > redispatch)
            break;
        if (at >= gapStart)
            reason = r;
    }
    return reason;
}

} // namespace

std::vector<Event>
loadChromeTrace(const std::string &path, std::uint64_t *dropped)
{
    JsonValue doc = parseJsonFile(path);
    fatalIf(doc.kind != JsonValue::Kind::Object,
            "trace file is not a JSON object: ", path);
    if (dropped)
        *dropped =
            static_cast<std::uint64_t>(doc.intval("qmDroppedEvents", 0));
    const JsonValue &rows = doc.get("traceEvents");
    fatalIf(rows.kind != JsonValue::Kind::Array,
            "trace file has no traceEvents array: ", path);

    std::vector<Event> events;
    events.reserve(rows.items.size());
    for (const JsonValue &row : rows.items) {
        if (row.kind != JsonValue::Kind::Object)
            continue;
        std::string ph = row.str("ph");
        if (ph.empty() || ph == "M")
            continue;
        std::string category = row.str("cat");
        std::string name = row.str("name");
        const JsonValue &args = row.get("args");
        Event e;
        e.at = static_cast<Cycle>(row.intval("ts", 0));
        if (ph == "X") {
            e.end = e.at + static_cast<Cycle>(row.intval("dur", 1));
            if (category == "run") {
                e.kind = EventKind::PeBusy;
                e.pe = static_cast<std::int16_t>(row.intval("pid", 0));
                e.ctx = static_cast<CtxId>(args.intval("ctx", kNoCtx));
            } else if (category == "kernel") {
                e.kind = EventKind::TrapEnter;
                e.pe = static_cast<std::int16_t>(row.intval("pid", 0));
                e.a = static_cast<std::uint64_t>(args.intval("trap", 0));
                e.b = static_cast<std::uint64_t>(
                    args.intval("service_cycles", 0));
                e.end = 0;  // TrapEnter is a point event in the stream.
            } else if (category == "bus") {
                e.kind = EventKind::BusTransfer;
                e.pe = static_cast<std::int16_t>(row.intval("tid", 0));
                e.a = static_cast<std::uint64_t>(parseBusDst(name));
                // Reconstruct the tracer's payload packing: hops in the
                // low 16 bits, bridge/backbone wait above them.
                e.b = static_cast<std::uint64_t>(args.intval("hops", 0)) |
                      (static_cast<std::uint64_t>(
                           args.intval("bridge_wait", 0))
                       << 16);
            } else {
                continue;  // unknown span category
            }
        } else if (ph == "i") {
            if (category == "channel") {
                e.kind = EventKind::Rendezvous;
                e.ctx =
                    static_cast<CtxId>(args.intval("receiver", kNoCtx));
                e.a = static_cast<std::uint64_t>(row.intval("tid", 0));
                e.b = static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    args.intval("value", 0)));
            } else if (category == "lifecycle") {
                e.kind = EventKind::CtxPark;
                e.pe = static_cast<std::int16_t>(row.intval("pid", 0));
                e.ctx = static_cast<CtxId>(args.intval("ctx", kNoCtx));
                e.a = static_cast<std::uint64_t>(parseParkReason(name));
            } else if (category == "fault") {
                e.kind = name.compare(0, 6, "fault ") == 0
                             ? EventKind::FaultInject
                             : EventKind::FaultRecover;
                e.pe = static_cast<std::int16_t>(row.intval("pid", 0));
                e.a = parseTrailingInt(name);
                e.b = static_cast<std::uint64_t>(args.intval("info", 0));
            } else if (category == "shard") {
                e.kind = EventKind::CtxMigrate;
                e.pe = static_cast<std::int16_t>(row.intval("pid", 0));
                e.ctx = static_cast<CtxId>(args.intval("ctx", kNoCtx));
                e.a = static_cast<std::uint64_t>(
                    args.intval("from_pe", 0));
            } else {
                continue;
            }
        } else if (ph == "s") {
            e.kind = EventKind::CtxCreate;
            // The exporter stamps the forking PE as the flow source's
            // pid; the home PE is not recoverable from the file (the
            // first dispatch reveals it).
            e.pe = -1;
            e.ctx = static_cast<CtxId>(row.intval("id", kNoCtx));
            e.a = static_cast<std::uint64_t>(row.intval("pid", 0));
        } else if (ph == "t") {
            e.kind = EventKind::CtxDispatch;
            e.pe = static_cast<std::int16_t>(row.intval("pid", 0));
            e.ctx = static_cast<CtxId>(row.intval("id", kNoCtx));
        } else if (ph == "f") {
            e.kind = EventKind::CtxFinish;
            e.pe = static_cast<std::int16_t>(row.intval("pid", 0));
            e.ctx = static_cast<CtxId>(row.intval("id", kNoCtx));
        } else {
            continue;  // counters etc.: not produced by the exporter
        }
        events.push_back(e);
    }
    return events;
}

Profile
analyzeTrace(const std::vector<Event> &events,
             const AnalyzeOptions &options)
{
    Profile profile;
    std::map<CtxId, CtxInfo> ctxs;
    int max_pe = -1;

    for (const Event &e : events) {
        profile.totalCycles =
            std::max(profile.totalCycles, std::max(e.at, e.end));
        if (e.pe > max_pe)
            max_pe = e.pe;
        switch (e.kind) {
          case EventKind::CtxCreate: {
            CtxInfo &info = ctxs[e.ctx];
            info.created = true;
            info.createAt = e.at;
            info.forkingPe = static_cast<int>(e.a);
            max_pe = std::max(max_pe, static_cast<int>(e.a));
            break;
          }
          case EventKind::CtxDispatch:
            ctxs[e.ctx].dispatches.push_back({e.at, e.pe});
            break;
          case EventKind::CtxPark:
            ctxs[e.ctx].parks.push_back(
                {e.at, static_cast<ParkReason>(e.a)});
            break;
          case EventKind::CtxFinish: {
            CtxInfo &info = ctxs[e.ctx];
            info.finished = true;
            info.finishAt = e.at;
            break;
          }
          case EventKind::PeBusy:
            if (e.ctx != kNoCtx)
                ctxs[e.ctx].spans.push_back({e.at, e.end, e.pe});
            break;
          case EventKind::BusTransfer:
            max_pe = std::max(max_pe, static_cast<int>(e.a));
            ++profile.busTransfers;
            profile.busCycles += e.end - e.at;
            profile.bridgeWaitCycles += static_cast<Cycle>(e.b >> 16);
            break;
          case EventKind::CtxMigrate:
            ++profile.migrations;
            break;
          default:
            break;
        }
    }
    profile.numPes = max_pe + 1;
    for (auto &[id, info] : ctxs) {
        std::sort(info.spans.begin(), info.spans.end(),
                  [](const CtxInfo::Span &x, const CtxInfo::Span &y) {
                      return x.at != y.at ? x.at < y.at : x.end < y.end;
                  });
        std::sort(info.dispatches.begin(), info.dispatches.end());
        std::sort(info.parks.begin(), info.parks.end());
        if (info.created || !info.spans.empty() ||
            !info.dispatches.empty())
            ++profile.contexts;
        if (info.finished)
            ++profile.finished;
    }

    // ---- Critical path --------------------------------------------------
    // Start from the last context to finish (falling back to the
    // latest busy span) and walk strictly backward in time: run spans
    // on the context's own PE, blocked gaps between them attributed by
    // park reason, and at the context's creation cross to the parent -
    // the context whose busy span on the forking PE covers the fork
    // cycle. Every segment ends at or before the previous one starts,
    // so the summed length can never exceed the run's total cycles.
    CtxId cur = kNoCtx;
    Cycle t = -1;
    for (const auto &[id, info] : ctxs) {
        Cycle done = info.finished
                         ? info.finishAt
                         : (info.spans.empty() ? -1
                                               : info.spans.back().end);
        if (done > t) {
            t = done;
            cur = id;
        }
    }
    std::set<CtxId> visited;
    while (cur != kNoCtx && visited.insert(cur).second) {
        const CtxInfo &info = ctxs[cur];
        // Index of the last span starting before the walk frontier.
        int idx = -1;
        for (std::size_t i = 0; i < info.spans.size(); ++i)
            if (info.spans[i].at < t)
                idx = static_cast<int>(i);
        for (; idx >= 0; --idx) {
            const CtxInfo::Span &span =
                info.spans[static_cast<std::size_t>(idx)];
            Cycle run_hi = std::min(t, span.end);
            if (run_hi > span.at)
                profile.criticalPath.push_back(
                    {PathSegment::Kind::Run, cur, span.pe, span.at,
                     run_hi, ""});
            t = span.at;
            Cycle lower = idx > 0
                              ? info.spans[static_cast<std::size_t>(
                                               idx - 1)]
                                    .end
                              : (info.created ? info.createAt : t);
            if (t > lower) {
                std::string reason =
                    idx > 0 ? reasonWord(gapReason(info, lower, t))
                            : "startup";
                profile.criticalPath.push_back(
                    {PathSegment::Kind::Blocked, cur, -1, lower, t,
                     reason});
                t = lower;
            }
        }
        if (!info.created)
            break;
        t = std::min(t, info.createAt);
        // Cross to the forking parent: the context whose busy span on
        // the forking PE covers the fork cycle.
        CtxId parent = kNoCtx;
        for (const auto &[id, other] : ctxs) {
            if (id == cur)
                continue;
            for (const CtxInfo::Span &span : other.spans)
                if (span.pe == info.forkingPe && span.at <= t &&
                    t <= span.end) {
                    parent = id;
                    break;
                }
            if (parent != kNoCtx)
                break;
        }
        if (parent == kNoCtx)
            break;
        profile.criticalPath.push_back({PathSegment::Kind::Fork, cur,
                                        info.forkingPe, t, t, ""});
        cur = parent;
    }
    for (const PathSegment &seg : profile.criticalPath)
        profile.criticalPathCycles += seg.length();

    // ---- Blocked-time attribution ---------------------------------------
    for (const auto &[id, info] : ctxs) {
        if (info.spans.empty())
            continue;  // never ran: starvation digest material
        BlockedReport report;
        report.ctx = id;
        if (info.created && info.spans.front().at > info.createAt)
            report.startup = info.spans.front().at - info.createAt;
        for (std::size_t i = 0; i + 1 < info.spans.size(); ++i) {
            Cycle gap_start = info.spans[i].end;
            Cycle gap_end = info.spans[i + 1].at;
            if (gap_end <= gap_start)
                continue;
            Cycle gap = gap_end - gap_start;
            switch (gapReason(info, gap_start, gap_end)) {
              case ParkReason::Channel: report.channel += gap; break;
              case ParkReason::Timer: report.timer += gap; break;
              case ParkReason::Resident: report.resident += gap; break;
            }
        }
        report.total = report.startup + report.channel + report.timer +
                       report.resident;
        if (report.total > 0)
            profile.blockedTop.push_back(report);
    }
    std::sort(profile.blockedTop.begin(), profile.blockedTop.end(),
              [](const BlockedReport &x, const BlockedReport &y) {
                  if (x.total != y.total)
                      return x.total > y.total;
                  return x.ctx < y.ctx;
              });

    // ---- Per-PE utilization timelines -----------------------------------
    int buckets = std::max(1, options.timelineBuckets);
    profile.peTimelines.resize(
        static_cast<std::size_t>(std::max(0, profile.numPes)));
    for (int pe = 0; pe < profile.numPes; ++pe) {
        profile.peTimelines[static_cast<std::size_t>(pe)].pe = pe;
        profile.peTimelines[static_cast<std::size_t>(pe)]
            .buckets.assign(static_cast<std::size_t>(buckets), 0.0);
    }
    Cycle span_total = std::max<Cycle>(profile.totalCycles, 1);
    Cycle bucket_width = (span_total + buckets - 1) / buckets;
    bucket_width = std::max<Cycle>(bucket_width, 1);
    for (const Event &e : events) {
        if (e.kind != EventKind::PeBusy || e.pe < 0 ||
            e.pe >= profile.numPes)
            continue;
        PeTimeline &line =
            profile.peTimelines[static_cast<std::size_t>(e.pe)];
        line.busy += e.end - e.at;
        for (Cycle c = e.at; c < e.end;) {
            Cycle bucket = c / bucket_width;
            Cycle bucket_end = (bucket + 1) * bucket_width;
            Cycle hi = std::min(e.end, bucket_end);
            if (bucket < buckets)
                line.buckets[static_cast<std::size_t>(bucket)] +=
                    static_cast<double>(hi - c);
            c = hi;
        }
    }
    for (PeTimeline &line : profile.peTimelines)
        for (double &fill : line.buckets)
            fill /= static_cast<double>(bucket_width);

    // ---- Starvation digest ----------------------------------------------
    for (const auto &[id, info] : ctxs) {
        if (info.finished)
            continue;
        if (!info.created && info.spans.empty() &&
            info.dispatches.empty())
            continue;
        StarvedContext row;
        row.ctx = id;
        row.createdAt = info.createAt;
        row.dispatched = !info.dispatches.empty();
        if (!row.dispatched) {
            row.lastState = "never dispatched";
        } else {
            Cycle last_dispatch = info.dispatches.back().first;
            if (!info.parks.empty() &&
                info.parks.back().first >= last_dispatch)
                row.lastState =
                    cat("parked (", reasonWord(info.parks.back().second),
                        ") at cycle ", info.parks.back().first);
            else
                row.lastState = cat("running at trace end (dispatched "
                                    "at cycle ",
                                    last_dispatch, ")");
        }
        profile.starved.push_back(row);
    }

    return profile;
}

std::string
Profile::render(const AnalyzeOptions &options) const
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << "qmprof report\n"
       << "  total cycles: " << totalCycles << "\n"
       << "  PEs:          " << numPes << "\n"
       << "  contexts:     " << contexts << " created, " << finished
       << " finished\n";
    if (dropped > 0)
        os << "  WARNING: trace truncated (" << dropped
           << " events dropped past the cap); every figure below "
              "undercounts\n";
    os << "\n";

    // Critical path.
    Cycle run_cycles = 0, blocked_cycles = 0;
    for (const PathSegment &seg : criticalPath) {
        if (seg.kind == PathSegment::Kind::Run)
            run_cycles += seg.length();
        else if (seg.kind == PathSegment::Kind::Blocked)
            blocked_cycles += seg.length();
    }
    os << "critical path: " << criticalPathCycles << " cycles";
    if (totalCycles > 0)
        os << " ("
           << fixed(100.0 * static_cast<double>(criticalPathCycles) /
                        static_cast<double>(totalCycles),
                    1)
           << "% of the run)";
    os << "\n  running " << run_cycles << ", blocked " << blocked_cycles
       << ", across " << criticalPath.size() << " segments\n";
    const std::size_t max_rows = 32;
    for (std::size_t i = 0; i < criticalPath.size(); ++i) {
        if (i >= max_rows) {
            os << "  ... " << criticalPath.size() - max_rows
               << " more segments\n";
            break;
        }
        const PathSegment &seg = criticalPath[i];
        os << "  [" << seg.from << ".." << seg.to << "] ";
        switch (seg.kind) {
          case PathSegment::Kind::Run:
            os << "ctx " << seg.ctx << " ran " << seg.length()
               << " cycles on pe" << seg.pe;
            break;
          case PathSegment::Kind::Blocked:
            os << "ctx " << seg.ctx << " blocked " << seg.length()
               << " cycles (" << seg.reason << ")";
            break;
          case PathSegment::Kind::Fork:
            os << "ctx " << seg.ctx << " forked on pe" << seg.pe;
            break;
        }
        os << "\n";
    }
    os << "\n";

    // Bus / topology attribution.
    if (busTransfers > 0 || migrations > 0) {
        os << "ring bus: " << busTransfers << " remote transfers, "
           << busCycles << " cycles on the wire\n";
        if (bridgeWaitCycles > 0)
            os << "  bridge/backbone wait: " << bridgeWaitCycles
               << " cycles ("
               << fixed(100.0 * static_cast<double>(bridgeWaitCycles) /
                            static_cast<double>(
                                std::max<Cycle>(busCycles, 1)),
                        1)
               << "% of bus time)\n";
        if (migrations > 0)
            os << "  cross-shard migrations: " << migrations << "\n";
        os << "\n";
    }

    // Blocked-time table.
    os << "top contexts by blocked time:\n";
    if (blockedTop.empty()) {
        os << "  (no context ever blocked)\n";
    } else {
        TextTable table({"ctx", "blocked", "startup", "channel",
                         "timer", "resident"});
        std::size_t rows = std::min(
            blockedTop.size(),
            static_cast<std::size_t>(std::max(1, options.topK)));
        for (std::size_t i = 0; i < rows; ++i) {
            const BlockedReport &r = blockedTop[i];
            table.addRow({std::to_string(r.ctx),
                          std::to_string(r.total),
                          std::to_string(r.startup),
                          std::to_string(r.channel),
                          std::to_string(r.timer),
                          std::to_string(r.resident)});
        }
        os << table.render();
        if (blockedTop.size() > rows)
            os << "  ... " << blockedTop.size() - rows
               << " more blocked contexts\n";
    }
    os << "\n";

    // Utilization timelines.
    os << "per-PE utilization over " << options.timelineBuckets
       << " buckets:\n";
    constexpr const char *kShades = " .:-=+*#%@";
    for (const PeTimeline &line : peTimelines) {
        os << "  pe" << line.pe << " [";
        for (double fill : line.buckets) {
            int shade = static_cast<int>(fill * 10.0);
            shade = std::clamp(shade, 0, 9);
            os << kShades[shade];
        }
        double util =
            totalCycles > 0 ? static_cast<double>(line.busy) /
                                  static_cast<double>(totalCycles)
                            : 0.0;
        os << "] " << fixed(100.0 * util, 1) << "% busy\n";
    }
    os << "\n";

    // Starvation digest.
    if (starved.empty()) {
        os << "deadlock/starvation digest: all " << finished
           << " contexts finished\n";
    } else {
        os << "deadlock/starvation digest: " << starved.size()
           << " context(s) never finished\n";
        for (const StarvedContext &row : starved)
            os << "  ctx " << row.ctx << " (created at cycle "
               << row.createdAt << "): " << row.lastState << "\n";
    }
    return os.str();
}

} // namespace qm::trace
