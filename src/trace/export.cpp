#include "trace/export.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/format.hpp"
#include "support/json.hpp"

namespace qm::trace {

namespace {

/** Highest PE index seen anywhere in the stream, -1 when none. */
int
maxPeIndex(const Tracer &tracer)
{
    int max_pe = -1;
    for (const Event &e : tracer.events()) {
        if (e.pe > max_pe)
            max_pe = e.pe;
        if (e.kind == EventKind::BusTransfer)
            max_pe = std::max(max_pe, static_cast<int>(e.a));
        if (e.kind == EventKind::CtxCreate)
            max_pe = std::max(max_pe, static_cast<int>(e.a));
    }
    return max_pe;
}

void
metaProcess(JsonWriter &json, int pid, const std::string &name,
            int sortIndex)
{
    json.beginObject()
        .key("name").value("process_name")
        .key("ph").value("M")
        .key("pid").value(pid)
        .key("args").beginObject().key("name").value(name).endObject()
        .endObject();
    json.beginObject()
        .key("name").value("process_sort_index")
        .key("ph").value("M")
        .key("pid").value(pid)
        .key("args").beginObject().key("sort_index").value(sortIndex)
        .endObject()
        .endObject();
}

void
spanEvent(JsonWriter &json, const std::string &name,
          const std::string &category, int pid, int tid, Cycle start,
          Cycle dur)
{
    json.beginObject()
        .key("name").value(name)
        .key("cat").value(category)
        .key("ph").value("X")
        .key("ts").value(start)
        .key("dur").value(dur < 1 ? 1 : dur)
        .key("pid").value(pid)
        .key("tid").value(tid);
}

void
flowEvent(JsonWriter &json, const char *phase, CtxId ctx, int pid,
          Cycle ts)
{
    json.beginObject()
        .key("name").value(cat("ctx ", ctx))
        .key("cat").value("lifecycle")
        .key("ph").value(phase)
        .key("id").value(ctx)
        .key("ts").value(ts)
        .key("pid").value(pid)
        .key("tid").value(0);
    // Flow steps bind to the enclosing slice; "e" makes the binding
    // explicit at the event's own timestamp.
    if (phase[0] == 't' || phase[0] == 'f')
        json.key("bp").value("e");
    json.endObject();
}

} // namespace

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    JsonWriter json(os);
    int num_pes = maxPeIndex(tracer) + 1;
    int bus_pid = num_pes;
    int chan_pid = num_pes + 1;

    json.beginObject();
    json.key("displayTimeUnit").value("ms");
    json.key("traceEvents").beginArray();

    for (int pe = 0; pe < num_pes; ++pe)
        metaProcess(json, pe, cat("PE ", pe), pe);
    if (tracer.countOf(EventKind::BusTransfer) > 0)
        metaProcess(json, bus_pid, "ring bus", num_pes);
    if (tracer.countOf(EventKind::Rendezvous) > 0)
        metaProcess(json, chan_pid, "channels", num_pes + 1);

    for (const Event &e : tracer.events()) {
        switch (e.kind) {
          case EventKind::PeBusy:
            spanEvent(json, cat("ctx ", e.ctx), "run", e.pe, 0, e.at,
                      e.end - e.at);
            json.key("args").beginObject()
                .key("ctx").value(e.ctx)
                .endObject()
                .endObject();
            break;
          case EventKind::TrapEnter:
            spanEvent(json, cat("trap #", e.a), "kernel", e.pe, 0, e.at,
                      static_cast<Cycle>(e.b));
            json.key("args").beginObject()
                .key("trap").value(e.a)
                .key("service_cycles").value(e.b)
                .endObject()
                .endObject();
            break;
          case EventKind::BusTransfer: {
            spanEvent(json,
                      cat("pe", e.pe, " -> pe", e.a), "bus", bus_pid,
                      e.pe, e.at, e.end - e.at);
            json.key("args").beginObject()
                .key("hops").value(e.b & 0xFFFFu);
            // Hierarchical payload packing; zero on the flat ring so
            // flat traces keep their historical bytes.
            if ((e.b >> 16) != 0)
                json.key("bridge_wait").value(e.b >> 16);
            json.endObject().endObject();
            break;
          }
          case EventKind::Rendezvous:
            json.beginObject()
                .key("name").value(cat("ch ", e.a))
                .key("cat").value("channel")
                .key("ph").value("i")
                .key("s").value("p")
                .key("ts").value(e.at)
                .key("pid").value(chan_pid)
                .key("tid").value(static_cast<std::int64_t>(e.a))
                .key("args").beginObject()
                .key("receiver").value(e.ctx)
                .key("value").value(
                    static_cast<std::int64_t>(
                        static_cast<std::int32_t>(e.b)))
                .endObject()
                .endObject();
            break;
          case EventKind::CtxCreate:
            flowEvent(json, "s", e.ctx,
                      static_cast<int>(e.a), e.at);
            break;
          case EventKind::CtxDispatch:
            flowEvent(json, "t", e.ctx, e.pe, e.at);
            break;
          case EventKind::CtxFinish:
            flowEvent(json, "f", e.ctx, e.pe, e.at);
            break;
          case EventKind::FaultInject:
          case EventKind::FaultRecover:
            json.beginObject()
                .key("name").value(
                    cat(e.kind == EventKind::FaultInject
                            ? "fault kind-bit "
                            : "recover kind-bit ",
                        e.a))
                .key("cat").value("fault")
                .key("ph").value("i")
                .key("s").value("t")
                .key("ts").value(e.at)
                .key("pid").value(e.pe < 0 ? 0 : e.pe)
                .key("tid").value(0)
                .key("args").beginObject()
                .key("info").value(e.b)
                .endObject()
                .endObject();
            break;
          case EventKind::CtxMigrate:
            json.beginObject()
                .key("name").value(cat("migrate ctx ", e.ctx))
                .key("cat").value("shard")
                .key("ph").value("i")
                .key("s").value("t")
                .key("ts").value(e.at)
                .key("pid").value(e.pe < 0 ? 0 : e.pe)
                .key("tid").value(0)
                .key("args").beginObject()
                .key("ctx").value(e.ctx)
                .key("from_pe").value(e.a)
                .endObject()
                .endObject();
            break;
          case EventKind::CtxPark:
            json.beginObject()
                .key("name").value(
                    cat("park (",
                        toString(static_cast<ParkReason>(e.a)), ")"))
                .key("cat").value("lifecycle")
                .key("ph").value("i")
                .key("s").value("t")
                .key("ts").value(e.at)
                .key("pid").value(e.pe)
                .key("tid").value(0)
                .key("args").beginObject()
                .key("ctx").value(e.ctx)
                .endObject()
                .endObject();
            break;
        }
    }

    json.endArray();
    if (tracer.dropped() > 0)
        json.key("qmDroppedEvents").value(tracer.dropped());
    json.endObject();
    os << "\n";
}

std::string
chromeTraceJson(const Tracer &tracer)
{
    std::ostringstream os;
    writeChromeTrace(os, tracer);
    return os.str();
}

void
writeChromeTraceFile(const std::string &path, const Tracer &tracer)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot open trace output file: ", path);
    writeChromeTrace(out, tracer);
}

} // namespace qm::trace
