/**
 * @file
 * Trace exporters: Chrome trace_event JSON (loadable in
 * chrome://tracing or https://ui.perfetto.dev) and file helpers.
 *
 * Mapping: each PE is one trace "process" (pid = PE index) whose row
 * shows the context busy spans and kernel trap slices executed there;
 * the ring bus is an extra process (pid = number of PEs) with one
 * thread per source PE; channel rendezvous land on a "channels"
 * process. Context lifecycles are flow events (s/t/f) threaded through
 * create -> dispatch -> finish, so a forked context's migration across
 * PEs draws as an arrow. Timestamps are simulated cycles, presented as
 * microseconds (the trace viewer's native unit).
 */
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace qm::trace {

/** Render the whole event stream as Chrome trace_event JSON. */
void writeChromeTrace(std::ostream &os, const Tracer &tracer);

/** Convenience: render to a string (tests, small traces). */
std::string chromeTraceJson(const Tracer &tracer);

/**
 * Write the Chrome trace JSON to @p path.
 * Throws FatalError when the file cannot be opened.
 */
void writeChromeTraceFile(const std::string &path, const Tracer &tracer);

} // namespace qm::trace
