#include "obs/flight.hpp"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "support/json.hpp"

namespace qm::obs {

namespace {

/**
 * Ring layout. Scheduling events dominate the stream, so the sched
 * ring is the deepest; the checkpoint ring is tiny because boundary
 * events are rare and each one is a complete progress marker. Total
 * footprint is a few hundred 40-byte events — well under the "plain
 * counters and bounded memory" budget.
 */
enum RingId
{
    kRingSched = 0,   ///< Context lifecycle + PE busy spans.
    kRingBus,         ///< Ring-bus transfers and channel rendezvous.
    kRingKernel,      ///< Kernel trap entries.
    kRingFault,       ///< Fault injections and recovery actions.
    kRingCheckpoint,  ///< Checkpoint/restore boundaries (synthetic).
    kNumRings,
};

constexpr std::size_t kRingCapacity[kNumRings] = {256, 128, 128, 64, 32};
constexpr const char *kRingName[kNumRings] = {
    "sched", "bus", "kernel", "fault", "checkpoint"};

bool
flightDisabledByEnv()
{
    const char *env = std::getenv("QM_FLIGHT");
    if (env == nullptr)
        return false;
    return std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0;
}

void
writeEvent(JsonWriter &json, const trace::Event &event)
{
    json.beginObject();
    json.key("kind").value(flightKindName(event.kind));
    json.key("pe").value(static_cast<int>(event.pe));
    if (event.ctx != trace::kNoCtx)
        json.key("ctx").value(event.ctx);
    json.key("at").value(event.at);
    if (event.end != 0)
        json.key("end").value(event.end);
    json.key("a").value(event.a);
    json.key("b").value(event.b);
    json.endObject();
}

} // namespace

const char *
flightKindName(trace::EventKind kind)
{
    if (kind == kCheckpointKind)
        return "checkpoint";
    if (kind == kRestoreKind)
        return "restore";
    return trace::toString(kind);
}

std::vector<trace::Event>
FlightRing::ordered() const
{
    std::vector<trace::Event> out;
    out.reserve(events_.size());
    if (recorded_ <= capacity_) {
        out = events_;
        return out;
    }
    std::size_t start = static_cast<std::size_t>(recorded_ % capacity_);
    for (std::size_t i = 0; i < events_.size(); ++i)
        out.push_back(events_[(start + i) % capacity_]);
    return out;
}

FlightRecorder::FlightRecorder()
{
    enabled_ = !flightDisabledByEnv();
    rings_.reserve(kNumRings);
    for (int r = 0; r < kNumRings; ++r)
        rings_.emplace_back(kRingName[r], kRingCapacity[r]);
}

FlightRing &
FlightRecorder::ringFor(trace::EventKind kind)
{
    switch (kind) {
      case trace::EventKind::Rendezvous:
      case trace::EventKind::BusTransfer:
        return rings_[kRingBus];
      case trace::EventKind::TrapEnter:
        return rings_[kRingKernel];
      case trace::EventKind::FaultInject:
      case trace::EventKind::FaultRecover:
        return rings_[kRingFault];
      default:
        break;
    }
    if (kind == kCheckpointKind || kind == kRestoreKind)
        return rings_[kRingCheckpoint];
    return rings_[kRingSched];
}

void
FlightRecorder::record(const trace::Event &event)
{
    // mp::System never attaches a disabled recorder as the Tracer's
    // sink, but the kill switch must hold for direct callers too.
    if (!enabled_)
        return;
    ++counts_[static_cast<std::size_t>(event.kind)];
    ringFor(event.kind).push(event);
}

void
FlightRecorder::checkpoint(trace::Cycle at, int liveContexts)
{
    if (!enabled_)
        return;
    ++checkpointCount_;
    rings_[kRingCheckpoint].push(
        {kCheckpointKind, -1, trace::kNoCtx, at, 0,
         static_cast<std::uint64_t>(liveContexts), checkpointCount_});
}

void
FlightRecorder::noteRestore(trace::Cycle at)
{
    if (!enabled_)
        return;
    ++restoreCount_;
    rings_[kRingCheckpoint].push({kRestoreKind, -1, trace::kNoCtx, at,
                                  0, 0, restoreCount_});
}

std::uint64_t
FlightRecorder::countOf(trace::EventKind kind) const
{
    return counts_[static_cast<std::size_t>(kind)];
}

std::string
FlightRecorder::dump(const FlightHeader &header) const
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.key("schema").value("qm.flight.v1");
    json.key("reason").value(header.reason);
    json.key("cycle").value(header.cycle);
    json.key("pes").value(header.pes);
    json.key("live_contexts").value(header.liveContexts);
    json.key("counts").beginObject();
    for (int k = 0; k < trace::kEventKinds; ++k)
        if (counts_[static_cast<std::size_t>(k)] != 0)
            json.key(trace::toString(static_cast<trace::EventKind>(k)))
                .value(counts_[static_cast<std::size_t>(k)]);
    if (checkpointCount_ != 0)
        json.key("checkpoint").value(checkpointCount_);
    if (restoreCount_ != 0)
        json.key("restore").value(restoreCount_);
    json.endObject();
    json.key("rings").beginArray();
    for (const FlightRing &ring : rings_) {
        json.beginObject();
        json.key("name").value(ring.name());
        json.key("capacity").value(ring.capacity());
        json.key("recorded").value(ring.recorded());
        json.key("events").beginArray();
        for (const trace::Event &event : ring.ordered())
            writeEvent(json, event);
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
    return os.str();
}

persist::Status
FlightRecorder::dumpToFile(const std::string &path,
                           const FlightHeader &header) const
{
    std::string doc = dump(header);
    std::vector<std::uint8_t> bytes(doc.begin(), doc.end());
    return persist::writeFileAtomic(path, bytes);
}

persist::Status
writeFlightMarker(const std::string &path, const std::string &reason)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.key("schema").value("qm.flight.v1");
    json.key("reason").value(reason);
    json.key("cycle").value(0);
    json.key("pes").value(0);
    json.key("live_contexts").value(0);
    json.key("counts").beginObject().endObject();
    json.key("rings").beginArray().endArray();
    json.endObject();
    os << "\n";
    std::string doc = os.str();
    std::vector<std::uint8_t> bytes(doc.begin(), doc.end());
    return persist::writeFileAtomic(path, bytes);
}

} // namespace qm::obs
