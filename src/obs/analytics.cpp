#include "obs/analytics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "support/diagnostics.hpp"
#include "support/format.hpp"
#include "support/json_parse.hpp"

namespace qm::obs {

namespace {

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/** (series name, PE count) -> run object, as bench_compare.py keys. */
using RunMap = std::map<std::pair<std::string, int>, const JsonValue *>;

/**
 * Load one BENCH/metrics document and index its runs. Mirrors
 * bench_compare.py's load_runs contract: a missing, unreadable, or
 * structurally-wrong file is a one-line diagnostic and exit 2, never
 * a traceback.
 */
bool
loadRuns(const std::string &path, JsonValue &doc, RunMap &runs,
         std::ostream &err)
{
    try {
        doc = parseJsonFile(path);
    } catch (const std::exception &e) {
        err << "qmprof diff: " << path << ": " << e.what() << "\n";
        return false;
    }
    if (!doc.isObject()) {
        err << "qmprof diff: " << path
            << ": not a BENCH/metrics report (top level is not an "
               "object)\n";
        return false;
    }
    for (const JsonValue &series : doc.get("series").items) {
        if (!series.isObject())
            continue;
        std::string name = series.str("name", "?");
        for (const JsonValue &run : series.get("runs").items) {
            if (!run.isObject())
                continue;
            runs[{name, static_cast<int>(run.intval("pes"))}] = &run;
        }
    }
    return true;
}

std::string
pct(double fraction)
{
    std::ostringstream os;
    os << fixed(fraction * 100.0, 1) << "%";
    return os.str();
}

/** Per-counter deltas + histogram percentile divergence (metrics docs). */
void
diffRunMetrics(const std::string &cell, const JsonValue &base,
               const JsonValue &cur, std::ostream &out)
{
    const JsonValue &base_counters = base.get("counters");
    const JsonValue &cur_counters = cur.get("counters");
    if (base_counters.isObject() && cur_counters.isObject()) {
        for (const auto &[name, value] : base_counters.members) {
            double base_v = value.number;
            double cur_v = cur_counters.get(name).number;
            if (base_v != cur_v)
                out << "note: " << cell << ": counter " << name << " "
                    << fixed(base_v, 0) << " -> " << fixed(cur_v, 0)
                    << "\n";
        }
        for (const auto &[name, value] : cur_counters.members) {
            (void)value;
            if (base_counters.members.find(name) ==
                base_counters.members.end())
                out << "note: " << cell << ": counter " << name
                    << " is new\n";
        }
    }
    const JsonValue &base_hists = base.get("histograms");
    const JsonValue &cur_hists = cur.get("histograms");
    if (base_hists.isObject() && cur_hists.isObject()) {
        for (const auto &[name, bh] : base_hists.members) {
            auto it = cur_hists.members.find(name);
            if (it == cur_hists.members.end()) {
                out << "note: " << cell << ": histogram " << name
                    << " missing from current report\n";
                continue;
            }
            const JsonValue &ch = it->second;
            for (const char *p : {"p50", "p90", "p99"}) {
                double bp = bh.num(p);
                double cp = ch.num(p);
                if (bp != cp)
                    out << "note: " << cell << ": " << name << " " << p
                        << " " << fixed(bp, 1) << " -> " << fixed(cp, 1)
                        << "\n";
            }
        }
    }
}

// ---------------------------------------------------------------------------
// flight
// ---------------------------------------------------------------------------

/** One line of the rendered timeline for a recorded ring event. */
void
renderFlightEvent(const JsonValue &event, std::ostream &out)
{
    out << "    cycle " << event.intval("at") << ": "
        << event.str("kind", "?");
    long long pe = event.intval("pe", -1);
    if (pe >= 0)
        out << " pe=" << pe;
    auto ctx = event.members.find("ctx");
    if (ctx != event.members.end())
        out << " ctx=" << event.intval("ctx");
    long long end = event.intval("end");
    if (end != 0)
        out << " end=" << end;
    out << " a=" << event.intval("a") << " b=" << event.intval("b")
        << "\n";
}

} // namespace

int
diffReports(const std::string &baselinePath,
            const std::string &currentPath, const DiffOptions &options,
            std::ostream &out, std::ostream &err)
{
    JsonValue base_doc;
    JsonValue cur_doc;
    RunMap base_runs;
    RunMap cur_runs;
    if (!loadRuns(baselinePath, base_doc, base_runs, err) ||
        !loadRuns(currentPath, cur_doc, cur_runs, err))
        return 2;

    std::string base_name = base_doc.str("bench", "?");
    std::string cur_name = cur_doc.str("bench", "?");
    if (base_name != cur_name) {
        out << "FAIL: comparing different benches ('" << base_name
            << "' vs '" << cur_name << "')\n";
        return 1;
    }

    int failures = 0;
    for (const auto &[key, base] : base_runs) {
        const auto &[series, pes] = key;
        std::string cell = series + " @ " + std::to_string(pes) + " PEs";
        auto it = cur_runs.find(key);
        if (it == cur_runs.end()) {
            out << "FAIL: " << cell << ": missing from current report\n";
            ++failures;
            continue;
        }
        const JsonValue &cur = *it->second;
        if (!cur.get("verified").boolean) {
            out << "FAIL: " << cell << ": run no longer verifies\n";
            ++failures;
            continue;
        }
        long long base_cycles = base->intval("cycles");
        long long cur_cycles = cur.intval("cycles");
        if (base_cycles > 0) {
            double delta =
                static_cast<double>(cur_cycles - base_cycles) /
                static_cast<double>(base_cycles);
            if (delta > options.tolerance) {
                out << "FAIL: " << cell << ": cycles " << base_cycles
                    << " -> " << cur_cycles << " (+" << pct(delta)
                    << " > " << pct(options.tolerance)
                    << " tolerance)\n";
                ++failures;
            } else if (delta != 0.0) {
                out << "note: " << cell << ": cycles " << base_cycles
                    << " -> " << cur_cycles << " ("
                    << pct(std::fabs(delta))
                    << (delta > 0 ? " slower)" : " faster)") << "\n";
            } else {
                out << "ok:   " << cell << ": " << cur_cycles
                    << " cycles (unchanged)\n";
            }
        }
        // Host time is gated only when both sides measured it; a
        // committed machine-independent baseline never carries it.
        auto base_ms_it = base->members.find("host_wall_ms");
        auto cur_ms_it = cur.members.find("host_wall_ms");
        if (base_ms_it != base->members.end() &&
            cur_ms_it != cur.members.end() &&
            base_ms_it->second.number > 0.0) {
            double base_ms = base_ms_it->second.number;
            double cur_ms = cur_ms_it->second.number;
            double host_delta = (cur_ms - base_ms) / base_ms;
            if (host_delta > options.hostTolerance) {
                out << "FAIL: " << cell << ": host " << fixed(base_ms, 2)
                    << "ms -> " << fixed(cur_ms, 2) << "ms (+"
                    << pct(host_delta) << " > "
                    << pct(options.hostTolerance)
                    << " host tolerance)\n";
                ++failures;
            }
        }
        if (options.showMetrics)
            diffRunMetrics(cell, *base, cur, out);
    }
    for (const auto &[key, run] : cur_runs) {
        (void)run;
        if (base_runs.find(key) == base_runs.end())
            out << "note: " << key.first << " @ " << key.second
                << " PEs: new cell, no baseline\n";
    }

    if (failures != 0) {
        out << failures
            << " cell(s) regressed past tolerance; if intentional, "
               "refresh the baseline in the same change\n";
        return 1;
    }
    out << "all " << base_runs.size()
        << " baseline cells within tolerance\n";
    return 0;
}

int
analyzeFlight(const std::string &path, const FlightOptions &options,
              std::ostream &out, std::ostream &err)
{
    JsonValue doc;
    try {
        doc = parseJsonFile(path);
    } catch (const std::exception &e) {
        err << "qmprof flight: " << path << ": " << e.what() << "\n";
        return 2;
    }
    if (!doc.isObject() || doc.str("schema") != "qm.flight.v1") {
        err << "qmprof flight: " << path
            << ": not a qm.flight.v1 black box\n";
        return 2;
    }

    std::string reason = doc.str("reason", "?");
    out << "flight recorder black box: " << path << "\n";
    out << "  reason: " << reason << "\n";
    out << "  cycle: " << doc.intval("cycle") << "  pes: "
        << doc.intval("pes") << "  live contexts: "
        << doc.intval("live_contexts") << "\n";

    const JsonValue &counts = doc.get("counts");
    if (counts.isObject() && !counts.members.empty()) {
        out << "  event totals:\n";
        for (const auto &[kind, value] : counts.members)
            out << "    " << kind << " " << fixed(value.number, 0)
                << "\n";
    }

    // Blocked-context attribution: walk the sched ring and keep, per
    // context, the last lifecycle event. A context whose final
    // recorded event is a park never came back within the ring's
    // window — the prime suspects for a deadlock or starvation.
    std::map<long long, const JsonValue *> last_sched;
    const JsonValue *sched_ring = nullptr;
    for (const JsonValue &ring : doc.get("rings").items) {
        if (ring.str("name") == "sched")
            sched_ring = &ring;
    }
    if (sched_ring != nullptr) {
        for (const JsonValue &event : sched_ring->get("events").items) {
            std::string kind = event.str("kind");
            if (kind != "ctx-dispatch" && kind != "ctx-park" &&
                kind != "ctx-finish")
                continue;
            last_sched[event.intval("ctx")] = &event;
        }
    }
    static const char *const kParkReasons[] = {"channel", "timer",
                                               "resident"};
    std::vector<std::pair<long long, const JsonValue *>> blocked;
    for (const auto &[ctx, event] : last_sched)
        if (event->str("kind") == "ctx-park")
            blocked.emplace_back(ctx, event);
    if (!blocked.empty()) {
        out << "  blocked contexts (last event is a park):\n";
        for (const auto &[ctx, event] : blocked) {
            long long r = event->intval("a");
            const char *why =
                (r >= 0 && r < 3) ? kParkReasons[r] : "?";
            out << "    ctx " << ctx << ": parked (" << why
                << ") on pe " << event->intval("pe") << " at cycle "
                << event->intval("at") << "\n";
        }
    }

    // Probable cause: the dump reason names the failure class; the
    // rings supply the supporting evidence.
    out << "  probable cause: ";
    if (reason.find("watchdog") != std::string::npos ||
        reason.find("deadlock") != std::string::npos ||
        reason.find("starv") != std::string::npos) {
        out << "no context made progress — ";
        if (!blocked.empty())
            out << blocked.size()
                << " context(s) parked and never redispatched (see "
                   "above)\n";
        else
            out << "no parked context in the ring window; suspect a "
                   "kernel or bus livelock\n";
    } else if (reason.find("deadline") != std::string::npos) {
        out << "host wall-clock deadline expired; the machine was "
               "still making progress when aborted\n";
    } else if (reason.find("signal") != std::string::npos ||
               reason.find("interrupt") != std::string::npos) {
        out << "external interrupt (SIGINT/SIGTERM); not a simulator "
               "failure\n";
    } else if (reason.find("fault") != std::string::npos ||
               reason.find("fatal") != std::string::npos ||
               reason.find("corrupt") != std::string::npos ||
               reason.find("lease") != std::string::npos) {
        out << "injected or fatal fault; see the fault ring timeline "
               "below\n";
    } else if (reason.find("checkpoint") != std::string::npos ||
               reason.find("run-start") != std::string::npos) {
        out << "not a failure dump (" << reason << ")\n";
    } else {
        out << reason << "\n";
    }

    for (const JsonValue &ring : doc.get("rings").items) {
        const std::vector<JsonValue> &events =
            ring.get("events").items;
        std::uint64_t recorded =
            static_cast<std::uint64_t>(ring.num("recorded"));
        out << "  ring " << ring.str("name", "?") << ": " << recorded
            << " recorded, last " << events.size() << " kept\n";
        std::size_t show =
            std::min(events.size(),
                     static_cast<std::size_t>(options.lastEvents));
        for (std::size_t i = events.size() - show; i < events.size();
             ++i)
            renderFlightEvent(events[i], out);
    }
    return 0;
}

} // namespace qm::obs
