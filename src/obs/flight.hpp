/**
 * @file
 * Always-on flight recorder: a bounded black box of recent events.
 *
 * PR 5's observability layer is opt-in and post-hoc — histograms and
 * traces exist only behind a flag and only after the run ends, so the
 * exact scenarios the fault/recovery/durability layers engineer for
 * (watchdog trip, fatal fault, deadline abort, kill -9) leave no
 * record of what the machine was doing when it died. The flight
 * recorder closes that gap: it implements trace::EventSink, sees every
 * Tracer emit regardless of the --trace flag, and keeps only the most
 * recent events per component in fixed-size rings (plus exact per-kind
 * totals), so memory stays bounded and the per-event cost is an index
 * write and a counter increment.
 *
 * On any failure path — watchdog, fatal fault, --deadline-ms abort,
 * SIGINT/SIGTERM, FatalError/PanicError — mp::System and the run
 * drivers dump the rings as a `qm.flight.v1` JSON document next to the
 * checkpoint/metrics files. Checkpoint boundaries also persist a dump
 * so a kill -9 (which no handler can catch) still leaves a black box
 * on disk.
 *
 * The recorder never rewinds on checkpoint restore: it is a record of
 * what the host actually executed, including abandoned replay
 * timelines, which is exactly what a post-mortem wants to see.
 *
 * Kill switch: the environment variable QM_FLIGHT=0 (or "off")
 * disables recording and dumping entirely; the CI overhead gate uses
 * it to measure the recorder's cost.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "persist/io.hpp"
#include "trace/trace.hpp"

namespace qm::obs {

/**
 * Synthetic event kinds that exist only inside the flight recorder.
 * They are deliberately far outside the Tracer's EventKind range so
 * they can never collide with (or leak into) the persisted trace
 * stream — kEventKinds and the TRAC checkpoint section are untouched.
 */
constexpr auto kCheckpointKind = static_cast<trace::EventKind>(200);
constexpr auto kRestoreKind = static_cast<trace::EventKind>(201);

/** Label for any kind the recorder stores, including synthetic ones. */
const char *flightKindName(trace::EventKind kind);

/** Snapshot identity written into a dump's header. */
struct FlightHeader
{
    std::string reason;      ///< Why the dump was written.
    std::int64_t cycle = 0;  ///< Simulated cycle at dump time.
    int pes = 0;
    int liveContexts = 0;
};

/** One fixed-capacity ring of recent events for a component. */
class FlightRing
{
  public:
    FlightRing(const char *name, std::size_t capacity)
        : name_(name), capacity_(capacity)
    {
        events_.reserve(capacity);
    }

    void
    push(const trace::Event &event)
    {
        std::size_t pos =
            static_cast<std::size_t>(recorded_ % capacity_);
        if (events_.size() < capacity_)
            events_.push_back(event);
        else
            events_[pos] = event;
        ++recorded_;
    }

    const char *name() const { return name_; }
    std::size_t capacity() const { return capacity_; }
    /** Total events ever pushed (>= size() once the ring wraps). */
    std::uint64_t recorded() const { return recorded_; }
    std::size_t size() const { return events_.size(); }

    /** Events oldest-to-newest (unwraps the ring). */
    std::vector<trace::Event> ordered() const;

  private:
    const char *name_;
    std::size_t capacity_;
    std::uint64_t recorded_ = 0;
    std::vector<trace::Event> events_;
};

/**
 * The always-on recorder. One instance per mp::System, attached as the
 * Tracer's sink. All Tracer emits happen on the sequential/drain
 * thread (the PDES workers stage events and replay them in commit
 * order), so the recorder needs no synchronization.
 */
class FlightRecorder : public trace::EventSink
{
  public:
    FlightRecorder();

    /** False when QM_FLIGHT=0/off disabled recording at construction. */
    bool enabled() const { return enabled_; }

    void record(const trace::Event &event) override;

    /** A checkpoint boundary was reached (snapshot taken). */
    void checkpoint(trace::Cycle at, int liveContexts);

    /** State was restored (replay rewound the machine to @p at). */
    void noteRestore(trace::Cycle at);

    /** Total events seen of @p kind (real kinds only, exact). */
    std::uint64_t countOf(trace::EventKind kind) const;
    std::uint64_t checkpoints() const { return checkpointCount_; }
    std::uint64_t restores() const { return restoreCount_; }

    const std::vector<FlightRing> &rings() const { return rings_; }

    /**
     * Serialize the black box as a `qm.flight.v1` JSON document and
     * write it atomically (temp + rename) to @p path.
     */
    persist::Status dumpToFile(const std::string &path,
                               const FlightHeader &header) const;

    /** The document as a string (tests, in-memory inspection). */
    std::string dump(const FlightHeader &header) const;

  private:
    FlightRing &ringFor(trace::EventKind kind);

    bool enabled_ = true;
    std::vector<FlightRing> rings_;
    std::array<std::uint64_t, trace::kEventKinds> counts_{};
    std::uint64_t checkpointCount_ = 0;
    std::uint64_t restoreCount_ = 0;
};

/**
 * Write a minimal, schema-valid `qm.flight.v1` marker document (no
 * events) to @p path. sim::runAll drops one per spec before the run
 * starts so a kill -9 that lands mid-run still leaves a parseable
 * black box; a real dump overwrites it on failure or checkpoint.
 */
persist::Status writeFlightMarker(const std::string &path,
                                  const std::string &reason);

} // namespace qm::obs
