/**
 * @file
 * Cross-run regression analytics and black-box post-mortems, the
 * logic behind `qmprof diff` and `qmprof flight`.
 *
 * diff ingests two BENCH_*.json or qm.metrics.v1 documents and walks
 * every (series, PE-count) cell of the baseline: cycle regressions
 * past a tolerance, cells that disappeared or stopped verifying, and
 * host-wall regressions when both documents measured host time — the
 * same thresholds and verdict semantics as tools/bench_compare.py, so
 * a CI gate and an interactive diff can never disagree. Metrics
 * documents additionally get per-counter deltas and histogram
 * percentile divergence.
 *
 * flight ingests a `qm.flight.v1` black box (src/obs/flight.hpp) and
 * renders a post-mortem: the dump header, per-kind event totals, the
 * last-N-cycles timeline of every ring, blocked-context attribution
 * (contexts whose final recorded event is a park), and a probable-
 * cause digest keyed on the dump reason.
 *
 * Exit-code contract (mirrors bench_compare.py): 0 = clean, 1 = a
 * real regression / verdict failure, 2 = a document that cannot be
 * read or is not of the expected schema.
 */
#pragma once

#include <ostream>
#include <string>

namespace qm::obs {

/** Thresholds for diffReports; defaults match bench_compare.py. */
struct DiffOptions
{
    /** Max fractional cycle regression before a cell fails. */
    double tolerance = 0.10;
    /** Max fractional host_wall_ms regression (both sides present). */
    double hostTolerance = 0.25;
    /** Print per-counter deltas / histogram divergence for metrics. */
    bool showMetrics = true;
};

/**
 * Compare @p currentPath against @p baselinePath, writing the verdict
 * lines to @p out and file-level diagnostics to @p err. Returns the
 * process exit code (0 clean, 1 regression, 2 unreadable document).
 */
int diffReports(const std::string &baselinePath,
                const std::string &currentPath, const DiffOptions &options,
                std::ostream &out, std::ostream &err);

/** Rendering knobs for analyzeFlight. */
struct FlightOptions
{
    /** Timeline shows at most this many events per ring. */
    int lastEvents = 16;
};

/**
 * Render a post-mortem of the black box at @p path to @p out.
 * Returns 0 on success, 2 when the file is missing/malformed/not a
 * qm.flight.v1 document (diagnostic on @p err).
 */
int analyzeFlight(const std::string &path, const FlightOptions &options,
                  std::ostream &out, std::ostream &err);

} // namespace qm::obs
