#include "dfg/sequencing.hpp"

#include <algorithm>
#include <functional>

#include "support/diagnostics.hpp"

namespace qm::dfg {

std::vector<int>
depthFirstList(const Dfg &graph)
{
    std::vector<bool> marked(static_cast<size_t>(graph.size()), false);
    std::vector<int> list;
    list.reserve(static_cast<size_t>(graph.size()));

    std::function<void(int)> search = [&](int node) {
        marked[static_cast<size_t>(node)] = true;
        for (int succ : graph.successors(node))
            if (!marked[static_cast<size_t>(succ)])
                search(succ);
        list.push_back(node);
    };

    for (int node = 0; node < graph.size(); ++node)
        if (!marked[static_cast<size_t>(node)])
            search(node);
    return list;
}

CostAnalysis
analyzeCosts(const Dfg &graph)
{
    CostAnalysis result;
    result.predecessorSet.resize(static_cast<size_t>(graph.size()));
    result.requiredInputs.resize(static_cast<size_t>(graph.size()));
    result.cost.resize(static_cast<size_t>(graph.size()), 0);

    auto merge_sorted = [](std::vector<int> &dst,
                           const std::vector<int> &src) {
        std::vector<int> merged;
        merged.reserve(dst.size() + src.size());
        std::set_union(dst.begin(), dst.end(), src.begin(), src.end(),
                       std::back_inserter(merged));
        dst = std::move(merged);
    };

    // Fig 4.15: walk the depth-first list backwards so predecessors are
    // processed before their successors.
    std::vector<int> list = depthFirstList(graph);
    for (auto it = list.rbegin(); it != list.rend(); ++it) {
        int v = *it;
        auto &pstar = result.predecessorSet[static_cast<size_t>(v)];
        auto &istar = result.requiredInputs[static_cast<size_t>(v)];
        pstar = {v};
        if (graph.isInput(v))
            istar = {v};
        for (int pred : graph.predecessors(v)) {
            merge_sorted(pstar,
                         result.predecessorSet[static_cast<size_t>(pred)]);
            merge_sorted(istar,
                         result.requiredInputs[static_cast<size_t>(pred)]);
        }
        result.cost[static_cast<size_t>(v)] =
            static_cast<int>(pstar.size());
    }
    return result;
}

std::vector<long>
inputWeights(const Dfg &graph, const CostAnalysis &costs)
{
    std::vector<long> weights(static_cast<size_t>(graph.size()), 0);
    for (int input : graph.inputs()) {
        long w = 0;
        for (int u = 0; u < graph.size(); ++u) {
            const auto &istar =
                costs.requiredInputs[static_cast<size_t>(u)];
            if (std::binary_search(istar.begin(), istar.end(), input))
                w += costs.cost[static_cast<size_t>(u)];
        }
        weights[static_cast<size_t>(input)] = w;
    }
    return weights;
}

std::vector<int>
orderInputs(const Dfg &graph)
{
    CostAnalysis costs = analyzeCosts(graph);
    std::vector<long> weights = inputWeights(graph, costs);
    std::vector<int> inputs = graph.inputs();
    std::stable_sort(inputs.begin(), inputs.end(), [&](int a, int b) {
        return weights[static_cast<size_t>(a)] >
               weights[static_cast<size_t>(b)];
    });
    return inputs;
}

} // namespace qm::dfg
