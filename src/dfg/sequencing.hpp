/**
 * @file
 * Input-sequencing heuristic for intercontext communication
 * (thesis section 4.5, Figures 4.13-4.16, Tables 4.4/4.5).
 *
 * When a context receives its inputs one at a time over a channel, the
 * preferred arrival order maximizes the computation possible before the
 * context must wait for the next input. The heuristic weights each input
 * v by W(v) = sum of C(u) over all nodes u whose required input set
 * I*(u) contains v, and sends heavier inputs first.
 */
#pragma once

#include <vector>

#include "dfg/graph.hpp"

namespace qm::dfg {

/**
 * Depth-first list of the nodes of a DAG (Fig 4.13): every successor of
 * a node precedes the node in the list; every predecessor follows it.
 */
std::vector<int> depthFirstList(const Dfg &graph);

/** Per-node analysis results of the Fig 4.15 pass. */
struct CostAnalysis
{
    /** P*(v): all predecessors of v including v itself. */
    std::vector<std::vector<int>> predecessorSet;
    /** I*(v): the graph inputs required to compute v. */
    std::vector<std::vector<int>> requiredInputs;
    /** C(v) = |P*(v)|: cost of computing v. */
    std::vector<int> cost;
};

/** Compute P*, I*, and C for every node (Fig 4.15). */
CostAnalysis analyzeCosts(const Dfg &graph);

/** W(v) for every input vertex v, keyed by node id (Fig 4.16). */
std::vector<long> inputWeights(const Dfg &graph, const CostAnalysis &costs);

/**
 * Inputs of @p graph ordered by decreasing W (satisfying pi_I). Ties keep
 * insertion order, making the result deterministic.
 */
std::vector<int> orderInputs(const Dfg &graph);

} // namespace qm::dfg
