#include "dfg/scheduler.hpp"

#include <queue>

#include "support/diagnostics.hpp"

namespace qm::dfg {

int
actorPriority(const std::string &op)
{
    if (op == "rfork" || op == "ifork")
        return 1;
    if (op == "send" || op == "!")
        return 2;
    if (op == "store" || op == "storb")
        return 3;
    // "const" is deliberately class 4: constants become immediate
    // operands, not memory fetches, so they should not be deferred.
    if (op == "fetch" || op == "fchb" || op == "in")
        return 5;
    if (op == "recv" || op == "?")
        return 6;
    if (op == "wait")
        return 7;
    return 4;
}

int
thesisPriority(const Dfg &graph, int node)
{
    return actorPriority(graph.node(node).op);
}

int
fifoPriority(const Dfg &, int)
{
    return 4;
}

std::vector<int>
schedule(const Dfg &graph, const PriorityFn &priority)
{
    struct Entry
    {
        int prio;
        int seq;   // Readiness order for deterministic tie-breaking.
        int node;

        bool
        operator>(const Entry &other) const
        {
            if (prio != other.prio)
                return prio > other.prio;
            return seq > other.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
    std::vector<int> unmarked(static_cast<size_t>(graph.size()), 0);
    int seq = 0;
    for (int node = 0; node < graph.size(); ++node) {
        unmarked[static_cast<size_t>(node)] =
            graph.arity(node) +
            static_cast<int>(graph.orderPreds(node).size());
        if (unmarked[static_cast<size_t>(node)] == 0)
            ready.push(Entry{priority(graph, node), seq++, node});
    }

    auto release = [&](int node) {
        int &pending = unmarked[static_cast<size_t>(node)];
        if (--pending == 0)
            ready.push(Entry{priority(graph, node), seq++, node});
    };

    std::vector<int> order;
    order.reserve(static_cast<size_t>(graph.size()));
    while (!ready.empty()) {
        Entry entry = ready.top();
        ready.pop();
        order.push_back(entry.node);
        for (const Consumer &consumer : graph.consumers(entry.node))
            release(consumer.node);
        for (int succ : graph.orderSuccs(entry.node))
            release(succ);
    }
    panicIf(static_cast<int>(order.size()) != graph.size(),
            "scheduler emitted ", order.size(), " of ", graph.size(),
            " nodes (graph has a cycle?)");
    return order;
}

} // namespace qm::dfg
