/**
 * @file
 * Acyclic data-flow graphs (thesis sections 3.6 and 4.5).
 *
 * Vertices are either inputs (no predecessors; their values are injected
 * when the graph is evaluated) or operators with an ordered list of
 * predecessor arcs. The graph induces the partial order pi_G: v precedes
 * w iff a directed path leads from v to w; any linearization respecting
 * pi_G is a valid indexed-queue-machine instruction sequence.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qm::dfg {

/** One vertex of an acyclic data-flow graph. */
struct DfgNode
{
    /**
     * Operator symbol. Arithmetic ops ("+", "-", "*", "/", "neg"),
     * "const" (literal), "in" (graph input), or any domain-specific actor
     * name (send/recv/fork/... in the compiler).
     */
    std::string op;
    /** Literal value for "const" nodes; input name for "in" nodes. */
    std::int64_t constValue = 0;
    std::string name;
    /** Ordered predecessor node ids (input arc l feeds slot l). */
    std::vector<int> args;
};

/** A consumer reference: which node consumes a value, at which slot. */
struct Consumer
{
    int node = -1;
    int slot = -1;

    bool operator==(const Consumer &) const = default;
};

/** Arena-based acyclic data-flow graph. */
class Dfg
{
  public:
    /** Add an input vertex; returns its handle. */
    int addInput(std::string input_name);

    /** Add a constant vertex. */
    int addConst(std::int64_t value);

    /** Add an operator vertex over already-added arguments. */
    int addNode(std::string op, std::vector<int> args);

    /** Add a code-address constant (resolved to a label at assembly). */
    int addCodeAddr(std::string label);

    /**
     * Add a control-token arc (thesis section 4.6): @p before must be
     * scheduled before @p after, but no value flows and no queue
     * position is consumed - control arcs are an artifact of the graph
     * representation and vanish in the instruction sequence.
     */
    void addOrderEdge(int before, int after);

    const std::vector<int> &orderSuccs(int id) const
    {
        return orderSuccs_[static_cast<size_t>(id)];
    }
    const std::vector<int> &orderPreds(int id) const
    {
        return orderPreds_[static_cast<size_t>(id)];
    }

    int size() const { return static_cast<int>(nodes_.size()); }
    const DfgNode &node(int id) const
    {
        return nodes_[static_cast<size_t>(id)];
    }
    int arity(int id) const
    {
        return static_cast<int>(node(id).args.size());
    }
    bool isInput(int id) const { return node(id).op == "in"; }

    /** All input vertices, in insertion order. */
    std::vector<int> inputs() const;

    /** All sink vertices (no consumers), in insertion order. */
    std::vector<int> sinks() const;

    /** Consumers of node @p id, ordered by (consumer id, slot). */
    const std::vector<Consumer> &consumers(int id) const
    {
        return consumers_[static_cast<size_t>(id)];
    }

    /** Immediate predecessor set P(v) (deduplicated args). */
    std::vector<int> predecessors(int id) const;

    /** Immediate successor set S(v) (deduplicated consumers). */
    std::vector<int> successors(int id) const;

    /** True iff a directed path from @p from reaches @p to (pi_G). */
    bool reaches(int from, int to) const;

    /** True iff @p order is a permutation of nodes respecting pi_G. */
    bool isTopological(const std::vector<int> &order) const;

    /** Render as a Graphviz DOT digraph (the thesis draw/drawpic role). */
    std::string toDot(const std::string &title = "dfg") const;

  private:
    std::vector<DfgNode> nodes_;
    std::vector<std::vector<Consumer>> consumers_;
    std::vector<std::vector<int>> orderSuccs_;
    std::vector<std::vector<int>> orderPreds_;
};

} // namespace qm::dfg
