/**
 * @file
 * Heuristic instruction scheduler (thesis section 4.7, Fig 4.20).
 *
 * Linearizes an acyclic data-flow graph with a ready list: a node enters
 * the list once all its input arcs are marked; the highest-priority ready
 * node is emitted next. The thesis priority order maximizes the number of
 * parallel contexts and shrinks the operand queue:
 *
 *   1 rfork/ifork, 2 send, 3 store/storb, 4 everything else,
 *   5 fetch/fchb, 6 receive, 7 wait      (1 = emitted first)
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace qm::dfg {

/** Priority classes per the thesis list; smaller runs earlier. */
int actorPriority(const std::string &op);

/**
 * Priority function type: maps a node id to its class. Exposed so the
 * Table 6.6 ablation can swap in degenerate heuristics.
 */
using PriorityFn = std::function<int(const Dfg &, int)>;

/** The thesis heuristic (actorPriority applied to the node's op). */
int thesisPriority(const Dfg &graph, int node);

/** FIFO priority: ignore the op, order purely by readiness. */
int fifoPriority(const Dfg &graph, int node);

/**
 * Produce a topological order of @p graph by the ready-list algorithm of
 * Fig 4.20 under @p priority. Ties break on readiness order (FIFO), so
 * the result is deterministic.
 */
std::vector<int> schedule(const Dfg &graph,
                          const PriorityFn &priority = thesisPriority);

} // namespace qm::dfg
