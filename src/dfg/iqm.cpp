#include "dfg/iqm.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "support/diagnostics.hpp"

namespace qm::dfg {

int
IqmProgram::queueDepth() const
{
    int depth = 0;
    for (const IqmInstr &instr : instrs)
        for (int index : instr.resultIndices)
            depth = std::max(depth, index + 1);
    return depth;
}

IqmProgram
buildProgram(const Dfg &graph, const std::vector<int> &order)
{
    panicIf(!graph.isTopological(order),
            "instruction order violates the graph partial order");

    // Step 2: o_i = sum of arities of the preceding instructions; this is
    // the queue-front index when instruction i executes.
    std::vector<int> front(order.size(), 0);
    std::vector<int> position(static_cast<size_t>(graph.size()), -1);
    int running = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
        front[i] = running;
        running += graph.arity(order[i]);
        position[static_cast<size_t>(order[i])] = static_cast<int>(i);
    }

    // Step 3: for each arc (v_i, v_j, l), add index o_j + l to P_i.
    IqmProgram program;
    program.instrs.resize(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        program.instrs[i].nodeId = order[i];
        program.instrs[i].frontIndex = front[i];
    }
    for (std::size_t j = 0; j < order.size(); ++j) {
        int node = order[j];
        const auto &args = graph.node(node).args;
        for (std::size_t slot = 0; slot < args.size(); ++slot) {
            int producer_pos = position[static_cast<size_t>(args[slot])];
            program.instrs[static_cast<size_t>(producer_pos)]
                .resultIndices.push_back(front[j] +
                                         static_cast<int>(slot));
        }
    }

    // Derive hardware-style offsets: index - (front + arity).
    for (std::size_t i = 0; i < order.size(); ++i) {
        IqmInstr &instr = program.instrs[i];
        std::sort(instr.resultIndices.begin(), instr.resultIndices.end());
        int base = instr.frontIndex + graph.arity(instr.nodeId);
        for (int index : instr.resultIndices) {
            panicIf(index < base,
                    "result index ", index,
                    " points before the queue front ", base);
            instr.resultOffsets.push_back(index - base);
        }
    }
    return program;
}

std::int64_t
arithActor(const DfgNode &node, const std::vector<std::int64_t> &operands,
           const InputValues &inputs)
{
    const std::string &op = node.op;
    if (op == "in") {
        auto it = inputs.find(node.name);
        fatalIf(it == inputs.end(), "unbound graph input '", node.name, "'");
        return it->second;
    }
    if (op == "const")
        return node.constValue;
    if (op == "neg")
        return -operands.at(0);
    if (op == "+")
        return operands.at(0) + operands.at(1);
    if (op == "-")
        return operands.at(0) - operands.at(1);
    if (op == "*")
        return operands.at(0) * operands.at(1);
    if (op == "/") {
        fatalIf(operands.at(1) == 0, "division by zero");
        return operands.at(0) / operands.at(1);
    }
    if (op == "\\") {
        fatalIf(operands.at(1) == 0, "modulo by zero");
        return operands.at(0) % operands.at(1);
    }
    fatal("arithActor: unknown operator '", op, "'");
}

NodeValues
evalProgram(const Dfg &graph, const IqmProgram &program,
            const InputValues &inputs, const ActorFn &actor)
{
    // Conceptually infinite queue: slots hold optional values so reads of
    // never-written positions are detected (the "hole in the queue" error
    // of section 3.5).
    std::vector<std::optional<std::int64_t>> queue(
        static_cast<size_t>(program.queueDepth()) + 8);
    NodeValues values(static_cast<size_t>(graph.size()), 0);
    int front = 0;

    for (const IqmInstr &instr : program.instrs) {
        const DfgNode &node = graph.node(instr.nodeId);
        panicIf(front != instr.frontIndex,
                "queue front drifted: expected ", instr.frontIndex,
                " got ", front);
        std::vector<std::int64_t> operands;
        operands.reserve(node.args.size());
        for (std::size_t slot = 0; slot < node.args.size(); ++slot) {
            auto &cell = queue[static_cast<size_t>(front)];
            panicIf(!cell.has_value(),
                    "hole in the operand queue at index ", front,
                    " (operator '", node.op, "')");
            operands.push_back(*cell);
            cell.reset();
            ++front;
        }
        std::int64_t result =
            actor ? actor(node, operands) : arithActor(node, operands,
                                                       inputs);
        values[static_cast<size_t>(instr.nodeId)] = result;
        for (int index : instr.resultIndices) {
            if (static_cast<size_t>(index) >= queue.size())
                queue.resize(static_cast<size_t>(index) + 1);
            queue[static_cast<size_t>(index)] = result;
        }
    }
    return values;
}

std::vector<std::string>
renderProgram(const Dfg &graph, const IqmProgram &program)
{
    std::vector<std::string> lines;
    lines.reserve(program.instrs.size());
    for (const IqmInstr &instr : program.instrs) {
        const DfgNode &node = graph.node(instr.nodeId);
        std::ostringstream os;
        if (node.op == "in")
            os << "fetch " << node.name;
        else if (node.op == "const")
            os << "const " << node.constValue;
        else
            os << node.op;
        if (!instr.resultOffsets.empty()) {
            os << "  ->";
            for (std::size_t i = 0; i < instr.resultOffsets.size(); ++i)
                os << (i ? "," : " ") << "+" << instr.resultOffsets[i];
        }
        lines.push_back(os.str());
    }
    return lines;
}

} // namespace qm::dfg
