/**
 * @file
 * Indexed queue machine execution model (thesis section 3.5-3.6).
 *
 * An indexed-queue-machine instruction is a pair (operator, result index
 * set). Operands are removed from the front of the operand queue; the
 * result is stored at every queue position named by the index set. The
 * thesis proves that any linearization of an acyclic data-flow graph that
 * respects pi_G generates a valid program under the construction
 * implemented by buildProgram().
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace qm::dfg {

/** One indexed-queue-machine instruction. */
struct IqmInstr
{
    int nodeId = -1;
    /**
     * Absolute queue positions receiving the result (the o_j + l of the
     * thesis construction). Empty for sinks whose value is discarded.
     */
    std::vector<int> resultIndices;
    /**
     * The same positions as offsets from the queue front after this
     * instruction's operands have been removed - what the hardware
     * instruction actually encodes (thesis section 3.5 example).
     */
    std::vector<int> resultOffsets;
    /** Queue-front index when this instruction executes (o_i). */
    int frontIndex = 0;
};

/** A complete indexed-queue-machine program for one data-flow graph. */
struct IqmProgram
{
    std::vector<IqmInstr> instrs;

    /** Highest queue index written plus one (queue page requirement). */
    int queueDepth() const;
};

/**
 * Build a valid program from @p graph linearized by @p order, following
 * the four-step construction of section 3.6. @p order must be a
 * topological permutation of the graph's nodes (checked).
 */
IqmProgram buildProgram(const Dfg &graph, const std::vector<int> &order);

/** Values bound to input vertices when evaluating a graph. */
using InputValues = std::map<std::string, std::int64_t>;

/**
 * Result of evaluating a program: the value computed by every node,
 * indexed by node id.
 */
using NodeValues = std::vector<std::int64_t>;

/**
 * Custom actor semantics: receives the node and its operand values,
 * returns the result. Return value of sink actors is ignored.
 */
using ActorFn = std::function<std::int64_t(const DfgNode &,
                                           const std::vector<std::int64_t> &)>;

/** Built-in arithmetic actor semantics (+,-,*,/,\\,neg,const,in). */
std::int64_t arithActor(const DfgNode &node,
                        const std::vector<std::int64_t> &operands,
                        const InputValues &inputs);

/**
 * Evaluate @p program against the indexed-queue semantics of section 3.5
 * and return every node's value. Panics if the program reads a queue
 * position that was never written (i.e. the program is invalid).
 */
NodeValues evalProgram(const Dfg &graph, const IqmProgram &program,
                       const InputValues &inputs,
                       const ActorFn &actor = nullptr);

/** Render the program as "op : @i,@j (+k,+l)" text lines (Table 3.4). */
std::vector<std::string> renderProgram(const Dfg &graph,
                                       const IqmProgram &program);

} // namespace qm::dfg
