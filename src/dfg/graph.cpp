#include "dfg/graph.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "support/diagnostics.hpp"

namespace qm::dfg {

int
Dfg::addInput(std::string input_name)
{
    DfgNode n;
    n.op = "in";
    n.name = std::move(input_name);
    nodes_.push_back(std::move(n));
    consumers_.emplace_back();
    orderSuccs_.emplace_back();
    orderPreds_.emplace_back();
    return size() - 1;
}

int
Dfg::addConst(std::int64_t value)
{
    DfgNode n;
    n.op = "const";
    n.constValue = value;
    nodes_.push_back(std::move(n));
    consumers_.emplace_back();
    orderSuccs_.emplace_back();
    orderPreds_.emplace_back();
    return size() - 1;
}

int
Dfg::addNode(std::string op, std::vector<int> args)
{
    int id = size();
    for (std::size_t slot = 0; slot < args.size(); ++slot) {
        int arg = args[slot];
        panicIf(arg < 0 || arg >= id,
                "node argument ", arg, " out of range (must precede)");
        consumers_[static_cast<size_t>(arg)].push_back(
            Consumer{id, static_cast<int>(slot)});
    }
    DfgNode n;
    n.op = std::move(op);
    n.args = std::move(args);
    nodes_.push_back(std::move(n));
    consumers_.emplace_back();
    orderSuccs_.emplace_back();
    orderPreds_.emplace_back();
    return id;
}

int
Dfg::addCodeAddr(std::string label)
{
    DfgNode n;
    n.op = "claddr";
    n.name = std::move(label);
    nodes_.push_back(std::move(n));
    consumers_.emplace_back();
    orderSuccs_.emplace_back();
    orderPreds_.emplace_back();
    return size() - 1;
}

void
Dfg::addOrderEdge(int before, int after)
{
    panicIf(before < 0 || before >= size() || after < 0 ||
                after >= size(),
            "order edge endpoint out of range");
    if (before == after)
        return;
    auto &succs = orderSuccs_[static_cast<size_t>(before)];
    for (int s : succs)
        if (s == after)
            return;  // duplicate
    succs.push_back(after);
    orderPreds_[static_cast<size_t>(after)].push_back(before);
}

std::vector<int>
Dfg::inputs() const
{
    std::vector<int> result;
    for (int id = 0; id < size(); ++id)
        if (isInput(id))
            result.push_back(id);
    return result;
}

std::vector<int>
Dfg::sinks() const
{
    std::vector<int> result;
    for (int id = 0; id < size(); ++id)
        if (consumers_[static_cast<size_t>(id)].empty())
            result.push_back(id);
    return result;
}

std::vector<int>
Dfg::predecessors(int id) const
{
    std::vector<int> preds = node(id).args;
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    return preds;
}

std::vector<int>
Dfg::successors(int id) const
{
    std::vector<int> succs;
    for (const Consumer &c : consumers(id))
        succs.push_back(c.node);
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
    return succs;
}

bool
Dfg::reaches(int from, int to) const
{
    if (from == to)
        return true;
    // Arena construction guarantees args precede their consumers, so
    // node ids are already topologically ordered: walk forward.
    std::vector<bool> mark(static_cast<size_t>(size()), false);
    mark[static_cast<size_t>(from)] = true;
    for (int id = from + 1; id <= to; ++id) {
        for (int arg : node(id).args) {
            if (mark[static_cast<size_t>(arg)]) {
                mark[static_cast<size_t>(id)] = true;
                break;
            }
        }
    }
    return mark[static_cast<size_t>(to)];
}

bool
Dfg::isTopological(const std::vector<int> &order) const
{
    if (static_cast<int>(order.size()) != size())
        return false;
    std::vector<int> position(static_cast<size_t>(size()), -1);
    for (std::size_t i = 0; i < order.size(); ++i) {
        int id = order[i];
        if (id < 0 || id >= size() || position[static_cast<size_t>(id)] >= 0)
            return false;
        position[static_cast<size_t>(id)] = static_cast<int>(i);
    }
    for (int id = 0; id < size(); ++id) {
        for (int arg : node(id).args)
            if (position[static_cast<size_t>(arg)] >
                position[static_cast<size_t>(id)])
                return false;
        for (int pred : orderPreds(id))
            if (position[static_cast<size_t>(pred)] >
                position[static_cast<size_t>(id)])
                return false;
    }
    return true;
}

std::string
Dfg::toDot(const std::string &title) const
{
    std::ostringstream os;
    os << "digraph \"" << title << "\" {\n";
    for (int id = 0; id < size(); ++id) {
        const DfgNode &n = node(id);
        std::string label = n.op;
        if (n.op == "in")
            label = n.name;
        else if (n.op == "const")
            label = std::to_string(n.constValue);
        os << "  n" << id << " [label=\"" << label << "\"";
        if (n.op == "in")
            os << " shape=plaintext";
        os << "];\n";
    }
    for (int id = 0; id < size(); ++id)
        for (std::size_t slot = 0; slot < node(id).args.size(); ++slot)
            os << "  n" << node(id).args[slot] << " -> n" << id
               << " [label=\"" << slot << "\"];\n";
    // Control-token arcs render dashed (thesis Fig 4.18 style).
    for (int id = 0; id < size(); ++id)
        for (int succ : orderSuccs(id))
            os << "  n" << id << " -> n" << succ << " [style=dashed];\n";
    os << "}\n";
    return os.str();
}

} // namespace qm::dfg
