/**
 * @file
 * Kernel runtime contract: trap entry points and channel conventions
 * (the thesis Table 6.1 kernel entry points, carried by the trap/ftrap
 * instructions).
 *
 * The compiler emits these trap numbers; the multiprocessing kernel
 * implements them. Channel-id convention: an rfork allocates the child's
 * channel pair contiguously, in = id, out = id + 1, so a parent holding
 * the in id derives the out id with a single plus instruction and the
 * actor graphs stay single-result.
 */
#pragma once

#include "isa/fields.hpp"

namespace qm::isa {

/** Kernel entry points reachable via trap/ftrap. */
enum KernelTrap : Word
{
    /** Context finished; no results (ends the context). */
    TrapExit = 0,
    /**
     * Recursive fork: arg = code word address of the child graph.
     * Result 1 = child's in-channel id (out id is in + 1).
     */
    TrapRfork = 1,
    /**
     * Iterative fork: arg = code word address. Child inherits the
     * caller's out channel. Result 1 = child's in-channel id.
     */
    TrapIfork = 2,
    /** Result 1 = current context's in-channel id. */
    TrapGetIn = 3,
    /** Result 1 = current context's out-channel id. */
    TrapGetOut = 4,
    /** Allocate arg bytes of heap; result 1 = base address. */
    TrapAlloc = 5,
    /** Result 1 = current simulation time (cycles). */
    TrapNow = 6,
    /** Block until the simulation time exceeds arg. */
    TrapWait = 7,
    /** Allocate a fresh channel id; result 1 = id. */
    TrapChan = 8,
};

/** Channel id 0 is never allocated (null channel). */
constexpr Word kNullChannel = 0;

} // namespace qm::isa
