#include "isa/instruction.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "support/diagnostics.hpp"

namespace qm::isa {

namespace {

const std::map<Opcode, std::string> kMnemonics = {
    {Opcode::Dup1, "dup1"},   {Opcode::Dup2, "dup2"},
    {Opcode::Send, "send"},   {Opcode::Store, "store"},
    {Opcode::Storb, "storb"}, {Opcode::Recv, "recv"},
    {Opcode::Fetch, "fetch"}, {Opcode::Fchb, "fchb"},
    {Opcode::Or, "or"},       {Opcode::And, "and"},
    {Opcode::Xor, "xor"},     {Opcode::Lshift, "lshift"},
    {Opcode::Rshift, "rshift"}, {Opcode::Plus, "plus"},
    {Opcode::Minus, "minus"}, {Opcode::Mul, "mul"},
    {Opcode::Div, "div"},     {Opcode::Rem, "rem"},
    {Opcode::Ge, "ge"},       {Opcode::Ne, "ne"},
    {Opcode::Gt, "gt"},       {Opcode::Lt, "lt"},
    {Opcode::Eq, "eq"},       {Opcode::Le, "le"},
    {Opcode::His, "his"},     {Opcode::Hi, "hi"},
    {Opcode::Lo, "lo"},       {Opcode::Los, "los"},
    {Opcode::Bne, "bne"},     {Opcode::Beq, "beq"},
    {Opcode::Ftrap, "ftrap"}, {Opcode::Trap, "trap"},
    {Opcode::Fret, "fret"},   {Opcode::Rett, "rett"},
};

constexpr Word kImmWordMarker = 0b110000;

} // namespace

std::string
mnemonic(Opcode op)
{
    auto it = kMnemonics.find(op);
    panicIf(it == kMnemonics.end(),
            "unknown opcode ", static_cast<int>(op));
    return it->second;
}

bool
opcodeFromMnemonic(const std::string &name, Opcode &out)
{
    for (const auto &[op, text] : kMnemonics) {
        if (text == name) {
            out = op;
            return true;
        }
    }
    return false;
}

Src
Src::window(int n)
{
    panicIf(n < 0 || n > 15, "window register out of range: ", n);
    return Src{SrcKind::WindowReg, n, 0};
}

Src
Src::global(int n)
{
    panicIf(n < 16 || n > 31, "global register out of range: ", n);
    return Src{SrcKind::GlobalReg, n, 0};
}

Src
Src::anyReg(int n)
{
    return n < 16 ? window(n) : global(n);
}

Src
Src::immediate(SWord value)
{
    if (value >= kSmallImmMin && value <= kSmallImmMax)
        return Src{SrcKind::SmallImm, 0, value};
    return Src{SrcKind::ImmWord, 0, value};
}

int
Src::regNumber() const
{
    panicIf(!isReg(), "source is not a register");
    return reg;
}

namespace {

/** Encode one 6-bit source field; may append an immediate word later. */
Word
encodeSrc(const Src &src, bool &needs_imm_word)
{
    needs_imm_word = false;
    switch (src.kind) {
      case SrcKind::None:
        return 0b100000;  // small immediate 0
      case SrcKind::WindowReg:
        panicIf(src.reg < 0 || src.reg > 15, "bad window reg");
        return static_cast<Word>(src.reg);
      case SrcKind::GlobalReg:
        panicIf(src.reg < 16 || src.reg > 31, "bad global reg");
        return 0b010000 | static_cast<Word>(src.reg - 16);
      case SrcKind::SmallImm: {
        panicIf(src.imm < kSmallImmMin || src.imm > kSmallImmMax,
                "small immediate out of range: ", src.imm);
        Word bits = static_cast<Word>(src.imm) & 0x1F;
        panicIf((0b100000 | bits) == kImmWordMarker,
                "small immediate collides with imm-word marker");
        return 0b100000 | bits;
      }
      case SrcKind::ImmWord:
        needs_imm_word = true;
        return kImmWordMarker;
    }
    panic("unreachable src kind");
}

Src
decodeSrc(Word field, const std::vector<Word> &words, std::size_t &index)
{
    if ((field & 0b110000) == 0)
        return Src::window(static_cast<int>(field & 0xF));
    if ((field & 0b110000) == 0b010000)
        return Src::global(16 + static_cast<int>(field & 0xF));
    if (field == kImmWordMarker) {
        panicIf(index >= words.size(), "truncated immediate word");
        Word literal = words[index++];
        Src src;
        src.kind = SrcKind::ImmWord;
        src.imm = static_cast<SWord>(literal);
        return src;
    }
    // 5-bit signed small immediate.
    int value = static_cast<int>(field & 0x1F);
    if (value >= 16)
        value -= 32;
    Src src;
    src.kind = SrcKind::SmallImm;
    src.imm = value;
    return src;
}

} // namespace

int
Instruction::sizeWords() const
{
    if (isDup(op))
        return 1;
    int size = 1;
    if (src1.kind == SrcKind::ImmWord)
        ++size;
    if (src2.kind == SrcKind::ImmWord)
        ++size;
    return size;
}

void
Instruction::encode(std::vector<Word> &out) const
{
    Word word = 0;
    word |= (continueFlag ? 1u : 0u) << 31;
    word |= (static_cast<Word>(op) & 0x3F) << 25;

    if (isDup(op)) {
        panicIf(dupDst1 < 0 || dupDst1 > 255 || dupDst2 < 0 ||
                    dupDst2 > 255,
                "dup offset out of range");
        word |= static_cast<Word>(dupDst1) << 17;
        word |= static_cast<Word>(dupDst2) << 9;
        out.push_back(word);
        return;
    }

    bool imm1 = false, imm2 = false;
    word |= encodeSrc(src1, imm1) << 19;
    word |= encodeSrc(src2, imm2) << 13;
    panicIf(dst1 < 0 || dst1 > 31 || dst2 < 0 || dst2 > 31,
            "destination register out of range");
    word |= static_cast<Word>(dst1) << 8;
    word |= static_cast<Word>(dst2) << 3;
    panicIf(qpInc < 0 || qpInc > 7, "QP increment out of range: ", qpInc);
    word |= static_cast<Word>(qpInc);
    out.push_back(word);
    if (imm1)
        out.push_back(static_cast<Word>(src1.imm));
    if (imm2)
        out.push_back(static_cast<Word>(src2.imm));
}

Instruction
Instruction::decode(const std::vector<Word> &words, std::size_t &index)
{
    panicIf(index >= words.size(), "decode past end of code");
    Word word = words[index++];
    Instruction instr;
    instr.continueFlag = (word >> 31) & 1;
    instr.op = static_cast<Opcode>((word >> 25) & 0x3F);
    panicIf(kMnemonics.find(instr.op) == kMnemonics.end(),
            "illegal opcode ", (word >> 25) & 0x3F);

    if (isDup(instr.op)) {
        instr.dupDst1 = static_cast<int>((word >> 17) & 0xFF);
        instr.dupDst2 = static_cast<int>((word >> 9) & 0xFF);
        return instr;
    }
    instr.src1 = decodeSrc((word >> 19) & 0x3F, words, index);
    instr.src2 = decodeSrc((word >> 13) & 0x3F, words, index);
    instr.dst1 = static_cast<int>((word >> 8) & 0x1F);
    instr.dst2 = static_cast<int>((word >> 3) & 0x1F);
    instr.qpInc = static_cast<int>(word & 0x7);
    return instr;
}

namespace {

std::string
regName(int n)
{
    switch (n) {
      case RegDummy: return "dummy";
      case RegNar: return "nar";
      case RegPom: return "pom";
      case RegQp: return "qp";
      case RegPc: return "pc";
      default: return "r" + std::to_string(n);
    }
}

std::string
srcName(const Src &src)
{
    switch (src.kind) {
      case SrcKind::None: return "#0";
      case SrcKind::WindowReg:
      case SrcKind::GlobalReg: return regName(src.reg);
      case SrcKind::SmallImm:
      case SrcKind::ImmWord: return "#" + std::to_string(src.imm);
    }
    return "?";
}

} // namespace

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << mnemonic(op);
    if (isDup(op)) {
        os << " :r" << dupDst1;
        if (op == Opcode::Dup2)
            os << ",r" << dupDst2;
    } else {
        if (qpInc > 0)
            os << "+" << qpInc;
        os << " " << srcName(src1) << "," << srcName(src2);
        os << " :" << regName(dst1) << "," << regName(dst2);
    }
    if (continueFlag)
        os << " >";
    return os.str();
}

DecodedProgram::DecodedProgram(const std::vector<Word> &words)
    : words_(&words),
      index_(words.size())
{
}

const DecodedOp &
DecodedProgram::at(Word pc)
{
    panicIf(static_cast<std::size_t>(pc) >= index_.size(),
            "PC out of code bounds: ", pc);
    // Warm path: one acquire load pairing with the release store
    // below, so a PE seeing the pointer also sees the decoded entry.
    const DecodedOp *cached =
        index_[pc].load(std::memory_order_acquire);
    if (cached != nullptr)
        return *cached;
    std::lock_guard<std::mutex> lock(decodeMutex_);
    cached = index_[pc].load(std::memory_order_relaxed);
    if (cached == nullptr) {
        std::size_t index = pc;
        DecodedOp op;
        op.instr = Instruction::decode(*words_, index);
        op.nextPc = static_cast<Word>(index);
        op.sizeWords = op.instr.sizeWords();
        ops_.push_back(op);  // deque: stable address
        cached = &ops_.back();
        index_[pc].store(cached, std::memory_order_release);
    }
    return *cached;
}

} // namespace qm::isa
