/**
 * @file
 * Queue-machine processing element ISA constants (thesis Chapter 5).
 *
 * Instruction word (basic format, 32 bits):
 *
 *   [31]    continue flag
 *   [30:25] opcode (two octal digits, Table 5.2)
 *   [24:19] src1 (Table 5.1 source modes)
 *   [18:13] src2
 *   [12:8]  dst1 (register number; R16/DUMMY = unused)
 *   [7:3]   dst2
 *   [2:0]   QP increment (0..7 operands removed from the queue)
 *
 * dup format:
 *
 *   [31]    continue flag
 *   [30:25] opcode (dup1 or dup2)
 *   [24:17] dst1 queue offset (0..255)
 *   [16:9]  dst2 queue offset
 *   [8:0]   unused
 *
 * Source modes (6 bits): 00nnnn = window register n; 01nnnn = global
 * register 16+n; 110000 = a 32-bit immediate word follows the
 * instruction; any other 1nnnnn = 5-bit signed small immediate -15..15.
 */
#pragma once

#include <cstdint>
#include <string>

namespace qm::isa {

using Word = std::uint32_t;
using SWord = std::int32_t;
using Addr = std::uint32_t;

/** Architected register numbers (Fig 5.2). */
enum Reg : int
{
    // R0..R15: virtual window registers (front of the operand queue).
    RegWindow0 = 0,
    RegWindowCount = 16,
    // R16..R27: global registers.
    RegDummy = 16,  ///< Writes discarded; conventional "unused dst".
    RegG0 = 17,     ///< First programmer-visible general register.
    RegG10 = 27,    ///< Last general register.
    RegNar = 28,    ///< NAK address register.
    RegPom = 29,    ///< Page offset mask (queue page size control).
    RegQp = 30,     ///< Queue pointer.
    RegPc = 31,     ///< Program counter.
    RegCount = 32,
};

/** Opcodes, valued per the octal assignments of Table 5.2. */
enum class Opcode : int
{
    Dup1 = 000,
    Dup2 = 004,
    Send = 010,
    Store = 011,
    Storb = 013,
    Recv = 014,
    Fetch = 015,
    Fchb = 017,
    Or = 020,
    And = 021,
    Xor = 022,
    Lshift = 023,
    Rshift = 024,
    Plus = 030,
    Minus = 031,
    // The thesis reserves space in the arithmetic class for
    // multiplication and division; the evaluation programs need them.
    Mul = 032,
    Div = 033,
    Rem = 034,
    Ge = 041,
    Ne = 042,
    Gt = 043,
    Lt = 045,
    Eq = 046,
    Le = 047,
    His = 050,
    Hi = 052,
    Lo = 054,
    Los = 056,
    Bne = 062,  ///< Branch if true.
    Beq = 066,  ///< Branch if false.
    Ftrap = 070,
    Trap = 071,
    Fret = 074,
    Rett = 075,
};

/** Mnemonic for @p op ("plus", "dup1", ...); panics on unknown values. */
std::string mnemonic(Opcode op);

/** Opcode for @p mnemonic; returns false if unknown. */
bool opcodeFromMnemonic(const std::string &name, Opcode &out);

/** True for dup1/dup2 (the special instruction format). */
constexpr bool
isDup(Opcode op)
{
    return op == Opcode::Dup1 || op == Opcode::Dup2;
}

/** True for instructions whose results come from comparisons. */
constexpr bool
isCompare(Opcode op)
{
    int code = static_cast<int>(op);
    return code >= 040 && code <= 057;
}

/** Boolean encoding: all ones = true, all zeros = false (section 5.3.1). */
constexpr Word kTrue = 0xFFFFFFFFu;
constexpr Word kFalse = 0x00000000u;

/** Bytes per word; instructions are one word. */
constexpr Addr kWordBytes = 4;

/** Maximum queue page size in words (10-bit page offset, word aligned). */
constexpr int kMaxQueuePageWords = 256;

/** Small-immediate range of the 1nnnnn source mode. */
constexpr int kSmallImmMin = -15;
constexpr int kSmallImmMax = 15;

} // namespace qm::isa
