#include "isa/assembler.hpp"

#include <cctype>
#include <sstream>

#include "support/cli.hpp"
#include "support/diagnostics.hpp"

namespace qm::isa {

Addr
ObjectCode::labelAddr(const std::string &name) const
{
    auto it = labels.find(name);
    fatalIf(it == labels.end(), "undefined label '", name, "'");
    return it->second;
}

namespace {

/** One parsed source-operand token, possibly a label reference. */
struct SrcToken
{
    Src src;
    bool isLabel = false;
    std::string label;
};

/** One parsed statement awaiting address resolution. */
struct Statement
{
    int line = 0;
    bool isDataWord = false;
    Word dataWord = 0;
    Instruction instr;
    SrcToken tok1;
    SrcToken tok2;
    Addr addr = 0;  ///< Code word index (filled by pass 1).
};

class Parser
{
  public:
    explicit Parser(const std::string &source) : text(source) {}

    std::vector<Statement> statements;
    std::map<std::string, Addr> labels;

    void
    run()
    {
        std::istringstream stream(text);
        std::string line;
        int line_no = 0;
        std::vector<std::string> pending_labels;
        Addr addr = 0;
        while (std::getline(stream, line)) {
            ++line_no;
            std::string body = stripComment(line);
            std::size_t pos = 0;
            skipSpace(body, pos);
            // Leading labels (possibly several on one line).
            // A label's colon must be adjacent to the name; a ':' after
            // whitespace introduces a destination list instead.
            while (true) {
                std::size_t save = pos;
                std::string word = takeName(body, pos);
                if (!word.empty() && pos < body.size() &&
                    body[pos] == ':') {
                    ++pos;
                    pending_labels.push_back(word);
                    skipSpace(body, pos);
                } else {
                    pos = save;
                    break;
                }
            }
            if (pos >= body.size())
                continue;
            Statement st = parseStatement(body, pos, line_no);
            st.addr = addr;
            for (const std::string &l : pending_labels) {
                fatalIf(labels.count(l), "line ", line_no,
                        ": duplicate label '", l, "'");
                labels[l] = addr;
            }
            pending_labels.clear();
            addr += st.isDataWord
                        ? 1
                        : static_cast<Addr>(sizeOf(st));
            statements.push_back(std::move(st));
        }
        fatalIf(!pending_labels.empty(),
                "label '", pending_labels.front(),
                "' at end of file labels nothing");
    }

    /** Worst-case-stable size: label references always take a word. */
    static int
    sizeOf(const Statement &st)
    {
        if (st.isDataWord)
            return 1;
        int size = 1;
        if (st.tok1.isLabel || st.instr.src1.kind == SrcKind::ImmWord)
            ++size;
        if (st.tok2.isLabel || st.instr.src2.kind == SrcKind::ImmWord)
            ++size;
        return size;
    }

  private:
    static std::string
    stripComment(const std::string &line)
    {
        auto pos = line.find(';');
        return pos == std::string::npos ? line : line.substr(0, pos);
    }

    static void
    skipSpace(const std::string &s, std::size_t &pos)
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    static std::string
    takeName(const std::string &s, std::size_t &pos)
    {
        std::string name;
        while (pos < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '_' || s[pos] == '.' || s[pos] == '$'))
            name += s[pos++];
        return name;
    }

    static long
    takeNumber(const std::string &s, std::size_t &pos, int line)
    {
        std::size_t start = pos;
        if (pos < s.size() && (s[pos] == '-' || s[pos] == '+'))
            ++pos;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
        fatalIf(pos == start, "line ", line, ": expected number");
        auto value = tryParseInt(s.substr(start, pos - start));
        fatalIf(!value, "line ", line, ": number '",
                s.substr(start, pos - start), "' out of range");
        return *value;
    }

    static int
    parseRegister(const std::string &name, int line)
    {
        if (name == "dummy")
            return RegDummy;
        if (name == "nar")
            return RegNar;
        if (name == "pom")
            return RegPom;
        if (name == "qp")
            return RegQp;
        if (name == "pc")
            return RegPc;
        fatalIf(name.size() < 2 || name[0] != 'r' ||
                    !std::isdigit(static_cast<unsigned char>(name[1])),
                "line ", line, ": expected register, got '", name, "'");
        // std::stoi would throw std::out_of_range on "r99999999999"
        // (killing the assembler with an uncaught exception) and
        // silently accept trailing junk like "r12x"; parse the whole
        // suffix and report through the usual line diagnostic.
        auto n = tryParseInt(name.substr(1));
        fatalIf(!n, "line ", line, ": expected register, got '", name,
                "'");
        fatalIf(*n < 0 || *n > 255, "line ", line, ": register r", *n,
                " out of range");
        return static_cast<int>(*n);
    }

    SrcToken
    parseSrc(const std::string &s, std::size_t &pos, int line)
    {
        skipSpace(s, pos);
        SrcToken tok;
        fatalIf(pos >= s.size(), "line ", line, ": missing operand");
        if (s[pos] == '#') {
            ++pos;
            tok.src = Src::immediate(
                static_cast<SWord>(takeNumber(s, pos, line)));
            return tok;
        }
        if (s[pos] == '@') {
            ++pos;
            tok.isLabel = true;
            tok.label = takeName(s, pos);
            fatalIf(tok.label.empty(), "line ", line,
                    ": expected label after '@'");
            tok.src.kind = SrcKind::ImmWord;
            return tok;
        }
        std::string name = takeName(s, pos);
        int reg = parseRegister(name, line);
        fatalIf(reg > 31, "line ", line,
                ": register r", reg, " not addressable as a source");
        tok.src = Src::anyReg(reg);
        return tok;
    }

    Statement
    parseStatement(const std::string &s, std::size_t &pos, int line)
    {
        Statement st;
        st.line = line;
        std::string name = takeName(s, pos);
        fatalIf(name.empty(), "line ", line, ": expected mnemonic");

        if (name == ".word") {
            st.isDataWord = true;
            skipSpace(s, pos);
            st.dataWord =
                static_cast<Word>(takeNumber(s, pos, line));
            expectEnd(s, pos, line);
            return st;
        }

        // QP increment suffix: trailing '+' repetitions or "+n".
        int qp_inc = 0;
        while (pos < s.size() && s[pos] == '+') {
            ++pos;
            ++qp_inc;
        }
        if (qp_inc == 1 && pos < s.size() &&
            std::isdigit(static_cast<unsigned char>(s[pos]))) {
            qp_inc = static_cast<int>(takeNumber(s, pos, line));
        }
        skipSpace(s, pos);
        Opcode op;
        fatalIf(!opcodeFromMnemonic(name, op), "line ", line,
                ": unknown mnemonic '", name, "'");
        st.instr.op = op;
        st.instr.qpInc = qp_inc;

        skipSpace(s, pos);
        if (isDup(op)) {
            fatalIf(pos >= s.size() || s[pos] != ':', "line ", line,
                    ": dup needs ':' destinations");
            ++pos;
            skipSpace(s, pos);
            st.instr.dupDst1 =
                parseRegister(takeName(s, pos), line);
            skipSpace(s, pos);
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                skipSpace(s, pos);
                st.instr.dupDst2 =
                    parseRegister(takeName(s, pos), line);
            } else {
                fatalIf(op == Opcode::Dup2, "line ", line,
                        ": dup2 needs two destinations");
                st.instr.dupDst2 = st.instr.dupDst1;
            }
            parseContinue(s, pos, line, st);
            return st;
        }

        // Optional sources.
        if (pos < s.size() && s[pos] != ':' && s[pos] != '>') {
            st.tok1 = parseSrc(s, pos, line);
            st.instr.src1 = st.tok1.src;
            skipSpace(s, pos);
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                st.tok2 = parseSrc(s, pos, line);
                st.instr.src2 = st.tok2.src;
                skipSpace(s, pos);
            }
        }
        // Optional destinations.
        if (pos < s.size() && s[pos] == ':') {
            ++pos;
            skipSpace(s, pos);
            st.instr.dst1 = parseRegister(takeName(s, pos), line);
            fatalIf(st.instr.dst1 > 31, "line ", line,
                    ": destination out of range");
            skipSpace(s, pos);
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                skipSpace(s, pos);
                st.instr.dst2 = parseRegister(takeName(s, pos), line);
                fatalIf(st.instr.dst2 > 31, "line ", line,
                        ": destination out of range");
                skipSpace(s, pos);
            }
        }
        parseContinue(s, pos, line, st);
        return st;
    }

    void
    parseContinue(const std::string &s, std::size_t &pos, int line,
                  Statement &st)
    {
        skipSpace(s, pos);
        if (pos < s.size() && s[pos] == '>') {
            st.instr.continueFlag = true;
            ++pos;
        }
        expectEnd(s, pos, line);
    }

    static void
    expectEnd(const std::string &s, std::size_t pos, int line)
    {
        while (pos < s.size()) {
            fatalIf(!std::isspace(static_cast<unsigned char>(s[pos])),
                    "line ", line, ": trailing characters '",
                    s.substr(pos), "'");
            ++pos;
        }
    }

    const std::string &text;
};

bool
isBranch(Opcode op)
{
    return op == Opcode::Bne || op == Opcode::Beq;
}

} // namespace

ObjectCode
assemble(const std::string &source)
{
    Parser parser(source);
    parser.run();

    ObjectCode code;
    code.labels = parser.labels;

    for (Statement &st : parser.statements) {
        if (st.isDataWord) {
            code.words.push_back(st.dataWord);
            continue;
        }
        // Resolve label references. Branches take a PC-relative word
        // offset (PC points past the instruction and its immediates);
        // everything else takes the absolute code word address.
        auto resolve = [&](SrcToken &tok, Src &src) {
            if (!tok.isLabel)
                return;
            auto it = parser.labels.find(tok.label);
            fatalIf(it == parser.labels.end(), "line ", st.line,
                    ": undefined label '", tok.label, "'");
            Addr target = it->second;
            if (isBranch(st.instr.op)) {
                Addr next = st.addr +
                            static_cast<Addr>(Parser::sizeOf(st));
                src.kind = SrcKind::ImmWord;
                src.imm = static_cast<SWord>(target) -
                          static_cast<SWord>(next);
            } else {
                src.kind = SrcKind::ImmWord;
                src.imm = static_cast<SWord>(target);
            }
        };
        resolve(st.tok1, st.instr.src1);
        resolve(st.tok2, st.instr.src2);

        panicIf(code.words.size() != st.addr,
                "assembler address drift at line ", st.line);
        st.instr.encode(code.words);
        panicIf(code.words.size() !=
                    st.addr + static_cast<Addr>(Parser::sizeOf(st)),
                "assembler size drift at line ", st.line);
    }
    return code;
}

std::vector<std::string>
disassemble(const ObjectCode &code)
{
    // Invert the label map for annotation.
    std::map<Addr, std::vector<std::string>> labels_at;
    for (const auto &[name, addr] : code.labels)
        labels_at[addr].push_back(name);

    std::vector<std::string> lines;
    std::size_t index = 0;
    while (index < code.words.size()) {
        Addr addr = static_cast<Addr>(index);
        std::ostringstream os;
        auto it = labels_at.find(addr);
        if (it != labels_at.end())
            for (const std::string &name : it->second)
                lines.push_back(name + ":");
        Instruction instr = Instruction::decode(code.words, index);
        os << "  " << addr << ": " << instr.toString();
        lines.push_back(os.str());
    }
    return lines;
}

} // namespace qm::isa
