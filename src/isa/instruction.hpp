/**
 * @file
 * Decoded instruction representation with encode/decode to the 32-bit
 * formats of thesis Figures 5.6 and 5.7.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "isa/fields.hpp"

namespace qm::isa {

/** How a source operand field is to be interpreted (Table 5.1). */
enum class SrcKind
{
    None,       ///< Field unused (encoded as small immediate 0).
    WindowReg,  ///< 00nnnn: window register R0..R15.
    GlobalReg,  ///< 01nnnn: global register R16..R31.
    SmallImm,   ///< 1nnnnn: signed immediate -15..15.
    ImmWord,    ///< 110000: a 32-bit literal word follows.
};

/** One decoded source operand. */
struct Src
{
    SrcKind kind = SrcKind::None;
    int reg = 0;        ///< Register number (0..31) for register kinds.
    SWord imm = 0;      ///< Immediate value for SmallImm / ImmWord.

    static Src window(int n);
    static Src global(int n);
    /** Any register number 0..31 (routed to window or global mode). */
    static Src anyReg(int n);
    /** Immediate; picks SmallImm when it fits, ImmWord otherwise. */
    static Src immediate(SWord value);
    static Src none() { return Src{}; }

    bool isReg() const
    {
        return kind == SrcKind::WindowReg || kind == SrcKind::GlobalReg;
    }
    /** Architected register number (window regs are 0..15). */
    int regNumber() const;
};

/** A decoded instruction (basic or dup format). */
struct Instruction
{
    Opcode op = Opcode::Plus;
    bool continueFlag = false;

    // Basic format fields.
    Src src1;
    Src src2;
    int dst1 = RegDummy;  ///< Register number; RegDummy = unused.
    int dst2 = RegDummy;
    int qpInc = 0;        ///< Operands removed from the queue (0..7).

    // Dup format fields (queue page offsets 0..255).
    int dupDst1 = 0;
    int dupDst2 = 0;

    /** Words this instruction occupies (1 plus any immediate words). */
    int sizeWords() const;

    /**
     * Encode into 1..3 words (instruction word, then immediate words for
     * src1/src2 in that order). Panics on field overflow.
     */
    void encode(std::vector<Word> &out) const;

    /**
     * Decode the instruction at @p words[index]; advances @p index past
     * the instruction and its immediates. Panics on truncated input.
     */
    static Instruction decode(const std::vector<Word> &words,
                              std::size_t &index);

    /** Render in the thesis assembly syntax. */
    std::string toString() const;
};

/** One predecoded instruction plus the decode-derived hot-path facts. */
struct DecodedOp
{
    Instruction instr;
    Word nextPc = 0;    ///< PC after the instruction and its immediates.
    int sizeWords = 1;  ///< Cached instr.sizeWords().
};

/**
 * Lazily-built decode cache over one object-code image: a per-PC index
 * into an arena of DecodedOp entries. The event-driven core decodes
 * each instruction once, on first execution, and replays the cached
 * form on every later visit - the tick core re-decodes every step, and
 * the two must stay observationally identical, so decoding stays lazy
 * (a program whose cold path holds a truncated or garbage instruction
 * panics at the same execution point in both cores, not at load time).
 *
 * Shared by every PE of a System: the instruction space is pure code.
 * Thread-safe: PEs stepped concurrently by the PDES windows race only
 * on first decode of a PC, which takes a mutex; the warm path is a
 * single acquire load, and arena entries have stable addresses (deque)
 * so a returned reference is valid for the program's lifetime.
 */
class DecodedProgram
{
  public:
    explicit DecodedProgram(const std::vector<Word> &words);

    /**
     * The decoded instruction at @p pc (decoding and caching it on
     * first visit). Panics exactly like the interpreter on an
     * out-of-bounds PC or a truncated instruction. The returned
     * reference stays valid for the lifetime of this object.
     */
    const DecodedOp &at(Word pc);

  private:
    const std::vector<Word> *words_;
    /** Per-PC decoded entry; null until first execution decodes it. */
    std::vector<std::atomic<const DecodedOp *>> index_;
    std::deque<DecodedOp> ops_;  ///< Stable-address arena, decode order.
    std::mutex decodeMutex_;     ///< Serializes cold-path decodes.
};

} // namespace qm::isa
