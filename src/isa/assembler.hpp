/**
 * @file
 * Two-pass assembler for the queue-machine assembly language
 * (thesis section 5.3.4 syntax):
 *
 *   [label:] opcode[{+}|+n] [src1[,src2]] [:dst1[,dst2]] [>] [; comment]
 *
 * Sources are registers (r0..r31 or dummy/nar/pom/qp/pc), immediates
 * (#n), or label references (@name, which assemble as immediate words
 * holding the label's code word address; for branch opcodes the
 * assembler emits the PC-relative word offset instead). The ".word n"
 * directive places a literal data word in the code stream.
 *
 * Code addresses are word indices into the instruction space - the
 * pseudo-static layout keeps instruction and data spaces separate
 * (thesis Fig 2.10), so code addresses never alias data addresses.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace qm::isa {

/** Assembled object code for one program. */
struct ObjectCode
{
    std::vector<Word> words;
    /** Label name -> code word index. */
    std::map<std::string, Addr> labels;

    Addr
    labelAddr(const std::string &name) const;
};

/** Assemble @p source; throws FatalError with line info on bad input. */
ObjectCode assemble(const std::string &source);

/** Disassemble object code into addressed text lines. */
std::vector<std::string> disassemble(const ObjectCode &code);

} // namespace qm::isa
