#include "pe/memory.hpp"

#include "support/diagnostics.hpp"

namespace qm::pe {

Memory::Memory(std::size_t bytes) : bytes_(bytes, 0) {}

void
Memory::checkWord(Addr addr) const
{
    fatalIf((addr & 3) != 0, "unaligned word access at ", addr);
    fatalIf(static_cast<std::size_t>(addr) + 4 > bytes_.size(),
            "word access out of bounds at ", addr);
}

Word
Memory::readWord(Addr addr) const
{
    checkWord(addr);
    return static_cast<Word>(bytes_[addr]) |
           (static_cast<Word>(bytes_[addr + 1]) << 8) |
           (static_cast<Word>(bytes_[addr + 2]) << 16) |
           (static_cast<Word>(bytes_[addr + 3]) << 24);
}

void
Memory::writeWord(Addr addr, Word value)
{
    checkWord(addr);
    if (undo_)
        undo_->record(addr, readWord(addr), /*byte=*/false);
    bytes_[addr] = static_cast<std::uint8_t>(value);
    bytes_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
    bytes_[addr + 2] = static_cast<std::uint8_t>(value >> 16);
    bytes_[addr + 3] = static_cast<std::uint8_t>(value >> 24);
}

std::uint8_t
Memory::readByte(Addr addr) const
{
    fatalIf(static_cast<std::size_t>(addr) >= bytes_.size(),
            "byte access out of bounds at ", addr);
    return bytes_[addr];
}

void
Memory::writeByte(Addr addr, std::uint8_t value)
{
    fatalIf(static_cast<std::size_t>(addr) >= bytes_.size(),
            "byte access out of bounds at ", addr);
    if (undo_)
        undo_->record(addr, bytes_[addr], /*byte=*/true);
    bytes_[addr] = value;
}

void
Memory::applyUndo(const UndoLog &undo)
{
    panicIf(undo.overflowed, "applying an overflowed undo log");
    for (auto it = undo.entries.rbegin(); it != undo.entries.rend();
         ++it) {
        if (it->byte)
            bytes_[it->addr] = static_cast<std::uint8_t>(it->old);
        else {
            checkWord(it->addr);
            bytes_[it->addr] = static_cast<std::uint8_t>(it->old);
            bytes_[it->addr + 1] =
                static_cast<std::uint8_t>(it->old >> 8);
            bytes_[it->addr + 2] =
                static_cast<std::uint8_t>(it->old >> 16);
            bytes_[it->addr + 3] =
                static_cast<std::uint8_t>(it->old >> 24);
        }
    }
}

void
Memory::restoreBytes(const std::vector<std::uint8_t> &bytes)
{
    panicIf(bytes.size() != bytes_.size(),
            "memory snapshot size mismatch");
    bytes_ = bytes;
}

} // namespace qm::pe
