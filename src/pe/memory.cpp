#include "pe/memory.hpp"

#include <cstring>

#include "support/diagnostics.hpp"

namespace qm::pe {

thread_local UndoLog *Memory::undo_ = nullptr;

Memory::Memory(std::size_t bytes, Alloc alloc) : size_(bytes)
{
    if (alloc == Alloc::Eager) {
        bytes_.assign(bytes, 0);
        data_ = bytes_.data();
    } else {
        lazy_.reset(static_cast<std::uint8_t *>(std::calloc(bytes, 1)));
        fatalIf(bytes > 0 && !lazy_,
                "memory allocation of ", bytes, " bytes failed");
        data_ = lazy_.get();
    }
}

void
Memory::checkWord(Addr addr) const
{
    fatalIf((addr & 3) != 0, "unaligned word access at ", addr);
    fatalIf(static_cast<std::size_t>(addr) + 4 > size_,
            "word access out of bounds at ", addr);
}

Word
Memory::readWord(Addr addr) const
{
    checkWord(addr);
    return static_cast<Word>(data_[addr]) |
           (static_cast<Word>(data_[addr + 1]) << 8) |
           (static_cast<Word>(data_[addr + 2]) << 16) |
           (static_cast<Word>(data_[addr + 3]) << 24);
}

void
Memory::writeWord(Addr addr, Word value)
{
    checkWord(addr);
    if (undo_)
        undo_->record(addr, readWord(addr), /*byte=*/false);
    data_[addr] = static_cast<std::uint8_t>(value);
    data_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
    data_[addr + 2] = static_cast<std::uint8_t>(value >> 16);
    data_[addr + 3] = static_cast<std::uint8_t>(value >> 24);
}

std::uint8_t
Memory::readByte(Addr addr) const
{
    fatalIf(static_cast<std::size_t>(addr) >= size_,
            "byte access out of bounds at ", addr);
    return data_[addr];
}

void
Memory::writeByte(Addr addr, std::uint8_t value)
{
    fatalIf(static_cast<std::size_t>(addr) >= size_,
            "byte access out of bounds at ", addr);
    if (undo_)
        undo_->record(addr, data_[addr], /*byte=*/true);
    data_[addr] = value;
}

void
Memory::applyUndo(const UndoLog &undo)
{
    panicIf(undo.overflowed, "applying an overflowed undo log");
    for (auto it = undo.entries.rbegin(); it != undo.entries.rend();
         ++it) {
        if (it->byte)
            data_[it->addr] = static_cast<std::uint8_t>(it->old);
        else {
            checkWord(it->addr);
            data_[it->addr] = static_cast<std::uint8_t>(it->old);
            data_[it->addr + 1] =
                static_cast<std::uint8_t>(it->old >> 8);
            data_[it->addr + 2] =
                static_cast<std::uint8_t>(it->old >> 16);
            data_[it->addr + 3] =
                static_cast<std::uint8_t>(it->old >> 24);
        }
    }
}

void
Memory::snapshotTo(std::vector<std::uint8_t> &out) const
{
    out.assign(data_, data_ + size_);
}

void
Memory::restoreBytes(const std::vector<std::uint8_t> &bytes)
{
    panicIf(bytes.size() != size_, "memory snapshot size mismatch");
    std::memcpy(data_, bytes.data(), size_);
}

} // namespace qm::pe
