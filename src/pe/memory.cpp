#include "pe/memory.hpp"

#include "support/diagnostics.hpp"

namespace qm::pe {

Memory::Memory(std::size_t bytes) : bytes_(bytes, 0) {}

void
Memory::checkWord(Addr addr) const
{
    fatalIf((addr & 3) != 0, "unaligned word access at ", addr);
    fatalIf(static_cast<std::size_t>(addr) + 4 > bytes_.size(),
            "word access out of bounds at ", addr);
}

Word
Memory::readWord(Addr addr) const
{
    checkWord(addr);
    return static_cast<Word>(bytes_[addr]) |
           (static_cast<Word>(bytes_[addr + 1]) << 8) |
           (static_cast<Word>(bytes_[addr + 2]) << 16) |
           (static_cast<Word>(bytes_[addr + 3]) << 24);
}

void
Memory::writeWord(Addr addr, Word value)
{
    checkWord(addr);
    bytes_[addr] = static_cast<std::uint8_t>(value);
    bytes_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
    bytes_[addr + 2] = static_cast<std::uint8_t>(value >> 16);
    bytes_[addr + 3] = static_cast<std::uint8_t>(value >> 24);
}

std::uint8_t
Memory::readByte(Addr addr) const
{
    fatalIf(static_cast<std::size_t>(addr) >= bytes_.size(),
            "byte access out of bounds at ", addr);
    return bytes_[addr];
}

void
Memory::writeByte(Addr addr, std::uint8_t value)
{
    fatalIf(static_cast<std::size_t>(addr) >= bytes_.size(),
            "byte access out of bounds at ", addr);
    bytes_[addr] = value;
}

} // namespace qm::pe
