/**
 * @file
 * Byte-addressable data memory (thesis section 5.3.1).
 *
 * Words are 32 bits, little-endian, and word accesses must be aligned.
 * The operand-queue pages of every context live in this memory alongside
 * program data (vectors, arrays), exactly as in the pseudo-static layout
 * where one instruction space is shared while each context owns a data
 * page.
 */
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "isa/fields.hpp"

namespace qm::pe {

using isa::Addr;
using isa::Word;

/**
 * Bounded store undo log for span restart (see DESIGN.md "Recoverable
 * execution"). While attached to a Memory, every write records the
 * value it overwrote; applying the log in reverse restores memory to
 * the state at the moment the log was cleared. Exceeding the bound
 * marks the log overflowed, which forbids restarting the span (the
 * checkpoint path takes over) but keeps memory use bounded.
 */
struct UndoLog
{
    struct Entry
    {
        Addr addr = 0;
        Word old = 0;
        bool byte = false;
    };

    std::vector<Entry> entries;
    std::size_t cap = 1u << 18;
    bool overflowed = false;

    void
    clear()
    {
        entries.clear();
        overflowed = false;
    }

    void
    record(Addr addr, Word old, bool byte)
    {
        if (overflowed)
            return;
        if (entries.size() >= cap) {
            overflowed = true;
            entries.clear();  // unusable for restart; free the memory
            return;
        }
        entries.push_back({addr, old, byte});
    }
};

/** Flat byte-addressable memory with checked word/byte access. */
class Memory
{
  public:
    /**
     * Backing-store strategy. Eager value-initializes the whole store
     * up front (a 32 MB memset per System - the historical behavior,
     * kept for the tick core so its host cost stays the reference
     * point). Lazy calloc()s instead, so untouched pages stay as
     * kernel zero-pages and construction is near-free; both read as
     * all-zeroes and are observationally identical.
     */
    enum class Alloc
    {
        Eager,
        Lazy,
    };

    explicit Memory(std::size_t bytes, Alloc alloc = Alloc::Eager);

    std::size_t size() const { return size_; }

    Word readWord(Addr addr) const;
    void writeWord(Addr addr, Word value);
    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);

    /**
     * Attach (or detach with nullptr) an undo log recording the old
     * value of every subsequent write made by the calling thread. The
     * System points this at the stepping PE's span log around each
     * batch; with no recovery plan it stays null and writes behave
     * exactly as before. The attachment is thread-local so the PDES
     * worker threads can journal concurrent speculative spans into
     * their own slots' logs without racing (each worker brackets its
     * own batches; a thread that never attaches journals nothing).
     */
    void setUndoLog(UndoLog *undo) { undo_ = undo; }

    /** Roll back every write recorded in @p undo (reverse order). */
    void applyUndo(const UndoLog &undo);

    /** Whole-memory snapshot support (System checkpoints). */
    void snapshotTo(std::vector<std::uint8_t> &out) const;
    void restoreBytes(const std::vector<std::uint8_t> &bytes);

    /** Raw backing store (tests/differential comparisons). */
    const std::uint8_t *data() const { return data_; }

  private:
    struct FreeDeleter
    {
        void operator()(std::uint8_t *p) const { std::free(p); }
    };

    void checkWord(Addr addr) const;

    std::vector<std::uint8_t> bytes_;  ///< Eager backing store.
    std::unique_ptr<std::uint8_t[], FreeDeleter> lazy_;  ///< Lazy store.
    std::uint8_t *data_ = nullptr;  ///< Whichever store is active.
    std::size_t size_ = 0;
    /** Per-thread undo attachment (see setUndoLog). */
    static thread_local UndoLog *undo_;
};

} // namespace qm::pe
