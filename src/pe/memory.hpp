/**
 * @file
 * Byte-addressable data memory (thesis section 5.3.1).
 *
 * Words are 32 bits, little-endian, and word accesses must be aligned.
 * The operand-queue pages of every context live in this memory alongside
 * program data (vectors, arrays), exactly as in the pseudo-static layout
 * where one instruction space is shared while each context owns a data
 * page.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "isa/fields.hpp"

namespace qm::pe {

using isa::Addr;
using isa::Word;

/** Flat byte-addressable memory with checked word/byte access. */
class Memory
{
  public:
    explicit Memory(std::size_t bytes);

    std::size_t size() const { return bytes_.size(); }

    Word readWord(Addr addr) const;
    void writeWord(Addr addr, Word value);
    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);

  private:
    void checkWord(Addr addr) const;

    std::vector<std::uint8_t> bytes_;
};

} // namespace qm::pe
