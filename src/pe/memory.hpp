/**
 * @file
 * Byte-addressable data memory (thesis section 5.3.1).
 *
 * Words are 32 bits, little-endian, and word accesses must be aligned.
 * The operand-queue pages of every context live in this memory alongside
 * program data (vectors, arrays), exactly as in the pseudo-static layout
 * where one instruction space is shared while each context owns a data
 * page.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "isa/fields.hpp"

namespace qm::pe {

using isa::Addr;
using isa::Word;

/**
 * Bounded store undo log for span restart (see DESIGN.md "Recoverable
 * execution"). While attached to a Memory, every write records the
 * value it overwrote; applying the log in reverse restores memory to
 * the state at the moment the log was cleared. Exceeding the bound
 * marks the log overflowed, which forbids restarting the span (the
 * checkpoint path takes over) but keeps memory use bounded.
 */
struct UndoLog
{
    struct Entry
    {
        Addr addr = 0;
        Word old = 0;
        bool byte = false;
    };

    std::vector<Entry> entries;
    std::size_t cap = 1u << 18;
    bool overflowed = false;

    void
    clear()
    {
        entries.clear();
        overflowed = false;
    }

    void
    record(Addr addr, Word old, bool byte)
    {
        if (overflowed)
            return;
        if (entries.size() >= cap) {
            overflowed = true;
            entries.clear();  // unusable for restart; free the memory
            return;
        }
        entries.push_back({addr, old, byte});
    }
};

/** Flat byte-addressable memory with checked word/byte access. */
class Memory
{
  public:
    explicit Memory(std::size_t bytes);

    std::size_t size() const { return bytes_.size(); }

    Word readWord(Addr addr) const;
    void writeWord(Addr addr, Word value);
    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);

    /**
     * Attach (or detach with nullptr) an undo log recording the old
     * value of every subsequent write. The simulation is single-
     * threaded, so the System points this at the stepping PE's span
     * log; with no recovery plan it stays null and writes behave
     * exactly as before.
     */
    void setUndoLog(UndoLog *undo) { undo_ = undo; }

    /** Roll back every write recorded in @p undo (reverse order). */
    void applyUndo(const UndoLog &undo);

    /** Whole-memory snapshot support (System checkpoints). */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    void restoreBytes(const std::vector<std::uint8_t> &bytes);

  private:
    void checkWord(Addr addr) const;

    std::vector<std::uint8_t> bytes_;
    UndoLog *undo_ = nullptr;
};

} // namespace qm::pe
