#include "pe/pe.hpp"

#include <bit>

#include "support/diagnostics.hpp"

namespace qm::pe {

using isa::Instruction;
using isa::Opcode;
using isa::Src;
using isa::SrcKind;
using isa::RegDummy;
using isa::RegNar;
using isa::RegPom;
using isa::RegQp;
using isa::RegPc;

HostStatus
NullHost::send(Word, Word)
{
    fatal("channel send with no host attached");
}

HostStatus
NullHost::recv(Word, Word &)
{
    fatal("channel receive with no host attached");
}

TrapOutcome
NullHost::trap(Word, Word)
{
    fatal("trap with no host attached");
}

Word
pomForPageWords(int words)
{
    fatalIf(words < 32 || words > 256 || !std::has_single_bit(
                static_cast<unsigned>(words)),
            "queue page must be a power of two in [32,256], got ", words);
    int m = std::countr_zero(static_cast<unsigned>(words));
    return static_cast<Word>(0xFF << m) & 0xFF;
}

int
pageWordsForPom(Word pom)
{
    // m = number of zero bits on the right of the 8-bit mask.
    int m = std::countr_zero(static_cast<unsigned>(pom & 0xFF) | 0x100);
    return 1 << m;
}

ProcessingElement::ProcessingElement(Memory &memory,
                                     const isa::ObjectCode &code,
                                     PeHost &host, PeTiming timing)
    : memory_(memory), code_(code), host_(&host), timing_(timing)
{
    globals_[RegPom - 16] = pomForPageWords(64);
    pom_ = globals_[RegPom - 16];
}

void
ProcessingElement::loadContext(const ContextState &state)
{
    pc_ = state.pc;
    qp_ = state.qp;
    pom_ = state.pom;
    nar_ = state.nar;
    lastResult_ = state.lastResult;
    for (int i = 0; i < 11; ++i)
        globals_[static_cast<size_t>(17 + i - 16)] =
            state.generals[static_cast<size_t>(i)];
    presence_.fill(false);
}

ContextState
ProcessingElement::saveContext()
{
    rollOut();
    ContextState state;
    state.pc = pc_;
    state.qp = qp_;
    state.pom = pom_;
    state.nar = nar_;
    state.lastResult = lastResult_;
    for (int i = 0; i < 11; ++i)
        state.generals[static_cast<size_t>(i)] =
            globals_[static_cast<size_t>(17 + i - 16)];
    return state;
}

long
ProcessingElement::rollOut()
{
    long cycles = 0;
    for (int n = 0; n < 16; ++n) {
        int phys = physicalIndex(n);
        if (presence_[static_cast<size_t>(phys)]) {
            memory_.writeWord(windowAddress(n),
                              window_[static_cast<size_t>(phys)]);
            presence_[static_cast<size_t>(phys)] = false;
            cycles += timing_.rollOutCyclesPerReg;
            stats_.inc("pe.rollout_regs");
        }
    }
    return cycles;
}

int
ProcessingElement::physicalIndex(int n) const
{
    int q = static_cast<int>((qp_ >> 2) & 0xFF);
    return (q + n) & 0xF;
}

Addr
ProcessingElement::windowAddress(int n) const
{
    // Fig 5.5: each POM bit selects between the raw page-offset bit and
    // the bit of (offset + n), producing wrap-around within the page.
    Word q = (qp_ >> 2) & 0xFF;
    Word sum = (q + static_cast<Word>(n)) & 0xFF;
    Word mask = pom_ & 0xFF;
    Word woffset = (q & mask) | (sum & ~mask & 0xFF);
    return (qp_ & ~static_cast<Word>(0x3FF)) | (woffset << 2);
}

void
ProcessingElement::bumpQp(int inc)
{
    if (inc == 0)
        return;
    for (int n = 0; n < inc; ++n)
        presence_[static_cast<size_t>(physicalIndex(n))] = false;
    Word q = (qp_ >> 2) & 0xFF;
    Word sum = (q + static_cast<Word>(inc)) & 0xFF;
    Word mask = pom_ & 0xFF;
    Word next = (q & mask) | (sum & ~mask & 0xFF);
    qp_ = (qp_ & ~static_cast<Word>(0x3FF)) | (next << 2);
}

Word
ProcessingElement::readSrc(const Src &src, long &cycles)
{
    switch (src.kind) {
      case SrcKind::None:
        return 0;
      case SrcKind::WindowReg: {
        int phys = physicalIndex(src.reg);
        if (presence_[static_cast<size_t>(phys)]) {
            stats_.inc("pe.window_hits");
            return window_[static_cast<size_t>(phys)];
        }
        stats_.inc("pe.window_misses");
        cycles += timing_.memoryCycles;
        return memory_.readWord(windowAddress(src.reg));
      }
      case SrcKind::GlobalReg:
        return readReg(src.reg);
      case SrcKind::SmallImm:
      case SrcKind::ImmWord:
        return static_cast<Word>(src.imm);
    }
    panic("unreachable src kind");
}

Word
ProcessingElement::readReg(int reg)
{
    panicIf(reg < 0 || reg > 31, "register out of range: ", reg);
    if (reg < 16) {
        int phys = physicalIndex(reg);
        if (presence_[static_cast<size_t>(phys)])
            return window_[static_cast<size_t>(phys)];
        return memory_.readWord(windowAddress(reg));
    }
    switch (reg) {
      case RegDummy: return 0;
      case RegNar: return nar_;
      case RegPom: return pom_;
      case RegQp: return qp_;
      case RegPc: return pc_;
      default: return globals_[static_cast<size_t>(reg - 16)];
    }
}

void
ProcessingElement::writeReg(int reg, Word value)
{
    writeDst(reg, value);
}

void
ProcessingElement::writeDst(int reg, Word value)
{
    panicIf(reg < 0 || reg > 31, "register out of range: ", reg);
    if (reg < 16) {
        int phys = physicalIndex(reg);
        window_[static_cast<size_t>(phys)] = value;
        presence_[static_cast<size_t>(phys)] = true;
        return;
    }
    switch (reg) {
      case RegDummy:
        return;  // Writes to DUMMY are discarded.
      case RegNar:
        nar_ = value;
        return;
      case RegPom:
        pom_ = value;
        return;
      case RegQp:
        // Moving the queue pointer re-targets the window; the presence
        // bits no longer describe the new page.
        qp_ = value;
        presence_.fill(false);
        return;
      case RegPc:
        pc_ = value;
        pcWritten_ = true;
        return;
      default:
        globals_[static_cast<size_t>(reg - 16)] = value;
        return;
    }
}

Word
ProcessingElement::aluResult(Opcode op, Word a, Word b)
{
    auto sa = static_cast<isa::SWord>(a);
    auto sb = static_cast<isa::SWord>(b);
    switch (op) {
      case Opcode::Or: return a | b;
      case Opcode::And: return a & b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Lshift: return a << (b & 31);
      case Opcode::Rshift:
        return static_cast<Word>(sa >> (b & 31));  // arithmetic shift
      case Opcode::Plus: return a + b;
      case Opcode::Minus: return a - b;
      case Opcode::Mul: return static_cast<Word>(sa * sb);
      case Opcode::Div:
        fatalIf(sb == 0, "division by zero");
        return static_cast<Word>(sa / sb);
      case Opcode::Rem:
        fatalIf(sb == 0, "remainder by zero");
        return static_cast<Word>(sa % sb);
      case Opcode::Ge: return sa >= sb ? isa::kTrue : isa::kFalse;
      case Opcode::Ne: return a != b ? isa::kTrue : isa::kFalse;
      case Opcode::Gt: return sa > sb ? isa::kTrue : isa::kFalse;
      case Opcode::Lt: return sa < sb ? isa::kTrue : isa::kFalse;
      case Opcode::Eq: return a == b ? isa::kTrue : isa::kFalse;
      case Opcode::Le: return sa <= sb ? isa::kTrue : isa::kFalse;
      case Opcode::His: return a >= b ? isa::kTrue : isa::kFalse;
      case Opcode::Hi: return a > b ? isa::kTrue : isa::kFalse;
      case Opcode::Lo: return a < b ? isa::kTrue : isa::kFalse;
      case Opcode::Los: return a <= b ? isa::kTrue : isa::kFalse;
      default:
        panic("aluResult: not an ALU opcode");
    }
}

StepResult
ProcessingElement::step()
{
    if (faults_ && faults_->fire(fault::kPeStall)) {
        // Transient stall: cycles pass, no instruction retires, no
        // architectural state changes. The next step() re-attempts the
        // same instruction.
        long stall = static_cast<long>(faults_->stallCycles());
        stats_.inc("fault.pe_stall");
        stats_.inc("fault.pe_stall_cycles",
                   static_cast<std::uint64_t>(stall));
        stats_.record("fault.stall",
                      static_cast<std::uint64_t>(stall));
        if (tracer_)
            tracer_->faultInject(clock_ ? *clock_ : 0, peIndex_,
                                 fault::kPeStall,
                                 static_cast<std::uint64_t>(stall));
        StepResult stalled;
        stalled.cycles = stall;
        return stalled;
    }
    panicIf(static_cast<std::size_t>(pc_) >= code_.words.size(),
            "PC out of code bounds: ", pc_);
    std::size_t index = pc_;
    Instruction instr = Instruction::decode(code_.words, index);
    Word next_pc = static_cast<Word>(index);

    long cycles = timing_.simpleCycles +
                  timing_.immWordCycles * (instr.sizeWords() - 1);
    StepResult result;
    stats_.inc("pe.instructions");
    pcWritten_ = false;

    if (isDup(instr.op)) {
        // dup writes go to the memory-resident operand queue, never to
        // the window registers (section 5.3.3).
        memory_.writeWord(windowAddress(instr.dupDst1), lastResult_);
        cycles += timing_.memoryCycles;
        if (instr.op == Opcode::Dup2 &&
            instr.dupDst2 != instr.dupDst1) {
            memory_.writeWord(windowAddress(instr.dupDst2), lastResult_);
            cycles += timing_.memoryCycles;
        }
        stats_.inc("pe.dups");
        pc_ = next_pc;
        result.cycles = cycles;
        return result;
    }

    switch (instr.op) {
      case Opcode::Send: {
        Word channel = readSrc(instr.src1, cycles);
        Word value = readSrc(instr.src2, cycles);
        cycles += timing_.channelCycles;
        if (host_->send(channel, value) == HostStatus::Blocked) {
            result.status = StepStatus::Blocked;
            result.cycles = cycles;
            return result;  // PC/QP untouched: retried later.
        }
        bumpQp(instr.qpInc);
        stats_.inc("pe.sends");
        break;
      }
      case Opcode::Recv: {
        Word channel = readSrc(instr.src1, cycles);
        Word value = 0;
        cycles += timing_.channelCycles;
        if (host_->recv(channel, value) == HostStatus::Blocked) {
            result.status = StepStatus::Blocked;
            result.cycles = cycles;
            return result;
        }
        bumpQp(instr.qpInc);
        writeDst(instr.dst1, value);
        writeDst(instr.dst2, value);
        lastResult_ = value;
        stats_.inc("pe.recvs");
        break;
      }
      case Opcode::Store: {
        Word addr = readSrc(instr.src1, cycles);
        Word value = readSrc(instr.src2, cycles);
        bumpQp(instr.qpInc);
        memory_.writeWord(addr, value);
        cycles += timing_.memoryCycles;
        stats_.inc("pe.stores");
        break;
      }
      case Opcode::Storb: {
        Word addr = readSrc(instr.src1, cycles);
        Word value = readSrc(instr.src2, cycles);
        bumpQp(instr.qpInc);
        memory_.writeByte(addr, static_cast<std::uint8_t>(value));
        cycles += timing_.memoryCycles;
        stats_.inc("pe.stores");
        break;
      }
      case Opcode::Fetch: {
        Word addr = readSrc(instr.src1, cycles);
        bumpQp(instr.qpInc);
        Word value = memory_.readWord(addr);
        cycles += timing_.memoryCycles;
        writeDst(instr.dst1, value);
        writeDst(instr.dst2, value);
        lastResult_ = value;
        stats_.inc("pe.fetches");
        break;
      }
      case Opcode::Fchb: {
        Word addr = readSrc(instr.src1, cycles);
        bumpQp(instr.qpInc);
        Word value = memory_.readByte(addr);
        cycles += timing_.memoryCycles;
        writeDst(instr.dst1, value);
        writeDst(instr.dst2, value);
        lastResult_ = value;
        stats_.inc("pe.fetches");
        break;
      }
      case Opcode::Bne:
      case Opcode::Beq: {
        Word control = readSrc(instr.src1, cycles);
        Word offset = readSrc(instr.src2, cycles);
        bumpQp(instr.qpInc);
        bool taken = (instr.op == Opcode::Bne) ? control != 0
                                               : control == 0;
        if (taken) {
            next_pc = next_pc + offset;  // wraps mod 2^32 for negatives
            cycles += timing_.branchTakenCycles;
        }
        stats_.inc("pe.branches");
        break;
      }
      case Opcode::Trap:
      case Opcode::Ftrap: {
        Word number = readSrc(instr.src1, cycles);
        Word argument = readSrc(instr.src2, cycles);
        cycles += timing_.trapCycles;
        TrapOutcome outcome = host_->trap(number, argument);
        if (outcome.status == HostStatus::Blocked) {
            result.status = StepStatus::Blocked;
            result.cycles = cycles;
            return result;
        }
        cycles += outcome.kernelCycles;
        stats_.record("pe.trap_service",
                      static_cast<std::uint64_t>(outcome.kernelCycles));
        if (tracer_)
            tracer_->trapEnter(clock_ ? *clock_ : 0, peIndex_, number,
                               outcome.kernelCycles);
        bumpQp(instr.qpInc);
        if (outcome.result) {
            writeDst(instr.dst1, *outcome.result);
            writeDst(instr.dst2, *outcome.result);
            lastResult_ = *outcome.result;
        }
        stats_.inc("pe.traps");
        if (outcome.endContext) {
            result.status = StepStatus::ContextEnd;
            result.cycles = cycles;
            pc_ = next_pc;
            return result;
        }
        break;
      }
      case Opcode::Fret:
      case Opcode::Rett:
        result.status = StepStatus::Returned;
        result.cycles = cycles;
        pc_ = next_pc;
        return result;
      default: {
        // ALU / logical / comparison class.
        Word a = readSrc(instr.src1, cycles);
        Word b = readSrc(instr.src2, cycles);
        bumpQp(instr.qpInc);
        Word value = aluResult(instr.op, a, b);
        writeDst(instr.dst1, value);
        writeDst(instr.dst2, value);
        lastResult_ = value;
        stats_.inc("pe.alu_ops");
        break;
      }
    }

    if (!pcWritten_)
        pc_ = next_pc;
    result.cycles = cycles;
    return result;
}

Word
ProcessingElement::readSrcFast(const Src &src, long &cycles)
{
    switch (src.kind) {
      case SrcKind::None:
        return 0;
      case SrcKind::WindowReg: {
        int phys = physicalIndex(src.reg);
        if (presence_[static_cast<size_t>(phys)]) {
            ++deltas_.windowHits;
            return window_[static_cast<size_t>(phys)];
        }
        ++deltas_.windowMisses;
        cycles += timing_.memoryCycles;
        return memory_.readWord(windowAddress(src.reg));
      }
      case SrcKind::GlobalReg:
        return readReg(src.reg);
      case SrcKind::SmallImm:
      case SrcKind::ImmWord:
        return static_cast<Word>(src.imm);
    }
    panic("unreachable src kind");
}

// Keep every architectural decision, cycle charge, and panic in this
// function in lock-step with step() above: the differential suite
// holds the two to byte-identical run output.
StepResult
ProcessingElement::stepFast()
{
    if (faults_ && faults_->fire(fault::kPeStall)) {
        // Stalls are rare; the slow-path stat strings are fine here.
        long stall = static_cast<long>(faults_->stallCycles());
        stats_.inc("fault.pe_stall");
        stats_.inc("fault.pe_stall_cycles",
                   static_cast<std::uint64_t>(stall));
        stats_.record("fault.stall",
                      static_cast<std::uint64_t>(stall));
        if (tracer_)
            tracer_->faultInject(clock_ ? *clock_ : 0, peIndex_,
                                 fault::kPeStall,
                                 static_cast<std::uint64_t>(stall));
        StepResult stalled;
        stalled.cycles = stall;
        return stalled;
    }
    panicIf(!decoded_, "stepFast without a DecodedProgram attached");
    const isa::DecodedOp &op = decoded_->at(pc_);
    const Instruction &instr = op.instr;
    Word next_pc = op.nextPc;

    if (deferHostOps_ &&
        (instr.op == Opcode::Send || instr.op == Opcode::Recv ||
         instr.op == Opcode::Trap || instr.op == Opcode::Ftrap ||
         instr.op == Opcode::Fret || instr.op == Opcode::Rett)) {
        // Speculation boundary: stop before any architectural effect
        // (no operand read, no cycle charge, no tally) so the drain
        // re-executes this instruction from scratch against the real
        // kernel.
        StepResult deferred;
        deferred.status = StepStatus::Deferred;
        return deferred;
    }

    long cycles = timing_.simpleCycles +
                  timing_.immWordCycles * (op.sizeWords - 1);
    StepResult result;
    ++deltas_.instructions;
    pcWritten_ = false;

    if (isDup(instr.op)) {
        memory_.writeWord(windowAddress(instr.dupDst1), lastResult_);
        cycles += timing_.memoryCycles;
        if (instr.op == Opcode::Dup2 &&
            instr.dupDst2 != instr.dupDst1) {
            memory_.writeWord(windowAddress(instr.dupDst2), lastResult_);
            cycles += timing_.memoryCycles;
        }
        ++deltas_.dups;
        pc_ = next_pc;
        result.cycles = cycles;
        return result;
    }

    switch (instr.op) {
      case Opcode::Send: {
        Word channel = readSrcFast(instr.src1, cycles);
        Word value = readSrcFast(instr.src2, cycles);
        cycles += timing_.channelCycles;
        if (host_->send(channel, value) == HostStatus::Blocked) {
            result.status = StepStatus::Blocked;
            result.cycles = cycles;
            return result;  // PC/QP untouched: retried later.
        }
        bumpQp(instr.qpInc);
        ++deltas_.sends;
        break;
      }
      case Opcode::Recv: {
        Word channel = readSrcFast(instr.src1, cycles);
        Word value = 0;
        cycles += timing_.channelCycles;
        if (host_->recv(channel, value) == HostStatus::Blocked) {
            result.status = StepStatus::Blocked;
            result.cycles = cycles;
            return result;
        }
        bumpQp(instr.qpInc);
        writeDst(instr.dst1, value);
        writeDst(instr.dst2, value);
        lastResult_ = value;
        ++deltas_.recvs;
        break;
      }
      case Opcode::Store: {
        Word addr = readSrcFast(instr.src1, cycles);
        Word value = readSrcFast(instr.src2, cycles);
        bumpQp(instr.qpInc);
        memory_.writeWord(addr, value);
        cycles += timing_.memoryCycles;
        ++deltas_.stores;
        break;
      }
      case Opcode::Storb: {
        Word addr = readSrcFast(instr.src1, cycles);
        Word value = readSrcFast(instr.src2, cycles);
        bumpQp(instr.qpInc);
        memory_.writeByte(addr, static_cast<std::uint8_t>(value));
        cycles += timing_.memoryCycles;
        ++deltas_.stores;
        break;
      }
      case Opcode::Fetch: {
        Word addr = readSrcFast(instr.src1, cycles);
        bumpQp(instr.qpInc);
        Word value = memory_.readWord(addr);
        cycles += timing_.memoryCycles;
        writeDst(instr.dst1, value);
        writeDst(instr.dst2, value);
        lastResult_ = value;
        ++deltas_.fetches;
        break;
      }
      case Opcode::Fchb: {
        Word addr = readSrcFast(instr.src1, cycles);
        bumpQp(instr.qpInc);
        Word value = memory_.readByte(addr);
        cycles += timing_.memoryCycles;
        writeDst(instr.dst1, value);
        writeDst(instr.dst2, value);
        lastResult_ = value;
        ++deltas_.fetches;
        break;
      }
      case Opcode::Bne:
      case Opcode::Beq: {
        Word control = readSrcFast(instr.src1, cycles);
        Word offset = readSrcFast(instr.src2, cycles);
        bumpQp(instr.qpInc);
        bool taken = (instr.op == Opcode::Bne) ? control != 0
                                               : control == 0;
        if (taken) {
            next_pc = next_pc + offset;  // wraps mod 2^32 for negatives
            cycles += timing_.branchTakenCycles;
        }
        ++deltas_.branches;
        break;
      }
      case Opcode::Trap:
      case Opcode::Ftrap: {
        Word number = readSrcFast(instr.src1, cycles);
        Word argument = readSrcFast(instr.src2, cycles);
        cycles += timing_.trapCycles;
        TrapOutcome outcome = host_->trap(number, argument);
        if (outcome.status == HostStatus::Blocked) {
            result.status = StepStatus::Blocked;
            result.cycles = cycles;
            return result;
        }
        cycles += outcome.kernelCycles;
        deltas_.trapService.sample(
            static_cast<std::uint64_t>(outcome.kernelCycles));
        if (tracer_)
            tracer_->trapEnter(clock_ ? *clock_ : 0, peIndex_, number,
                               outcome.kernelCycles);
        bumpQp(instr.qpInc);
        if (outcome.result) {
            writeDst(instr.dst1, *outcome.result);
            writeDst(instr.dst2, *outcome.result);
            lastResult_ = *outcome.result;
        }
        ++deltas_.traps;
        if (outcome.endContext) {
            result.status = StepStatus::ContextEnd;
            result.cycles = cycles;
            pc_ = next_pc;
            return result;
        }
        break;
      }
      case Opcode::Fret:
      case Opcode::Rett:
        result.status = StepStatus::Returned;
        result.cycles = cycles;
        pc_ = next_pc;
        return result;
      default: {
        // ALU / logical / comparison class.
        Word a = readSrcFast(instr.src1, cycles);
        Word b = readSrcFast(instr.src2, cycles);
        bumpQp(instr.qpInc);
        Word value = aluResult(instr.op, a, b);
        writeDst(instr.dst1, value);
        writeDst(instr.dst2, value);
        lastResult_ = value;
        ++deltas_.aluOps;
        break;
      }
    }

    if (!pcWritten_)
        pc_ = next_pc;
    result.cycles = cycles;
    return result;
}

void
ProcessingElement::flushStats()
{
    auto flush = [this](const char *name, std::uint64_t &delta) {
        if (delta > 0) {
            stats_.inc(name, delta);
            delta = 0;
        }
    };
    flush("pe.instructions", deltas_.instructions);
    flush("pe.alu_ops", deltas_.aluOps);
    flush("pe.dups", deltas_.dups);
    flush("pe.sends", deltas_.sends);
    flush("pe.recvs", deltas_.recvs);
    flush("pe.stores", deltas_.stores);
    flush("pe.fetches", deltas_.fetches);
    flush("pe.branches", deltas_.branches);
    flush("pe.traps", deltas_.traps);
    flush("pe.window_hits", deltas_.windowHits);
    flush("pe.window_misses", deltas_.windowMisses);
    if (deltas_.trapService.count() > 0) {
        stats_.histogramRef("pe.trap_service")
            .merge(deltas_.trapService);
        deltas_.trapService = Histogram{};
    }
}

} // namespace qm::pe
