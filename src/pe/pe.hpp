/**
 * @file
 * Queue-machine processing element (thesis Chapter 5).
 *
 * The PE executes the Table 5.2 instruction set over 32 registers:
 * R0..R15 are virtual window registers - the first 16 elements of the
 * memory-resident operand queue, translated through the queue pointer
 * (QP) and page offset mask (POM) - and R16..R31 are globals including
 * DUMMY, NAR, POM, QP, and PC.
 *
 * Each window register carries a presence bit. Reading a virtual window
 * register with its presence bit set hits the register file; otherwise
 * the operand comes from the queue page in memory (costing memory
 * cycles, per the Fig 5.10 timing classes). The QP increment field of
 * every instruction slides the window, clearing presence bits.
 *
 * Channel operations (send/recv) and traps (rfork/ifork/exit/...)
 * delegate to a PeHost, which the multiprocessing kernel implements.
 * When the host reports Blocked the instruction is not consumed: PC, QP
 * and presence bits are untouched, so the kernel can re-run the context
 * later (the thesis Fig 6.4 context state machine).
 */
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "fault/fault.hpp"
#include "isa/assembler.hpp"
#include "isa/instruction.hpp"
#include "pe/memory.hpp"
#include "support/stats.hpp"
#include "trace/trace.hpp"

namespace qm::pe {

/** Host services status for blocking operations. */
enum class HostStatus
{
    Done,     ///< Operation completed; execution continues.
    Blocked,  ///< Cannot complete now; re-execute this instruction later.
};

/** Outcome of a kernel trap. */
struct TrapOutcome
{
    HostStatus status = HostStatus::Done;
    /** Result value, fanned out to dst1 and dst2 like any other op. */
    std::optional<Word> result;
    bool endContext = false;      ///< Context finished (kernel exit).
    long kernelCycles = 0;        ///< Extra cycles charged by the kernel.
};

/** Services the PE requires from its environment (the kernel). */
class PeHost
{
  public:
    virtual ~PeHost() = default;

    /** Channel output: blocks until a matching receive rendezvous. */
    virtual HostStatus send(Word channel, Word value) = 0;

    /** Channel input: blocks until a matching send rendezvous. */
    virtual HostStatus recv(Word channel, Word &value) = 0;

    /** Kernel entry via trap/ftrap (thesis Table 6.1 entry points). */
    virtual TrapOutcome trap(Word number, Word argument) = 0;
};

/** Simple host for standalone tests: channels and traps are errors. */
class NullHost : public PeHost
{
  public:
    HostStatus send(Word, Word) override;
    HostStatus recv(Word, Word &) override;
    TrapOutcome trap(Word, Word) override;
};

/** Result of executing one instruction. */
enum class StepStatus
{
    Executed,    ///< Instruction retired normally.
    Blocked,     ///< Channel/trap blocked; instruction not consumed.
    ContextEnd,  ///< Kernel exit trap: the context is finished.
    Returned,    ///< fret/rett executed (standalone-program halt).
    Deferred,    ///< Host op reached in defer mode; nothing consumed.
};

struct StepResult
{
    StepStatus status = StepStatus::Executed;
    long cycles = 0;  ///< Cycles charged for this step.
};

/** Instruction timing parameters (Fig 5.9/5.10 classes). */
struct PeTiming
{
    long simpleCycles = 1;     ///< ALU/logic/compare/dup issue cost.
    long immWordCycles = 1;    ///< Extra fetch per immediate word.
    long memoryCycles = 2;     ///< Extra cost of a data-memory access.
    long branchTakenCycles = 1;///< Pipeline refill after a taken branch.
    long channelCycles = 2;    ///< Local handoff to the message processor.
    long trapCycles = 2;       ///< Trap entry overhead.
    long rollOutCyclesPerReg = 2;  ///< Context-switch write-back cost.
};

/**
 * Saved architectural state of a context (window registers are rolled
 * out to the queue page, so only the globals travel).
 */
struct ContextState
{
    Word pc = 0;
    Word qp = 0;
    Word pom = 0xF0;  ///< Default: 16-word pages... see defaultPom().
    Word nar = 0;
    /**
     * Last produced value (feeds dup). Architectural: a context may be
     * preempted at any instruction boundary (checkpoint quiesce), and
     * a dup after resume must still see its producer's result.
     */
    Word lastResult = 0;
    std::array<Word, 11> generals{};  ///< R17..R27.
};

/** POM value selecting a 2^m-word queue page (m in [5, 8]). */
Word pomForPageWords(int words);

/** Queue page size in words selected by @p pom. */
int pageWordsForPom(Word pom);

/** The queue-machine processing element. */
class ProcessingElement
{
  public:
    ProcessingElement(Memory &memory, const isa::ObjectCode &code,
                      PeHost &host, PeTiming timing = {});

    /** Replace the host (used when wiring PEs into the kernel). */
    void setHost(PeHost &host) { host_ = &host; }

    /**
     * Attach the system's event recorder. @p clock points at this PE's
     * scheduling clock so trap entries carry absolute cycle stamps
     * (the PE itself only counts per-step cycles).
     */
    void
    attachTrace(trace::Tracer *tracer, int peIndex,
                const trace::Cycle *clock)
    {
        tracer_ = tracer;
        peIndex_ = peIndex;
        clock_ = clock;
    }

    /**
     * Attach the system's fault injector (may be null). With PE stalls
     * enabled, step() may charge stall cycles without retiring an
     * instruction (a transient hardware hiccup); the stall lands in
     * the run report's blocked-cycle bucket.
     */
    void setFaultInjector(fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /** Load a context's registers; presence bits start cleared. */
    void loadContext(const ContextState &state);

    /** Save registers after rolling the window out to memory. */
    ContextState saveContext();

    /**
     * Roll out every present window register to its queue-page address
     * (the context-switch write-back). Returns cycles charged.
     */
    long rollOut();

    /** Execute one instruction (plus chained dups under continue). */
    StepResult step();

    /**
     * Attach the shared predecoded form of the object code. Required
     * before stepFast(); step() keeps decoding on the fly.
     */
    void setDecoded(isa::DecodedProgram *decoded) { decoded_ = decoded; }

    /**
     * Event-core fast path: architecturally identical to step(), but
     * fetches through the DecodedProgram arena instead of re-decoding
     * and tallies per-instruction statistics in plain counters (see
     * flushStats) instead of per-step string-map lookups. A System
     * must call flushStats() before reading stats() from a PE stepped
     * through this path.
     */
    StepResult stepFast();

    /**
     * Speculation mode for the PDES windows: while enabled, stepFast()
     * returns StepStatus::Deferred (zero cycles, zero side effects -
     * the instruction is not consumed and no tally moves) instead of
     * executing any instruction that would call into the host kernel
     * (send/recv/trap/ftrap). The window drain re-executes the
     * deferred instruction with defer mode off, at which point it runs
     * in full. Purely compute instructions are unaffected.
     */
    void setDeferHostOps(bool on) { deferHostOps_ = on; }

    /**
     * Fold the stepFast() tallies into stats(). Only deltas that are
     * actually non-zero touch the map, so a PE that never executed a
     * given operation class creates no entry - exactly like step()'s
     * create-on-first-use behavior, keeping rendered statistics
     * byte-identical between the two cores.
     */
    void flushStats();

    /**
     * Drop unflushed stepFast() tallies. Used on checkpoint restore:
     * the rolled-back stats() already exclude them, just as the tick
     * core's post-snapshot increments are erased by the rollback.
     */
    void resetStatDeltas() { deltas_ = StatDeltas{}; }

    // Architectural state access (for the kernel and for tests).
    Word pc() const { return pc_; }
    void setPc(Word pc) { pc_ = pc; }
    Word qp() const { return qp_; }
    void setQp(Word qp) { qp_ = qp; }
    Word pom() const { return pom_; }
    void setPom(Word pom) { pom_ = pom; }
    Word readReg(int reg);           ///< Read any register (no consume).
    void writeReg(int reg, Word value);
    bool presence(int physical) const
    {
        return presence_[static_cast<size_t>(physical)];
    }

    /** Memory address of virtual window register @p n (Fig 5.5). */
    Addr windowAddress(int n) const;

    /** Physical register index backing virtual register @p n (Fig 5.3). */
    int physicalIndex(int n) const;

    const StatSet &stats() const { return stats_; }
    StatSet &stats() { return stats_; }

  private:
    /** Plain-counter tallies accumulated by stepFast(). */
    struct StatDeltas
    {
        std::uint64_t instructions = 0;
        std::uint64_t aluOps = 0;
        std::uint64_t dups = 0;
        std::uint64_t sends = 0;
        std::uint64_t recvs = 0;
        std::uint64_t stores = 0;
        std::uint64_t fetches = 0;
        std::uint64_t branches = 0;
        std::uint64_t traps = 0;
        std::uint64_t windowHits = 0;
        std::uint64_t windowMisses = 0;
        Histogram trapService;
    };

    Word readSrc(const isa::Src &src, long &cycles);
    /** readSrc with the hit/miss tallies in deltas_ (stepFast path). */
    Word readSrcFast(const isa::Src &src, long &cycles);
    void writeDst(int reg, Word value);
    void bumpQp(int inc);
    Word aluResult(isa::Opcode op, Word a, Word b);

    Memory &memory_;
    const isa::ObjectCode &code_;
    PeHost *host_;
    PeTiming timing_;

    // Trace attachment (null/zero when the PE runs standalone).
    trace::Tracer *tracer_ = nullptr;
    int peIndex_ = -1;
    const trace::Cycle *clock_ = nullptr;
    fault::FaultInjector *faults_ = nullptr;

    // Architectural state.
    Word pc_ = 0;
    Word qp_ = 0;
    Word pom_ = 0;
    Word nar_ = 0;
    std::array<Word, 16> window_{};   ///< Physical window registers.
    std::array<bool, 16> presence_{};
    std::array<Word, 16> globals_{};  ///< R16..R31 (QP/POM/PC shadowed).
    Word lastResult_ = 0;             ///< Feeds dup instructions.
    bool pcWritten_ = false;          ///< A dst wrote PC this step.

    isa::DecodedProgram *decoded_ = nullptr;
    bool deferHostOps_ = false;  ///< PDES speculation: defer host ops.
    StatDeltas deltas_;
    StatSet stats_;
};

} // namespace qm::pe
