/**
 * @file
 * Context-graph construction (thesis sections 4.2-4.6).
 *
 * The program is partitioned into acyclic data-flow graphs - one per
 * context body: the main body, each while-loop's head/body/terminator,
 * each if-branch, each par component, each replicated-par instance
 * template, and each procedure. The graphs are connected at run time by
 * the dynamic splicing actors:
 *
 *   rfork  - create a child context with a fresh in/out channel pair
 *            (out = in + 1 by the kernel convention);
 *   ifork  - create a continuation context inheriting the out channel
 *            (loop iterations chain this way, so the loop terminator
 *            sends its results straight back to the loop's creator);
 *   send/recv - rendezvous value transfer over channels;
 *   sel    - chooses a code address; lowered to the pure Boolean-mask
 *            form (a AND c) OR (b AND NOT c) since comparison results
 *            are all-ones/all-zeros words.
 *
 * Scalars flow as tokens; arrays live in shared memory, accessed with
 * fetch/store actors sequenced by control-token (order) arcs under the
 * multiple-readers/single-writer rule per array (section 4.6). User
 * channel operations and waits share one control-token chain per
 * context, preserving OCCAM sequencing (Fig 4.18).
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "occam/ift.hpp"
#include "occam/symbols.hpp"

namespace qm::occam {

/** One compiled context body. */
struct ContextGraph
{
    std::string label;     ///< Code label of this graph's sequence.
    std::string role;      ///< main/proc/while-head/... (diagnostics).
    dfg::Dfg graph;
    int getin = -1;        ///< Node id of the getin actor.
    int getout = -1;       ///< Node id of the getout actor.
};

/** Compiler optimization switches (the Table 6.6 ablation knobs). */
struct BuildOptions
{
    /** Order splice transfers by the pi_I weight heuristic (4.5). */
    bool inputSequencing = true;
};

/** Result of graph construction for a whole program. */
struct ContextProgram
{
    std::vector<ContextGraph> contexts;
    std::string mainLabel;
    /** Top-level arrays: symbol id -> static data address. */
    std::map<int, std::uint32_t> dataAddress;
    /** Bytes of data segment used. */
    std::uint32_t dataSize = 0;
};

/** Partition @p program into spliced context graphs. */
ContextProgram buildContextGraphs(const Program &program,
                                  const SymbolTable &table,
                                  const Ift &ift,
                                  const BuildOptions &options = {});

} // namespace qm::occam
