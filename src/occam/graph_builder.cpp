#include "occam/graph_builder.hpp"

#include <algorithm>

#include "dfg/sequencing.hpp"
#include "mp/system.hpp"
#include "support/diagnostics.hpp"

namespace qm::occam {

namespace {

using dfg::Dfg;

/** Builder state for one context graph under construction. */
struct Ctx
{
    ContextGraph cg;
    /** Symbol id -> node currently holding the symbol's value. */
    std::map<int, int> env;
    /** Per-array order state (multiple readers / single writer). */
    struct ArrayChain
    {
        int lastWrite = -1;
        std::vector<int> readsSinceWrite;
    };
    std::map<int, ArrayChain> arrayChains;   ///< Keyed by array symbol.
    /** Last send/recv per splice-channel node (keyed by channel node). */
    std::map<int, int> channelChains;
    /** One control-token chain for user channel ops and waits. */
    int controlChain = -1;
    /** Recv nodes for this context's spliced inputs, in symbol order. */
    std::vector<std::pair<int, int>> inputRecvs;  ///< (symbol, node).
};

class GraphBuilder
{
  public:
    GraphBuilder(const Program &program, const SymbolTable &table,
                 const Ift &ift, const BuildOptions &options)
        : program_(program), table_(table), ift_(ift), options_(options)
    {
    }

    ContextProgram
    run()
    {
        layoutTopLevelArrays(program_.decls);

        pushContext("main", "main");
        // Top-level channel/array declarations elaborate in main.
        if (program_.main->kind == Process::Kind::Seq ||
            program_.main->kind == Process::Kind::Par) {
            // Declarations attached to main are handled by emitProcess.
        }
        emitDecls(program_.decls);
        emitProcess(*program_.main);
        finishWithExit();
        popContext();

        result.mainLabel = "main";
        return std::move(result);
    }

  private:
    // ----- Context stack ---------------------------------------------------

    Ctx &cur() { return stack.back(); }
    Dfg &g() { return stack.back().cg.graph; }

    void
    pushContext(std::string label, std::string role)
    {
        Ctx ctx;
        ctx.cg.label = std::move(label);
        ctx.cg.role = std::move(role);
        ctx.cg.getin = ctx.cg.graph.addNode("getin", {});
        ctx.cg.getout = ctx.cg.graph.addNode("getout", {});
        stack.push_back(std::move(ctx));
    }

    void
    popContext()
    {
        result.contexts.push_back(std::move(stack.back().cg));
        stack.pop_back();
    }

    std::string
    freshLabel(const std::string &hint)
    {
        return "ctx_" + std::to_string(labelCounter++) + "_" + hint;
    }

    /** Terminate the current context with the kernel exit trap. */
    void
    finishWithExit()
    {
        int exit_node = g().addNode("exit", {});
        // The exit must run after everything with a side effect.
        for (int sink : g().sinks())
            if (sink != exit_node)
                g().addOrderEdge(sink, exit_node);
    }

    // ----- Data layout -----------------------------------------------------

    void
    layoutTopLevelArrays(const std::vector<Declaration> &decls)
    {
        std::uint32_t next = mp::kDataBase;
        for (const Declaration &decl : decls) {
            if (decl.kind == Declaration::Kind::Array) {
                result.dataAddress[decl.symbol] = next;
                next += static_cast<std::uint32_t>(
                    table_.symbol(decl.symbol).arraySize * 4);
            }
        }
        result.dataSize = next - mp::kDataBase;
    }

    // ----- Environment -----------------------------------------------------

    int
    envGet(int symbol, int line)
    {
        auto it = cur().env.find(symbol);
        if (it != cur().env.end())
            return it->second;
        const Symbol &sym = table_.symbol(symbol);
        if (sym.kind == Symbol::Kind::Array && sym.topLevel) {
            int node = g().addConst(static_cast<std::int64_t>(
                result.dataAddress.at(symbol)));
            cur().env[symbol] = node;
            return node;
        }
        fatal("line ", line, ": '", sym.name,
              "' used before it has a value in this context");
    }

    /** Splice-state lookup: undefined values transfer as zero. */
    int
    envGetOrZero(int symbol)
    {
        auto it = cur().env.find(symbol);
        if (it != cur().env.end())
            return it->second;
        const Symbol &sym = table_.symbol(symbol);
        if (sym.kind == Symbol::Kind::Array && sym.topLevel)
            return envGet(symbol, sym.line);
        return g().addConst(0);
    }

    // ----- Order chains ----------------------------------------------------

    /** True when the construct's IFT entry carries the control token. */
    bool
    effectful(int entry) const
    {
        return ift_.entry(entry).input(kControlToken) != nullptr ||
               ift_.entry(entry).output(kControlToken) != nullptr;
    }

    /**
     * Order a splice (fork .. join) on the parent's control-token
     * chain: the forked body may perform channel I/O or waits, so it
     * must not overtake (or be overtaken by) the parent's other
     * side-effecting statements (the Fig 4.18 sequencing requirement,
     * lifted to spliced constructs).
     */
    void
    chainControlSpan(int first, int last)
    {
        if (cur().controlChain >= 0)
            g().addOrderEdge(cur().controlChain, first);
        cur().controlChain = last;
    }

    void
    chainControl(int node)
    {
        if (cur().controlChain >= 0)
            g().addOrderEdge(cur().controlChain, node);
        cur().controlChain = node;
    }

    void
    chainChannel(int channel_node, int node)
    {
        auto it = cur().channelChains.find(channel_node);
        if (it != cur().channelChains.end())
            g().addOrderEdge(it->second, node);
        cur().channelChains[channel_node] = node;
    }

    void
    chainArrayRead(int array_symbol, int node)
    {
        Ctx::ArrayChain &chain = cur().arrayChains[array_symbol];
        if (chain.lastWrite >= 0)
            g().addOrderEdge(chain.lastWrite, node);
        chain.readsSinceWrite.push_back(node);
    }

    void
    chainArrayWrite(int array_symbol, int node)
    {
        Ctx::ArrayChain &chain = cur().arrayChains[array_symbol];
        if (chain.lastWrite >= 0)
            g().addOrderEdge(chain.lastWrite, node);
        for (int read : chain.readsSinceWrite)
            g().addOrderEdge(read, node);
        chain.readsSinceWrite.clear();
        chain.lastWrite = node;
    }

    // ----- Expression emission ----------------------------------------------

    bool
    isConstNode(int node)
    {
        return g().node(node).op == "const";
    }

    std::int64_t
    constOf(int node)
    {
        return g().node(node).constValue;
    }

    /** Binary op with constant folding. */
    int
    binOp(const std::string &op, int a, int b)
    {
        if (isConstNode(a) && isConstNode(b)) {
            std::int64_t x = constOf(a), y = constOf(b);
            if (op == "+") return g().addConst(x + y);
            if (op == "-") return g().addConst(x - y);
            if (op == "*") return g().addConst(x * y);
            if (op == "lshift") return g().addConst(x << y);
            if (op == "/" && y != 0) return g().addConst(x / y);
            if (op == "\\" && y != 0) return g().addConst(x % y);
        }
        return g().addNode(op, {a, b});
    }

    int
    emitExpr(const Expr &expr)
    {
        switch (expr.kind) {
          case Expr::Kind::Number:
          case Expr::Kind::BoolLit:
            return g().addConst(expr.value);
          case Expr::Kind::Var: {
            const Symbol &sym = table_.symbol(expr.symbol);
            if (sym.kind == Symbol::Kind::Constant)
                return g().addConst(sym.constValue);
            return envGet(expr.symbol, expr.line);
          }
          case Expr::Kind::ArrayRef: {
            int addr = arrayElemAddr(expr);
            int fetch = g().addNode("fetch", {addr});
            chainArrayRead(expr.symbol, fetch);
            return fetch;
          }
          case Expr::Kind::Unary: {
            int a = emitExpr(*expr.args[0]);
            if (isConstNode(a)) {
                if (expr.op == "neg")
                    return g().addConst(-constOf(a));
                if (expr.op == "not")
                    return g().addConst(~constOf(a));
            }
            return g().addNode(expr.op, {a});
          }
          case Expr::Kind::Binary: {
            int a = emitExpr(*expr.args[0]);
            int b = emitExpr(*expr.args[1]);
            return binOp(expr.op, a, b);
          }
        }
        panic("unreachable expr kind");
    }

    int
    arrayElemAddr(const Expr &ref)
    {
        int base = envGet(ref.symbol, ref.line);
        int index = emitExpr(*ref.args[0]);
        int offset = binOp("lshift", index, g().addConst(2));
        return binOp("+", base, offset);
    }

    /** sel(c, a, b) = (a AND c) OR (b AND NOT c), Boolean-mask form. */
    int
    selNode(int cond, int if_true, int if_false)
    {
        int not_c = g().addNode("not", {cond});
        int left = g().addNode("and", {if_true, cond});
        int right = g().addNode("and", {if_false, not_c});
        return g().addNode("or", {left, right});
    }

    // ----- Splicing helpers --------------------------------------------------

    /** Send @p value on @p channel_node, keeping per-channel order. */
    int
    sendOn(int channel_node, int value)
    {
        int node = g().addNode("send", {channel_node, value});
        chainChannel(channel_node, node);
        return node;
    }

    /** Receive from @p channel_node, keeping per-channel order. */
    int
    recvOn(int channel_node)
    {
        int node = g().addNode("recv", {channel_node});
        chainChannel(channel_node, node);
        return node;
    }

    /**
     * Order the splice transfer list. With input sequencing enabled the
     * child's receives are weighted by the pi_I heuristic (section
     * 4.5): inputs enabling more computation come first. The child must
     * already be fully built.
     */
    std::vector<int>
    orderedInputs(Ctx &child)
    {
        std::vector<int> symbols;
        for (auto &[sym, node] : child.inputRecvs)
            symbols.push_back(sym);
        if (!options_.inputSequencing || symbols.size() < 2)
            return symbols;

        dfg::CostAnalysis costs = dfg::analyzeCosts(child.cg.graph);
        std::map<int, long> weight;
        for (auto &[sym, node] : child.inputRecvs) {
            long w = 0;
            for (int u = 0; u < child.cg.graph.size(); ++u) {
                const auto &pstar =
                    costs.predecessorSet[static_cast<size_t>(u)];
                if (std::binary_search(pstar.begin(), pstar.end(),
                                       node))
                    w += costs.cost[static_cast<size_t>(u)];
            }
            weight[sym] = w;
        }
        std::stable_sort(symbols.begin(), symbols.end(),
                         [&](int a, int b) {
                             return weight[a] > weight[b];
                         });
        return symbols;
    }

    /** Chain the child's input receives in the final transfer order. */
    void
    sequenceChildInputs(Ctx &child, const std::vector<int> &order)
    {
        std::map<int, int> node_of;
        for (auto &[sym, node] : child.inputRecvs)
            node_of[sym] = node;
        int prev = -1;
        for (int sym : order) {
            int node = node_of.at(sym);
            if (prev >= 0)
                child.cg.graph.addOrderEdge(prev, node);
            prev = node;
        }
    }

    /**
     * Emit the start of a child context: receives for every symbol in
     * @p in_symbols from the in channel. Call inside the child.
     */
    void
    emitChildPrologue(const std::vector<int> &in_symbols)
    {
        // Deliberately NOT chained here: the transfer order is imposed
        // afterwards by sequenceChildInputs (it may differ from creation
        // order under the pi_I heuristic, and double-chaining would make
        // the graph cyclic).
        for (int sym : in_symbols) {
            int node = g().addNode("recv", {cur().cg.getin});
            cur().env[sym] = node;
            cur().inputRecvs.emplace_back(sym, node);
        }
    }

    /**
     * Emit the end of a child context: send @p return_symbols' values
     * (or a single join token when empty) on the out channel, then
     * exit. Call inside the child.
     */
    void
    emitChildEpilogue(const std::vector<int> &return_symbols)
    {
        // The splice protocol: a child receives every input before it
        // sends any output (the parent mirrors this), or two parked
        // sends deadlock. Constant-valued outputs carry no data
        // dependence on the receives, so the ordering must be explicit.
        std::vector<int> before = g().sinks();
        for (auto &[sym, node] : cur().inputRecvs)
            before.push_back(node);

        int first_send = -1;
        if (return_symbols.empty()) {
            first_send = sendOn(cur().cg.getout, g().addConst(0));
        } else {
            for (int sym : return_symbols) {
                int node = sendOn(cur().cg.getout, envGetOrZero(sym));
                if (first_send < 0)
                    first_send = node;
            }
        }
        for (int node : before)
            if (node != first_send)
                g().addOrderEdge(node, first_send);
        finishWithExit();
    }

    /** Drop arrays and channels from a live-out list (nothing to send). */
    std::vector<int>
    scalarOnly(std::vector<int> symbols)
    {
        symbols.erase(
            std::remove_if(symbols.begin(), symbols.end(),
                           [&](int sym) {
                               auto kind = table_.symbol(sym).kind;
                               return kind != Symbol::Kind::Scalar;
                           }),
            symbols.end());
        return symbols;
    }

    /** Arrays among an entry's I/O sets (for cross-splice ordering). */
    std::vector<int>
    arraysOf(const std::vector<IftValue> &values)
    {
        std::vector<int> arrays;
        for (const IftValue &v : values)
            if (v.symbol != kControlToken &&
                table_.symbol(v.symbol).kind == Symbol::Kind::Array)
                arrays.push_back(v.symbol);
        return arrays;
    }

    /**
     * Parent-side splice: rfork @p child_label, send @p send_symbols in
     * order, then receive @p return_symbols (or a join token) from the
     * child's out channel, updating the parent environment.
     * Array accesses inside the child are ordered against the parent's
     * via @p arrays_read / @p arrays_written.
     */
    void
    spliceFork(const std::string &child_label,
               const std::vector<int> &send_symbols,
               const std::vector<int> &return_symbols,
               const std::vector<int> &arrays_read,
               const std::vector<int> &arrays_written,
               const std::map<int, int> &send_overrides = {},
               bool chain_control = false)
    {
        int claddr = g().addCodeAddr(child_label);
        int fork = g().addNode("rfork", {claddr});
        // The child reads arrays only after the parent's earlier writes
        // are ordered before the fork's first transfer.
        for (int arr : arrays_read)
            chainArrayRead(arr, fork);

        int last_send = fork;
        for (int sym : send_symbols) {
            auto it = send_overrides.find(sym);
            int value =
                it != send_overrides.end() ? it->second
                                           : envGetOrZero(sym);
            last_send = sendOn(fork, value);
        }
        int out_chan = binOp("+", fork, g().addConst(1));
        int last_recv = -1;
        bool first = true;
        if (return_symbols.empty()) {
            last_recv = recvOn(out_chan);  // join token, value unused
            g().addOrderEdge(last_send, last_recv);
        } else {
            for (int sym : return_symbols) {
                last_recv = recvOn(out_chan);
                cur().env[sym] = last_recv;
                if (first) {
                    g().addOrderEdge(last_send, last_recv);
                    first = false;
                }
            }
        }
        // The parent may touch arrays the child wrote only after the
        // join completes; and it may overwrite arrays the child READS
        // only after the join, too - so the join registers as the
        // reader on behalf of the child.
        for (int arr : arrays_read)
            chainArrayRead(arr, last_recv);
        for (int arr : arrays_written)
            chainArrayWrite(arr, last_recv);
        if (chain_control)
            chainControlSpan(fork, last_recv);
    }

    // ----- Declarations ------------------------------------------------------

    void
    emitDecls(const std::vector<Declaration> &decls)
    {
        for (const Declaration &decl : decls) {
            switch (decl.kind) {
              case Declaration::Kind::Channel:
                cur().env[decl.symbol] = g().addNode("challoc", {});
                break;
              case Declaration::Kind::Array:
                if (!table_.symbol(decl.symbol).topLevel) {
                    int size = g().addConst(
                        table_.symbol(decl.symbol).arraySize * 4);
                    cur().env[decl.symbol] =
                        g().addNode("alloc", {size});
                }
                break;
              case Declaration::Kind::Scalar:
              case Declaration::Kind::Constant:
                break;
              case Declaration::Kind::Procedure:
                // Built on first call (ensureProc).
                break;
            }
        }
    }

    // ----- Procedure graphs ---------------------------------------------------

    struct ProcInfo
    {
        std::string label;
        std::vector<int> sendOrder;    ///< Param symbols, send order.
        std::vector<int> returnOrder;  ///< Var-scalar param symbols.
    };

    const ProcInfo &
    ensureProc(int proc_symbol)
    {
        auto it = procs.find(proc_symbol);
        if (it != procs.end())
            return it->second;

        const Symbol &sym = table_.symbol(proc_symbol);
        ProcInfo info;
        info.label = freshLabel("proc_" + sym.name);
        for (const Declaration::Param &param : sym.params) {
            // Transfer order is the declaration order: it must be
            // committed before the body builds so recursive calls can
            // splice against it.
            info.sendOrder.push_back(param.symbol);
            if (!param.byValue && !param.isArray && !param.isChannel)
                info.returnOrder.push_back(param.symbol);
        }
        auto [slot, inserted] = procs.emplace(proc_symbol, info);
        panicIf(!inserted, "duplicate proc build");

        pushContext(info.label, "proc " + sym.name);
        emitChildPrologue(info.sendOrder);
        sequenceChildInputs(cur(), info.sendOrder);
        emitProcess(*sym.procBody);
        emitChildEpilogue(info.returnOrder);
        popContext();
        return procs.at(proc_symbol);
    }

    // ----- Process emission ----------------------------------------------------

    void
    emitProcess(const Process &proc)
    {
        switch (proc.kind) {
          case Process::Kind::Skip:
            return;
          case Process::Kind::Assign:
            if (proc.target->kind == Expr::Kind::ArrayRef) {
                int addr = arrayElemAddr(*proc.target);
                int value = emitExpr(*proc.value);
                int store = g().addNode("store", {addr, value});
                chainArrayWrite(proc.target->symbol, store);
            } else {
                cur().env[proc.target->symbol] = emitExpr(*proc.value);
            }
            return;
          case Process::Kind::Output: {
            int chan = envGet(proc.channel->symbol, proc.line);
            int value = emitExpr(*proc.value);
            int node = sendOn(chan, value);
            chainControl(node);
            return;
          }
          case Process::Kind::Input: {
            int chan = envGet(proc.channel->symbol, proc.line);
            int node = recvOn(chan);
            chainControl(node);
            if (proc.target->kind == Expr::Kind::ArrayRef) {
                int addr = arrayElemAddr(*proc.target);
                int store = g().addNode("store", {addr, node});
                chainArrayWrite(proc.target->symbol, store);
            } else {
                cur().env[proc.target->symbol] = node;
            }
            return;
          }
          case Process::Kind::Wait: {
            int t = emitExpr(*proc.value);
            int node = g().addNode("wait", {t});
            chainControl(node);
            return;
          }
          case Process::Kind::Seq:
            emitDecls(proc.decls);
            for (const ProcessPtr &child : proc.children)
                emitProcess(*child);
            return;
          case Process::Kind::While:
            emitWhile(proc);
            return;
          case Process::Kind::If:
            emitIf(proc);
            return;
          case Process::Kind::Par:
            emitDecls(proc.decls);
            if (proc.repl)
                emitReplicatedPar(proc);
            else
                emitPar(proc);
            return;
          case Process::Kind::Call:
            emitCall(proc);
            return;
        }
        panic("unreachable process kind");
    }

    // While: head evaluates the condition and iforks either the body or
    // the terminator; the body runs one iteration then iforks the head
    // again; the terminator sends the live results on the inherited out
    // channel, which reaches the loop's creator (thesis Fig 4.6).
    void
    emitWhile(const Process &proc)
    {
        int entry = ift_.entryOf(&proc);
        const IftEntry &e = ift_.entry(entry);

        // Loop state: everything the loop reads or writes.
        std::vector<int> state = ift_.inputSymbols(entry);
        for (int sym : ift_.liveOutputs(entry))
            if (std::find(state.begin(), state.end(), sym) ==
                state.end())
                state.push_back(sym);
        std::sort(state.begin(), state.end());

        std::vector<int> returns = scalarOnly(ift_.liveOutputs(entry));
        std::vector<int> arrays_read = arraysOf(e.inputs);
        std::vector<int> arrays_written = arraysOf(e.outputs);

        std::string head_label = freshLabel("while_head");
        std::string body_label = freshLabel("while_body");
        std::string term_label = freshLabel("while_term");

        // Terminator context.
        pushContext(term_label, "while-term");
        emitChildPrologue(state);
        sequenceChildInputs(cur(), state);
        emitChildEpilogue(returns);
        popContext();

        // Body context: one iteration, then continue at the head.
        pushContext(body_label, "while-body");
        emitChildPrologue(state);
        sequenceChildInputs(cur(), state);
        emitProcess(*proc.children[0]);
        {
            int claddr = g().addCodeAddr(head_label);
            int fork = g().addNode("ifork", {claddr});
            // Iteration side effects must complete before the handoff
            // releases the next head (arrays the body writes).
            for (int arr : arrays_written)
                chainArrayRead(arr, fork);
            for (int sym : state)
                sendOn(fork, envGetOrZero(sym));
        }
        finishWithExit();
        popContext();

        // Head context: dispatch on the condition.
        pushContext(head_label, "while-head");
        emitChildPrologue(state);
        sequenceChildInputs(cur(), state);
        {
            int cond = emitExpr(*proc.condition);
            int body_addr = g().addCodeAddr(body_label);
            int term_addr = g().addCodeAddr(term_label);
            int target = selNode(cond, body_addr, term_addr);
            int fork = g().addNode("ifork", {target});
            for (int sym : state)
                sendOn(fork, envGetOrZero(sym));
        }
        finishWithExit();
        popContext();

        // Parent side: rfork the head, stream the state, await results.
        spliceFork(head_label, state, returns, arrays_read,
                   arrays_written, {},
                   /*chain_control=*/effectful(entry));
    }

    // If: conditions evaluate in the parent; one branch context is
    // forked through a sel chain over branch code addresses. Every
    // branch receives the same input list and returns the same output
    // list, so the merge is uniform whichever branch runs.
    void
    emitIf(const Process &proc)
    {
        int entry = ift_.entryOf(&proc);
        const IftEntry &e = ift_.entry(entry);

        std::vector<int> returns = scalarOnly(ift_.liveOutputs(entry));
        // Branches need old values of outputs they leave untouched.
        std::vector<int> ins = ift_.inputSymbols(entry);
        for (int sym : returns)
            if (std::find(ins.begin(), ins.end(), sym) == ins.end())
                ins.push_back(sym);
        std::sort(ins.begin(), ins.end());
        std::vector<int> arrays_read = arraysOf(e.inputs);
        std::vector<int> arrays_written = arraysOf(e.outputs);

        // Build the branch contexts (plus the default skip branch).
        std::vector<std::string> labels;
        for (const Process::Branch &branch : proc.branches) {
            std::string label = freshLabel("if_branch");
            labels.push_back(label);
            pushContext(label, "if-branch");
            emitChildPrologue(ins);
            sequenceChildInputs(cur(), ins);
            emitProcess(*branch.body);
            emitChildEpilogue(returns);
            popContext();
        }
        std::string skip_label = freshLabel("if_skip");
        pushContext(skip_label, "if-skip");
        emitChildPrologue(ins);
        sequenceChildInputs(cur(), ins);
        emitChildEpilogue(returns);
        popContext();

        // Parent: fold conditions into a nested sel chain, innermost
        // (last) guard first.
        int target = g().addCodeAddr(skip_label);
        for (std::size_t i = proc.branches.size(); i-- > 0;) {
            int cond = emitExpr(*proc.branches[i].condition);
            int addr = g().addCodeAddr(labels[i]);
            target = selNode(cond, addr, target);
        }
        int fork = g().addNode("rfork", {target});
        for (int arr : arrays_read)
            chainArrayRead(arr, fork);
        int last_send = fork;
        for (int sym : ins)
            last_send = sendOn(fork, envGetOrZero(sym));
        int out_chan = binOp("+", fork, g().addConst(1));
        int last = -1;
        bool first = true;
        if (returns.empty()) {
            last = recvOn(out_chan);
            g().addOrderEdge(last_send, last);
        } else {
            for (int sym : returns) {
                last = recvOn(out_chan);
                cur().env[sym] = last;
                if (first) {
                    // Every input send precedes the first join receive
                    // (the join receives chain among themselves).
                    g().addOrderEdge(last_send, last);
                    first = false;
                }
            }
        }
        for (int arr : arrays_read)
            chainArrayRead(arr, last);
        for (int arr : arrays_written)
            chainArrayWrite(arr, last);
        if (effectful(entry))
            chainControlSpan(fork, last);
    }

    // Par: one context per component, all forked before any join.
    void
    emitPar(const Process &proc)
    {
        int entry = ift_.entryOf(&proc);
        const IftEntry &e = ift_.entry(entry);

        struct Comp
        {
            std::string label;
            std::vector<int> ins;
            std::vector<int> returns;
            std::vector<int> arraysRead;
            std::vector<int> arraysWritten;
            int fork = -1;
        };
        std::vector<Comp> comps;
        for (std::size_t k = 0; k < e.chains.size(); ++k) {
            int comp_entry = e.chains[k][0];
            const IftEntry &ce = ift_.entry(comp_entry);
            Comp comp;
            comp.label = freshLabel("par_comp");
            comp.ins = ift_.inputSymbols(comp_entry);
            comp.returns = scalarOnly(ift_.liveOutputs(comp_entry));
            comp.arraysRead = arraysOf(ce.inputs);
            comp.arraysWritten = arraysOf(ce.outputs);

            pushContext(comp.label, "par-comp");
            emitChildPrologue(comp.ins);
            // The transfer order is decided by the pi_I weights of the
            // finished body, then imposed on the existing receives.
            emitProcess(*proc.children[k]);
            std::vector<int> order = orderedInputs(cur());
            sequenceChildInputs(cur(), order);
            comp.ins = order;
            emitChildEpilogue(comp.returns);
            popContext();
            comps.push_back(std::move(comp));
        }

        // Fork and feed every component before joining any of them.
        std::vector<int> all_sends;
        int first_fork = -1;
        for (Comp &comp : comps) {
            int claddr = g().addCodeAddr(comp.label);
            comp.fork = g().addNode("rfork", {claddr});
            if (first_fork < 0)
                first_fork = comp.fork;
            for (int arr : comp.arraysRead)
                chainArrayRead(arr, comp.fork);
            int last_send = comp.fork;
            for (int sym : comp.ins)
                last_send = sendOn(comp.fork, envGetOrZero(sym));
            all_sends.push_back(last_send);
        }
        int final_join = -1;
        for (Comp &comp : comps) {
            int out_chan = binOp("+", comp.fork, g().addConst(1));
            int last = -1;
            bool first_of_comp = true;
            if (comp.returns.empty()) {
                last = recvOn(out_chan);
                first_of_comp = false;
                for (int send : all_sends)
                    g().addOrderEdge(send, last);
            } else {
                for (int sym : comp.returns) {
                    last = recvOn(out_chan);
                    cur().env[sym] = last;
                    if (first_of_comp) {
                        // Every component's inputs stream before ANY
                        // join is attempted: each comp's joins are on
                        // their own channel chain, so each needs its
                        // own edges from the send set.
                        for (int send : all_sends)
                            g().addOrderEdge(send, last);
                        first_of_comp = false;
                    }
                }
            }
            final_join = last;
            for (int arr : comp.arraysRead)
                chainArrayRead(arr, last);
            for (int arr : comp.arraysWritten)
                chainArrayWrite(arr, last);
        }
        if (first_fork >= 0 && effectful(entry))
            chainControlSpan(first_fork, final_join);
    }

    // Replicated par: one shared body graph; the parent forks count
    // instances, each sent its own index value (pseudo-static
    // reentrancy: one instruction sequence, many operand queues).
    void
    emitReplicatedPar(const Process &proc)
    {
        int entry = ift_.entryOf(&proc);
        const IftEntry &e = ift_.entry(entry);
        long count = -1;
        try {
            count = foldConstant(*proc.repl->count, table_);
        } catch (const FatalError &) {
            fatal("line ", proc.line,
                  ": replicated par needs a compile-time constant "
                  "count in this implementation; for a run-time count "
                  "use the recursive-procedure fan-out pattern of "
                  "thesis Fig 6.9 (see examples and "
                  "programs/binaryFanRecursiveSource)");
        }
        fatalIf(count < 0, "line ", proc.line,
                ": negative replication count");

        // The instance's inputs: the body chain's seq-combined I set.
        std::vector<int> ins;
        {
            std::set<int> defined;
            for (int child : e.chains[0]) {
                for (const IftValue &v : ift_.entry(child).inputs)
                    if (v.symbol != kControlToken &&
                        !defined.count(v.symbol) &&
                        std::find(ins.begin(), ins.end(), v.symbol) ==
                            ins.end())
                        ins.push_back(v.symbol);
                for (const IftValue &v : ift_.entry(child).outputs)
                    defined.insert(v.symbol);
            }
            std::sort(ins.begin(), ins.end());
        }
        std::vector<int> returns = scalarOnly(ift_.liveOutputs(entry));
        std::vector<int> arrays_read = arraysOf(e.inputs);
        std::vector<int> arrays_written = arraysOf(e.outputs);

        std::string label = freshLabel("repl_par");
        pushContext(label, "repl-par-body");
        emitChildPrologue(ins);
        for (const ProcessPtr &child : proc.children)
            emitProcess(*child);
        std::vector<int> order = orderedInputs(cur());
        sequenceChildInputs(cur(), order);
        emitChildEpilogue(returns);
        popContext();

        int base = emitExpr(*proc.repl->base);
        std::vector<int> forks;
        std::vector<int> all_sends;
        for (long k = 0; k < count; ++k) {
            int claddr = g().addCodeAddr(label);
            int fork = g().addNode("rfork", {claddr});
            for (int arr : arrays_read)
                chainArrayRead(arr, fork);
            int index = binOp("+", base, g().addConst(k));
            int last_send = fork;
            for (int sym : order) {
                int value = sym == proc.repl->symbol
                                ? index
                                : envGetOrZero(sym);
                last_send = sendOn(fork, value);
            }
            all_sends.push_back(last_send);
            forks.push_back(fork);
        }
        int final_join = -1;
        for (int fork : forks) {
            int out_chan = binOp("+", fork, g().addConst(1));
            int last = -1;
            bool first_of_comp = true;
            if (returns.empty()) {
                last = recvOn(out_chan);
                for (int send : all_sends)
                    g().addOrderEdge(send, last);
            } else {
                for (int sym : returns) {
                    last = recvOn(out_chan);
                    cur().env[sym] = last;
                    if (first_of_comp) {
                        for (int send : all_sends)
                            g().addOrderEdge(send, last);
                        first_of_comp = false;
                    }
                }
            }
            final_join = last;
            for (int arr : arrays_read)
                chainArrayRead(arr, last);
            for (int arr : arrays_written)
                chainArrayWrite(arr, last);
        }
        if (!forks.empty() && effectful(entry))
            chainControlSpan(forks.front(), final_join);
    }

    // Procedure call: fork the (shared, reentrant) procedure graph,
    // stream the arguments, then receive var-scalar results back.
    void
    emitCall(const Process &proc)
    {
        const ProcInfo &info = ensureProc(proc.calleeSymbol);
        const Symbol &callee = table_.symbol(proc.calleeSymbol);

        // Argument values by param symbol.
        std::map<int, int> values;
        std::vector<int> arrays_read, arrays_written;
        std::map<int, int> result_vars;  ///< param symbol -> arg symbol.
        for (std::size_t i = 0; i < proc.args.size(); ++i) {
            const Declaration::Param &param = callee.params[i];
            const Expr &arg = *proc.args[i];
            if (param.isChannel) {
                values[param.symbol] = envGet(arg.symbol, arg.line);
            } else if (param.isArray) {
                values[param.symbol] = envGet(arg.symbol, arg.line);
                // Conservatively both read and written by the callee.
                arrays_read.push_back(arg.symbol);
                arrays_written.push_back(arg.symbol);
            } else if (param.byValue) {
                values[param.symbol] = emitExpr(arg);
            } else {
                values[param.symbol] = envGetOrZero(arg.symbol);
                result_vars[param.symbol] = arg.symbol;
            }
        }

        int claddr = g().addCodeAddr(info.label);
        int fork = g().addNode("rfork", {claddr});
        for (int arr : arrays_read)
            chainArrayRead(arr, fork);
        int last_send = fork;
        for (int sym : info.sendOrder)
            last_send = sendOn(fork, values.at(sym));
        int out_chan = binOp("+", fork, g().addConst(1));
        int last = -1;
        bool first = true;
        if (info.returnOrder.empty()) {
            last = recvOn(out_chan);
            g().addOrderEdge(last_send, last);
        } else {
            for (int param_sym : info.returnOrder) {
                last = recvOn(out_chan);
                cur().env[result_vars.at(param_sym)] = last;
                if (first) {
                    g().addOrderEdge(last_send, last);
                    first = false;
                }
            }
        }
        for (int arr : arrays_read)
            chainArrayRead(arr, last);
        for (int arr : arrays_written)
            chainArrayWrite(arr, last);
        // Calls are side-effecting: the whole fork..join span sits on
        // the control chain so consecutive calls do not reorder.
        chainControlSpan(fork, last);
    }

    const Program &program_;
    const SymbolTable &table_;
    const Ift &ift_;
    BuildOptions options_;

    std::vector<Ctx> stack;
    std::map<int, ProcInfo> procs;
    int labelCounter = 0;
    ContextProgram result;
};

} // namespace

ContextProgram
buildContextGraphs(const Program &program, const SymbolTable &table,
                   const Ift &ift, const BuildOptions &options)
{
    return GraphBuilder(program, table, ift, options).run();
}

} // namespace qm::occam
