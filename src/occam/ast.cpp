#include "occam/ast.hpp"

namespace qm::occam {

ExprPtr
makeNumber(long value, int line)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Number;
    e->value = value;
    e->line = line;
    return e;
}

ExprPtr
makeVar(std::string name, int line)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Var;
    e->name = std::move(name);
    e->line = line;
    return e;
}

ExprPtr
makeUnary(std::string op, ExprPtr arg, int line)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Unary;
    e->op = std::move(op);
    e->args.push_back(std::move(arg));
    e->line = line;
    return e;
}

ExprPtr
makeBinary(std::string op, ExprPtr lhs, ExprPtr rhs, int line)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Binary;
    e->op = std::move(op);
    e->args.push_back(std::move(lhs));
    e->args.push_back(std::move(rhs));
    e->line = line;
    return e;
}

ExprPtr
Expr::clone() const
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->value = value;
    e->name = name;
    e->op = op;
    e->symbol = symbol;
    e->line = line;
    for (const ExprPtr &arg : args)
        e->args.push_back(arg->clone());
    return e;
}

ProcessPtr
Process::clone() const
{
    auto p = std::make_unique<Process>();
    p->kind = kind;
    p->line = line;
    for (const Declaration &d : decls) {
        Declaration copy;
        copy.kind = d.kind;
        copy.name = d.name;
        copy.line = d.line;
        copy.symbol = d.symbol;
        if (d.arraySize)
            copy.arraySize = d.arraySize->clone();
        if (d.constValue)
            copy.constValue = d.constValue->clone();
        copy.params = d.params;
        if (d.procBody)
            copy.procBody = d.procBody->clone();
        p->decls.push_back(std::move(copy));
    }
    for (const ProcessPtr &c : children)
        p->children.push_back(c->clone());
    for (const Branch &b : branches) {
        Branch copy;
        copy.condition = b.condition->clone();
        copy.body = b.body->clone();
        p->branches.push_back(std::move(copy));
    }
    if (condition)
        p->condition = condition->clone();
    if (target)
        p->target = target->clone();
    if (value)
        p->value = value->clone();
    if (channel)
        p->channel = channel->clone();
    if (repl) {
        Replicator r;
        r.var = repl->var;
        r.symbol = repl->symbol;
        r.base = repl->base->clone();
        r.count = repl->count->clone();
        p->repl = std::move(r);
    }
    p->callee = callee;
    p->calleeSymbol = calleeSymbol;
    for (const ExprPtr &a : args)
        p->args.push_back(a->clone());
    return p;
}

} // namespace qm::occam
