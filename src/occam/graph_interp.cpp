#include "occam/graph_interp.hpp"

#include <deque>

#include "dfg/scheduler.hpp"
#include "mp/system.hpp"
#include "support/diagnostics.hpp"

namespace qm::occam {

/** One running instance of a context graph. */
struct GraphInterpreter::Activation
{
    int graph = -1;                 ///< Index into program contexts.
    std::vector<int> order;         ///< Scheduled firing order.
    std::size_t ip = 0;             ///< Next position in order.
    std::vector<std::int64_t> values;
    std::int64_t inChan = 0;
    std::int64_t outChan = 0;
    bool done = false;
    bool parked = false;            ///< Waiting on an empty channel.
};

GraphInterpreter::GraphInterpreter(const ContextProgram &program,
                                   std::size_t memory_words)
    : program_(program), memory(memory_words, 0),
      heapNext(mp::kHeapBase)
{
    for (std::size_t i = 0; i < program_.contexts.size(); ++i)
        graphIndex[program_.contexts[i].label] = static_cast<int>(i);
}

GraphInterpreter::~GraphInterpreter() = default;

std::int64_t
GraphInterpreter::readWord(std::uint32_t byte_addr) const
{
    fatalIf((byte_addr & 3) != 0, "unaligned abstract read");
    std::size_t index = byte_addr / 4;
    fatalIf(index >= memory.size(), "abstract read out of bounds");
    return memory[index];
}

std::int64_t
GraphInterpreter::nodeValue(const Activation &act, int node) const
{
    return act.values[static_cast<size_t>(node)];
}

namespace {

std::int64_t
applyArith(const std::string &op, std::int64_t a, std::int64_t b)
{
    if (op == "+") return a + b;
    if (op == "-") return a - b;
    if (op == "*") return a * b;
    if (op == "/") {
        fatalIf(b == 0, "abstract division by zero");
        return a / b;
    }
    if (op == "\\") {
        fatalIf(b == 0, "abstract modulo by zero");
        return a % b;
    }
    if (op == "and") return a & b;
    if (op == "or") return a | b;
    if (op == "xor") return a ^ b;
    if (op == "lshift") return a << (b & 31);
    if (op == "rshift") return a >> (b & 31);
    // Comparisons use the machine Boolean encoding (all ones / zero).
    if (op == "eq") return a == b ? -1 : 0;
    if (op == "ne") return a != b ? -1 : 0;
    if (op == "lt") return a < b ? -1 : 0;
    if (op == "le") return a <= b ? -1 : 0;
    if (op == "gt") return a > b ? -1 : 0;
    if (op == "ge") return a >= b ? -1 : 0;
    fatal("abstract interpreter: unknown operator '", op, "'");
}

} // namespace

bool
GraphInterpreter::stepActivation(std::size_t index)
{
    const ContextGraph &cg = program_.contexts[static_cast<size_t>(
        activations[index].graph)];
    const dfg::Dfg &graph = cg.graph;

    while (activations[index].ip < activations[index].order.size()) {
        Activation &act = activations[index];
        int node = act.order[act.ip];
        const dfg::DfgNode &n = graph.node(node);
        auto arg = [&](int slot) {
            return nodeValue(activations[index],
                             n.args[static_cast<size_t>(slot)]);
        };
        std::int64_t value = 0;

        if (n.op == "const") {
            value = n.constValue;
        } else if (n.op == "claddr") {
            auto it = graphIndex.find(n.name);
            panicIf(it == graphIndex.end(), "unknown graph label ",
                    n.name);
            value = it->second;
        } else if (n.op == "getin") {
            value = act.inChan;
        } else if (n.op == "getout") {
            value = act.outChan;
        } else if (n.op == "recv") {
            std::int64_t chan = arg(0);
            auto &queue = channels[chan];
            if (queue.empty()) {
                act.parked = true;
                waiting[chan].push_back(index);
                return false;  // park; retried when a token arrives
            }
            value = queue.front();
            queue.erase(queue.begin());
            ++result.transfers;
        } else if (n.op == "send") {
            std::int64_t chan = arg(0);
            channels[chan].push_back(arg(1));
            auto it = waiting.find(chan);
            if (it != waiting.end()) {
                for (std::size_t idx : it->second)
                    activations[idx].parked = false;
                waiting.erase(it);
            }
        } else if (n.op == "rfork" || n.op == "ifork") {
            int graph_id = static_cast<int>(arg(0));
            Activation child;
            child.graph = graph_id;
            child.order = dfg::schedule(
                program_.contexts[static_cast<size_t>(graph_id)].graph);
            child.values.resize(
                program_.contexts[static_cast<size_t>(graph_id)]
                    .graph.size(),
                0);
            child.inChan = nextChannel;
            child.outChan =
                n.op == "rfork" ? nextChannel + 1 : act.outChan;
            nextChannel += 2;
            value = child.inChan;
            // push_back may reallocate: 'act' is re-acquired below via
            // activations[index] before any further use.
            activations.push_back(std::move(child));
            ++live;
            ++result.contexts;
        } else if (n.op == "fetch") {
            std::int64_t addr = arg(0);
            fatalIf(addr < 0 || (addr & 3) != 0 ||
                        static_cast<std::size_t>(addr / 4) >=
                            memory.size(),
                    "abstract fetch out of range");
            value = memory[static_cast<size_t>(addr / 4)];
        } else if (n.op == "store") {
            std::int64_t addr = arg(0);
            fatalIf(addr < 0 || (addr & 3) != 0 ||
                        static_cast<std::size_t>(addr / 4) >=
                            memory.size(),
                    "abstract store out of range");
            memory[static_cast<size_t>(addr / 4)] = arg(1);
        } else if (n.op == "alloc") {
            value = heapNext;
            heapNext = (heapNext + static_cast<std::uint32_t>(arg(0)) +
                        3u) &
                       ~3u;
        } else if (n.op == "challoc") {
            value = nextChannel;
            nextChannel += 2;
        } else if (n.op == "now") {
            value = static_cast<std::int64_t>(clock);
        } else if (n.op == "wait") {
            // Abstract time: waits are satisfied immediately.
        } else if (n.op == "exit") {
            activations[index].done = true;
            --live;
            ++activations[index].ip;
            ++result.steps;
            return true;
        } else if (n.op == "neg") {
            value = -arg(0);
        } else if (n.op == "not") {
            value = ~arg(0);
        } else if (n.op == "in") {
            panic("abstract interpreter: unbound 'in' node");
        } else {
            value = applyArith(n.op, arg(0), arg(1));
        }

        activations[index].values[static_cast<size_t>(node)] = value;
        ++activations[index].ip;
        ++result.steps;
        ++clock;
    }
    // Ran off the end without an exit actor: treat as done.
    activations[index].done = true;
    --live;
    return true;
}

InterpResult
GraphInterpreter::run(std::uint64_t max_steps)
{
    auto main_it = graphIndex.find(program_.mainLabel);
    fatalIf(main_it == graphIndex.end(), "no main context graph");

    Activation boot;
    boot.graph = main_it->second;
    boot.order = dfg::schedule(
        program_.contexts[static_cast<size_t>(boot.graph)].graph);
    boot.values.resize(
        program_.contexts[static_cast<size_t>(boot.graph)].graph.size(),
        0);
    boot.inChan = nextChannel;
    boot.outChan = nextChannel + 1;
    nextChannel += 2;
    activations.push_back(std::move(boot));
    live = 1;
    result.contexts = 1;

    while (live > 0) {
        fatalIf(result.steps > max_steps,
                "abstract interpreter exceeded its step budget");
        bool progressed = false;
        for (std::size_t i = 0; i < activations.size(); ++i) {
            Activation &act = activations[i];
            if (act.done || act.parked)
                continue;
            stepActivation(i);
            progressed = true;
        }
        if (!progressed && live > 0)
            fatal("abstract interpreter deadlock: ", live,
                  " live activations all parked");
    }
    result.completed = true;
    return result;
}

} // namespace qm::occam
