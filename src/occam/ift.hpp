/**
 * @file
 * Intermediate Form Table (thesis section 4.4, Tables 4.1-4.3) with
 * use/definition linking (Fig 4.11) and live-value analysis (Fig 4.12).
 *
 * Every AST process maps to one IFT entry. Non-interface entries
 * (primitives, conditions) carry syntax; interface entries (seq, par,
 * if, while, call) carry E - an ordered set of ordered sets of the
 * component entry indices, one inner set per independent execution
 * chain (one chain for seq/while, one per component for par/if).
 *
 * The I set holds the values an entry consumes before defining them;
 * the O set the values it defines. Each value carries D (defining
 * entries) and U (using entries) sets, and O values carry the Live
 * flag: whether the value must be communicated onward when the entry
 * runs as its own context. The thesis liveness rules:
 *
 *   1. an O value used by a later entry (U contains more than the
 *      enclosing interface) is live;
 *   2. a value whose only use is being exported (U == {H}) inherits
 *      H's own flag for it - except inside a loop, where a value that
 *      feeds the loop's I set is loop-carried and therefore live;
 *   3. var formal procedure parameters are always live at the body end.
 *
 * The control token K is modelled as pseudo-symbol id -1 so the
 * side-effecting primitives (input/output/wait) chain exactly as in
 * Table 4.1; K never appears in spliced live-in/out lists.
 */
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "occam/ast.hpp"
#include "occam/symbols.hpp"

namespace qm::occam {

/** The control-token pseudo-symbol (Table 4.1). */
constexpr int kControlToken = -1;

/** One value in an entry's I or O set, with analysis annotations. */
struct IftValue
{
    int symbol = -1;
    std::set<int> defs;   ///< D: entries defining the consumed value.
    std::set<int> uses;   ///< U: entries consuming this definition.
    bool live = false;    ///< O values only: needed after this entry.
};

/** One Intermediate Form Table entry. */
struct IftEntry
{
    enum class Type
    {
        Assignment, Input, Output, Wait, Skip, Condition, Declaration,
        Seq, Par, If, While, Call,
    };

    Type type = Type::Skip;
    const Process *syntax = nullptr;  ///< AST node (null for Condition).
    const Expr *condExpr = nullptr;   ///< Condition entries.
    int declSymbol = -1;              ///< Declaration entries.
    std::vector<IftValue> inputs;     ///< The I set.
    std::vector<IftValue> outputs;    ///< The O set.
    /** E: execution chains of component entry indices. */
    std::vector<std::vector<int>> chains;
    /** Symbols declared locally (never escape into parents' I sets). */
    std::set<int> locals;

    bool
    isLoop() const
    {
        return type == Type::While;
    }

    const IftValue *input(int symbol) const;
    const IftValue *output(int symbol) const;
    IftValue *output(int symbol);
};

/** The table plus the process -> entry mapping. */
class Ift
{
  public:
    /**
     * Build the IFT for @p program, run use/def linking and live-value
     * analysis. @p live_analysis toggles the Table 6.6 optimization:
     * when false every output value is conservatively marked live.
     */
    static Ift build(const Program &program, const SymbolTable &table,
                     bool live_analysis = true);

    const IftEntry &entry(int index) const
    {
        return entries_[static_cast<size_t>(index)];
    }
    int size() const { return static_cast<int>(entries_.size()); }

    /** Entry index for an AST process (must exist). */
    int entryOf(const Process *proc) const;

    /** Root entry of a procedure body (built per procedure). */
    int procEntry(int proc_symbol) const;

    /** Root entry of the main program. */
    int mainEntry() const { return main_; }

    /** Live output symbols of @p entry (excluding K), sorted. */
    std::vector<int> liveOutputs(int entry) const;

    /** Input symbols of @p entry (excluding K), sorted. */
    std::vector<int> inputSymbols(int entry) const;

    std::string dump(const SymbolTable &table) const;

  private:
    friend class IftBuilder;

    std::vector<IftEntry> entries_;
    std::map<const Process *, int> byProcess;
    std::map<int, int> byProc;  ///< proc symbol -> body entry.
    int main_ = -1;
};

} // namespace qm::occam
