/**
 * @file
 * Abstract interpreter for spliced context graphs.
 *
 * Executes a ContextProgram directly at the data-flow-graph level: node
 * values live in a per-context table, channels are unbounded token
 * queues, and contexts are scheduled cooperatively. No instruction
 * encoding, no operand queue, no registers - this is the pure
 * data-flow semantics of Chapter 4.
 *
 * Its purpose is differential testing: a compiled program must compute
 * the same observable memory state here and on the cycle-level
 * multiprocessor. A divergence isolates bugs in code generation
 * (queue-offset assignment, dup chains, trap encoding) from bugs in
 * graph construction.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "occam/graph_builder.hpp"

namespace qm::occam {

/** Result of an abstract run. */
struct InterpResult
{
    bool completed = false;
    std::uint64_t steps = 0;       ///< Actor firings.
    std::uint64_t contexts = 0;    ///< Context activations created.
    std::uint64_t transfers = 0;   ///< Channel tokens moved.
};

/** The abstract context-graph interpreter. */
class GraphInterpreter
{
  public:
    explicit GraphInterpreter(const ContextProgram &program,
                              std::size_t memory_words = 1u << 23);
    ~GraphInterpreter();

    GraphInterpreter(const GraphInterpreter &) = delete;
    GraphInterpreter &operator=(const GraphInterpreter &) = delete;

    /**
     * Run the program's main context to global completion.
     * Throws FatalError on deadlock or when @p max_steps elapses.
     */
    InterpResult run(std::uint64_t max_steps = 50'000'000);

    /** Read a word of the abstract data memory (byte address). */
    std::int64_t readWord(std::uint32_t byte_addr) const;

  private:
    struct Activation;

    bool stepActivation(std::size_t index);
    std::int64_t nodeValue(const Activation &act, int node) const;

    const ContextProgram &program_;
    std::map<std::string, int> graphIndex;
    std::vector<std::int64_t> memory;

    std::vector<Activation> activations;
    std::map<std::int64_t, std::vector<std::int64_t>> channels;
    /** Channel id -> activations parked on an empty channel. */
    std::map<std::int64_t, std::vector<std::size_t>> waiting;
    std::int64_t nextChannel = 2;
    std::uint32_t heapNext;
    std::uint64_t clock = 0;
    std::uint64_t live = 0;
    InterpResult result;
};

} // namespace qm::occam
