#include "occam/lexer.hpp"

#include <cctype>
#include <map>

#include "support/diagnostics.hpp"

namespace qm::occam {

namespace {

const std::map<std::string, Tok> kKeywords = {
    {"seq", Tok::KwSeq},     {"par", Tok::KwPar},
    {"if", Tok::KwIf},       {"while", Tok::KwWhile},
    {"var", Tok::KwVar},     {"chan", Tok::KwChan},
    {"def", Tok::KwDef},     {"proc", Tok::KwProc},
    {"skip", Tok::KwSkip},   {"wait", Tok::KwWait},
    {"value", Tok::KwValue}, {"for", Tok::KwFor},
    {"true", Tok::KwTrue},   {"false", Tok::KwFalse},
    {"and", Tok::KwAnd},     {"or", Tok::KwOr},
    {"not", Tok::KwNot},     {"now", Tok::KwNow},
    {"after", Tok::KwAfter},
};

} // namespace

std::string
tokName(Tok kind)
{
    switch (kind) {
      case Tok::Newline: return "newline";
      case Tok::Indent: return "indent";
      case Tok::Dedent: return "dedent";
      case Tok::EndOfFile: return "end of file";
      case Tok::Number: return "number";
      case Tok::Name: return "name";
      case Tok::Assign: return "':='";
      case Tok::Query: return "'?'";
      case Tok::Bang: return "'!'";
      case Tok::Colon: return "':'";
      case Tok::Comma: return "','";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Eq: return "'='";
      case Tok::Neq: return "'<>'";
      case Tok::Lt: return "'<'";
      case Tok::Gt: return "'>'";
      case Tok::Le: return "'<='";
      case Tok::Ge: return "'>='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Backslash: return "'\\'";
      default: return "keyword";
    }
}

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> tokens;
    std::vector<int> indents{0};
    std::size_t pos = 0;
    std::size_t line_start = 0;
    int line = 0;

    // Columns are 1-based character offsets from the line start (a
    // tab counts as one character, matching what an editor's column
    // indicator shows for the raw byte offset).
    auto colOf = [&](std::size_t at) {
        return static_cast<int>(at - line_start) + 1;
    };
    auto emit = [&](Tok kind, std::size_t at, std::string text = {},
                    long value = 0) {
        tokens.push_back(
            Token{kind, std::move(text), value, line, colOf(at)});
    };

    while (pos < source.size()) {
        ++line;
        line_start = pos;
        // Measure indentation of this line.
        int indent = 0;
        while (pos < source.size() &&
               (source[pos] == ' ' || source[pos] == '\t')) {
            indent += source[pos] == '\t' ? 8 : 1;
            ++pos;
        }
        // Blank or comment-only lines do not affect indentation.
        std::size_t line_end = source.find('\n', pos);
        if (line_end == std::string::npos)
            line_end = source.size();
        std::size_t content_end = line_end;
        // Strip "--" comments.
        for (std::size_t i = pos; i + 1 < content_end; ++i) {
            if (source[i] == '-' && source[i + 1] == '-') {
                content_end = i;
                break;
            }
        }
        bool blank = true;
        for (std::size_t i = pos; i < content_end; ++i) {
            if (!std::isspace(static_cast<unsigned char>(source[i]))) {
                blank = false;
                break;
            }
        }
        if (blank) {
            pos = line_end < source.size() ? line_end + 1 : line_end;
            continue;
        }

        // Indentation bookkeeping.
        if (indent > indents.back()) {
            indents.push_back(indent);
            emit(Tok::Indent, pos);
        } else {
            while (indent < indents.back()) {
                indents.pop_back();
                emit(Tok::Dedent, pos);
            }
            fatalIf(indent != indents.back(), "line ", line, ":",
                    colOf(pos), ": inconsistent indentation");
        }

        // Tokenize the line content.
        std::size_t i = pos;
        while (i < content_end) {
            char c = source[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
                std::size_t start = i;
                std::string name;
                while (i < content_end &&
                       (std::isalnum(
                            static_cast<unsigned char>(source[i])) ||
                        source[i] == '_' || source[i] == '.'))
                    name += source[i++];
                auto it = kKeywords.find(name);
                if (it != kKeywords.end())
                    emit(it->second, start, name);
                else
                    emit(Tok::Name, start, name);
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c))) {
                std::size_t start = i;
                std::string digits;
                while (i < content_end &&
                       std::isdigit(
                           static_cast<unsigned char>(source[i])))
                    digits += source[i++];
                emit(Tok::Number, start, digits, std::stol(digits));
                continue;
            }
            auto two = [&](char second) {
                return i + 1 < content_end && source[i + 1] == second;
            };
            switch (c) {
              case ':':
                if (two('=')) {
                    emit(Tok::Assign, i);
                    i += 2;
                } else {
                    emit(Tok::Colon, i);
                    ++i;
                }
                continue;
              case '<':
                if (two('>')) {
                    emit(Tok::Neq, i);
                    i += 2;
                } else if (two('=')) {
                    emit(Tok::Le, i);
                    i += 2;
                } else {
                    emit(Tok::Lt, i);
                    ++i;
                }
                continue;
              case '>':
                if (two('=')) {
                    emit(Tok::Ge, i);
                    i += 2;
                } else {
                    emit(Tok::Gt, i);
                    ++i;
                }
                continue;
              case '?': emit(Tok::Query, i); ++i; continue;
              case '!': emit(Tok::Bang, i); ++i; continue;
              case ',': emit(Tok::Comma, i); ++i; continue;
              case '(': emit(Tok::LParen, i); ++i; continue;
              case ')': emit(Tok::RParen, i); ++i; continue;
              case '[': emit(Tok::LBracket, i); ++i; continue;
              case ']': emit(Tok::RBracket, i); ++i; continue;
              case '=': emit(Tok::Eq, i); ++i; continue;
              case '+': emit(Tok::Plus, i); ++i; continue;
              case '-': emit(Tok::Minus, i); ++i; continue;
              case '*': emit(Tok::Star, i); ++i; continue;
              case '/': emit(Tok::Slash, i); ++i; continue;
              case '\\': emit(Tok::Backslash, i); ++i; continue;
              default:
                fatal("line ", line, ":", colOf(i),
                      ": unexpected character '", c, "'");
            }
        }
        emit(Tok::Newline, i);
        pos = line_end < source.size() ? line_end + 1 : line_end;
    }
    // Close all open blocks.
    ++line;
    while (indents.size() > 1) {
        indents.pop_back();
        tokens.push_back(Token{Tok::Dedent, {}, 0, line, 1});
    }
    tokens.push_back(Token{Tok::EndOfFile, {}, 0, line, 1});
    return tokens;
}

} // namespace qm::occam
