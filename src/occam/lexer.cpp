#include "occam/lexer.hpp"

#include <cctype>
#include <map>

#include "support/diagnostics.hpp"

namespace qm::occam {

namespace {

const std::map<std::string, Tok> kKeywords = {
    {"seq", Tok::KwSeq},     {"par", Tok::KwPar},
    {"if", Tok::KwIf},       {"while", Tok::KwWhile},
    {"var", Tok::KwVar},     {"chan", Tok::KwChan},
    {"def", Tok::KwDef},     {"proc", Tok::KwProc},
    {"skip", Tok::KwSkip},   {"wait", Tok::KwWait},
    {"value", Tok::KwValue}, {"for", Tok::KwFor},
    {"true", Tok::KwTrue},   {"false", Tok::KwFalse},
    {"and", Tok::KwAnd},     {"or", Tok::KwOr},
    {"not", Tok::KwNot},     {"now", Tok::KwNow},
    {"after", Tok::KwAfter},
};

} // namespace

std::string
tokName(Tok kind)
{
    switch (kind) {
      case Tok::Newline: return "newline";
      case Tok::Indent: return "indent";
      case Tok::Dedent: return "dedent";
      case Tok::EndOfFile: return "end of file";
      case Tok::Number: return "number";
      case Tok::Name: return "name";
      case Tok::Assign: return "':='";
      case Tok::Query: return "'?'";
      case Tok::Bang: return "'!'";
      case Tok::Colon: return "':'";
      case Tok::Comma: return "','";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Eq: return "'='";
      case Tok::Neq: return "'<>'";
      case Tok::Lt: return "'<'";
      case Tok::Gt: return "'>'";
      case Tok::Le: return "'<='";
      case Tok::Ge: return "'>='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Backslash: return "'\\'";
      default: return "keyword";
    }
}

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> tokens;
    std::vector<int> indents{0};
    std::size_t pos = 0;
    int line = 0;

    auto emit = [&](Tok kind, std::string text = {}, long value = 0) {
        tokens.push_back(Token{kind, std::move(text), value, line});
    };

    while (pos < source.size()) {
        ++line;
        // Measure indentation of this line.
        int indent = 0;
        while (pos < source.size() &&
               (source[pos] == ' ' || source[pos] == '\t')) {
            indent += source[pos] == '\t' ? 8 : 1;
            ++pos;
        }
        // Blank or comment-only lines do not affect indentation.
        std::size_t line_end = source.find('\n', pos);
        if (line_end == std::string::npos)
            line_end = source.size();
        std::size_t content_end = line_end;
        // Strip "--" comments.
        for (std::size_t i = pos; i + 1 < content_end; ++i) {
            if (source[i] == '-' && source[i + 1] == '-') {
                content_end = i;
                break;
            }
        }
        bool blank = true;
        for (std::size_t i = pos; i < content_end; ++i) {
            if (!std::isspace(static_cast<unsigned char>(source[i]))) {
                blank = false;
                break;
            }
        }
        if (blank) {
            pos = line_end < source.size() ? line_end + 1 : line_end;
            continue;
        }

        // Indentation bookkeeping.
        if (indent > indents.back()) {
            indents.push_back(indent);
            emit(Tok::Indent);
        } else {
            while (indent < indents.back()) {
                indents.pop_back();
                emit(Tok::Dedent);
            }
            fatalIf(indent != indents.back(), "line ", line,
                    ": inconsistent indentation");
        }

        // Tokenize the line content.
        std::size_t i = pos;
        while (i < content_end) {
            char c = source[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
                std::string name;
                while (i < content_end &&
                       (std::isalnum(
                            static_cast<unsigned char>(source[i])) ||
                        source[i] == '_' || source[i] == '.'))
                    name += source[i++];
                auto it = kKeywords.find(name);
                if (it != kKeywords.end())
                    emit(it->second, name);
                else
                    emit(Tok::Name, name);
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c))) {
                std::string digits;
                while (i < content_end &&
                       std::isdigit(
                           static_cast<unsigned char>(source[i])))
                    digits += source[i++];
                emit(Tok::Number, digits, std::stol(digits));
                continue;
            }
            auto two = [&](char second) {
                return i + 1 < content_end && source[i + 1] == second;
            };
            switch (c) {
              case ':':
                if (two('=')) {
                    emit(Tok::Assign);
                    i += 2;
                } else {
                    emit(Tok::Colon);
                    ++i;
                }
                continue;
              case '<':
                if (two('>')) {
                    emit(Tok::Neq);
                    i += 2;
                } else if (two('=')) {
                    emit(Tok::Le);
                    i += 2;
                } else {
                    emit(Tok::Lt);
                    ++i;
                }
                continue;
              case '>':
                if (two('=')) {
                    emit(Tok::Ge);
                    i += 2;
                } else {
                    emit(Tok::Gt);
                    ++i;
                }
                continue;
              case '?': emit(Tok::Query); ++i; continue;
              case '!': emit(Tok::Bang); ++i; continue;
              case ',': emit(Tok::Comma); ++i; continue;
              case '(': emit(Tok::LParen); ++i; continue;
              case ')': emit(Tok::RParen); ++i; continue;
              case '[': emit(Tok::LBracket); ++i; continue;
              case ']': emit(Tok::RBracket); ++i; continue;
              case '=': emit(Tok::Eq); ++i; continue;
              case '+': emit(Tok::Plus); ++i; continue;
              case '-': emit(Tok::Minus); ++i; continue;
              case '*': emit(Tok::Star); ++i; continue;
              case '/': emit(Tok::Slash); ++i; continue;
              case '\\': emit(Tok::Backslash); ++i; continue;
              default:
                fatal("line ", line, ": unexpected character '", c, "'");
            }
        }
        emit(Tok::Newline);
        pos = line_end < source.size() ? line_end + 1 : line_end;
    }
    // Close all open blocks.
    ++line;
    while (indents.size() > 1) {
        indents.pop_back();
        tokens.push_back(Token{Tok::Dedent, {}, 0, line});
    }
    tokens.push_back(Token{Tok::EndOfFile, {}, 0, line});
    return tokens;
}

} // namespace qm::occam
