#include "occam/codegen.hpp"

#include <algorithm>
#include <sstream>

#include "isa/runtime.hpp"
#include "support/diagnostics.hpp"

namespace qm::occam {

namespace {

using dfg::Dfg;

bool
isImmediateNode(const dfg::DfgNode &node)
{
    return node.op == "const" || node.op == "claddr";
}

/** Ops with side effects must be emitted even without consumers. */
bool
hasSideEffect(const std::string &op)
{
    return op == "send" || op == "recv" || op == "store" ||
           op == "fetch" || op == "rfork" || op == "ifork" ||
           op == "exit" || op == "wait" || op == "alloc" ||
           op == "challoc" || op == "now";
}

/** Arithmetic/comparison op -> machine mnemonic. */
const char *
mnemonicFor(const std::string &op)
{
    if (op == "+") return "plus";
    if (op == "-") return "minus";
    if (op == "*") return "mul";
    if (op == "/") return "div";
    if (op == "\\") return "rem";
    if (op == "and") return "and";
    if (op == "or") return "or";
    if (op == "xor") return "xor";
    if (op == "lshift") return "lshift";
    if (op == "rshift") return "rshift";
    if (op == "eq") return "eq";
    if (op == "ne") return "ne";
    if (op == "lt") return "lt";
    if (op == "le") return "le";
    if (op == "gt") return "gt";
    if (op == "ge") return "ge";
    return nullptr;
}

class ContextEmitter
{
  public:
    ContextEmitter(const ContextGraph &context,
                   const CodegenOptions &options, std::ostream &os)
        : cg(context), options_(options), os_(os)
    {
    }

    void
    run()
    {
        const Dfg &graph = cg.graph;
        dfg::PriorityFn priority = options_.priorityScheduling
                                       ? dfg::thesisPriority
                                       : dfg::fifoPriority;
        order = dfg::schedule(graph, priority);

        computePositions();
        os_ << cg.label << ":  ; " << cg.role << "\n";
        for (int node : order)
            emitNode(node);
        os_ << "\n";
    }

  private:
    const ContextGraph &cg;
    const CodegenOptions &options_;
    std::ostream &os_;
    std::vector<int> order;

    /** Queue front index when each node executes. */
    std::vector<int> front;
    /** Result queue positions per node (sorted). */
    std::vector<std::vector<int>> positions;
    /** Whether a node is emitted as an instruction. */
    std::vector<bool> emitted;

    int
    queueArity(int node) const
    {
        int n = 0;
        for (int arg : cg.graph.node(node).args)
            if (!isImmediateNode(cg.graph.node(arg)))
                ++n;
        return n;
    }

    int
    queueRank(int node, int slot) const
    {
        int rank = 0;
        const auto &args = cg.graph.node(node).args;
        for (int i = 0; i < slot; ++i)
            if (!isImmediateNode(cg.graph.node(args[static_cast<size_t>(
                    i)])))
                ++rank;
        return rank;
    }

    void
    computePositions()
    {
        const Dfg &graph = cg.graph;
        front.assign(static_cast<size_t>(graph.size()), 0);
        positions.assign(static_cast<size_t>(graph.size()), {});
        emitted.assign(static_cast<size_t>(graph.size()), false);

        // Decide which nodes become instructions.
        for (int node = 0; node < graph.size(); ++node) {
            const dfg::DfgNode &n = graph.node(node);
            if (isImmediateNode(n))
                continue;
            if ((n.op == "getin" || n.op == "getout") &&
                graph.consumers(node).empty())
                continue;  // unused channel query: free to drop
            if (!hasSideEffect(n.op) && graph.consumers(node).empty() &&
                queueArity(node) == 0)
                continue;  // dead pure value with no queue effect
            emitted[static_cast<size_t>(node)] = true;
        }

        // Pass 1: queue-front index per instruction in schedule order.
        int running = 0;
        for (int node : order) {
            front[static_cast<size_t>(node)] = running;
            if (emitted[static_cast<size_t>(node)])
                running += queueArity(node);
        }

        // Pass 2: producers' result positions from consumers' operands.
        for (int node = 0; node < graph.size(); ++node) {
            if (!emitted[static_cast<size_t>(node)])
                continue;
            const auto &args = graph.node(node).args;
            for (std::size_t slot = 0; slot < args.size(); ++slot) {
                int producer = args[slot];
                if (isImmediateNode(graph.node(producer)))
                    continue;
                panicIf(!emitted[static_cast<size_t>(producer)],
                        "consumed node was not emitted (op ",
                        graph.node(producer).op, ")");
                positions[static_cast<size_t>(producer)].push_back(
                    front[static_cast<size_t>(node)] +
                    queueRank(node, static_cast<int>(slot)));
            }
        }
        for (auto &list : positions)
            std::sort(list.begin(), list.end());
    }

    /** Offsets (relative to post-consume front) for a node's results. */
    std::vector<int>
    offsetsOf(int node) const
    {
        int base = front[static_cast<size_t>(node)] + queueArity(node);
        std::vector<int> offsets;
        for (int pos : positions[static_cast<size_t>(node)]) {
            int offset = pos - base;
            fatalIf(offset < 0,
                    "context '", cg.label,
                    "': result written behind the queue front");
            fatalIf(offset >= options_.pageWords || offset > 255,
                    "context '", cg.label, "' needs queue offset ",
                    offset, "; the context is too large for a ",
                    options_.pageWords, "-word page");
            offsets.push_back(offset);
        }
        return offsets;
    }

    /** Source operand text for argument @p slot of @p node. */
    std::string
    srcText(int node, int slot) const
    {
        const dfg::DfgNode &n = cg.graph.node(node);
        int arg = n.args[static_cast<size_t>(slot)];
        const dfg::DfgNode &a = cg.graph.node(arg);
        if (a.op == "const")
            return "#" + std::to_string(a.constValue);
        if (a.op == "claddr")
            return "@" + a.name;
        return "r" + std::to_string(queueRank(node, slot));
    }

    /**
     * Emit the primary instruction line plus any dup chain needed to
     * place every result copy.
     */
    void
    emitWithDsts(const std::string &body, int node, int qp_inc)
    {
        std::vector<int> offsets = offsetsOf(node);
        std::vector<int> in_dsts;   // encodable in dst fields (< 16)
        std::vector<int> in_dups;
        for (int offset : offsets) {
            if (offset < 16 && in_dsts.size() < 2)
                in_dsts.push_back(offset);
            else
                in_dups.push_back(offset);
        }
        (void)qp_inc;  // already encoded in the mnemonic suffix
        std::ostringstream line;
        line << "  " << body;
        if (!in_dsts.empty()) {
            line << " :r" << in_dsts[0];
            if (in_dsts.size() > 1)
                line << ",r" << in_dsts[1];
        } else if (!offsets.empty()) {
            line << " :dummy";
        }
        if (!in_dups.empty())
            line << " >";
        os_ << line.str() << "\n";
        for (std::size_t i = 0; i < in_dups.size(); i += 2) {
            bool last = i + 2 >= in_dups.size();
            if (i + 1 < in_dups.size()) {
                os_ << "  dup2 :r" << in_dups[i] << ",r"
                    << in_dups[i + 1];
            } else {
                os_ << "  dup1 :r" << in_dups[i];
            }
            if (!last)
                os_ << " >";
            os_ << "\n";
        }
    }

    std::string
    qpSuffix(int qp_inc) const
    {
        return qp_inc > 0 ? "+" + std::to_string(qp_inc) : "";
    }

    void
    emitNode(int node)
    {
        if (!emitted[static_cast<size_t>(node)])
            return;
        const dfg::DfgNode &n = cg.graph.node(node);
        int qp = queueArity(node);
        std::string suffix = qpSuffix(qp);

        if (const char *m = mnemonicFor(n.op)) {
            emitWithDsts(std::string(m) + suffix + " " +
                             srcText(node, 0) + "," + srcText(node, 1),
                         node, qp);
            return;
        }
        if (n.op == "neg") {
            emitWithDsts("minus" + suffix + " #0," + srcText(node, 0),
                         node, qp);
            return;
        }
        if (n.op == "not") {
            emitWithDsts("xor" + suffix + " " + srcText(node, 0) +
                             ",#-1",
                         node, qp);
            return;
        }
        if (n.op == "fetch") {
            emitWithDsts("fetch" + suffix + " " + srcText(node, 0),
                         node, qp);
            return;
        }
        if (n.op == "store") {
            os_ << "  store" << suffix << " " << srcText(node, 0) << ","
                << srcText(node, 1) << "\n";
            return;
        }
        if (n.op == "send") {
            os_ << "  send" << suffix << " " << srcText(node, 0) << ","
                << srcText(node, 1) << "\n";
            return;
        }
        if (n.op == "recv") {
            emitWithDsts("recv" + suffix + " " + srcText(node, 0), node,
                         qp);
            return;
        }
        auto trap = [&](isa::Word number, const std::string &argument) {
            emitWithDsts("trap" + suffix + " #" +
                             std::to_string(number) + "," + argument,
                         node, qp);
        };
        if (n.op == "getin") {
            trap(isa::TrapGetIn, "#0");
            return;
        }
        if (n.op == "getout") {
            trap(isa::TrapGetOut, "#0");
            return;
        }
        if (n.op == "rfork") {
            trap(isa::TrapRfork, srcText(node, 0));
            return;
        }
        if (n.op == "ifork") {
            trap(isa::TrapIfork, srcText(node, 0));
            return;
        }
        if (n.op == "alloc") {
            trap(isa::TrapAlloc, srcText(node, 0));
            return;
        }
        if (n.op == "challoc") {
            trap(isa::TrapChan, "#0");
            return;
        }
        if (n.op == "now") {
            trap(isa::TrapNow, "#0");
            return;
        }
        if (n.op == "wait") {
            trap(isa::TrapWait, srcText(node, 0));
            return;
        }
        if (n.op == "exit") {
            os_ << "  trap #" << isa::TrapExit << ",#0\n";
            return;
        }
        panic("codegen: unknown actor '", n.op, "'");
    }
};

} // namespace

std::string
generateAssembly(const ContextProgram &program,
                 const CodegenOptions &options)
{
    std::ostringstream os;
    os << "; generated by the OCCAM queue-machine compiler\n";
    for (const ContextGraph &context : program.contexts) {
        ContextEmitter emitter(context, options, os);
        emitter.run();
    }
    return os.str();
}

} // namespace qm::occam
