/**
 * @file
 * Abstract syntax tree for the OCCAM subset (thesis Chapter 4).
 *
 * The supported subset covers every construct the thesis compiler
 * handles: the five primitive processes (assignment, input, output,
 * wait, skip), the seq/par/if/while constructors, replicated seq/par,
 * named procedures with value/var parameters, and var/chan/def
 * declarations including word vectors.
 */
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace qm::occam {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Expression node. */
struct Expr
{
    enum class Kind
    {
        Number,    ///< Integer literal (value).
        BoolLit,   ///< true/false (value = all-ones / 0).
        Var,       ///< Scalar/channel/const reference (name, symbol).
        ArrayRef,  ///< name[index] (args[0] = index).
        Unary,     ///< op in {"neg", "not"} over args[0].
        Binary,    ///< args[0] op args[1].
    };

    Kind kind = Kind::Number;
    long value = 0;
    std::string name;
    /** Operator: + - * / \\ and or = <> < > <= >= (Binary). */
    std::string op;
    std::vector<ExprPtr> args;
    int symbol = -1;  ///< Filled by sema for Var/ArrayRef.
    int line = 0;

    ExprPtr clone() const;
};

ExprPtr makeNumber(long value, int line);
ExprPtr makeVar(std::string name, int line);
ExprPtr makeUnary(std::string op, ExprPtr arg, int line);
ExprPtr makeBinary(std::string op, ExprPtr lhs, ExprPtr rhs, int line);

struct Process;
using ProcessPtr = std::unique_ptr<Process>;

/** One declaration introduced in a block. */
struct Declaration
{
    enum class Kind { Scalar, Array, Channel, Constant, Procedure };

    Kind kind = Kind::Scalar;
    std::string name;
    ExprPtr arraySize;           ///< Array: element count (const expr).
    ExprPtr constValue;          ///< Constant: defining expression.
    // Procedure:
    struct Param
    {
        bool byValue = false;    ///< value x (copy-in only).
        bool isArray = false;    ///< var x[] (passed by base address).
        bool isChannel = false;  ///< chan x (channel id, copy-in).
        std::string name;
        int symbol = -1;
    };
    std::vector<Param> params;
    ProcessPtr procBody;
    int symbol = -1;             ///< Filled by sema.
    int line = 0;
};

/** Replicator clause: name = [base for count]. */
struct Replicator
{
    std::string var;
    int symbol = -1;
    ExprPtr base;
    ExprPtr count;
};

/** Process (statement) node. */
struct Process
{
    enum class Kind
    {
        Seq,     ///< children (+ optional replicator, desugared by parser)
        Par,     ///< children (+ optional constant replicator)
        If,      ///< branches
        While,   ///< condition + children[0]
        Assign,  ///< target := value
        Input,   ///< channel ? target
        Output,  ///< channel ! value
        Skip,
        Wait,    ///< wait until time 'value'
        Call,    ///< callee(args)
    };

    Kind kind = Kind::Skip;
    int line = 0;

    /** Declarations scoped over this block (Seq/Par bodies). */
    std::vector<Declaration> decls;
    std::vector<ProcessPtr> children;

    // If: guard/body pairs, tried in order (no true guard acts as skip).
    struct Branch
    {
        ExprPtr condition;
        ProcessPtr body;
    };
    std::vector<Branch> branches;

    ExprPtr condition;  ///< While.
    ExprPtr target;     ///< Assign/Input destination (Var or ArrayRef).
    ExprPtr value;      ///< Assign/Output/Wait source expression.
    ExprPtr channel;    ///< Input/Output channel expression (Var).

    std::optional<Replicator> repl;  ///< Par replication (Seq desugars).

    std::string callee;
    int calleeSymbol = -1;
    std::vector<ExprPtr> args;

    ProcessPtr clone() const;
};

/** A parsed program: top-level declarations plus the main process. */
struct Program
{
    std::vector<Declaration> decls;
    ProcessPtr main;
};

} // namespace qm::occam
