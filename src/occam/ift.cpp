#include "occam/ift.hpp"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.hpp"

namespace qm::occam {

const IftValue *
IftEntry::input(int symbol) const
{
    for (const IftValue &v : inputs)
        if (v.symbol == symbol)
            return &v;
    return nullptr;
}

const IftValue *
IftEntry::output(int symbol) const
{
    for (const IftValue &v : outputs)
        if (v.symbol == symbol)
            return &v;
    return nullptr;
}

IftValue *
IftEntry::output(int symbol)
{
    for (IftValue &v : outputs)
        if (v.symbol == symbol)
            return &v;
    return nullptr;
}

int
Ift::entryOf(const Process *proc) const
{
    auto it = byProcess.find(proc);
    panicIf(it == byProcess.end(), "process has no IFT entry");
    return it->second;
}

int
Ift::procEntry(int proc_symbol) const
{
    auto it = byProc.find(proc_symbol);
    panicIf(it == byProc.end(), "procedure has no IFT entry");
    return it->second;
}

std::vector<int>
Ift::liveOutputs(int index) const
{
    std::vector<int> result;
    for (const IftValue &v : entry(index).outputs)
        if (v.symbol != kControlToken && v.live)
            result.push_back(v.symbol);
    std::sort(result.begin(), result.end());
    return result;
}

std::vector<int>
Ift::inputSymbols(int index) const
{
    std::vector<int> result;
    for (const IftValue &v : entry(index).inputs)
        if (v.symbol != kControlToken)
            result.push_back(v.symbol);
    std::sort(result.begin(), result.end());
    return result;
}

namespace {

const char *
typeName(IftEntry::Type type)
{
    switch (type) {
      case IftEntry::Type::Assignment: return "assignment";
      case IftEntry::Type::Input: return "input";
      case IftEntry::Type::Output: return "output";
      case IftEntry::Type::Wait: return "wait";
      case IftEntry::Type::Skip: return "skip";
      case IftEntry::Type::Condition: return "condition";
      case IftEntry::Type::Declaration: return "declaration";
      case IftEntry::Type::Seq: return "seq";
      case IftEntry::Type::Par: return "par";
      case IftEntry::Type::If: return "if";
      case IftEntry::Type::While: return "while";
      case IftEntry::Type::Call: return "call";
    }
    return "?";
}

} // namespace

std::string
Ift::dump(const SymbolTable &table) const
{
    auto name = [&](int sym) {
        return sym == kControlToken ? std::string("K")
                                    : table.symbol(sym).name;
    };
    std::ostringstream os;
    for (int i = 0; i < size(); ++i) {
        const IftEntry &e = entry(i);
        os << i << " " << typeName(e.type) << " I={";
        for (const IftValue &v : e.inputs)
            os << name(v.symbol) << " ";
        os << "} O={";
        for (const IftValue &v : e.outputs)
            os << name(v.symbol) << (v.live ? "+ " : " ");
        os << "} E={";
        for (const auto &chain : e.chains) {
            os << "(";
            for (int c : chain)
                os << c << " ";
            os << ")";
        }
        os << "}\n";
    }
    return os.str();
}

// ---------------------------------------------------------------------------

class IftBuilder
{
  public:
    IftBuilder(const Program &program, const SymbolTable &table,
               bool live_analysis)
        : program_(program), table_(table), liveAnalysis(live_analysis)
    {
    }

    Ift
    run()
    {
        // Procedure bodies first (call entries do not expand inline).
        buildProcDecls(program_.decls);
        ift.main_ = buildProcess(*program_.main);

        // Use/definition linking, then liveness, per root.
        useAndDef(ift.main_);
        for (auto &[sym, root] : ift.byProc)
            useAndDef(root);

        if (liveAnalysis) {
            // Program results are observed through memory, so the main
            // block's own outputs are dead; proc-body outputs are live
            // exactly for var formals.
            for (IftValue &v : entryRef(ift.main_).outputs)
                v.live = false;
            assignLive(ift.main_);
            for (auto &[sym, root] : ift.byProc) {
                for (IftValue &v : entryRef(root).outputs)
                    v.live = varFormal(v.symbol);
                assignLive(root);
            }
        } else {
            // Table 6.6 ablation: communicate everything.
            for (IftEntry &e : ift.entries_)
                for (IftValue &v : e.outputs)
                    v.live = true;
        }
        return std::move(ift);
    }

  private:
    IftEntry &
    entryRef(int index)
    {
        return ift.entries_[static_cast<size_t>(index)];
    }

    int
    newEntry(IftEntry::Type type, const Process *syntax)
    {
        IftEntry e;
        e.type = type;
        e.syntax = syntax;
        ift.entries_.push_back(std::move(e));
        int index = ift.size() - 1;
        if (syntax)
            ift.byProcess[syntax] = index;
        return index;
    }

    bool
    varFormal(int symbol) const
    {
        if (symbol == kControlToken)
            return false;
        const Symbol &sym = table_.symbol(symbol);
        return sym.isParam && !sym.paramByValue &&
               sym.kind == Symbol::Kind::Scalar;
    }

    /** Collect value symbols an expression consumes (not constants). */
    void
    collectVars(const Expr &expr, std::set<int> &out) const
    {
        switch (expr.kind) {
          case Expr::Kind::Number:
          case Expr::Kind::BoolLit:
            return;
          case Expr::Kind::Var: {
            const Symbol &sym = table_.symbol(expr.symbol);
            if (sym.kind != Symbol::Kind::Constant)
                out.insert(expr.symbol);
            return;
          }
          case Expr::Kind::ArrayRef:
            out.insert(expr.symbol);
            collectVars(*expr.args[0], out);
            return;
          case Expr::Kind::Unary:
            collectVars(*expr.args[0], out);
            return;
          case Expr::Kind::Binary:
            collectVars(*expr.args[0], out);
            collectVars(*expr.args[1], out);
            return;
        }
    }

    static void
    addValue(std::vector<IftValue> &set, int symbol)
    {
        for (const IftValue &v : set)
            if (v.symbol == symbol)
                return;
        IftValue v;
        v.symbol = symbol;
        set.push_back(v);
    }

    void
    addVars(std::vector<IftValue> &set, const Expr &expr)
    {
        std::set<int> symbols;
        collectVars(expr, symbols);
        for (int s : symbols)
            addValue(set, s);
    }

    void
    buildProcDecls(const std::vector<Declaration> &decls)
    {
        for (const Declaration &decl : decls) {
            if (decl.kind != Declaration::Kind::Procedure)
                continue;
            int root = buildProcess(*decl.procBody);
            ift.byProc[decl.symbol] = root;
        }
    }

    int
    buildCondition(const Expr &cond)
    {
        int index = newEntry(IftEntry::Type::Condition, nullptr);
        entryRef(index).condExpr = &cond;
        addVars(entryRef(index).inputs, cond);
        return index;
    }

    /** Table 4.2 seq combination of already-built component entries. */
    void
    combineSeq(IftEntry &e, const std::vector<int> &chain)
    {
        std::set<int> defined;
        for (int child : chain) {
            for (const IftValue &v : entryRef(child).inputs)
                if (!defined.count(v.symbol))
                    addValue(e.inputs, v.symbol);
            for (const IftValue &v : entryRef(child).outputs) {
                defined.insert(v.symbol);
                addValue(e.outputs, v.symbol);
            }
        }
    }

    /** Remove declared-local symbols from an interface's I/O sets. */
    static void
    filterLocals(IftEntry &e)
    {
        auto drop = [&](std::vector<IftValue> &set) {
            set.erase(std::remove_if(set.begin(), set.end(),
                                     [&](const IftValue &v) {
                                         return e.locals.count(v.symbol);
                                     }),
                      set.end());
        };
        drop(e.inputs);
        drop(e.outputs);
    }

    void
    noteLocals(IftEntry &e, const std::vector<Declaration> &decls)
    {
        for (const Declaration &decl : decls)
            if (decl.symbol >= 0)
                e.locals.insert(decl.symbol);
    }

    int
    buildProcess(const Process &proc)
    {
        switch (proc.kind) {
          case Process::Kind::Assign: {
            int index = newEntry(IftEntry::Type::Assignment, &proc);
            IftEntry &e = entryRef(index);
            addVars(e.inputs, *proc.value);
            if (proc.target->kind == Expr::Kind::ArrayRef) {
                addVars(e.inputs, *proc.target->args[0]);
                addValue(e.inputs, proc.target->symbol);
                addValue(e.outputs, proc.target->symbol);
            } else {
                addValue(e.outputs, proc.target->symbol);
            }
            return index;
          }
          case Process::Kind::Input: {
            int index = newEntry(IftEntry::Type::Input, &proc);
            IftEntry &e = entryRef(index);
            addValue(e.inputs, kControlToken);
            addValue(e.inputs, proc.channel->symbol);
            addValue(e.outputs, kControlToken);
            if (proc.target->kind == Expr::Kind::ArrayRef) {
                addVars(e.inputs, *proc.target->args[0]);
                addValue(e.inputs, proc.target->symbol);
                addValue(e.outputs, proc.target->symbol);
            } else {
                addValue(e.outputs, proc.target->symbol);
            }
            return index;
          }
          case Process::Kind::Output: {
            int index = newEntry(IftEntry::Type::Output, &proc);
            IftEntry &e = entryRef(index);
            addValue(e.inputs, kControlToken);
            addValue(e.inputs, proc.channel->symbol);
            addVars(e.inputs, *proc.value);
            addValue(e.outputs, kControlToken);
            return index;
          }
          case Process::Kind::Wait: {
            int index = newEntry(IftEntry::Type::Wait, &proc);
            IftEntry &e = entryRef(index);
            addValue(e.inputs, kControlToken);
            addVars(e.inputs, *proc.value);
            addValue(e.outputs, kControlToken);
            return index;
          }
          case Process::Kind::Skip:
            return newEntry(IftEntry::Type::Skip, &proc);
          case Process::Kind::Call: {
            int index = newEntry(IftEntry::Type::Call, &proc);
            IftEntry &e = entryRef(index);
            addValue(e.inputs, kControlToken);
            addValue(e.outputs, kControlToken);
            const Symbol &callee = table_.symbol(proc.calleeSymbol);
            for (std::size_t i = 0; i < proc.args.size(); ++i) {
                const Expr &arg = *proc.args[i];
                const Declaration::Param &param = callee.params[i];
                if (param.byValue || param.isChannel) {
                    addVars(e.inputs, arg);
                } else {
                    // var scalar / array: both used and (re)defined.
                    addValue(e.inputs, arg.symbol);
                    addValue(e.outputs, arg.symbol);
                }
            }
            return index;
          }
          case Process::Kind::While: {
            int cond = buildCondition(*proc.condition);
            int body = buildProcess(*proc.children[0]);
            int index = newEntry(IftEntry::Type::While, &proc);
            IftEntry &e = entryRef(index);
            e.chains.push_back({cond, body});
            // I = I(C) + (I(P) - O(C)); O(C) is empty for conditions.
            for (const IftValue &v : entryRef(cond).inputs)
                addValue(e.inputs, v.symbol);
            for (const IftValue &v : entryRef(body).inputs)
                addValue(e.inputs, v.symbol);
            for (const IftValue &v : entryRef(body).outputs)
                addValue(e.outputs, v.symbol);
            return index;
          }
          case Process::Kind::If: {
            std::vector<std::pair<int, int>> pairs;
            for (const Process::Branch &branch : proc.branches) {
                int cond = buildCondition(*branch.condition);
                int body = buildProcess(*branch.body);
                pairs.emplace_back(cond, body);
            }
            int index = newEntry(IftEntry::Type::If, &proc);
            IftEntry &e = entryRef(index);
            for (auto [cond, body] : pairs) {
                e.chains.push_back({cond, body});
                for (const IftValue &v : entryRef(cond).inputs)
                    addValue(e.inputs, v.symbol);
                for (const IftValue &v : entryRef(body).inputs)
                    addValue(e.inputs, v.symbol);
                for (const IftValue &v : entryRef(body).outputs)
                    addValue(e.outputs, v.symbol);
            }
            return index;
          }
          case Process::Kind::Seq: {
            buildProcDecls(proc.decls);
            std::vector<int> chain;
            for (const ProcessPtr &child : proc.children)
                chain.push_back(buildProcess(*child));
            int index = newEntry(IftEntry::Type::Seq, &proc);
            IftEntry &e = entryRef(index);
            noteLocals(e, proc.decls);
            e.chains.push_back(chain);
            combineSeq(e, chain);
            filterLocals(e);
            return index;
          }
          case Process::Kind::Par: {
            buildProcDecls(proc.decls);
            int index;
            if (proc.repl) {
                // Replicated par: the body (children as a seq chain) is
                // one template instance; the index var is local.
                std::vector<int> chain;
                for (const ProcessPtr &child : proc.children)
                    chain.push_back(buildProcess(*child));
                index = newEntry(IftEntry::Type::Par, &proc);
                IftEntry &e = entryRef(index);
                noteLocals(e, proc.decls);
                e.locals.insert(proc.repl->symbol);
                e.chains.push_back(chain);
                combineSeq(e, chain);
                addVars(e.inputs, *proc.repl->base);
                addVars(e.inputs, *proc.repl->count);
                filterLocals(e);
                return index;
            }
            std::vector<std::vector<int>> chains;
            for (const ProcessPtr &child : proc.children)
                chains.push_back({buildProcess(*child)});
            index = newEntry(IftEntry::Type::Par, &proc);
            IftEntry &e = entryRef(index);
            noteLocals(e, proc.decls);
            for (auto &chain : chains) {
                e.chains.push_back(chain);
                for (const IftValue &v :
                     entryRef(chain[0]).inputs)
                    addValue(e.inputs, v.symbol);
                for (const IftValue &v :
                     entryRef(chain[0]).outputs)
                    addValue(e.outputs, v.symbol);
            }
            filterLocals(e);
            return index;
          }
        }
        panic("unreachable process kind");
    }

    // --- Fig 4.11: use and definition sets --------------------------------

    void
    findDef(int symbol, int user, int interface,
            const std::vector<int> &preceding, std::set<int> &defs)
    {
        for (int candidate : preceding) {
            if (IftValue *out = entryRef(candidate).output(symbol)) {
                out->uses.insert(user);
                defs.insert(candidate);
                return;
            }
        }
        for (IftValue &in : entryRef(interface).inputs) {
            if (in.symbol == symbol) {
                in.uses.insert(user);
                defs.insert(interface);
                return;
            }
        }
        // Locally declared (or use-before-definition): no def entry.
    }

    void
    useAndDef(int interface)
    {
        IftEntry &e = entryRef(interface);
        for (const std::vector<int> &chain : e.chains) {
            std::vector<int> preceding;  // most recent first
            for (int child : chain) {
                for (IftValue &in : entryRef(child).inputs)
                    findDef(in.symbol, child, interface, preceding,
                            in.defs);
                useAndDef(child);
                preceding.insert(preceding.begin(), child);
            }
            for (IftValue &out : entryRef(interface).outputs)
                findDef(out.symbol, interface, interface, preceding,
                        out.defs);
        }
    }

    // --- Fig 4.12: live-value analysis -------------------------------------

    void
    assignLive(int interface)
    {
        IftEntry &e = entryRef(interface);
        for (const std::vector<int> &chain : e.chains) {
            for (int child : chain) {
                for (IftValue &out : entryRef(child).outputs) {
                    if (out.uses.empty()) {
                        out.live = varFormal(out.symbol);
                    } else if (out.uses.size() == 1 &&
                               *out.uses.begin() == interface) {
                        // Only exported: loop-carried values are live,
                        // everything else inherits the interface flag.
                        if (e.isLoop() && e.input(out.symbol)) {
                            out.live = true;
                        } else if (const IftValue *up =
                                       e.output(out.symbol)) {
                            out.live = up->live;
                        } else {
                            out.live = varFormal(out.symbol);
                        }
                    } else {
                        out.live = true;
                    }
                }
                assignLive(child);
            }
        }
    }

    const Program &program_;
    const SymbolTable &table_;
    bool liveAnalysis;
    Ift ift;
};

Ift
Ift::build(const Program &program, const SymbolTable &table,
           bool live_analysis)
{
    return IftBuilder(program, table, live_analysis).run();
}

} // namespace qm::occam
