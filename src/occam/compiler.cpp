#include "occam/compiler.hpp"

#include "occam/codegen.hpp"
#include "occam/ift.hpp"
#include "occam/parser.hpp"
#include "occam/symbols.hpp"
#include "support/diagnostics.hpp"

namespace qm::occam {

isa::Addr
CompiledProgram::arrayAddress(const std::string &name) const
{
    auto it = dataMap.find(name);
    fatalIf(it == dataMap.end(), "no top-level array named '", name,
            "'");
    return it->second;
}

CompiledProgram
compileOccam(const std::string &source, const CompileOptions &options)
{
    Program program = parse(source);
    SymbolTable table = analyze(program);
    Ift ift = Ift::build(program, table, options.liveAnalysis);

    BuildOptions build_options;
    build_options.inputSequencing = options.inputSequencing;
    ContextProgram contexts =
        buildContextGraphs(program, table, ift, build_options);

    CodegenOptions codegen_options;
    codegen_options.priorityScheduling = options.priorityScheduling;
    codegen_options.pageWords = options.pageWords;

    CompiledProgram result;
    result.assembly = generateAssembly(contexts, codegen_options);
    result.object = isa::assemble(result.assembly);
    result.mainLabel = contexts.mainLabel;
    result.contextCount = static_cast<int>(contexts.contexts.size());
    for (const auto &[symbol, addr] : contexts.dataAddress)
        result.dataMap[table.symbol(symbol).name] = addr;
    if (options.emitDot)
        for (const ContextGraph &cg : contexts.contexts)
            result.dot[cg.label] = cg.graph.toDot(cg.label);
    return result;
}

} // namespace qm::occam
