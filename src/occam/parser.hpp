/**
 * @file
 * Recursive-descent parser for the OCCAM subset.
 *
 * Notable lowering performed here: a replicated seq
 * (`seq i = [base for count]`) desugars into the equivalent
 * while-loop form, which the graph builder then compiles with the
 * iterative-fork (ifork) splicing scheme of thesis section 4.2.
 * Replicated par keeps its replicator; the graph builder fans it out.
 */
#pragma once

#include "occam/ast.hpp"

namespace qm::occam {

/** Parse OCCAM source; throws FatalError with line info on errors. */
Program parse(const std::string &source);

} // namespace qm::occam
