/**
 * @file
 * Symbol table and semantic analysis for the OCCAM subset.
 *
 * Sema resolves every name to a symbol id, checks kind correctness
 * (channels only in ?/!, arrays only subscripted, constants never
 * assigned), folds def-constants, and annotates the AST in place.
 */
#pragma once

#include <string>
#include <vector>

#include "occam/ast.hpp"

namespace qm::occam {

/** One resolved program entity. */
struct Symbol
{
    enum class Kind
    {
        Scalar,    ///< Word variable (flows as a data token).
        Array,     ///< Word vector (base address flows; data in memory).
        Channel,   ///< Channel variable (id flows as a token).
        Constant,  ///< def-bound compile-time constant.
        Procedure,
    };

    Kind kind = Kind::Scalar;
    std::string name;
    int id = -1;
    int line = 0;
    bool topLevel = false;   ///< Declared at program scope.

    long arraySize = 0;      ///< Array element count.
    long constValue = 0;     ///< Constant value.

    // Procedure info.
    std::vector<Declaration::Param> params;
    const Process *procBody = nullptr;

    // Parameter info (set when this symbol is a proc parameter).
    bool isParam = false;
    bool paramByValue = false;
};

/** Result of semantic analysis: the symbol table. */
class SymbolTable
{
  public:
    const Symbol &symbol(int id) const
    {
        return symbols_[static_cast<size_t>(id)];
    }
    Symbol &symbol(int id) { return symbols_[static_cast<size_t>(id)]; }
    int size() const { return static_cast<int>(symbols_.size()); }

    int add(Symbol symbol);

  private:
    std::vector<Symbol> symbols_;
};

/**
 * Resolve names and check the program; annotates Expr::symbol,
 * Declaration::symbol, Replicator::symbol, and Process::calleeSymbol.
 * Throws FatalError on semantic errors.
 */
SymbolTable analyze(Program &program);

/**
 * Fold a constant expression (literals, def constants, arithmetic).
 * Throws FatalError if the expression is not compile-time constant.
 */
long foldConstant(const Expr &expr, const SymbolTable &table);

} // namespace qm::occam
