#include "occam/symbols.hpp"

#include <map>

#include "support/diagnostics.hpp"

namespace qm::occam {

int
SymbolTable::add(Symbol symbol)
{
    symbol.id = static_cast<int>(symbols_.size());
    symbols_.push_back(std::move(symbol));
    return symbols_.back().id;
}

long
foldConstant(const Expr &expr, const SymbolTable &table)
{
    switch (expr.kind) {
      case Expr::Kind::Number:
      case Expr::Kind::BoolLit:
        return expr.value;
      case Expr::Kind::Var: {
        fatalIf(expr.symbol < 0, "line ", expr.line,
                ": unresolved name in constant expression");
        const Symbol &sym = table.symbol(expr.symbol);
        fatalIf(sym.kind != Symbol::Kind::Constant, "line ", expr.line,
                ": '", expr.name, "' is not a compile-time constant");
        return sym.constValue;
      }
      case Expr::Kind::Unary: {
        long v = foldConstant(*expr.args[0], table);
        if (expr.op == "neg")
            return -v;
        if (expr.op == "not")
            return ~v;
        fatal("line ", expr.line, ": non-constant unary operator");
      }
      case Expr::Kind::Binary: {
        long a = foldConstant(*expr.args[0], table);
        long b = foldConstant(*expr.args[1], table);
        if (expr.op == "+") return a + b;
        if (expr.op == "-") return a - b;
        if (expr.op == "*") return a * b;
        if (expr.op == "/") {
            fatalIf(b == 0, "line ", expr.line, ": division by zero");
            return a / b;
        }
        if (expr.op == "\\") {
            fatalIf(b == 0, "line ", expr.line, ": modulo by zero");
            return a % b;
        }
        fatal("line ", expr.line,
              ": operator '", expr.op, "' not allowed in constants");
      }
      case Expr::Kind::ArrayRef:
        fatal("line ", expr.line, ": array reference in constant");
    }
    panic("unreachable expr kind");
}

namespace {

class Sema
{
  public:
    explicit Sema(Program &program) : program_(program) {}

    SymbolTable
    run()
    {
        scopes.emplace_back();
        declareAll(program_.decls, /*top_level=*/true);
        resolveProcess(*program_.main);
        scopes.pop_back();
        return std::move(table);
    }

  private:
    using Scope = std::map<std::string, int>;

    int
    lookup(const std::string &name, int line)
    {
        // Inside a procedure body, only the procedure's own scopes are
        // visible, plus constants and procedures from enclosing scopes:
        // contexts are self-contained, so free variables cannot flow in
        // (thesis splicing passes everything through channels).
        std::size_t barrier =
            procScopeBase.empty() ? 0 : procScopeBase.back();
        for (std::size_t i = scopes.size(); i-- > 0;) {
            auto found = scopes[i].find(name);
            if (found == scopes[i].end())
                continue;
            if (i < barrier) {
                const Symbol &sym = table.symbol(found->second);
                fatalIf(sym.kind != Symbol::Kind::Constant &&
                            sym.kind != Symbol::Kind::Procedure,
                        "line ", line, ": '", name,
                        "' is outside the procedure; pass it as a "
                        "parameter");
            }
            return found->second;
        }
        fatal("line ", line, ": undeclared name '", name, "'");
    }

    void
    declare(const std::string &name, int id, int line)
    {
        Scope &scope = scopes.back();
        fatalIf(scope.count(name), "line ", line, ": duplicate name '",
                name, "' in this scope");
        scope[name] = id;
    }

    void
    declareAll(std::vector<Declaration> &decls, bool top_level)
    {
        for (Declaration &decl : decls) {
            Symbol sym;
            sym.name = decl.name;
            sym.line = decl.line;
            sym.topLevel = top_level;
            switch (decl.kind) {
              case Declaration::Kind::Scalar:
                sym.kind = Symbol::Kind::Scalar;
                break;
              case Declaration::Kind::Array:
                sym.kind = Symbol::Kind::Array;
                resolveExpr(*decl.arraySize);
                sym.arraySize = foldConstant(*decl.arraySize, table);
                fatalIf(sym.arraySize <= 0, "line ", decl.line,
                        ": array size must be positive");
                break;
              case Declaration::Kind::Channel:
                sym.kind = Symbol::Kind::Channel;
                break;
              case Declaration::Kind::Constant:
                sym.kind = Symbol::Kind::Constant;
                resolveExpr(*decl.constValue);
                sym.constValue = foldConstant(*decl.constValue, table);
                break;
              case Declaration::Kind::Procedure:
                sym.kind = Symbol::Kind::Procedure;
                sym.params = decl.params;
                sym.procBody = decl.procBody.get();
                break;
            }
            decl.symbol = table.add(std::move(sym));
            declare(decl.name, decl.symbol, decl.line);

            if (decl.kind == Declaration::Kind::Procedure) {
                // Parameters live in the proc body's scope; the body may
                // reference only its parameters and global constants /
                // procedures (thesis-style self-contained contexts).
                scopes.emplace_back();
                for (Declaration::Param &param : decl.params) {
                    Symbol psym;
                    psym.kind = param.isArray
                                    ? Symbol::Kind::Array
                                    : param.isChannel
                                          ? Symbol::Kind::Channel
                                          : Symbol::Kind::Scalar;
                    psym.name = param.name;
                    psym.line = decl.line;
                    psym.isParam = true;
                    psym.paramByValue = param.byValue;
                    param.symbol = table.add(std::move(psym));
                    declare(param.name, param.symbol, decl.line);
                    table.symbol(decl.symbol)
                        .params[static_cast<size_t>(
                            &param - decl.params.data())]
                        .symbol = param.symbol;
                }
                procScopeBase.push_back(scopes.size() - 1);
                resolveProcess(*decl.procBody);
                procScopeBase.pop_back();
                scopes.pop_back();
            }
        }
    }

    void
    resolveExpr(Expr &expr)
    {
        switch (expr.kind) {
          case Expr::Kind::Number:
          case Expr::Kind::BoolLit:
            return;
          case Expr::Kind::Var: {
            expr.symbol = lookup(expr.name, expr.line);
            const Symbol &sym = table.symbol(expr.symbol);
            fatalIf(sym.kind == Symbol::Kind::Procedure, "line ",
                    expr.line, ": procedure '", expr.name,
                    "' used as a value");
            fatalIf(sym.kind == Symbol::Kind::Array, "line ", expr.line,
                    ": array '", expr.name,
                    "' used without a subscript");
            return;
          }
          case Expr::Kind::ArrayRef: {
            expr.symbol = lookup(expr.name, expr.line);
            fatalIf(table.symbol(expr.symbol).kind !=
                        Symbol::Kind::Array,
                    "line ", expr.line, ": '", expr.name,
                    "' is not an array");
            resolveExpr(*expr.args[0]);
            return;
          }
          case Expr::Kind::Unary:
            resolveExpr(*expr.args[0]);
            return;
          case Expr::Kind::Binary:
            resolveExpr(*expr.args[0]);
            resolveExpr(*expr.args[1]);
            return;
        }
    }

    void
    requireChannel(Expr &expr)
    {
        fatalIf(expr.kind != Expr::Kind::Var, "line ", expr.line,
                ": channel operand must be a channel name");
        expr.symbol = lookup(expr.name, expr.line);
        fatalIf(table.symbol(expr.symbol).kind != Symbol::Kind::Channel,
                "line ", expr.line, ": '", expr.name,
                "' is not a channel");
    }

    void
    requireAssignable(Expr &expr)
    {
        resolveExpr(expr);
        if (expr.kind == Expr::Kind::Var) {
            const Symbol &sym = table.symbol(expr.symbol);
            fatalIf(sym.kind == Symbol::Kind::Constant, "line ",
                    expr.line, ": cannot assign to constant '",
                    expr.name, "'");
            fatalIf(sym.kind == Symbol::Kind::Channel, "line ",
                    expr.line, ": cannot assign to channel '",
                    expr.name, "'");
            return;
        }
        fatalIf(expr.kind != Expr::Kind::ArrayRef, "line ", expr.line,
                ": assignment target must be a variable or element");
    }

    void
    resolveProcess(Process &proc)
    {
        switch (proc.kind) {
          case Process::Kind::Seq:
          case Process::Kind::Par: {
            scopes.emplace_back();
            declareAll(proc.decls, /*top_level=*/false);
            if (proc.repl) {
                // Replicated par: the index variable scopes the body.
                Symbol sym;
                sym.kind = Symbol::Kind::Scalar;
                sym.name = proc.repl->var;
                sym.line = proc.line;
                proc.repl->symbol = table.add(std::move(sym));
                declare(proc.repl->var, proc.repl->symbol, proc.line);
                resolveExpr(*proc.repl->base);
                resolveExpr(*proc.repl->count);
            }
            for (ProcessPtr &child : proc.children)
                resolveProcess(*child);
            scopes.pop_back();
            return;
          }
          case Process::Kind::If:
            for (Process::Branch &branch : proc.branches) {
                resolveExpr(*branch.condition);
                resolveProcess(*branch.body);
            }
            return;
          case Process::Kind::While:
            resolveExpr(*proc.condition);
            resolveProcess(*proc.children[0]);
            return;
          case Process::Kind::Assign:
            requireAssignable(*proc.target);
            resolveExpr(*proc.value);
            return;
          case Process::Kind::Input:
            requireChannel(*proc.channel);
            requireAssignable(*proc.target);
            return;
          case Process::Kind::Output:
            requireChannel(*proc.channel);
            resolveExpr(*proc.value);
            return;
          case Process::Kind::Skip:
            return;
          case Process::Kind::Wait:
            resolveExpr(*proc.value);
            return;
          case Process::Kind::Call: {
            proc.calleeSymbol = lookup(proc.callee, proc.line);
            const Symbol &sym = table.symbol(proc.calleeSymbol);
            fatalIf(sym.kind != Symbol::Kind::Procedure, "line ",
                    proc.line, ": '", proc.callee,
                    "' is not a procedure");
            fatalIf(sym.params.size() != proc.args.size(), "line ",
                    proc.line, ": '", proc.callee, "' expects ",
                    sym.params.size(), " arguments, got ",
                    proc.args.size());
            for (std::size_t i = 0; i < proc.args.size(); ++i) {
                Expr &arg = *proc.args[i];
                const Declaration::Param &param = sym.params[i];
                if (param.isChannel) {
                    fatalIf(arg.kind != Expr::Kind::Var, "line ",
                            arg.line,
                            ": channel argument must be a channel "
                            "name");
                    arg.symbol = lookup(arg.name, arg.line);
                    fatalIf(table.symbol(arg.symbol).kind !=
                                Symbol::Kind::Channel,
                            "line ", arg.line, ": '", arg.name,
                            "' is not a channel");
                } else if (param.isArray) {
                    // Array argument: pass the bare array name.
                    fatalIf(arg.kind != Expr::Kind::Var &&
                                arg.kind != Expr::Kind::ArrayRef,
                            "line ", arg.line,
                            ": array argument must be an array name");
                    arg.symbol = lookup(arg.name, arg.line);
                    fatalIf(table.symbol(arg.symbol).kind !=
                                Symbol::Kind::Array,
                            "line ", arg.line, ": '", arg.name,
                            "' is not an array");
                    arg.kind = Expr::Kind::Var;  // base-address value
                } else if (!param.byValue) {
                    // var scalar parameter: needs an assignable scalar.
                    fatalIf(arg.kind != Expr::Kind::Var, "line ",
                            arg.line,
                            ": var argument must be a scalar variable");
                    requireAssignable(arg);
                } else {
                    resolveExpr(arg);
                }
            }
            return;
          }
        }
    }

    Program &program_;
    SymbolTable table;
    std::vector<Scope> scopes;
    std::vector<std::size_t> procScopeBase;
};

} // namespace

SymbolTable
analyze(Program &program)
{
    return Sema(program).run();
}

} // namespace qm::occam
