#include "occam/parser.hpp"

#include "occam/lexer.hpp"
#include "support/diagnostics.hpp"

namespace qm::occam {

namespace {

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : toks(std::move(tokens)) {}

    Program
    parseProgram()
    {
        Program program;
        auto block = parseBlock();
        program.decls = std::move(block->decls);
        if (block->children.size() == 1) {
            program.main = std::move(block->children[0]);
        } else {
            program.main = std::move(block);
        }
        expect(Tok::EndOfFile);
        return program;
    }

  private:
    const Token &peek(int ahead = 0) const
    {
        std::size_t i = pos + static_cast<std::size_t>(ahead);
        return i < toks.size() ? toks[i] : toks.back();
    }

    const Token &take() { return toks[pos++]; }

    bool
    accept(Tok kind)
    {
        if (peek().kind == kind) {
            ++pos;
            return true;
        }
        return false;
    }

    const Token &
    expect(Tok kind)
    {
        fatalIf(peek().kind != kind, "line ", peek().line, ":",
                peek().col, ": expected ", tokName(kind), ", found ",
                tokName(peek().kind));
        return take();
    }

    void
    endLine()
    {
        expect(Tok::Newline);
    }

    // ----- Expressions ---------------------------------------------------

    ExprPtr
    parseExpr()
    {
        ExprPtr lhs = parseAndTerm();
        while (peek().kind == Tok::KwOr) {
            int line = take().line;
            lhs = makeBinary("or", std::move(lhs), parseAndTerm(), line);
        }
        return lhs;
    }

    ExprPtr
    parseAndTerm()
    {
        ExprPtr lhs = parseNotTerm();
        while (peek().kind == Tok::KwAnd) {
            int line = take().line;
            lhs = makeBinary("and", std::move(lhs), parseNotTerm(), line);
        }
        return lhs;
    }

    ExprPtr
    parseNotTerm()
    {
        if (peek().kind == Tok::KwNot) {
            int line = take().line;
            return makeUnary("not", parseNotTerm(), line);
        }
        return parseRelation();
    }

    ExprPtr
    parseRelation()
    {
        ExprPtr lhs = parseSum();
        std::string op;
        switch (peek().kind) {
          case Tok::Eq: op = "eq"; break;
          case Tok::Neq: op = "ne"; break;
          case Tok::Lt: op = "lt"; break;
          case Tok::Gt: op = "gt"; break;
          case Tok::Le: op = "le"; break;
          case Tok::Ge: op = "ge"; break;
          default: return lhs;
        }
        int line = take().line;
        return makeBinary(op, std::move(lhs), parseSum(), line);
    }

    ExprPtr
    parseSum()
    {
        ExprPtr lhs = parseTerm();
        for (;;) {
            if (peek().kind == Tok::Plus) {
                int line = take().line;
                lhs = makeBinary("+", std::move(lhs), parseTerm(), line);
            } else if (peek().kind == Tok::Minus) {
                int line = take().line;
                lhs = makeBinary("-", std::move(lhs), parseTerm(), line);
            } else {
                return lhs;
            }
        }
    }

    ExprPtr
    parseTerm()
    {
        ExprPtr lhs = parseFactor();
        for (;;) {
            std::string op;
            if (peek().kind == Tok::Star)
                op = "*";
            else if (peek().kind == Tok::Slash)
                op = "/";
            else if (peek().kind == Tok::Backslash)
                op = "\\";
            else
                return lhs;
            int line = take().line;
            lhs = makeBinary(op, std::move(lhs), parseFactor(), line);
        }
    }

    ExprPtr
    parseFactor()
    {
        const Token &tok = peek();
        switch (tok.kind) {
          case Tok::Minus: {
            int line = take().line;
            return makeUnary("neg", parseFactor(), line);
          }
          case Tok::Number: {
            take();
            return makeNumber(tok.value, tok.line);
          }
          case Tok::KwTrue: {
            take();
            auto e = makeNumber(-1, tok.line);  // all-ones Boolean
            e->kind = Expr::Kind::BoolLit;
            return e;
          }
          case Tok::KwFalse: {
            take();
            auto e = makeNumber(0, tok.line);
            e->kind = Expr::Kind::BoolLit;
            return e;
          }
          case Tok::LParen: {
            take();
            ExprPtr inner = parseExpr();
            expect(Tok::RParen);
            return inner;
          }
          case Tok::Name: {
            take();
            if (accept(Tok::LBracket)) {
                ExprPtr index = parseExpr();
                expect(Tok::RBracket);
                auto e = std::make_unique<Expr>();
                e->kind = Expr::Kind::ArrayRef;
                e->name = tok.text;
                e->line = tok.line;
                e->args.push_back(std::move(index));
                return e;
            }
            return makeVar(tok.text, tok.line);
          }
          default:
            fatal("line ", tok.line, ":", tok.col,
                  ": expected expression, found ", tokName(tok.kind));
        }
    }

    // ----- Declarations --------------------------------------------------

    bool
    atDeclaration() const
    {
        switch (peek().kind) {
          case Tok::KwVar:
          case Tok::KwChan:
          case Tok::KwDef:
          case Tok::KwProc:
            return true;
          default:
            return false;
        }
    }

    void
    parseDeclaration(std::vector<Declaration> &decls)
    {
        const Token &kw = take();
        switch (kw.kind) {
          case Tok::KwVar:
          case Tok::KwChan: {
            do {
                const Token &name = expect(Tok::Name);
                Declaration d;
                d.name = name.text;
                d.line = name.line;
                if (kw.kind == Tok::KwChan) {
                    d.kind = Declaration::Kind::Channel;
                } else if (accept(Tok::LBracket)) {
                    d.kind = Declaration::Kind::Array;
                    d.arraySize = parseExpr();
                    expect(Tok::RBracket);
                } else {
                    d.kind = Declaration::Kind::Scalar;
                }
                decls.push_back(std::move(d));
            } while (accept(Tok::Comma));
            accept(Tok::Colon);
            endLine();
            return;
          }
          case Tok::KwDef: {
            do {
                const Token &name = expect(Tok::Name);
                expect(Tok::Eq);
                Declaration d;
                d.kind = Declaration::Kind::Constant;
                d.name = name.text;
                d.line = name.line;
                d.constValue = parseExpr();
                decls.push_back(std::move(d));
            } while (accept(Tok::Comma));
            accept(Tok::Colon);
            endLine();
            return;
          }
          case Tok::KwProc: {
            const Token &name = expect(Tok::Name);
            Declaration d;
            d.kind = Declaration::Kind::Procedure;
            d.name = name.text;
            d.line = name.line;
            expect(Tok::LParen);
            if (peek().kind != Tok::RParen) {
                do {
                    Declaration::Param param;
                    if (accept(Tok::KwValue))
                        param.byValue = true;
                    else if (accept(Tok::KwChan))
                        param.isChannel = true;
                    else
                        accept(Tok::KwVar);
                    param.name = expect(Tok::Name).text;
                    if (accept(Tok::LBracket)) {
                        expect(Tok::RBracket);
                        param.isArray = true;
                        fatalIf(param.byValue, "line ", name.line, ":",
                                name.col,
                                ": array parameters must be var");
                    }
                    d.params.push_back(std::move(param));
                } while (accept(Tok::Comma));
            }
            expect(Tok::RParen);
            accept(Tok::Eq);
            endLine();
            expect(Tok::Indent);
            d.procBody = parseBlock();
            expect(Tok::Dedent);
            // Optional terminating ':' line.
            if (peek().kind == Tok::Colon) {
                take();
                endLine();
            }
            decls.push_back(std::move(d));
            return;
          }
          default:
            panic("not a declaration keyword");
        }
    }

    // ----- Processes -----------------------------------------------------

    /** Parse a block of declarations and processes as an implicit seq. */
    ProcessPtr
    parseBlock()
    {
        auto block = std::make_unique<Process>();
        block->kind = Process::Kind::Seq;
        block->line = peek().line;
        while (peek().kind != Tok::Dedent &&
               peek().kind != Tok::EndOfFile) {
            if (atDeclaration())
                parseDeclaration(block->decls);
            else
                block->children.push_back(parseProcess());
        }
        return block;
    }

    std::optional<Replicator>
    parseReplicator()
    {
        if (peek().kind != Tok::Name || peek(1).kind != Tok::Eq)
            return std::nullopt;
        Replicator repl;
        repl.var = take().text;
        expect(Tok::Eq);
        expect(Tok::LBracket);
        repl.base = parseExpr();
        expect(Tok::KwFor);
        repl.count = parseExpr();
        expect(Tok::RBracket);
        return repl;
    }

    ProcessPtr
    parseProcess()
    {
        const Token &tok = peek();
        switch (tok.kind) {
          case Tok::KwSeq: {
            take();
            auto repl = parseReplicator();
            endLine();
            expect(Tok::Indent);
            ProcessPtr body = parseBlock();
            expect(Tok::Dedent);
            if (!repl)
                return body;
            return desugarReplicatedSeq(std::move(*repl),
                                        std::move(body), tok.line);
          }
          case Tok::KwPar: {
            take();
            auto repl = parseReplicator();
            endLine();
            expect(Tok::Indent);
            auto par = std::make_unique<Process>();
            par->kind = Process::Kind::Par;
            par->line = tok.line;
            if (repl) {
                // Replicated par: the single child is the body template.
                par->repl = std::move(*repl);
                ProcessPtr body = parseBlock();
                par->decls = std::move(body->decls);
                par->children = std::move(body->children);
            } else {
                // Each child line/construct is one parallel component.
                while (peek().kind != Tok::Dedent) {
                    if (atDeclaration())
                        parseDeclaration(par->decls);
                    else
                        par->children.push_back(parseProcess());
                }
            }
            expect(Tok::Dedent);
            return par;
          }
          case Tok::KwIf: {
            take();
            endLine();
            expect(Tok::Indent);
            auto node = std::make_unique<Process>();
            node->kind = Process::Kind::If;
            node->line = tok.line;
            while (peek().kind != Tok::Dedent) {
                Process::Branch branch;
                branch.condition = parseExpr();
                endLine();
                expect(Tok::Indent);
                branch.body = parseBlock();
                expect(Tok::Dedent);
                node->branches.push_back(std::move(branch));
            }
            expect(Tok::Dedent);
            return node;
          }
          case Tok::KwWhile: {
            take();
            auto node = std::make_unique<Process>();
            node->kind = Process::Kind::While;
            node->line = tok.line;
            node->condition = parseExpr();
            endLine();
            expect(Tok::Indent);
            node->children.push_back(parseBlock());
            expect(Tok::Dedent);
            return node;
          }
          case Tok::KwSkip: {
            take();
            endLine();
            auto node = std::make_unique<Process>();
            node->kind = Process::Kind::Skip;
            node->line = tok.line;
            return node;
          }
          case Tok::KwWait: {
            // "wait now after e" or "wait e".
            take();
            if (accept(Tok::KwNow))
                expect(Tok::KwAfter);
            auto node = std::make_unique<Process>();
            node->kind = Process::Kind::Wait;
            node->line = tok.line;
            node->value = parseExpr();
            endLine();
            return node;
          }
          case Tok::Name:
            return parseNameInitiated();
          default:
            fatal("line ", tok.line, ":", tok.col,
                  ": expected a process, found ", tokName(tok.kind));
        }
    }

    ProcessPtr
    parseNameInitiated()
    {
        const Token &name = take();
        auto node = std::make_unique<Process>();
        node->line = name.line;

        if (accept(Tok::LParen)) {
            node->kind = Process::Kind::Call;
            node->callee = name.text;
            if (peek().kind != Tok::RParen) {
                do {
                    node->args.push_back(parseExpr());
                } while (accept(Tok::Comma));
            }
            expect(Tok::RParen);
            endLine();
            return node;
        }

        // Build the target lvalue (scalar or array element).
        ExprPtr lhs;
        if (accept(Tok::LBracket)) {
            lhs = std::make_unique<Expr>();
            lhs->kind = Expr::Kind::ArrayRef;
            lhs->name = name.text;
            lhs->line = name.line;
            lhs->args.push_back(parseExpr());
            expect(Tok::RBracket);
        } else {
            lhs = makeVar(name.text, name.line);
        }

        if (accept(Tok::Assign)) {
            node->kind = Process::Kind::Assign;
            node->target = std::move(lhs);
            node->value = parseExpr();
            endLine();
            return node;
        }
        if (accept(Tok::Query)) {
            node->kind = Process::Kind::Input;
            node->channel = std::move(lhs);
            // Input target: scalar or array element.
            const Token &dst = expect(Tok::Name);
            if (accept(Tok::LBracket)) {
                auto t = std::make_unique<Expr>();
                t->kind = Expr::Kind::ArrayRef;
                t->name = dst.text;
                t->line = dst.line;
                t->args.push_back(parseExpr());
                expect(Tok::RBracket);
                node->target = std::move(t);
            } else {
                node->target = makeVar(dst.text, dst.line);
            }
            endLine();
            return node;
        }
        if (accept(Tok::Bang)) {
            node->kind = Process::Kind::Output;
            node->channel = std::move(lhs);
            node->value = parseExpr();
            endLine();
            return node;
        }
        fatal("line ", name.line, ":", name.col,
              ": expected ':=', '?', '!', or '(' after '", name.text,
              "'");
    }

    /**
     * seq i = [base for count] P  desugars to
     *   var i, $end:
     *   seq
     *     i := base
     *     $end := base + count
     *     while i < $end
     *       seq
     *         P
     *         i := i + 1
     */
    ProcessPtr
    desugarReplicatedSeq(Replicator repl, ProcessPtr body, int line)
    {
        std::string end_name = "$rep" + std::to_string(replCounter++);

        auto outer = std::make_unique<Process>();
        outer->kind = Process::Kind::Seq;
        outer->line = line;
        Declaration di;
        di.kind = Declaration::Kind::Scalar;
        di.name = repl.var;
        di.line = line;
        outer->decls.push_back(std::move(di));
        Declaration de;
        de.kind = Declaration::Kind::Scalar;
        de.name = end_name;
        de.line = line;
        outer->decls.push_back(std::move(de));

        auto assign_i = std::make_unique<Process>();
        assign_i->kind = Process::Kind::Assign;
        assign_i->line = line;
        assign_i->target = makeVar(repl.var, line);
        assign_i->value = repl.base->clone();

        auto assign_end = std::make_unique<Process>();
        assign_end->kind = Process::Kind::Assign;
        assign_end->line = line;
        assign_end->target = makeVar(end_name, line);
        assign_end->value = makeBinary("+", repl.base->clone(),
                                       repl.count->clone(), line);

        auto inc = std::make_unique<Process>();
        inc->kind = Process::Kind::Assign;
        inc->line = line;
        inc->target = makeVar(repl.var, line);
        inc->value = makeBinary("+", makeVar(repl.var, line),
                                makeNumber(1, line), line);

        auto loop_body = std::make_unique<Process>();
        loop_body->kind = Process::Kind::Seq;
        loop_body->line = line;
        loop_body->children.push_back(std::move(body));
        loop_body->children.push_back(std::move(inc));

        auto loop = std::make_unique<Process>();
        loop->kind = Process::Kind::While;
        loop->line = line;
        loop->condition = makeBinary("lt", makeVar(repl.var, line),
                                     makeVar(end_name, line), line);
        loop->children.push_back(std::move(loop_body));

        outer->children.push_back(std::move(assign_i));
        outer->children.push_back(std::move(assign_end));
        outer->children.push_back(std::move(loop));
        return outer;
    }

    std::vector<Token> toks;
    std::size_t pos = 0;
    int replCounter = 0;
};

} // namespace

Program
parse(const std::string &source)
{
    Parser parser(lex(source));
    return parser.parseProgram();
}

} // namespace qm::occam
