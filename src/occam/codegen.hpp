/**
 * @file
 * Queue-machine code generation (thesis sections 4.7 and 5.3).
 *
 * Each context graph is linearized by the Fig 4.20 ready-list scheduler
 * under the thesis actor priorities, then queue positions are assigned
 * by the Chapter 3 valid-sequence construction: instruction i's operands
 * occupy positions front_i .. front_i + arity - 1, and each producer
 * stores its result at every consumer's operand position, encoded as an
 * offset from the post-consume queue front. Offsets below 16 ride the
 * two destination-register fields; further copies chain dup1/dup2
 * instructions under the continue flag. Constants and code addresses
 * fold into immediate source operands and occupy no queue positions.
 */
#pragma once

#include <string>

#include "dfg/scheduler.hpp"
#include "occam/graph_builder.hpp"

namespace qm::occam {

/** Code-generation switches. */
struct CodegenOptions
{
    /**
     * Use the thesis actor-priority heuristic; false falls back to
     * readiness (FIFO) order - the Table 6.6 scheduling ablation.
     */
    bool priorityScheduling = true;
    /** Operand-queue page size the contexts will run with. */
    int pageWords = 256;
};

/** Generate assembly text for every context of @p program. */
std::string generateAssembly(const ContextProgram &program,
                             const CodegenOptions &options = {});

} // namespace qm::occam
