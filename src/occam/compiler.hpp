/**
 * @file
 * OCCAM-to-queue-machine compiler driver (thesis section 4.8).
 *
 * Mirrors the thesis software-system pipeline (Fig 4.21): scanparse ->
 * semantic -> dataflow (IFT) -> grapher -> sequencer -> coder ->
 * assembler, producing object code runnable on the multiprocessor
 * simulator plus the data-segment map for result inspection.
 */
#pragma once

#include <map>
#include <string>

#include "isa/assembler.hpp"
#include "occam/graph_builder.hpp"

namespace qm::occam {

/** All compiler switches (the Table 6.6 optimization knobs). */
struct CompileOptions
{
    /** Live-value analysis: only live values cross context splices. */
    bool liveAnalysis = true;
    /** pi_I input sequencing of splice transfers (section 4.5). */
    bool inputSequencing = true;
    /** Actor-priority instruction scheduling (Fig 4.20 heuristic). */
    bool priorityScheduling = true;
    /** Operand-queue page size contexts run with. */
    int pageWords = 256;
    /** Keep the per-context DOT dumps (draw/drawpic role). */
    bool emitDot = false;
};

/** A fully compiled program. */
struct CompiledProgram
{
    std::string assembly;
    isa::ObjectCode object;
    std::string mainLabel;
    /** Top-level array name -> static data address. */
    std::map<std::string, isa::Addr> dataMap;
    /** Graphviz DOT per context label (when emitDot). */
    std::map<std::string, std::string> dot;
    /** Number of context graphs produced. */
    int contextCount = 0;

    isa::Addr
    arrayAddress(const std::string &name) const;
};

/** Compile OCCAM source end to end. Throws FatalError on bad input. */
CompiledProgram compileOccam(const std::string &source,
                             const CompileOptions &options = {});

} // namespace qm::occam
