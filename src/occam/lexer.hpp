/**
 * @file
 * Lexer for the OCCAM subset (thesis Chapter 4).
 *
 * OCCAM structure is indentation-based: the children of a constructor
 * (seq/par/if/while/proc) are indented two spaces beyond it. The lexer
 * turns leading white space into Indent/Dedent tokens, Python-style,
 * and "--" comments are stripped to end of line.
 */
#pragma once

#include <string>
#include <vector>

namespace qm::occam {

enum class Tok
{
    // Structure.
    Newline,
    Indent,
    Dedent,
    EndOfFile,
    // Literals and names.
    Number,
    Name,
    // Keywords.
    KwSeq, KwPar, KwIf, KwWhile, KwVar, KwChan, KwDef, KwProc,
    KwSkip, KwWait, KwValue, KwFor, KwTrue, KwFalse, KwAnd, KwOr,
    KwNot, KwNow, KwAfter,
    // Punctuation and operators.
    Assign,      // :=
    Query,       // ?
    Bang,        // !
    Colon,       // :
    Comma,       // ,
    LParen, RParen, LBracket, RBracket,
    Eq,          // =
    Neq,         // <>
    Lt, Gt, Le, Ge,
    Plus, Minus, Star, Slash, Backslash,
};

struct Token
{
    Tok kind;
    std::string text;  ///< Name or number spelling.
    long value = 0;    ///< Numeric value for Number.
    int line = 0;
    int col = 0;       ///< 1-based column of the token's first char.
};

/** Tokenize @p source; throws FatalError with line:col on errors. */
std::vector<Token> lex(const std::string &source);

/** Human-readable token kind (for diagnostics). */
std::string tokName(Tok kind);

} // namespace qm::occam
