#include "support/stats.hpp"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/format.hpp"

namespace qm {

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the requested percentile, 1-based (nearest-rank style,
    // then interpolated inside the covering bucket).
    double rank = p / 100.0 * static_cast<double>(count_);
    if (rank < 1.0)
        rank = 1.0;
    std::uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
        std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(i)];
        if (in_bucket == 0)
            continue;
        if (static_cast<double>(seen + in_bucket) < rank) {
            seen += in_bucket;
            continue;
        }
        // Interpolate within [lo, hi), clamped to the exact envelope
        // (the overflow bucket in particular has no usable hi).
        double lo = static_cast<double>(
            std::max(bucketLow(i), min_));
        double hi = static_cast<double>(
            std::min<std::uint64_t>(bucketHigh(i), max_ + 1));
        if (hi <= lo)
            hi = lo + 1.0;
        double into =
            (rank - static_cast<double>(seen)) /
            static_cast<double>(in_bucket);
        double value = lo + (hi - lo) * into;
        return std::clamp(value, static_cast<double>(min_),
                          static_cast<double>(max_));
    }
    return static_cast<double>(max_);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    if (count_ == 0 || other.max_ > max_)
        max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    for (int i = 0; i < kNumBuckets; ++i)
        buckets_[static_cast<std::size_t>(i)] +=
            other.buckets_[static_cast<std::size_t>(i)];
}

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    scalars_[name] = value;
}

void
StatSet::sample(const std::string &name, double value)
{
    distributions_[name].sample(value);
}

void
StatSet::record(const std::string &name, std::uint64_t value)
{
    histograms_[name].sample(value);
}

std::uint64_t
StatSet::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

bool
StatSet::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

bool
StatSet::hasHistogram(const std::string &name) const
{
    return histograms_.count(name) != 0;
}

double
StatSet::scalar(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

const Distribution &
StatSet::distribution(const std::string &name) const
{
    auto it = distributions_.find(name);
    panicIf(it == distributions_.end(), "unknown distribution: ", name);
    return it->second;
}

const Histogram &
StatSet::histogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    panicIf(it == histograms_.end(), "unknown histogram: ", name);
    return it->second;
}

void
StatSet::mergeInto(const StatSet &other, const std::string &prefix)
{
    for (const auto &[name, value] : other.counters_)
        counters_[prefix + name] += value;
    for (const auto &[name, value] : other.scalars_)
        scalars_[prefix + name] = value;
    for (const auto &[name, dist] : other.distributions_) {
        Distribution &mine = distributions_[prefix + name];
        // Merging loses per-sample detail; fold in the aggregate moments.
        if (dist.count() > 0) {
            mine.sample(dist.min());
            if (dist.count() > 1)
                mine.sample(dist.max());
        }
    }
    for (const auto &[name, hist] : other.histograms_)
        histograms_[prefix + name].merge(hist);
}

void
StatSet::merge(const StatSet &other)
{
    mergeInto(other, "");
}

void
StatSet::mergeScoped(const StatSet &other, const std::string &prefix)
{
    mergeInto(other, prefix);
}

StatScope
StatSet::scoped(std::string prefix)
{
    return StatScope(*this, std::move(prefix));
}

std::string
StatSet::render() const
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    for (const auto &[name, value] : counters_)
        os << name << " " << value << "\n";
    for (const auto &[name, value] : scalars_)
        os << name << " " << fixed(value, 4) << "\n";
    for (const auto &[name, dist] : distributions_) {
        os << name << " count=" << dist.count()
           << " min=" << fixed(dist.min(), 3)
           << " max=" << fixed(dist.max(), 3)
           << " mean=" << fixed(dist.mean(), 3) << "\n";
    }
    for (const auto &[name, hist] : histograms_) {
        os << name << " count=" << hist.count() << " sum=" << hist.sum()
           << " min=" << hist.min() << " max=" << hist.max()
           << " mean=" << fixed(hist.mean(), 3)
           << " p50=" << fixed(hist.percentile(50), 1)
           << " p90=" << fixed(hist.percentile(90), 1)
           << " p99=" << fixed(hist.percentile(99), 1) << "\n";
    }
    return os.str();
}

} // namespace qm
