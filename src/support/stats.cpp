#include "support/stats.hpp"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/format.hpp"

namespace qm {

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the requested percentile, 1-based (nearest-rank style,
    // then interpolated inside the covering bucket).
    double rank = p / 100.0 * static_cast<double>(count_);
    if (rank < 1.0)
        rank = 1.0;
    std::uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
        std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(i)];
        if (in_bucket == 0)
            continue;
        if (static_cast<double>(seen + in_bucket) < rank) {
            seen += in_bucket;
            continue;
        }
        // Interpolate within [lo, hi), clamped to the exact envelope
        // (the overflow bucket in particular has no usable hi). The
        // cap is compared strictly-greater rather than via
        // min(cap, max_ + 1): with max_ == UINT64_MAX the +1 would
        // wrap to 0 and collapse the bucket to [lo, lo+1).
        double lo = static_cast<double>(
            std::max(bucketLow(i), min_));
        std::uint64_t cap = bucketHigh(i);
        double hi = cap > max_ ? static_cast<double>(max_) + 1.0
                               : static_cast<double>(cap);
        if (hi <= lo)
            hi = lo + 1.0;
        double into =
            (rank - static_cast<double>(seen)) /
            static_cast<double>(in_bucket);
        double value = lo + (hi - lo) * into;
        return std::clamp(value, static_cast<double>(min_),
                          static_cast<double>(max_));
    }
    return static_cast<double>(max_);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    if (count_ == 0 || other.max_ > max_)
        max_ = other.max_;
    // Saturate instead of wrapping: a wrapped count would report a
    // near-empty histogram for the fullest one possible, and a wrapped
    // sum a nonsense mean. Saturation keeps both monotone.
    if (__builtin_add_overflow(count_, other.count_, &count_))
        count_ = ~std::uint64_t{0};
    if (__builtin_add_overflow(sum_, other.sum_, &sum_))
        sum_ = ~std::uint64_t{0};
    for (int i = 0; i < kNumBuckets; ++i) {
        std::uint64_t &mine = buckets_[static_cast<std::size_t>(i)];
        if (__builtin_add_overflow(
                mine, other.buckets_[static_cast<std::size_t>(i)],
                &mine))
            mine = ~std::uint64_t{0};
    }
}

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    scalars_[name] = value;
}

void
StatSet::sample(const std::string &name, double value)
{
    distributions_[name].sample(value);
}

void
StatSet::record(const std::string &name, std::uint64_t value)
{
    histograms_[name].sample(value);
}

std::uint64_t
StatSet::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

bool
StatSet::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

bool
StatSet::hasHistogram(const std::string &name) const
{
    return histograms_.count(name) != 0;
}

double
StatSet::scalar(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

const Distribution &
StatSet::distribution(const std::string &name) const
{
    auto it = distributions_.find(name);
    panicIf(it == distributions_.end(), "unknown distribution: ", name);
    return it->second;
}

const Histogram &
StatSet::histogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    panicIf(it == histograms_.end(), "unknown histogram: ", name);
    return it->second;
}

void
StatSet::mergeInto(const StatSet &other, const std::string &prefix)
{
    for (const auto &[name, value] : other.counters_)
        counters_[prefix + name] += value;
    for (const auto &[name, value] : other.scalars_)
        scalars_[prefix + name] = value;
    for (const auto &[name, dist] : other.distributions_) {
        Distribution &mine = distributions_[prefix + name];
        // Merging loses per-sample detail; fold in the aggregate moments.
        if (dist.count() > 0) {
            mine.sample(dist.min());
            if (dist.count() > 1)
                mine.sample(dist.max());
        }
    }
    for (const auto &[name, hist] : other.histograms_)
        histograms_[prefix + name].merge(hist);
}

void
StatSet::merge(const StatSet &other)
{
    mergeInto(other, "");
}

void
StatSet::mergeScoped(const StatSet &other, const std::string &prefix)
{
    mergeInto(other, prefix);
}

StatScope
StatSet::scoped(std::string prefix)
{
    return StatScope(*this, std::move(prefix));
}

std::string
StatSet::render() const
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    for (const auto &[name, value] : counters_)
        os << name << " " << value << "\n";
    for (const auto &[name, value] : scalars_)
        os << name << " " << fixed(value, 4) << "\n";
    for (const auto &[name, dist] : distributions_) {
        os << name << " count=" << dist.count()
           << " min=" << fixed(dist.min(), 3)
           << " max=" << fixed(dist.max(), 3)
           << " mean=" << fixed(dist.mean(), 3) << "\n";
    }
    for (const auto &[name, hist] : histograms_) {
        os << name << " count=" << hist.count() << " sum=" << hist.sum()
           << " min=" << hist.min() << " max=" << hist.max()
           << " mean=" << fixed(hist.mean(), 3)
           << " p50=" << fixed(hist.percentile(50), 1)
           << " p90=" << fixed(hist.percentile(90), 1)
           << " p99=" << fixed(hist.percentile(99), 1) << "\n";
    }
    return os.str();
}

namespace {

/** "pe0.ready_wait" -> "pe0_ready_wait" (exposition-safe name). */
std::string
promName(const std::string &prefix, const std::string &name)
{
    std::string out = prefix + "_" + name;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        if (!ok)
            c = '_';
    }
    return out;
}

} // namespace

std::string
renderPrometheus(const StatSet &stats, const std::string &prefix)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    for (const auto &[name, value] : stats.counterMap()) {
        std::string metric = promName(prefix, name);
        os << "# TYPE " << metric << " counter\n"
           << metric << " " << value << "\n";
    }
    for (const auto &[name, value] : stats.scalarMap()) {
        std::string metric = promName(prefix, name);
        os << "# TYPE " << metric << " gauge\n"
           << metric << " " << fixed(value, 6) << "\n";
    }
    for (const auto &[name, dist] : stats.distributionMap()) {
        std::string metric = promName(prefix, name);
        os << "# TYPE " << metric << " summary\n"
           << metric << "_count " << dist.count() << "\n"
           << metric << "_sum " << fixed(dist.sum(), 6) << "\n"
           << "# TYPE " << metric << "_min gauge\n"
           << metric << "_min " << fixed(dist.min(), 6) << "\n"
           << "# TYPE " << metric << "_max gauge\n"
           << metric << "_max " << fixed(dist.max(), 6) << "\n";
    }
    for (const auto &[name, hist] : stats.histogramMap()) {
        std::string metric = promName(prefix, name);
        os << "# TYPE " << metric << " histogram\n";
        // Cumulative le buckets up to the last populated one; the
        // mandatory +Inf bucket then carries the total count, so the
        // empty log2 tail never bloats the exposition.
        int last = -1;
        for (int i = 0; i < Histogram::kNumBuckets; ++i)
            if (hist.bucketCount(i) > 0)
                last = i;
        std::uint64_t cumulative = 0;
        for (int i = 0; i <= last && i < Histogram::kNumBuckets - 1;
             ++i) {
            cumulative += hist.bucketCount(i);
            // Bucket i covers [2^(i-1), 2^i) over integers, so its
            // inclusive Prometheus upper bound is 2^i - 1 (bucket 0
            // holds exact zeros: le="0").
            os << metric << "_bucket{le=\""
               << (Histogram::bucketHigh(i) - 1) << "\"} " << cumulative
               << "\n";
        }
        os << metric << "_bucket{le=\"+Inf\"} " << hist.count() << "\n"
           << metric << "_sum " << hist.sum() << "\n"
           << metric << "_count " << hist.count() << "\n";
    }
    return os.str();
}

} // namespace qm
