#include "support/stats.hpp"

#include <sstream>

#include "support/diagnostics.hpp"
#include "support/format.hpp"

namespace qm {

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    counters[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    scalars[name] = value;
}

void
StatSet::sample(const std::string &name, double value)
{
    distributions[name].sample(value);
}

std::uint64_t
StatSet::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

bool
StatSet::hasCounter(const std::string &name) const
{
    return counters.count(name) != 0;
}

double
StatSet::scalar(const std::string &name) const
{
    auto it = scalars.find(name);
    return it == scalars.end() ? 0.0 : it->second;
}

const Distribution &
StatSet::distribution(const std::string &name) const
{
    auto it = distributions.find(name);
    panicIf(it == distributions.end(), "unknown distribution: ", name);
    return it->second;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
    for (const auto &[name, value] : other.scalars)
        scalars[name] = value;
    for (const auto &[name, dist] : other.distributions) {
        Distribution &mine = distributions[name];
        // Merging loses per-sample detail; fold in the aggregate moments.
        if (dist.count() > 0) {
            mine.sample(dist.min());
            if (dist.count() > 1)
                mine.sample(dist.max());
        }
    }
}

std::string
StatSet::render() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters)
        os << name << " " << value << "\n";
    for (const auto &[name, value] : scalars)
        os << name << " " << fixed(value, 4) << "\n";
    for (const auto &[name, dist] : distributions) {
        os << name << " count=" << dist.count() << " min=" << dist.min()
           << " max=" << dist.max() << " mean=" << fixed(dist.mean(), 3)
           << "\n";
    }
    return os.str();
}

} // namespace qm
