#include "support/shutdown.hpp"

#include <csignal>

#include <atomic>

namespace qm::support {

namespace {

std::atomic<int> g_signal{0};
std::atomic<bool> g_installed{false};

extern "C" void
shutdownHandler(int sig)
{
    g_signal.store(sig, std::memory_order_relaxed);
    // One chance to wind down cleanly; the next signal kills us.
    std::signal(sig, SIG_DFL);
}

} // namespace

void
installShutdownSignals()
{
    if (g_installed.exchange(true))
        return;
    std::signal(SIGINT, shutdownHandler);
    std::signal(SIGTERM, shutdownHandler);
}

bool
shutdownSignalsInstalled()
{
    return g_installed.load(std::memory_order_relaxed);
}

bool
shutdownRequested()
{
    return g_signal.load(std::memory_order_relaxed) != 0;
}

int
shutdownSignal()
{
    return g_signal.load(std::memory_order_relaxed);
}

const char *
shutdownSignalName()
{
    switch (shutdownSignal()) {
    case SIGINT: return "SIGINT";
    case SIGTERM: return "SIGTERM";
    case 0: return "none";
    default: return "host";
    }
}

void
requestShutdown()
{
    g_signal.store(-1, std::memory_order_relaxed);
}

void
clearShutdown()
{
    g_signal.store(0, std::memory_order_relaxed);
}

} // namespace qm::support
