/**
 * @file
 * Deterministic pseudo-random number generation for tests and workload
 * generators. SplitMix64 keeps runs reproducible across platforms without
 * depending on the (implementation-defined) std distributions.
 */
#pragma once

#include <cstdint>

namespace qm {

/** SplitMix64 generator: tiny, fast, and fully deterministic. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform signed value in [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /**
     * Raw generator state, for durable checkpoints: persisting and
     * restoring the state resumes the stream exactly where it left
     * off, which is what makes fault-injected runs byte-identical
     * across a save/kill/resume boundary.
     */
    std::uint64_t rawState() const { return state; }
    void setRawState(std::uint64_t s) { state = s; }

  private:
    std::uint64_t state;
};

} // namespace qm
