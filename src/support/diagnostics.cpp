#include "support/diagnostics.hpp"

namespace qm {

void
panicImpl(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
fatalImpl(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

} // namespace qm
