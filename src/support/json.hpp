/**
 * @file
 * Minimal streaming JSON writer used by the trace exporter and the
 * machine-readable bench reports. Deliberately tiny: objects, arrays,
 * strings (escaped), integers, and doubles, written to any ostream.
 * The writer inserts commas automatically; callers just nest
 * begin/end and key/value calls.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "support/format.hpp"

namespace qm {

/** Escape @p text for use inside a JSON string literal. */
inline std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                constexpr const char *hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xF];
                out += hex[c & 0xF];
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Comma-managing writer for nested JSON objects and arrays. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os)
    {
        // Integers stream through os_ directly; pin the classic locale
        // so no grouping separators can corrupt the document.
        os_.imbue(std::locale::classic());
    }

    JsonWriter &
    beginObject()
    {
        separate();
        os_ << "{";
        stack_.push_back(false);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        stack_.pop_back();
        os_ << "}";
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        separate();
        os_ << "[";
        stack_.push_back(false);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        stack_.pop_back();
        os_ << "]";
        return *this;
    }

    /** Write an object key; the next value call supplies its value. */
    JsonWriter &
    key(std::string_view name)
    {
        separate();
        os_ << '"' << jsonEscape(name) << "\":";
        pendingValue_ = true;
        return *this;
    }

    JsonWriter &
    value(std::string_view text)
    {
        separate();
        os_ << '"' << jsonEscape(text) << '"';
        return *this;
    }

    JsonWriter &value(const char *text)
    {
        return value(std::string_view(text));
    }

    JsonWriter &
    value(double number)
    {
        separate();
        // JSON has no nan/inf literals; streaming them as bare tokens
        // (what operator<< produces) makes the whole document invalid.
        if (std::isfinite(number))
            os_ << fixed(number, 6);
        else
            os_ << "null";
        return *this;
    }

    JsonWriter &
    value(bool flag)
    {
        separate();
        os_ << (flag ? "true" : "false");
        return *this;
    }

    template <typename Int>
        requires std::is_integral_v<Int>
    JsonWriter &
    value(Int number)
    {
        separate();
        os_ << number;
        return *this;
    }

  private:
    /** Emit a comma between siblings; never before a pending value. */
    void
    separate()
    {
        if (pendingValue_) {
            pendingValue_ = false;
            return;
        }
        if (!stack_.empty()) {
            if (stack_.back())
                os_ << ",";
            stack_.back() = true;
        }
    }

    std::ostream &os_;
    std::vector<bool> stack_;  ///< Per-level "wrote a sibling already".
    bool pendingValue_ = false;
};

} // namespace qm
