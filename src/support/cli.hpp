/**
 * @file
 * Tiny command-line parsing helpers shared by occamc and the bench
 * drivers. std::stoi on user input throws std::invalid_argument /
 * std::out_of_range, which surfaces as an uncaught-exception crash in a
 * CLI; these helpers validate and report through the usual FatalError
 * channel instead.
 */
#pragma once

#include <cerrno>
#include <cstdlib>
#include <optional>
#include <string>

#include "support/diagnostics.hpp"

namespace qm {

/**
 * Parse @p text as a base-10 integer. Returns nullopt when the text is
 * empty, is not entirely a number, or does not fit in a long - never
 * throws. The building block behind parseIntArg for callers that want
 * to handle malformed input themselves (e.g. tolerant trace loaders).
 */
inline std::optional<long>
tryParseInt(const std::string &text)
{
    const char *begin = text.c_str();
    char *end = nullptr;
    errno = 0;
    long value = std::strtol(begin, &end, 10);
    if (end == begin || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    return value;
}

/**
 * Parse @p text as a base-10 integer in [@p min, @p max]. Throws
 * FatalError naming @p flag when the text is not a number, has
 * trailing garbage, or is out of range.
 */
inline long
parseIntArg(const std::string &text, const std::string &flag,
            long min, long max)
{
    const char *begin = text.c_str();
    char *end = nullptr;
    errno = 0;
    long value = std::strtol(begin, &end, 10);
    fatalIf(end == begin || *end != '\0',
            flag, " expects an integer, got '", text, "'");
    fatalIf(errno == ERANGE || value < min || value > max,
            flag, " must be in [", min, ", ", max, "], got '", text,
            "'");
    return value;
}

/** Parse a strictly positive integer argument (e.g. --pes, --jobs). */
inline int
parsePositiveIntArg(const std::string &text, const std::string &flag,
                    long max = 1 << 20)
{
    return static_cast<int>(parseIntArg(text, flag, 1, max));
}

/**
 * Parse @p text as a non-negative decimal number (tolerance flags).
 * Throws FatalError naming @p flag on garbage or a negative value.
 */
inline double
parseNonNegativeDoubleArg(const std::string &text,
                          const std::string &flag)
{
    const char *begin = text.c_str();
    char *end = nullptr;
    errno = 0;
    double value = std::strtod(begin, &end);
    fatalIf(end == begin || *end != '\0' || errno == ERANGE,
            flag, " expects a number, got '", text, "'");
    fatalIf(value < 0.0, flag, " must be >= 0, got '", text, "'");
    return value;
}

} // namespace qm
