/**
 * @file
 * Cooperative shutdown flag for SIGINT/SIGTERM.
 *
 * Long-running drivers (occamc, the sweep benches) install the handler
 * once at startup; the handler only sets an async-signal-safe flag.
 * The simulation loops and the sweep runner poll the flag at safe
 * boundaries and wind down cleanly - flushing the sweep journal,
 * metrics, and trace output that is already complete - instead of
 * dying mid-write. A second signal falls through to the default
 * disposition, so a wedged process can still be killed interactively.
 */
#pragma once

namespace qm::support {

/**
 * Install the SIGINT/SIGTERM flag handler. Idempotent. After the
 * first signal the handlers reset to SIG_DFL, so repeating the signal
 * terminates immediately.
 */
void installShutdownSignals();

/** Handlers were installed in this process. */
bool shutdownSignalsInstalled();

/** A shutdown signal has been received (or requested by a test). */
bool shutdownRequested();

/** Signal number that triggered the shutdown (0 = none). */
int shutdownSignal();

/** Short name for the shutdown cause ("SIGINT", "SIGTERM", "host"). */
const char *shutdownSignalName();

/** Test hook: raise the flag without a signal. */
void requestShutdown();

/** Test hook: clear the flag (does not reinstall handlers). */
void clearShutdown();

} // namespace qm::support
