/**
 * @file
 * Fixed-size thread pool for fanning independent simulator runs across
 * the host's cores (the Chapter-6 sweeps are a grid of independent
 * simulations - see sim::runAll).
 *
 * The pool is deliberately simple: one locked task queue drained by N
 * worker threads. Simulated runs take milliseconds to minutes each, so
 * queue contention is irrelevant next to task cost; what matters is
 * that exceptions thrown inside tasks are captured and rethrown to the
 * caller (wait()), and that the pool joins its workers on destruction
 * even when a task failed.
 *
 * parallelFor() is the intended entry point for callers: it executes
 * fn(0..count-1) with results naturally ordered by index, and with
 * jobs <= 1 it degenerates to a plain loop on the calling thread -
 * byte-identical behavior to the pre-pool serial code.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qm {

/** N worker threads draining one task queue; join-on-destroy. */
class ThreadPool
{
  public:
    /** Start @p workers threads (0 selects defaultWorkers()). */
    explicit ThreadPool(unsigned workers = 0);

    /** Drains nothing: pending tasks are discarded, workers joined. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; it may start before submit returns. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow the
     * first exception any task raised (later ones are dropped).
     */
    void wait();

    unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

    /** Hardware concurrency, never less than 1. */
    static unsigned defaultWorkers();

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::size_t unfinished_ = 0;  ///< Queued + currently running tasks.
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Persistent gang of workers for fine-grained fork/join rounds (the
 * PDES window scheduler runs one round per simulation window, often
 * only a handful of simulated cycles long, so per-round thread or
 * task-queue churn would dwarf the work). run(fn) invokes
 * fn(0..workers-1) - worker 0 on the calling thread, the rest on the
 * gang's persistent threads - and returns once every invocation has
 * finished. Workers spin briefly between rounds before falling back to
 * a condition variable, so back-to-back rounds cost two atomic
 * round-trips, not a futex wake.
 *
 * One outstanding round at a time; run() is not reentrant and must
 * always be called from the same (owning) thread's context at a time.
 * The first exception thrown by any fn is rethrown from run() after
 * the round completes.
 */
class WorkerGang
{
  public:
    /** Start @p workers - 1 gang threads (workers >= 1). */
    explicit WorkerGang(unsigned workers);

    ~WorkerGang();

    WorkerGang(const WorkerGang &) = delete;
    WorkerGang &operator=(const WorkerGang &) = delete;

    unsigned workers() const { return workers_; }

    /** One fork/join round: fn(w) for every worker index w. */
    void run(const std::function<void(unsigned)> &fn);

  private:
    void gangLoop(unsigned index);

    unsigned workers_;
    int spinBudget_;  ///< Fork-barrier spin loads before cv sleep.
    std::vector<std::thread> threads_;
    const std::function<void(unsigned)> *fn_ = nullptr;
    std::atomic<std::uint64_t> epoch_{0};  ///< Bumped to start a round.
    std::atomic<unsigned> done_{0};        ///< Gang members finished.
    std::atomic<unsigned> sleepers_{0};    ///< Members in cv wait.
    std::atomic<bool> stopping_{false};
    std::mutex mutex_;
    std::condition_variable roundStart_;
    std::mutex errorMutex_;
    std::exception_ptr firstError_;
};

/**
 * Run fn(i) for every i in [0, count) on up to @p jobs threads.
 * With jobs <= 1 (or count <= 1) the loop runs inline on the calling
 * thread in index order - exactly the serial behavior. The first
 * exception thrown by any fn is rethrown here after all indices finish
 * or are abandoned.
 */
void parallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)> &fn);

} // namespace qm
