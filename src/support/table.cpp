#include "support/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.hpp"

namespace qm {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    panicIf(row.size() != header_.size(),
            "table row width ", row.size(), " != header width ",
            header_.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ');
            os << (c + 1 == cells.size() ? "" : "  ");
        }
        os << "\n";
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 == widths.size() ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

} // namespace qm
