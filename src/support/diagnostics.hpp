/**
 * @file
 * Error reporting facilities for the queue-machine system.
 *
 * Follows the gem5 convention: panic() flags an internal invariant
 * violation (a bug in this library); fatal() flags a condition caused by
 * the user of the library (bad program, bad configuration). Both throw
 * typed exceptions rather than aborting so that tests can assert on them.
 */
#pragma once

#include <stdexcept>
#include <string>

#include "support/format.hpp"

namespace qm {

/** Thrown by panic(): an internal invariant of the simulator was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the input (program, configuration) is invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);

/** Report an internal error (a bug in the library itself). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    panicImpl(cat(std::forward<Args>(args)...));
}

/** Report a user-caused error (invalid source program, bad config). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    fatalImpl(cat(std::forward<Args>(args)...));
}

/** panic() unless the invariant holds. */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

/** fatal() if the user-facing condition is violated. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

} // namespace qm
