#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

namespace qm {

unsigned
ThreadPool::defaultWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultWorkers();
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        unfinished_ -= queue_.size();
        queue_.clear();
    }
    workReady_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++unfinished_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return unfinished_ == 0; });
    if (firstError_) {
        std::exception_ptr error = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping, nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--unfinished_ == 0)
                allDone_.notify_all();
        }
    }
}

WorkerGang::WorkerGang(unsigned workers)
    : workers_(workers == 0 ? 1 : workers),
      // Spin only when the host has a core per gang member; on an
      // oversubscribed host a spinning member preempts the very thread
      // it is waiting on, so sleeping immediately is strictly better.
      spinBudget_(std::thread::hardware_concurrency() >= workers_
                      ? (1 << 15)
                      : 1)
{
    threads_.reserve(workers_ - 1);
    for (unsigned i = 1; i < workers_; ++i)
        threads_.emplace_back([this, i] { gangLoop(i); });
}

WorkerGang::~WorkerGang()
{
    stopping_.store(true, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        epoch_.fetch_add(1, std::memory_order_release);
    }
    roundStart_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
WorkerGang::run(const std::function<void(unsigned)> &fn)
{
    if (workers_ == 1) {
        fn(0);
        return;
    }
    fn_ = &fn;
    done_.store(0, std::memory_order_relaxed);
    // The release bump publishes fn_ to every gang thread whose spin
    // loop acquires the new epoch; sleepers additionally need the
    // mutex + notify so the bump cannot slot between their predicate
    // check and the wait.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        epoch_.fetch_add(1, std::memory_order_release);
    }
    if (sleepers_.load(std::memory_order_relaxed) > 0)
        roundStart_.notify_all();
    fn(0);
    // Join barrier: every member's done_ increment (release) happens
    // before we observe the full count (acquire), so all their writes
    // are visible to the caller.
    while (done_.load(std::memory_order_acquire) < workers_ - 1)
        std::this_thread::yield();
    if (firstError_) {
        std::exception_ptr error =
            std::exchange(firstError_, nullptr);
        std::rethrow_exception(error);
    }
}

void
WorkerGang::gangLoop(unsigned index)
{
    std::uint64_t seen = 0;
    for (;;) {
        // Fork barrier: spin for the next epoch (when the host has
        // cores to spare - see spinBudget_), then sleep. A successful
        // spin makes back-to-back rounds cost two atomic round-trips
        // instead of a futex wake.
        std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
        int spins = 0;
        while (epoch == seen && ++spins < spinBudget_)
            epoch = epoch_.load(std::memory_order_acquire);
        if (epoch == seen) {
            std::unique_lock<std::mutex> lock(mutex_);
            sleepers_.fetch_add(1, std::memory_order_relaxed);
            roundStart_.wait(lock, [&] {
                return epoch_.load(std::memory_order_acquire) != seen;
            });
            sleepers_.fetch_sub(1, std::memory_order_relaxed);
            epoch = epoch_.load(std::memory_order_acquire);
        }
        seen = epoch;
        if (stopping_.load(std::memory_order_relaxed))
            return;
        try {
            (*fn_)(index);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
parallelFor(std::size_t count, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (jobs <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(jobs, count)));
    // Dynamic scheduling off one shared cursor: workers claim the next
    // index as they free up, so uneven run times balance out.
    std::atomic<std::size_t> next{0};
    for (unsigned w = 0; w < pool.workers(); ++w)
        pool.submit([&] {
            for (std::size_t i = next.fetch_add(1); i < count;
                 i = next.fetch_add(1))
                fn(i);
        });
    pool.wait();
}

} // namespace qm
