#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

namespace qm {

unsigned
ThreadPool::defaultWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultWorkers();
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        unfinished_ -= queue_.size();
        queue_.clear();
    }
    workReady_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++unfinished_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return unfinished_ == 0; });
    if (firstError_) {
        std::exception_ptr error = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping, nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--unfinished_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(std::size_t count, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (jobs <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(jobs, count)));
    // Dynamic scheduling off one shared cursor: workers claim the next
    // index as they free up, so uneven run times balance out.
    std::atomic<std::size_t> next{0};
    for (unsigned w = 0; w < pool.workers(); ++w)
        pool.submit([&] {
            for (std::size_t i = next.fetch_add(1); i < count;
                 i = next.fetch_add(1))
                fn(i);
        });
    pool.wait();
}

} // namespace qm
