/**
 * @file
 * Minimal recursive-descent JSON parser, the read-side counterpart of
 * json.hpp's JsonWriter. Parses the subset of JSON the simulator's own
 * exporters emit (objects, arrays, strings with escapes, numbers,
 * booleans, null) into a small value tree. Used by the qmprof trace
 * analyzer to re-ingest Chrome trace_event files.
 *
 * Not a general-purpose validator: it accepts what it can parse and
 * throws FatalError with a byte offset on anything malformed.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qm {

/** One parsed JSON value (tree node). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;               ///< Array elements.
    std::map<std::string, JsonValue> members;   ///< Object members.

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Object member lookup; null-kind sentinel when absent. */
    const JsonValue &get(const std::string &name) const;

    /** Member as double/int64/string with a default when absent. */
    double num(const std::string &name, double fallback = 0.0) const;
    long long intval(const std::string &name,
                     long long fallback = 0) const;
    std::string str(const std::string &name,
                    const std::string &fallback = "") const;
};

/** Parse @p text as one JSON document. Throws FatalError on error. */
JsonValue parseJson(const std::string &text);

/** Parse the JSON file at @p path. Throws FatalError on error. */
JsonValue parseJsonFile(const std::string &path);

} // namespace qm
