#include "support/json_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/diagnostics.hpp"

namespace qm {

namespace {

const JsonValue kNullValue{};

/** Cursor over the input with one-token-lookahead helpers. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipSpace();
        fatalIf(pos >= text.size(),
                "json parse: unexpected end of input at byte ", pos);
        return text[pos];
    }

    void
    expect(char c)
    {
        fatalIf(peek() != c, "json parse: expected '", c, "' at byte ",
                pos, ", found '", text[pos], "'");
        ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && peek() == c) {
            ++pos;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue value;
        value.kind = JsonValue::Kind::Object;
        if (consume('}'))
            return value;
        do {
            JsonValue key = parseString();
            expect(':');
            value.members.emplace(std::move(key.text), parseValue());
        } while (consume(','));
        expect('}');
        return value;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue value;
        value.kind = JsonValue::Kind::Array;
        if (consume(']'))
            return value;
        do {
            value.items.push_back(parseValue());
        } while (consume(','));
        expect(']');
        return value;
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue value;
        value.kind = JsonValue::Kind::String;
        while (true) {
            fatalIf(pos >= text.size(),
                    "json parse: unterminated string at byte ", pos);
            char c = text[pos++];
            if (c == '"')
                break;
            if (c != '\\') {
                value.text += c;
                continue;
            }
            fatalIf(pos >= text.size(),
                    "json parse: dangling escape at byte ", pos);
            char esc = text[pos++];
            switch (esc) {
              case '"': value.text += '"'; break;
              case '\\': value.text += '\\'; break;
              case '/': value.text += '/'; break;
              case 'b': value.text += '\b'; break;
              case 'f': value.text += '\f'; break;
              case 'n': value.text += '\n'; break;
              case 'r': value.text += '\r'; break;
              case 't': value.text += '\t'; break;
              case 'u': {
                fatalIf(pos + 4 > text.size(),
                        "json parse: truncated \\u escape at byte ",
                        pos);
                unsigned code = static_cast<unsigned>(std::strtoul(
                    text.substr(pos, 4).c_str(), nullptr, 16));
                pos += 4;
                // The writer only emits \u00XX control escapes; encode
                // anything else as UTF-8 without surrogate handling.
                if (code < 0x80) {
                    value.text += static_cast<char>(code);
                } else if (code < 0x800) {
                    value.text += static_cast<char>(0xC0 | (code >> 6));
                    value.text +=
                        static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    value.text +=
                        static_cast<char>(0xE0 | (code >> 12));
                    value.text += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F));
                    value.text +=
                        static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fatal("json parse: unknown escape '\\", esc,
                      "' at byte ", pos);
            }
        }
        return value;
    }

    JsonValue
    parseBool()
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Bool;
        if (text.compare(pos, 4, "true") == 0) {
            value.boolean = true;
            pos += 4;
        } else if (text.compare(pos, 5, "false") == 0) {
            value.boolean = false;
            pos += 5;
        } else {
            fatal("json parse: bad literal at byte ", pos);
        }
        return value;
    }

    JsonValue
    parseNull()
    {
        fatalIf(text.compare(pos, 4, "null") != 0,
                "json parse: bad literal at byte ", pos);
        pos += 4;
        return JsonValue{};
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E'))
            ++pos;
        fatalIf(pos == start, "json parse: expected a value at byte ",
                start);
        JsonValue value;
        value.kind = JsonValue::Kind::Number;
        char *end = nullptr;
        std::string token = text.substr(start, pos - start);
        value.number = std::strtod(token.c_str(), &end);
        fatalIf(end == nullptr || *end != '\0',
                "json parse: malformed number '", token, "' at byte ",
                start);
        return value;
    }
};

} // namespace

const JsonValue &
JsonValue::get(const std::string &name) const
{
    auto it = members.find(name);
    return it == members.end() ? kNullValue : it->second;
}

double
JsonValue::num(const std::string &name, double fallback) const
{
    const JsonValue &v = get(name);
    return v.kind == Kind::Number ? v.number : fallback;
}

long long
JsonValue::intval(const std::string &name, long long fallback) const
{
    const JsonValue &v = get(name);
    return v.kind == Kind::Number ? static_cast<long long>(v.number)
                                  : fallback;
}

std::string
JsonValue::str(const std::string &name,
               const std::string &fallback) const
{
    const JsonValue &v = get(name);
    return v.kind == Kind::String ? v.text : fallback;
}

JsonValue
parseJson(const std::string &text)
{
    Parser parser{text};
    JsonValue value = parser.parseValue();
    parser.skipSpace();
    fatalIf(parser.pos != text.size(),
            "json parse: trailing garbage at byte ", parser.pos);
    return value;
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open json file: ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseJson(buffer.str());
}

} // namespace qm
