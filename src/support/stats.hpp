/**
 * @file
 * Simple named-statistic registry used throughout the simulator.
 *
 * Mirrors the role of the thesis simulator's per-run statistics tables
 * (Tables 6.2-6.5): counters (events), scalars (measured quantities),
 * distributions (min/max/mean over samples), and fixed-bucket log2
 * histograms (exact count/sum plus percentile estimates) for the
 * latency and occupancy metrics the aggregate tables hide.
 */
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qm {

/** Accumulates samples and reports count/min/max/mean. */
class Distribution
{
  public:
    void
    sample(double value)
    {
        if (count_ == 0 || value < min_)
            min_ = value;
        if (count_ == 0 || value > max_)
            max_ = value;
        sum_ += value;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double sum() const { return sum_; }

    /** Rebuild from persisted raw moments (durable checkpoints). */
    static Distribution
    fromRaw(std::uint64_t count, double min, double max, double sum)
    {
        Distribution d;
        d.count_ = count;
        d.min_ = min;
        d.max_ = max;
        d.sum_ = sum;
        return d;
    }

  private:
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Fixed-bucket log2 histogram over non-negative integer samples
 * (cycle counts, hop counts, queue depths).
 *
 * Bucket 0 holds exact zeros; bucket i (1 <= i < kNumBuckets-1) holds
 * values in [2^(i-1), 2^i); the last bucket is the overflow bucket for
 * everything at or above 2^(kNumBuckets-2). Count and sum are exact;
 * min/max are exact; percentiles are estimated by linear interpolation
 * inside the covering bucket (clamped to the exact min/max), which is
 * accurate to within one power of two - plenty for "where did the
 * cycles go" questions. Two histograms merge exactly (bucket-wise
 * addition), so per-PE views fold into system totals without loss.
 */
class Histogram
{
  public:
    static constexpr int kNumBuckets = 32;

    void
    sample(std::uint64_t value)
    {
        if (count_ == 0 || value < min_)
            min_ = value;
        if (count_ == 0 || value > max_)
            max_ = value;
        sum_ += value;
        ++count_;
        ++buckets_[static_cast<std::size_t>(bucketIndex(value))];
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /** Samples recorded into bucket @p index. */
    std::uint64_t
    bucketCount(int index) const
    {
        return buckets_[static_cast<std::size_t>(index)];
    }

    /** Bucket @p value lands in: 0 for zero, last bucket = overflow. */
    static int
    bucketIndex(std::uint64_t value)
    {
        if (value == 0)
            return 0;
        int width = std::bit_width(value);
        return width < kNumBuckets - 1 ? width : kNumBuckets - 1;
    }

    /** Inclusive lower bound of bucket @p index. */
    static std::uint64_t
    bucketLow(int index)
    {
        if (index <= 0)
            return 0;
        return std::uint64_t{1} << (index - 1);
    }

    /** Exclusive upper bound of bucket @p index (max for overflow). */
    static std::uint64_t
    bucketHigh(int index)
    {
        if (index <= 0)
            return 1;
        if (index >= kNumBuckets - 1)
            return ~std::uint64_t{0};
        return std::uint64_t{1} << index;
    }

    /**
     * Estimated value at percentile @p p in [0, 100]: linear
     * interpolation inside the bucket covering that rank, clamped to
     * the exact [min, max] envelope. Returns 0 on an empty histogram.
     */
    double percentile(double p) const;

    /** Bucket-wise exact merge. */
    void merge(const Histogram &other);

    /** Rebuild from persisted raw fields (durable checkpoints). */
    static Histogram
    fromRaw(std::uint64_t count, std::uint64_t sum, std::uint64_t min,
            std::uint64_t max,
            const std::array<std::uint64_t, kNumBuckets> &buckets)
    {
        Histogram h;
        h.count_ = count;
        h.sum_ = sum;
        h.min_ = min;
        h.max_ = max;
        h.buckets_ = buckets;
        return h;
    }

  private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    std::array<std::uint64_t, kNumBuckets> buckets_{};
};

class StatScope;

/** Registry of named counters and distributions for one simulated run. */
class StatSet
{
  public:
    /** Add delta to the named counter (created on first use). */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Set a named scalar outright. */
    void set(const std::string &name, double value);

    /** Add a sample to a named distribution. */
    void sample(const std::string &name, double value);

    /** Add a sample to a named histogram (created on first use). */
    void record(const std::string &name, std::uint64_t value);

    /**
     * Reference to the named counter's map slot (created on first
     * use, exactly like inc()). Hot emit sites cache the returned
     * reference to skip the string lookup per event; the reference is
     * stable until the whole StatSet is assigned over (checkpoint
     * restore), at which point cached references must be dropped.
     */
    std::uint64_t &
    counterRef(const std::string &name)
    {
        return counters_[name];
    }

    /** Histogram analogue of counterRef (created on first use). */
    Histogram &
    histogramRef(const std::string &name)
    {
        return histograms_[name];
    }

    std::uint64_t counter(const std::string &name) const;
    double scalar(const std::string &name) const;
    const Distribution &distribution(const std::string &name) const;
    const Histogram &histogram(const std::string &name) const;
    bool hasCounter(const std::string &name) const;
    bool hasHistogram(const std::string &name) const;

    // Ordered whole-registry views (metrics export).
    const std::map<std::string, std::uint64_t> &
    counterMap() const
    {
        return counters_;
    }
    const std::map<std::string, double> &
    scalarMap() const
    {
        return scalars_;
    }
    const std::map<std::string, Histogram> &
    histogramMap() const
    {
        return histograms_;
    }
    const std::map<std::string, Distribution> &
    distributionMap() const
    {
        return distributions_;
    }

    /**
     * Mutable slot for the named distribution (created on first use).
     * Exists for checkpoint restore, which rebuilds registry entries
     * from persisted raw moments.
     */
    Distribution &
    distributionRef(const std::string &name)
    {
        return distributions_[name];
    }

    /**
     * Merge another StatSet into this one (counters add, histograms
     * merge exactly, distributions fold their aggregate moments).
     */
    void merge(const StatSet &other);

    /** merge() with every incoming name prefixed by @p prefix. */
    void mergeScoped(const StatSet &other, const std::string &prefix);

    /** A prefixing view, e.g. `stats.scoped("pe3.")` (see StatScope). */
    StatScope scoped(std::string prefix);

    /** Render all statistics as "name value" lines, sorted by name. */
    std::string render() const;

  private:
    void mergeInto(const StatSet &other, const std::string &prefix);

    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> scalars_;
    std::map<std::string, Distribution> distributions_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * Lightweight prefixing view over a StatSet: every name recorded
 * through the scope lands in the parent set as prefix+name. Used for
 * per-PE metric views ("pe0.ready_wait", ...) without the emit sites
 * having to assemble names themselves.
 */
/**
 * Render a registry in the Prometheus text exposition format
 * (version 0.0.4): counters become `counter` samples, scalars
 * `gauge`s, distributions a _count/_sum pair plus min/max gauges, and
 * log2 histograms full `histogram` families with cumulative `le`
 * buckets (+Inf included). Metric names are `<prefix>_<name>` with
 * every character outside [a-zA-Z0-9_:] mapped to '_', so registry
 * names like "pe0.ready_wait" scrape cleanly. Deterministic: maps are
 * name-ordered and doubles are locale-pinned.
 */
std::string renderPrometheus(const StatSet &stats,
                             const std::string &prefix = "qm");

class StatScope
{
  public:
    StatScope(StatSet &set, std::string prefix)
        : set_(&set), prefix_(std::move(prefix))
    {
    }

    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        set_->inc(prefix_ + name, delta);
    }

    void
    set(const std::string &name, double value)
    {
        set_->set(prefix_ + name, value);
    }

    void
    sample(const std::string &name, double value)
    {
        set_->sample(prefix_ + name, value);
    }

    void
    record(const std::string &name, std::uint64_t value)
    {
        set_->record(prefix_ + name, value);
    }

    const std::string &prefix() const { return prefix_; }

  private:
    StatSet *set_;
    std::string prefix_;
};

} // namespace qm
