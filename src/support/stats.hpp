/**
 * @file
 * Simple named-statistic registry used throughout the simulator.
 *
 * Mirrors the role of the thesis simulator's per-run statistics tables
 * (Tables 6.2-6.5): counters (events), scalars (measured quantities), and
 * distributions (min/max/mean over samples).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qm {

/** Accumulates samples and reports count/min/max/mean. */
class Distribution
{
  public:
    void
    sample(double value)
    {
        if (count_ == 0 || value < min_)
            min_ = value;
        if (count_ == 0 || value > max_)
            max_ = value;
        sum_ += value;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Registry of named counters and distributions for one simulated run. */
class StatSet
{
  public:
    /** Add delta to the named counter (created on first use). */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Set a named scalar outright. */
    void set(const std::string &name, double value);

    /** Add a sample to a named distribution. */
    void sample(const std::string &name, double value);

    std::uint64_t counter(const std::string &name) const;
    double scalar(const std::string &name) const;
    const Distribution &distribution(const std::string &name) const;
    bool hasCounter(const std::string &name) const;

    /** Merge another StatSet into this one (counters add, samples append). */
    void merge(const StatSet &other);

    /** Render all statistics as "name value" lines, sorted by name. */
    std::string render() const;

  private:
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> scalars;
    std::map<std::string, Distribution> distributions;
};

} // namespace qm
