/**
 * @file
 * Plain-text table rendering for the benchmark harness, so each bench
 * binary can print rows in the same layout as the thesis tables.
 */
#pragma once

#include <string>
#include <vector>

namespace qm {

/** Column-aligned plain-text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; it must have as many cells as the header. */
    void addRow(std::vector<std::string> row);

    /** Render with column alignment and a header separator. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows;
};

} // namespace qm
