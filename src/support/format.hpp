/**
 * @file
 * Minimal string-building helpers.
 *
 * libstdc++ 12 lacks std::format, so diagnostics and table printers build
 * strings with an ostream-based concatenator instead.
 */
#pragma once

#include <iomanip>
#include <sstream>
#include <string>

namespace qm {

/** Concatenate any streamable values into one string. */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Format a double with fixed precision. */
inline std::string
fixed(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

} // namespace qm
