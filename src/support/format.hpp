/**
 * @file
 * Minimal string-building helpers.
 *
 * libstdc++ 12 lacks std::format, so diagnostics and table printers build
 * strings with an ostream-based concatenator instead.
 *
 * Every number formatted here uses the classic "C" locale, so rendered
 * statistics and JSON documents are byte-identical regardless of the
 * process's global locale (no localized decimal commas or thousands
 * separators can leak into machine-readable output).
 */
#pragma once

#include <iomanip>
#include <locale>
#include <sstream>
#include <string>

namespace qm {

/** Concatenate any streamable values into one string. */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/**
 * Format a double with fixed precision, locale-independently. This is
 * the one formatter every renderer (StatSet::render, JsonWriter, the
 * bench tables) shares, so doubles look the same everywhere.
 */
inline std::string
fixed(double value, int precision)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

} // namespace qm
