#include "programs/benchmarks.hpp"

namespace qm::programs {

namespace {

/** a[i][j] = i + 2j, b[i][j] = 3i - j (integer-exact test data). */
std::int32_t
matA(int i, int j)
{
    return static_cast<std::int32_t>(i + 2 * j);
}

std::int32_t
matB(int i, int j)
{
    return static_cast<std::int32_t>(3 * i - j);
}

/** FFT input x[i] = (i*i + 3i) mod 11. */
std::int32_t
fftInput(int i)
{
    return static_cast<std::int32_t>((i * i + 3 * i) % 11);
}

/** Lower-triangular Cholesky generator G: g[i][j] = i-j+1 for j<=i. */
std::int32_t
cholG(int i, int j)
{
    return j <= i ? static_cast<std::int32_t>(i - j + 1) : 0;
}

/** Congruence test data: A symmetric, P a mixing matrix. */
std::int32_t
congA(int i, int j)
{
    return static_cast<std::int32_t>((i + 1) * (j + 1) + (i == j ? 7 : 0));
}

std::int32_t
congP(int i, int j)
{
    return static_cast<std::int32_t>(((i * j) % 3) + (i == j ? 1 : 0) - 1);
}

} // namespace

const std::string &
matmulSource()
{
    static const std::string source =
        "-- Matrix multiplication c = a * b (thesis Table 6.2/Fig 6.8).\n"
        "-- One parallel context computes each result row.\n"
        "def n = 6:\n"
        "var a[36], b[36], c[36]:\n"
        "seq\n"
        "  seq i = [0 for n]\n"
        "    seq j = [0 for n]\n"
        "      seq\n"
        "        a[(i * n) + j] := i + (2 * j)\n"
        "        b[(i * n) + j] := (3 * i) - j\n"
        "  par i = [0 for n]\n"
        "    seq j = [0 for n]\n"
        "      var sum:\n"
        "      seq\n"
        "        sum := 0\n"
        "        seq k = [0 for n]\n"
        "          sum := sum + (a[(i * n) + k] * b[(k * n) + j])\n"
        "        c[(i * n) + j] := sum\n";
    return source;
}

const std::string &
fftSource()
{
    static const std::string source =
        "-- 16-point integer butterfly transform (thesis Table 6.3/\n"
        "-- Fig 6.10). Each stage runs its 8 butterflies in parallel.\n"
        "def n = 16:\n"
        "var x[16]:\n"
        "var dist:\n"
        "seq\n"
        "  seq i = [0 for n]\n"
        "    x[i] := ((i * i) + (3 * i)) \\ 11\n"
        "  dist := 1\n"
        "  while dist < n\n"
        "    seq\n"
        "      par g = [0 for 8]\n"
        "        var p, q, u, v:\n"
        "        seq\n"
        "          p := (((g / dist) * dist) * 2) + (g \\ dist)\n"
        "          q := p + dist\n"
        "          u := x[p]\n"
        "          v := x[q]\n"
        "          x[p] := u + v\n"
        "          x[q] := u - v\n"
        "      dist := dist * 2\n";
    return source;
}

const std::string &
choleskySource()
{
    static const std::string source =
        "-- Cholesky decomposition a = l * l' (thesis Table 6.4/\n"
        "-- Fig 6.11). a is built as g * g' for integer lower-\n"
        "-- triangular g, so the factor is integer-exact and l = g.\n"
        "-- Row updates below the diagonal run in parallel.\n"
        "def n = 6:\n"
        "var g[36], a[36], l[36]:\n"
        "proc isqrt (value v, var r) =\n"
        "  seq\n"
        "    r := 0\n"
        "    while ((r + 1) * (r + 1)) <= v\n"
        "      r := r + 1\n"
        ":\n"
        "seq\n"
        "  seq i = [0 for n]\n"
        "    seq j = [0 for n]\n"
        "      if\n"
        "        j <= i\n"
        "          g[(i * n) + j] := (i - j) + 1\n"
        "        j > i\n"
        "          g[(i * n) + j] := 0\n"
        "  seq i = [0 for n]\n"
        "    seq j = [0 for n]\n"
        "      var s:\n"
        "      seq\n"
        "        s := 0\n"
        "        seq k = [0 for n]\n"
        "          s := s + (g[(i * n) + k] * g[(j * n) + k])\n"
        "        a[(i * n) + j] := s\n"
        "  seq j = [0 for n]\n"
        "    var d, s:\n"
        "    seq\n"
        "      s := a[(j * n) + j]\n"
        "      seq k = [0 for j]\n"
        "        s := s - (l[(j * n) + k] * l[(j * n) + k])\n"
        "      isqrt (s, d)\n"
        "      l[(j * n) + j] := d\n"
        "      par i = [0 for n]\n"
        "        if\n"
        "          i > j\n"
        "            var s2:\n"
        "            seq\n"
        "              s2 := a[(i * n) + j]\n"
        "              seq k2 = [0 for j]\n"
        "                s2 := s2 - (l[(i * n) + k2] * l[(j * n) + k2])\n"
        "              l[(i * n) + j] := s2 / l[(j * n) + j]\n";
    return source;
}

const std::string &
congruenceSource()
{
    static const std::string source =
        "-- Congruence transformation bm = p' * a * p (thesis\n"
        "-- Table 6.5/Fig 6.12), as two row-parallel products.\n"
        "def n = 6:\n"
        "var a[36], p[36], t[36], bm[36]:\n"
        "seq\n"
        "  seq i = [0 for n]\n"
        "    seq j = [0 for n]\n"
        "      seq\n"
        "        a[(i * n) + j] := ((i + 1) * (j + 1)) + (7 * (0 \\ 2))\n"
        "        p[(i * n) + j] := (((i * j) \\ 3) - 1)\n"
        "  seq i = [0 for n]\n"
        "    seq\n"
        "      a[(i * n) + i] := a[(i * n) + i] + 7\n"
        "      p[(i * n) + i] := p[(i * n) + i] + 1\n"
        "  par i = [0 for n]\n"
        "    seq j = [0 for n]\n"
        "      var s:\n"
        "      seq\n"
        "        s := 0\n"
        "        seq k = [0 for n]\n"
        "          s := s + (a[(i * n) + k] * p[(k * n) + j])\n"
        "        t[(i * n) + j] := s\n"
        "  par i = [0 for n]\n"
        "    seq j = [0 for n]\n"
        "      var s:\n"
        "      seq\n"
        "        s := 0\n"
        "        seq k = [0 for n]\n"
        "          s := s + (p[(k * n) + i] * t[(k * n) + j])\n"
        "        bm[(i * n) + j] := s\n";
    return source;
}

const std::string &
binaryFanRecursiveSource()
{
    static const std::string source =
        "-- Fig 6.9: binary-recursive fan-out. Each call splits the\n"
        "-- index range and recurses in parallel; leaves record depth.\n"
        "var v[16]:\n"
        "proc fanrec (value d, value base, value width, var sink[]) =\n"
        "  if\n"
        "    width = 1\n"
        "      sink[base] := d + base\n"
        "    width > 1\n"
        "      par\n"
        "        fanrec (d + 1, base, width / 2, sink)\n"
        "        fanrec (d + 1, base + (width / 2), width / 2, sink)\n"
        ":\n"
        "fanrec (0, 0, 16, v)\n";
    return source;
}

const std::string &
binaryFanIterativeSource()
{
    static const std::string source =
        "-- Fig 6.9 counterpart: the same fan-out without recursion,\n"
        "-- one replicated-par instance per leaf.\n"
        "def depth = 4:\n"
        "var v[16]:\n"
        "par i = [0 for 16]\n"
        "  v[i] := depth + i\n";
    return source;
}

std::vector<std::int32_t>
expectedMatmul()
{
    std::vector<std::int32_t> c(kMatN * kMatN, 0);
    for (int i = 0; i < kMatN; ++i)
        for (int j = 0; j < kMatN; ++j) {
            std::int32_t sum = 0;
            for (int k = 0; k < kMatN; ++k)
                sum += matA(i, k) * matB(k, j);
            c[static_cast<size_t>(i * kMatN + j)] = sum;
        }
    return c;
}

std::vector<std::int32_t>
expectedFft()
{
    std::vector<std::int32_t> x(kFftN);
    for (int i = 0; i < kFftN; ++i)
        x[static_cast<size_t>(i)] = fftInput(i);
    for (int dist = 1; dist < kFftN; dist *= 2) {
        for (int g = 0; g < kFftN / 2; ++g) {
            int p = (g / dist) * dist * 2 + (g % dist);
            int q = p + dist;
            std::int32_t u = x[static_cast<size_t>(p)];
            std::int32_t v = x[static_cast<size_t>(q)];
            x[static_cast<size_t>(p)] = u + v;
            x[static_cast<size_t>(q)] = u - v;
        }
    }
    return x;
}

std::vector<std::int32_t>
expectedCholesky()
{
    // By construction A = G G' with positive diagonal, so L = G.
    std::vector<std::int32_t> l(kMatN * kMatN, 0);
    for (int i = 0; i < kMatN; ++i)
        for (int j = 0; j < kMatN; ++j)
            l[static_cast<size_t>(i * kMatN + j)] = cholG(i, j);
    return l;
}

std::vector<std::int32_t>
expectedCongruence()
{
    std::vector<std::int32_t> t(kMatN * kMatN, 0);
    for (int i = 0; i < kMatN; ++i)
        for (int j = 0; j < kMatN; ++j) {
            std::int32_t sum = 0;
            for (int k = 0; k < kMatN; ++k)
                sum += congA(i, k) * congP(k, j);
            t[static_cast<size_t>(i * kMatN + j)] = sum;
        }
    std::vector<std::int32_t> b(kMatN * kMatN, 0);
    for (int i = 0; i < kMatN; ++i)
        for (int j = 0; j < kMatN; ++j) {
            std::int32_t sum = 0;
            for (int k = 0; k < kMatN; ++k)
                sum += congP(k, i) * t[static_cast<size_t>(k * kMatN + j)];
            b[static_cast<size_t>(i * kMatN + j)] = sum;
        }
    return b;
}

std::vector<std::int32_t>
expectedBinaryFan()
{
    std::vector<std::int32_t> v(16);
    for (int i = 0; i < 16; ++i)
        v[static_cast<size_t>(i)] = kFanDepth + i;
    return v;
}

std::vector<Benchmark>
thesisBenchmarks()
{
    return {
        {"matmul", "Fig 6.8 / Table 6.2", matmulSource(), "c",
         expectedMatmul()},
        {"fft", "Fig 6.10 / Table 6.3", fftSource(), "x",
         expectedFft()},
        {"cholesky", "Fig 6.11 / Table 6.4", choleskySource(), "l",
         expectedCholesky()},
        {"congruence", "Fig 6.12 / Table 6.5", congruenceSource(), "bm",
         expectedCongruence()},
    };
}

} // namespace qm::programs
