/**
 * @file
 * The thesis evaluation programs (Chapter 6, sections 6.3-6.4) as
 * embedded OCCAM sources, with reference calculators for verification.
 *
 * The four programs match the thesis benchmark suite: matrix
 * multiplication (Table 6.2/Fig 6.8), Fast Fourier Transform
 * (Table 6.3/Fig 6.10), Cholesky decomposition (Table 6.4/Fig 6.11),
 * and congruence transformation B = P'AP (Table 6.5/Fig 6.12), plus the
 * Fig 6.9 binary-recursive fan-out procedure pair.
 *
 * Substitutions (documented in DESIGN.md): the machine is a 32-bit
 * integer ISA, so the FFT is realized as the integer butterfly network
 * of the Walsh-Hadamard transform (identical communication structure,
 * exact arithmetic), and Cholesky uses an integer Newton-style isqrt on
 * a matrix constructed as G*G' for integer lower-triangular G, making
 * every intermediate value exact.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qm::programs {

/** Problem sizes. */
constexpr int kMatN = 6;    ///< Matrix benchmarks are kMatN x kMatN.
constexpr int kFftN = 16;   ///< FFT length.
constexpr int kFanDepth = 4;///< Fig 6.9 fan-out depth (16 leaves).

/** OCCAM source of the matrix multiplication benchmark. */
const std::string &matmulSource();
/** OCCAM source of the (Walsh-Hadamard) FFT benchmark. */
const std::string &fftSource();
/** OCCAM source of the Cholesky decomposition benchmark. */
const std::string &choleskySource();
/** OCCAM source of the congruence transformation benchmark. */
const std::string &congruenceSource();
/** OCCAM source of the Fig 6.9 recursive binary fan-out program. */
const std::string &binaryFanRecursiveSource();
/** OCCAM source of the equivalent non-recursive fan-out program. */
const std::string &binaryFanIterativeSource();

/** Expected result matrix c of the matmul benchmark (row-major). */
std::vector<std::int32_t> expectedMatmul();
/** Expected transformed vector of the FFT benchmark. */
std::vector<std::int32_t> expectedFft();
/** Expected factor L of the Cholesky benchmark (row-major). */
std::vector<std::int32_t> expectedCholesky();
/** Expected matrix B of the congruence benchmark (row-major). */
std::vector<std::int32_t> expectedCongruence();
/** Expected leaf vector of the fan-out programs. */
std::vector<std::int32_t> expectedBinaryFan();

/** One entry of the benchmark suite. */
struct Benchmark
{
    std::string name;          ///< "matmul", "fft", ...
    std::string thesisFigure;  ///< e.g. "Fig 6.8 / Table 6.2".
    const std::string &source;
    std::string resultArray;   ///< Top-level array holding the result.
    std::vector<std::int32_t> expected;
};

/** The four Chapter 6 benchmarks in thesis order. */
std::vector<Benchmark> thesisBenchmarks();

} // namespace qm::programs
