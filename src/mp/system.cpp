#include "mp/system.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace {
bool traceEnabled() {
    static bool on = std::getenv("QM_TRACE") != nullptr;
    return on;
}
}

#include "support/diagnostics.hpp"

namespace qm::mp {

using pe::HostStatus;
using pe::StepResult;
using pe::StepStatus;
using pe::TrapOutcome;

/** Adapts System kernel services to one PE's host interface. */
class HostAdapter : public pe::PeHost
{
  public:
    HostAdapter(System &system, int pe) : system_(system), pe_(pe) {}

    HostStatus
    send(Word channel, Word value) override
    {
        return system_.hostSend(pe_, channel, value);
    }

    HostStatus
    recv(Word channel, Word &value) override
    {
        return system_.hostRecv(pe_, channel, value);
    }

    TrapOutcome
    trap(Word number, Word argument) override
    {
        return system_.hostTrap(pe_, number, argument);
    }

  private:
    System &system_;
    int pe_;
};

/** Per-PE scheduling state. */
struct System::PeSlot
{
    int index = 0;
    Cycle clock = 0;
    Cycle busyCycles = 0;
    /** Kernel trap service cycles charged while stepping (breakdown). */
    Cycle kernelCycles = 0;
    /** Context load/save/roll-out and exit bookkeeping cycles. */
    Cycle switchCycles = 0;
    /** Start of the current context's uninterrupted run span. */
    Cycle spanStart = 0;
    CtxId running = msg::kNoCtx;
    /** Ready contexts ordered by earliest runnable time. */
    struct Entry
    {
        Cycle readyAt;
        CtxId ctx;
        bool operator>(const Entry &o) const
        {
            if (readyAt != o.readyAt)
                return readyAt > o.readyAt;
            return ctx > o.ctx;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> readyQ;
    std::unique_ptr<HostAdapter> host;
    std::unique_ptr<pe::ProcessingElement> pe;
    /** Deferred wait deadline when a TrapWait blocks. */
    std::optional<Cycle> blockUntil;
    /**
     * Lazy context switching: a context that blocks while no other
     * work is ready stays loaded on the PE (registers intact) and
     * resumes for free when its rendezvous completes. Only an arriving
     * ready context forces the roll-out. With one PE there is almost
     * always other work, so every block pays the full switch; with
     * many PEs blocked contexts usually stay resident - the mechanism
     * behind the thesis's better-than-linear throughput ratios.
     */
    CtxId residentBlocked = msg::kNoCtx;

    /** Next time this slot could do work, if any. */
    std::optional<Cycle>
    nextTime() const
    {
        if (running != msg::kNoCtx)
            return clock;
        if (!readyQ.empty())
            return std::max(clock, readyQ.top().readyAt);
        return std::nullopt;
    }
};

System::System(const isa::ObjectCode &code, SystemConfig config)
    : code_(code), config_(config),
      memory_(std::make_unique<pe::Memory>(config.memoryBytes)),
      bus(config.busConfig()), cache(config.channelDepth),
      tracer_(config.traceConfig)
{
    fatalIf(config_.numPes < 1, "system needs at least one PE");
    fatalIf(config_.pageWords < 32 || config_.pageWords > 256,
            "queue page words out of range");

    if (config_.faultPlan.enabled())
        faults_ = std::make_unique<fault::FaultInjector>(
            config_.faultPlan);

    bus.setTracer(&tracer_);
    cache.setTracer(&tracer_);
    bus.setFaultInjector(faults_.get());
    cache.setFaultInjector(faults_.get());
    for (int i = 0; i < config_.numPes; ++i) {
        auto slot = std::make_unique<PeSlot>();
        slot->index = i;
        slot->host = std::make_unique<HostAdapter>(*this, i);
        slot->pe = std::make_unique<pe::ProcessingElement>(
            *memory_, code_, *slot->host, config_.peTiming);
        slot->pe->attachTrace(&tracer_, i, &slot->clock);
        slot->pe->setFaultInjector(faults_.get());
        slots.push_back(std::move(slot));
    }

    // Queue page pool, top-down so page 0 is handed out last.
    Addr page_bytes = static_cast<Addr>(config_.pageWords) * 4;
    for (int i = config_.maxLiveContexts - 1; i >= 0; --i)
        freePages.push_back(kQueuePagePool +
                            static_cast<Addr>(i) * page_bytes);
    fatalIf(kQueuePagePool +
                    static_cast<Addr>(config_.maxLiveContexts) *
                        page_bytes >
                kDataBase,
            "queue page pool overlaps the data segment");
}

System::~System() = default;

Word
System::allocChannelPair()
{
    Word id = nextChannel;
    nextChannel += 2;
    return id;
}

Addr
System::allocQueuePage()
{
    fatalIf(freePages.empty(),
            "out of operand-queue pages (too many live contexts)");
    Addr page = freePages.back();
    freePages.pop_back();
    return page;
}

void
System::freeQueuePage(Addr page)
{
    freePages.push_back(page);
}

int
System::placeContext(int forkingPe)
{
    switch (config_.placement) {
      case Placement::Local:
        return forkingPe;
      case Placement::RoundRobin: {
        int target = rrNext;
        rrNext = (rrNext + 1) % config_.numPes;
        return target;
      }
      case Placement::LeastLoaded: {
        // Emptiest runnable queue wins; ties rotate around the ring so
        // independent forks still spread out.
        int best = -1;
        std::size_t best_load = 0;
        for (int i = 0; i < config_.numPes; ++i) {
            int pe = (rrNext + i) % config_.numPes;
            const PeSlot &slot = *slots[static_cast<size_t>(pe)];
            std::size_t load = slot.readyQ.size() +
                               (slot.running != msg::kNoCtx ? 1 : 0);
            if (best < 0 || load < best_load) {
                best = pe;
                best_load = load;
            }
        }
        rrNext = (best + 1) % config_.numPes;
        return best;
    }
    }
    panic("unreachable placement policy");
}

CtxId
System::createContext(Word codeAddr, Word inChan, Word outChan,
                      int forkingPe, Cycle now)
{
    Context ctx;
    ctx.id = static_cast<CtxId>(contexts.size());
    ctx.inChan = inChan;
    ctx.outChan = outChan;
    ctx.homePe = placeContext(forkingPe);
    ctx.queuePage = allocQueuePage();
    ctx.regs.pc = codeAddr;
    ctx.regs.qp = ctx.queuePage;
    ctx.regs.pom = pe::pomForPageWords(config_.pageWords);
    ctx.status = CtxStatus::Ready;
    // Shipping the context descriptor to a remote PE rides the bus.
    BusDelivery shipped;
    shipped.at = now;
    if (ctx.homePe != forkingPe)
        shipped = bus.deliver(forkingPe, ctx.homePe, now);
    ctx.readyAt = shipped.at;
    contexts.push_back(ctx);
    ++liveContexts;
    stats_.inc("sys.contexts_created");
    tracer_.ctxCreate(now, ctx.homePe, ctx.id, forkingPe);

    if (shipped.delivered) {
        slots[static_cast<size_t>(ctx.homePe)]->readyQ.push(
            {ctx.readyAt, ctx.id});
        if (shipped.duplicated)
            // Duplicate descriptor delivery: a second ready-queue
            // entry for the same context, skipped as stale once the
            // first one dispatches (idempotent delivery).
            slots[static_cast<size_t>(ctx.homePe)]->readyQ.push(
                {shipped.duplicateAt, ctx.id});
    } else {
        // The descriptor was lost beyond the retry bound: the context
        // exists but can never start. The watchdog/starvation exit
        // reports the resulting stall as a clean failure.
        stats_.inc("fault.ctx_ship_lost");
    }
    return ctx.id;
}

void
System::wakeContext(CtxId id, Cycle at)
{
    Context &ctx = contexts[id];
    panicIf(ctx.status == CtxStatus::Done, "waking a finished context");
    if (ctx.status == CtxStatus::Running)
        return;  // Peer is mid-step on its own PE; it will observe.
    ctx.status = CtxStatus::Ready;
    ctx.readyAt = std::max(ctx.readyAt, at);
    slots[static_cast<size_t>(ctx.homePe)]->readyQ.push(
        {ctx.readyAt, ctx.id});
}

HostStatus
System::hostSend(int pe_idx, Word channel, Word value)
{
    PeSlot &slot = *slots[static_cast<size_t>(pe_idx)];
    CtxId self = slot.running;
    msg::ChannelOp op = cache.send(channel, self, value, slot.clock);
    if (traceEnabled())
        std::cerr << "[t=" << slot.clock << " pe" << pe_idx << " ctx"
                  << self << "] send ch" << channel << " val="
                  << static_cast<std::int32_t>(value)
                  << (op.completed ? " done" : " blocked") << "\n";
    if (op.completed) {
        for (CtxId peer_id : op.wakes) {
            Context &peer = contexts[peer_id];
            BusDelivery wake =
                bus.deliver(pe_idx, peer.homePe, slot.clock);
            if (!wake.delivered)
                continue;  // lost wake; watchdog reports the stall
            wakeContext(peer_id, wake.at);
            if (wake.duplicated)
                wakeContext(peer_id, wake.duplicateAt);
        }
        return HostStatus::Done;
    }
    return HostStatus::Blocked;
}

HostStatus
System::hostRecv(int pe_idx, Word channel, Word &value)
{
    PeSlot &slot = *slots[static_cast<size_t>(pe_idx)];
    CtxId self = slot.running;
    msg::ChannelOp op = cache.recv(channel, self, slot.clock);
    if (traceEnabled())
        std::cerr << "[t=" << slot.clock << " pe" << pe_idx << " ctx"
                  << self << "] recv ch" << channel
                  << (op.completed ? " done val=" +
                          std::to_string(static_cast<std::int32_t>(
                              *op.value))
                                   : " blocked")
                  << "\n";
    if (op.completed) {
        value = *op.value;
        if (op.corrupted && pendingFailure_.empty())
            // Checksum mismatch: the token was corrupted in the cache.
            // Detection is the recovery this fabric offers (there is
            // no redundant copy to restore from), so the run ends with
            // a structured failure instead of silently computing on a
            // flipped bit.
            pendingFailure_ =
                cat("message corruption detected on channel ", channel,
                    " (checksum mismatch at cycle ", slot.clock, ")");
        for (CtxId peer_id : op.wakes) {
            Context &peer = contexts[peer_id];
            BusDelivery notify =
                bus.deliver(pe_idx, peer.homePe, slot.clock);
            if (!notify.delivered)
                continue;  // lost wake; watchdog reports the stall
            wakeContext(peer_id, notify.at);
            if (notify.duplicated)
                wakeContext(peer_id, notify.duplicateAt);
        }
        return HostStatus::Done;
    }
    return HostStatus::Blocked;
}

TrapOutcome
System::hostTrap(int pe_idx, Word number, Word argument)
{
    PeSlot &slot = *slots[static_cast<size_t>(pe_idx)];
    TrapOutcome outcome = trapService(slot, number, argument);
    // Charged service cycles land in the PE's step time; book them
    // separately so the run report can split kernel from compute.
    if (outcome.status != HostStatus::Blocked)
        slot.kernelCycles += outcome.kernelCycles;
    return outcome;
}

TrapOutcome
System::trapService(PeSlot &slot, Word number, Word argument)
{
    Context &self = contexts[slot.running];
    TrapOutcome outcome;
    switch (number) {
      case isa::TrapExit:
        outcome.endContext = true;
        outcome.kernelCycles = config_.exitCycles;
        return outcome;
      case isa::TrapRfork: {
        Word in = allocChannelPair();
        createContext(argument, in, in + 1, slot.index, slot.clock);
        outcome.result = in;
        outcome.kernelCycles = config_.forkCycles;
        stats_.inc("sys.rforks");
        return outcome;
      }
      case isa::TrapIfork: {
        Word in = allocChannelPair();
        createContext(argument, in, self.outChan, slot.index,
                      slot.clock);
        outcome.result = in;
        outcome.kernelCycles = config_.forkCycles;
        stats_.inc("sys.iforks");
        return outcome;
      }
      case isa::TrapGetIn:
        outcome.result = self.inChan;
        outcome.kernelCycles = config_.queryCycles;
        return outcome;
      case isa::TrapGetOut:
        outcome.result = self.outChan;
        outcome.kernelCycles = config_.queryCycles;
        return outcome;
      case isa::TrapAlloc: {
        Addr base = heapNext;
        heapNext = (heapNext + argument + 3) & ~static_cast<Addr>(3);
        fatalIf(heapNext > memory_->size(), "kernel heap exhausted");
        outcome.result = base;
        outcome.kernelCycles = config_.allocCycles;
        return outcome;
      }
      case isa::TrapNow:
        outcome.result = static_cast<Word>(slot.clock);
        outcome.kernelCycles = config_.queryCycles;
        return outcome;
      case isa::TrapWait:
        if (slot.clock >= static_cast<Cycle>(argument)) {
            outcome.kernelCycles = config_.queryCycles;
            return outcome;
        }
        slot.blockUntil = static_cast<Cycle>(argument);
        outcome.status = HostStatus::Blocked;
        return outcome;
      case isa::TrapChan:
        outcome.result = allocChannelPair();
        outcome.kernelCycles = config_.queryCycles;
        return outcome;
      default:
        fatal("unknown kernel trap ", number);
    }
}

bool
System::dispatch(PeSlot &slot)
{
    if (slot.running != msg::kNoCtx)
        return true;
    if (slot.readyQ.empty())
        return false;
    auto entry = slot.readyQ.top();
    slot.readyQ.pop();
    Context &ctx = contexts[entry.ctx];
    if (ctx.status != CtxStatus::Ready)
        return dispatch(slot);  // stale queue entry; skip it
    slot.clock = std::max(slot.clock, entry.readyAt);

    if (slot.residentBlocked == ctx.id) {
        // The resident context's rendezvous completed: resume in place
        // with its registers still live. No roll-out, no reload.
        slot.residentBlocked = msg::kNoCtx;
        ctx.status = CtxStatus::Running;
        slot.running = ctx.id;
        slot.spanStart = slot.clock;
        stats_.inc("sys.resident_resumes");
        tracer_.ctxDispatch(slot.clock, slot.index, ctx.id);
        return true;
    }
    if (slot.residentBlocked != msg::kNoCtx) {
        // Another context needs the PE: evict the resident one now,
        // paying the deferred save.
        Context &resident = contexts[slot.residentBlocked];
        Cycle cost = slot.pe->rollOut() + config_.contextSaveCycles;
        slot.clock += cost;
        slot.switchCycles += cost;
        resident.regs = slot.pe->saveContext();
        slot.residentBlocked = msg::kNoCtx;
        ++switches;
        stats_.inc("sys.evictions");
    }
    slot.clock += config_.contextLoadCycles;
    slot.switchCycles += config_.contextLoadCycles;
    ctx.status = CtxStatus::Running;
    slot.running = ctx.id;
    slot.spanStart = slot.clock;
    slot.pe->loadContext(ctx.regs);
    ++switches;
    tracer_.ctxDispatch(slot.clock, slot.index, ctx.id);
    return true;
}

void
System::park(PeSlot &slot, CtxStatus status)
{
    Context &ctx = contexts[slot.running];
    tracer_.peBusy(slot.spanStart, slot.clock, slot.index, ctx.id);
    Cycle cost = slot.pe->rollOut() + config_.contextSaveCycles;
    slot.clock += cost;
    slot.switchCycles += cost;
    ctx.regs = slot.pe->saveContext();
    ctx.status = status;
    slot.running = msg::kNoCtx;
    tracer_.ctxPark(slot.clock, slot.index, ctx.id,
                    status == CtxStatus::BlockedTime
                        ? trace::ParkReason::Timer
                        : trace::ParkReason::Channel);
}

void
System::finishContext(PeSlot &slot)
{
    Context &ctx = contexts[slot.running];
    tracer_.peBusy(slot.spanStart, slot.clock, slot.index, ctx.id);
    tracer_.ctxFinish(slot.clock, slot.index, ctx.id);
    ctx.status = CtxStatus::Done;
    freeQueuePage(ctx.queuePage);
    slot.running = msg::kNoCtx;
    --liveContexts;
    stats_.inc("sys.contexts_finished");
}

RunResult
System::run(const std::string &entry, Cycle max_cycles)
{
    panicIf(booted, "System::run may only be called once per instance");
    booted = true;
    Addr entry_addr = code_.labelAddr(entry);
    Word in = allocChannelPair();
    createContext(entry_addr, in, in + 1, /*forkingPe=*/0, /*now=*/0);

    RunResult result;
    // Watchdog bound: explicit, or 1M cycles automatically when fault
    // injection is active (fault-free runs keep the historical
    // behavior exactly).
    const Cycle watchdog =
        config_.watchdogCycles > 0 ? config_.watchdogCycles
        : faults_                  ? 1'000'000
                                   : 0;
    Cycle lastProgress = 0;
    while (liveContexts > 0) {
        if (!pendingFailure_.empty())
            return failRun(pendingFailure_, /*watchdog=*/false);
        // Pick the PE able to act soonest.
        PeSlot *best = nullptr;
        Cycle best_time = 0;
        for (auto &slot : slots) {
            auto t = slot->nextTime();
            if (t && (!best || *t < best_time)) {
                best = slot.get();
                best_time = *t;
            }
        }
        if (!best) {
            // Everyone starved: no context can ever run again. Under
            // fault injection this is an expected degraded outcome (a
            // message was lost beyond the retry bound), reported as a
            // clean failure; without faults it is a genuine deadlock
            // in the program, still a hard error.
            if (faults_)
                return failRun(
                    cat("deadlock: ", liveContexts,
                        " live contexts, none runnable (message lost "
                        "beyond the retry bound?)"),
                    /*watchdog=*/true);
            fatal("deadlock: ", liveContexts,
                  " live contexts, none runnable\n", dumpState());
        }
        if (best_time > max_cycles) {
            // Timed out: report everything the run did do (the old
            // path returned zeroed statistics, hiding all progress).
            result.completed = false;
            result.failureReason =
                cat("cycle limit reached (", max_cycles, ")");
            finalizeRun(result);
            return result;
        }
        if (watchdog > 0 && best_time - lastProgress > watchdog)
            return failRun(
                cat("watchdog: no instruction retired in ", watchdog,
                    " cycles (last progress at cycle ", lastProgress,
                    ")"),
                /*watchdog=*/true);

        PeSlot &slot = *best;
        if (!dispatch(slot))
            continue;

        // Run the context until it blocks, finishes, or a small batch
        // elapses (keeps PE clocks loosely synchronized).
        for (int batch = 0; batch < 16; ++batch) {
            Cycle before = slot.clock;
            StepResult step = slot.pe->step();
            slot.clock += step.cycles;
            slot.busyCycles += slot.clock - before;
            if (step.status != StepStatus::Blocked)
                lastProgress = std::max(lastProgress, slot.clock);
            if (step.status == StepStatus::Executed) {
                // Stop as soon as this PE crosses the cycle budget
                // instead of finishing the batch: the overshoot is
                // bounded by one instruction, not 16. The outer loop
                // observes the exhausted clock and times out once no
                // PE below the budget can act.
                if (slot.clock > max_cycles)
                    break;
                continue;
            }
            if (step.status == StepStatus::ContextEnd) {
                slot.clock += config_.exitCycles;
                slot.switchCycles += config_.exitCycles;
                finishContext(slot);
            } else if (step.status == StepStatus::Blocked) {
                if (slot.blockUntil) {
                    Context &ctx = contexts[slot.running];
                    ctx.readyAt = *slot.blockUntil;
                    CtxId id = slot.running;
                    park(slot, CtxStatus::BlockedTime);
                    contexts[id].status = CtxStatus::Ready;
                    slot.readyQ.push({contexts[id].readyAt, id});
                    slot.blockUntil.reset();
                } else if (slot.readyQ.empty()) {
                    // Nothing else to run: stay resident (lazy switch).
                    Context &ctx = contexts[slot.running];
                    ctx.status = CtxStatus::BlockedChannel;
                    tracer_.peBusy(slot.spanStart, slot.clock,
                                   slot.index, ctx.id);
                    tracer_.ctxPark(slot.clock, slot.index, ctx.id,
                                    trace::ParkReason::Resident);
                    slot.residentBlocked = slot.running;
                    slot.running = msg::kNoCtx;
                } else {
                    park(slot, CtxStatus::BlockedChannel);
                }
            } else {
                panic("fret/rett executed inside a kernel-managed "
                      "context");
            }
            break;
        }
    }

    result.completed = true;
    finalizeRun(result);
    return result;
}

void
System::finalizeRun(RunResult &result)
{
    Cycle finish = 0;
    std::uint64_t instructions = 0;
    Cycle busy_total = 0, kernel_total = 0, switch_total = 0;
    for (auto &slot : slots) {
        finish = std::max(finish, slot->clock);
        instructions += slot->pe->stats().counter("pe.instructions");
        busy_total += slot->busyCycles;
        kernel_total += slot->kernelCycles;
        switch_total += slot->switchCycles;
        stats_.merge(slot->pe->stats());
    }
    double busy = 0.0;
    for (auto &slot : slots)
        busy += finish > 0 ? static_cast<double>(slot->busyCycles) /
                                 static_cast<double>(finish)
                           : 0.0;
    stats_.merge(cache.stats());
    stats_.merge(bus.stats());
    result.cycles = finish;
    result.instructions = instructions;
    result.contexts = stats_.counter("sys.contexts_created");
    result.rendezvous = cache.stats().counter("msg.rendezvous");
    result.contextSwitches = switches;
    result.utilization = busy / config_.numPes;

    // Per-phase breakdown: every PE-cycle of the run is compute,
    // kernel (trap service + context switching), or blocked/idle. Bus
    // occupancy overlaps PE time and is reported as its own dimension.
    // Injected stall cycles inflate busyCycles without doing user
    // work, so they move from compute to blocked.
    Cycle stall_total =
        static_cast<Cycle>(stats_.counter("fault.pe_stall_cycles"));
    result.computeCycles = busy_total - kernel_total - stall_total;
    result.kernelCycles = kernel_total + switch_total;
    result.blockedCycles = finish * config_.numPes -
                           (busy_total + switch_total) + stall_total;
    result.busCycles = static_cast<Cycle>(
        stats_.counter("bus.transfer_cycles"));
    result.faultsInjected = faults_ ? faults_->injected() : 0;
    result.faultRecoveries =
        static_cast<std::uint64_t>(stats_.counter("fault.bus_retry")) +
        static_cast<std::uint64_t>(
            stats_.counter("fault.corrupt_detected"));

    stats_.set("sys.cycles", static_cast<double>(finish));
    stats_.set("sys.utilization", result.utilization);
    stats_.set("sys.cycles_compute",
               static_cast<double>(result.computeCycles));
    stats_.set("sys.cycles_kernel",
               static_cast<double>(result.kernelCycles));
    stats_.set("sys.cycles_blocked",
               static_cast<double>(result.blockedCycles));
    stats_.set("sys.cycles_bus", static_cast<double>(result.busCycles));
}

RunResult
System::failRun(const std::string &reason, bool watchdog)
{
    RunResult result;
    result.completed = false;
    result.watchdogTripped = watchdog;
    result.failureReason = reason;
    finalizeRun(result);
    return result;
}

std::string
System::dumpState() const
{
    std::ostringstream os;
    for (const Context &ctx : contexts) {
        if (ctx.status == CtxStatus::Done)
            continue;
        os << "ctx " << ctx.id << " pe=" << ctx.homePe << " pc="
           << ctx.regs.pc << " status=";
        switch (ctx.status) {
          case CtxStatus::Ready: os << "ready"; break;
          case CtxStatus::Running: os << "running"; break;
          case CtxStatus::BlockedChannel: os << "blocked-chan"; break;
          case CtxStatus::BlockedTime: os << "blocked-time"; break;
          case CtxStatus::Done: os << "done"; break;
        }
        os << " in=" << ctx.inChan << " out=" << ctx.outChan << "\n";
    }
    // With tracing on, the timeline tail shows what led up to a
    // deadlock or timeout - by far the most useful part of the report.
    if (tracer_.enabled())
        os << tracer_.summary();
    return os.str();
}

} // namespace qm::mp
