#include "mp/system.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "persist/state_codec.hpp"
#include "support/shutdown.hpp"

namespace {
bool traceEnabled() {
    static bool on = std::getenv("QM_TRACE") != nullptr;
    return on;
}
}

#include "support/diagnostics.hpp"

namespace qm::mp {

using pe::HostStatus;
using pe::StepResult;
using pe::StepStatus;
using pe::TrapOutcome;

/** Adapts System kernel services to one PE's host interface. */
class HostAdapter : public pe::PeHost
{
  public:
    HostAdapter(System &system, int pe) : system_(system), pe_(pe) {}

    HostStatus
    send(Word channel, Word value) override
    {
        return system_.hostSend(pe_, channel, value);
    }

    HostStatus
    recv(Word channel, Word &value) override
    {
        return system_.hostRecv(pe_, channel, value);
    }

    TrapOutcome
    trap(Word number, Word argument) override
    {
        return system_.hostTrap(pe_, number, argument);
    }

  private:
    System &system_;
    int pe_;
};

/** Per-PE scheduling state. */
struct System::PeSlot
{
    int index = 0;
    /** Per-PE metric prefix ("pe3."), see StatSet::scoped. */
    std::string scope;
    Cycle clock = 0;
    Cycle busyCycles = 0;
    /** Kernel trap service cycles charged while stepping (breakdown). */
    Cycle kernelCycles = 0;
    /** Context load/save/roll-out and exit bookkeeping cycles. */
    Cycle switchCycles = 0;
    /** Start of the current context's uninterrupted run span. */
    Cycle spanStart = 0;
    CtxId running = msg::kNoCtx;
    /** Ready contexts ordered by earliest runnable time. */
    struct Entry
    {
        Cycle readyAt;
        CtxId ctx;
        bool operator>(const Entry &o) const
        {
            if (readyAt != o.readyAt)
                return readyAt > o.readyAt;
            return ctx > o.ctx;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> readyQ;
    std::unique_ptr<HostAdapter> host;
    std::unique_ptr<pe::ProcessingElement> pe;
    /** Deferred wait deadline when a TrapWait blocks. */
    std::optional<Cycle> blockUntil;
    /**
     * Lazy context switching: a context that blocks while no other
     * work is ready stays loaded on the PE (registers intact) and
     * resumes for free when its rendezvous completes. Only an arriving
     * ready context forces the roll-out. With one PE there is almost
     * always other work, so every block pays the full switch; with
     * many PEs blocked contexts usually stay resident - the mechanism
     * behind the thesis's better-than-linear throughput ratios.
     */
    CtxId residentBlocked = msg::kNoCtx;

    /** Fail-stopped by an injected pekill: never schedules again. */
    bool dead = false;

    /**
     * Time of this slot's live calendar entry (-1 = none). The event
     * core keeps exactly one live entry per slot: a new registration
     * only enters the heap when it improves on calAt, and a surfacing
     * entry whose time differs from calAt is a superseded duplicate,
     * dropped unexamined. Without this discipline every context wake
     * would grow the heap and every stale entry would be re-corrected
     * each scheduling round - quadratic churn on wake-heavy runs.
     */
    Cycle calAt = -1;

    /**
     * Staged effects of this slot's current-window speculation, in
     * batch order, awaiting ordered replay by the window drain (PDES;
     * see System::runLoopThreaded). Always empty outside a window.
     */
    std::deque<SpecRec> specRecs;

    // Span journal (populated only when recovery is enabled): the
    // completed host ops and the memory stores of the span currently
    // running on this PE. Committed (cleared) whenever the span's
    // registers are safely saved; consumed by recoverDeadPe to restart
    // the span elsewhere after a fail-stop.
    std::vector<HostOp> hostLog;
    std::size_t logCursor = 0;
    bool logOverflow = false;
    pe::UndoLog undoLog;

    /** Journal one completed host op (bounded; overflow is sticky). */
    void
    appendOp(const HostOp &op, std::size_t max_ops)
    {
        if (logOverflow)
            return;
        if (hostLog.size() >= max_ops) {
            // A span too long to journal cannot be restarted; the
            // recovery path falls back to checkpoint replay.
            logOverflow = true;
            return;
        }
        hostLog.push_back(op);
        ++logCursor;
    }

    /** A logged op is waiting to be replayed instead of re-executed. */
    bool
    replaying() const
    {
        return logCursor < hostLog.size();
    }

    /** Next time this slot could do work, if any. */
    std::optional<Cycle>
    nextTime() const
    {
        if (dead)
            return std::nullopt;
        if (running != msg::kNoCtx)
            return clock;
        if (!readyQ.empty())
            return std::max(clock, readyQ.top().readyAt);
        return std::nullopt;
    }
};

/**
 * A complete machine checkpoint. Captured only at quiesced scheduler
 * boundaries (no context running or resident on any live PE), so no
 * PE-internal register state needs saving: a restored machine resumes
 * purely from kernel state (see DESIGN.md "Recoverable execution").
 */
struct System::Checkpoint
{
    std::vector<std::uint8_t> memory;
    std::vector<Context> contexts;
    std::vector<Addr> freePages;
    Word nextChannel = 2;
    Addr heapNext = kHeapBase;
    int rrNext = 0;
    std::vector<int> shardRr;
    std::vector<std::uint64_t> shardCtxLive;
    std::map<Word, int> channelShard;
    std::uint64_t liveContexts = 0;
    std::uint64_t switches = 0;
    bool killArmed = false;
    int pendingDeadPe = -1;
    Cycle deadDetectAt = 0;
    Cycle nextCheckpointAt = 0;
    Cycle lastProgress = 0;
    Cycle nextTelemetryAt = 0;
    StatSet stats;
    msg::MessageCache::Snapshot cache;
    RingBus::Snapshot bus;
    trace::Tracer::Mark trace;

    struct SlotState
    {
        Cycle clock = 0;
        Cycle busyCycles = 0;
        Cycle kernelCycles = 0;
        Cycle switchCycles = 0;
        bool dead = false;
        decltype(PeSlot::readyQ) readyQ;
        StatSet peStats;
    };
    std::vector<SlotState> slotStates;
};

System::System(const isa::ObjectCode &code, SystemConfig config)
    : code_(code), config_(config),
      memory_(std::make_unique<pe::Memory>(
          config.memoryBytes, config.core == SimCore::Event
                                  ? pe::Memory::Alloc::Lazy
                                  : pe::Memory::Alloc::Eager)),
      bus(config.busConfig()), cache(config.channelDepth),
      tracer_(config.traceConfig)
{
    fatalIf(config_.numPes < 1, "system needs at least one PE");
    fatalIf(config_.pageWords < 32 || config_.pageWords > 256,
            "queue page words out of range");

    if (numShards() > 1) {
        shardRr_.assign(static_cast<size_t>(numShards()), 0);
        shardCtxLive_.assign(static_cast<size_t>(numShards()), 0);
    }

    if (config_.core == SimCore::Event)
        decoded_ = std::make_unique<isa::DecodedProgram>(code_.words);

    if (config_.faultPlan.enabled())
        faults_ = std::make_unique<fault::FaultInjector>(
            config_.faultPlan);

    recoveryOn_ = config_.recovery.enabled;
    killArmed_ = faults_ && (config_.faultPlan.kinds & fault::kPeKill) &&
                 config_.faultPlan.killPlanned();

    // The flight recorder sees every Tracer emit whether or not the
    // flag-gated trace buffer is on (QM_FLIGHT=0 opts out entirely).
    if (flight_.enabled())
        tracer_.setSink(&flight_);

    bus.setTracer(&tracer_);
    cache.setTracer(&tracer_);
    bus.setFaultInjector(faults_.get());
    cache.setFaultInjector(faults_.get());
    bus.setRecovery(&config_.recovery);
    cache.setRecovery(&config_.recovery);
    for (int i = 0; i < config_.numPes; ++i) {
        auto slot = std::make_unique<PeSlot>();
        slot->index = i;
        slot->scope = cat("pe", i, ".");
        slot->undoLog.cap = config_.recovery.maxUndoWords;
        slot->host = std::make_unique<HostAdapter>(*this, i);
        slot->pe = std::make_unique<pe::ProcessingElement>(
            *memory_, code_, *slot->host, config_.peTiming);
        slot->pe->attachTrace(&tracer_, i, &slot->clock);
        slot->pe->setFaultInjector(faults_.get());
        slot->pe->setDecoded(decoded_.get());
        slots.push_back(std::move(slot));
    }

    // PDES wiring (--threads): the windowed scheduler only exists for
    // the event core, needs more than one PE to share work, and needs
    // a positive bus lookahead (minCrossLatency) to form windows at
    // all. Ownership is a fixed partition of the PEs over the workers,
    // aligned to ring seams when the topology is hierarchical so a
    // worker's slots share their kernel shard.
    config_.hostThreads =
        std::max(1, std::min(config_.hostThreads, config_.numPes));
    if (config_.core == SimCore::Event && config_.hostThreads > 1) {
        lookahead_ = bus.minCrossLatency();
        int workers = config_.hostThreads;
        partitions_.assign(static_cast<size_t>(workers), {});
        if (bus.numRings() > 1 && workers <= bus.numRings()) {
            for (int r = 0; r < bus.numRings(); ++r) {
                int w = r * workers / bus.numRings();
                for (int pe = bus.ringBase(r);
                     pe < bus.ringBase(r) + bus.ringSize(r); ++pe)
                    partitions_[static_cast<size_t>(w)].push_back(pe);
            }
        } else {
            for (int pe = 0; pe < config_.numPes; ++pe)
                partitions_[static_cast<size_t>(
                                pe * workers / config_.numPes)]
                    .push_back(pe);
        }
    }

    // Queue page pool, top-down so page 0 is handed out last.
    Addr page_bytes = static_cast<Addr>(config_.pageWords) * 4;
    for (int i = config_.maxLiveContexts - 1; i >= 0; --i)
        freePages.push_back(kQueuePagePool +
                            static_cast<Addr>(i) * page_bytes);
    fatalIf(kQueuePagePool +
                    static_cast<Addr>(config_.maxLiveContexts) *
                        page_bytes >
                kDataBase,
            "queue page pool overlaps the data segment");
}

System::~System() = default;

Word
System::allocChannelPair(int pe)
{
    Word id = nextChannel;
    nextChannel += 2;
    if (numShards() > 1) {
        // Channel directory: both ends of the pair start out owned by
        // the allocating PE's shard. Ifork placement consults it to
        // home children near the consumers of their output channels.
        int shard = shardOfPe(pe);
        channelShard_[id] = shard;
        channelShard_[id + 1] = shard;
    }
    return id;
}

Addr
System::allocQueuePage()
{
    fatalIf(freePages.empty(),
            "out of operand-queue pages (too many live contexts)");
    Addr page = freePages.back();
    freePages.pop_back();
    return page;
}

void
System::freeQueuePage(Addr page)
{
    freePages.push_back(page);
}

void
System::calSchedule(PeSlot &slot, Cycle at)
{
    if (slot.calAt >= 0 && at >= slot.calAt)
        return;  // The live entry is already an equal-or-lower bound.
    calendar_.push({at, slot.index});
    slot.calAt = at;
}

void
System::pushReady(PeSlot &slot, Cycle readyAt, CtxId ctx)
{
    slot.readyQ.push({readyAt, ctx});
    // The windowed loop selects by direct scan, not the calendar;
    // registering wakes there would only grow the heap unboundedly.
    if (config_.core == SimCore::Event && !threadedRun_)
        // Register the wake as a lower bound. max() with the slot's
        // clock saves one validation round-trip when the entry is
        // already in the past; any remaining staleness (another queued
        // context runs first, the clock advances during a quiesce) is
        // corrected when the entry surfaces at the calendar top.
        calSchedule(slot, std::max(slot.clock, readyAt));
}

int
System::placeContext(int forkingPe, int preferredShard)
{
    switch (config_.placement) {
      case Placement::Local:
        return forkingPe;  // The forking PE is alive by construction.
      case Placement::RoundRobin: {
        // Skip fail-stopped PEs; with none dead this is the plain
        // cyclic cursor.
        for (int i = 0; i < config_.numPes; ++i) {
            int target = (rrNext + i) % config_.numPes;
            if (slots[static_cast<size_t>(target)]->dead)
                continue;
            rrNext = (target + 1) % config_.numPes;
            return target;
        }
        panic("round-robin placement: no live PE");
      }
      case Placement::LeastLoaded:
        if (numShards() > 1)
            return placeSharded(preferredShard >= 0
                                    ? preferredShard
                                    : shardOfPe(forkingPe));
        return placeSurvivor();
    }
    panic("unreachable placement policy");
}

std::size_t
System::slotLoad(const PeSlot &slot) const
{
    // Placement must see the load the sequential core would see at the
    // drain's current position. Uncommitted speculation has already
    // popped ready entries (and possibly started a context) that the
    // sequential core has not consumed yet, so add them back: every
    // popped entry is one queued-or-running context, plus the context
    // that was already running when the window's speculation began.
    std::size_t load = slot.readyQ.size();
    if (slot.specRecs.empty())
        return load + (slot.running != msg::kNoCtx ? 1 : 0);
    for (const SpecRec &rec : slot.specRecs)
        load += rec.poppedEntry ? 1 : 0;
    return load + (slot.specRecs.front().hadRunningBefore ? 1 : 0);
}

std::size_t
System::shardLoad(int shard) const
{
    std::size_t load = 0;
    int base = bus.ringBase(shard);
    int size = bus.ringSize(shard);
    for (int i = 0; i < size; ++i) {
        const PeSlot &slot = *slots[static_cast<size_t>(base + i)];
        if (slot.dead)
            continue;
        load += slotLoad(slot);
    }
    return load;
}

int
System::placeSharded(int shard)
{
    // Distance-aware placement: keep the context inside its preferred
    // shard (local ring) unless every PE there is more than
    // kShardSlack contexts busier than the machine-wide minimum, so
    // its channel traffic avoids bridge hops. The slack biases fork
    // subtrees toward staying on their parent's ring (a cross-ring
    // rendezvous costs far more than one queued context); a genuinely
    // saturated ring still spills to the global least-loaded PE.
    constexpr std::size_t kShardSlack = 1;
    const int base = bus.ringBase(shard);
    const int size = bus.ringSize(shard);
    int best = -1;
    std::size_t best_load = 0;
    for (int i = 0; i < size; ++i) {
        int pe = base + (shardRr_[static_cast<size_t>(shard)] + i) %
                            size;
        const PeSlot &slot = *slots[static_cast<size_t>(pe)];
        if (slot.dead)
            continue;
        std::size_t load = slotLoad(slot);
        if (best < 0 || load < best_load) {
            best = pe;
            best_load = load;
        }
    }
    std::size_t global_min = 0;
    bool any_live = false;
    for (int pe = 0; pe < config_.numPes; ++pe) {
        const PeSlot &slot = *slots[static_cast<size_t>(pe)];
        if (slot.dead)
            continue;
        std::size_t load = slotLoad(slot);
        if (!any_live || load < global_min)
            global_min = load;
        any_live = true;
    }
    panicIf(!any_live, "context placement: no live PE");
    if (best >= 0 && best_load <= global_min + kShardSlack) {
        shardRr_[static_cast<size_t>(shard)] = (best - base + 1) % size;
        return best;
    }
    // Preferred ring is saturated (or entirely fail-stopped): fall
    // back to the global least-loaded policy.
    stats_.inc("sys.shard_spills");
    return placeSurvivor();
}

int
System::placeSurvivor()
{
    // Emptiest runnable queue among live PEs wins; ties rotate around
    // the ring so independent forks still spread out. This is the
    // historical LeastLoaded policy plus the dead-PE skip, and also
    // where recoverDeadPe re-homes a fail-stopped PE's contexts.
    int best = -1;
    std::size_t best_load = 0;
    for (int i = 0; i < config_.numPes; ++i) {
        int pe = (rrNext + i) % config_.numPes;
        const PeSlot &slot = *slots[static_cast<size_t>(pe)];
        if (slot.dead)
            continue;
        std::size_t load = slotLoad(slot);
        if (best < 0 || load < best_load) {
            best = pe;
            best_load = load;
        }
    }
    panicIf(best < 0, "context placement: no live PE");
    rrNext = (best + 1) % config_.numPes;
    return best;
}

CtxId
System::createContext(Word codeAddr, Word inChan, Word outChan,
                      int forkingPe, Cycle now, int preferredShard)
{
    Context ctx;
    ctx.id = static_cast<CtxId>(contexts.size());
    ctx.inChan = inChan;
    ctx.outChan = outChan;
    ctx.homePe = placeContext(forkingPe, preferredShard);
    ctx.queuePage = allocQueuePage();
    ctx.regs.pc = codeAddr;
    ctx.regs.qp = ctx.queuePage;
    ctx.regs.pom = pe::pomForPageWords(config_.pageWords);
    ctx.status = CtxStatus::Ready;
    // Shipping the context descriptor to a remote PE rides the bus.
    BusDelivery shipped;
    shipped.at = now;
    if (ctx.homePe != forkingPe)
        shipped = bus.deliver(forkingPe, ctx.homePe, now);
    ctx.readyAt = shipped.at;
    contexts.push_back(ctx);
    ++liveContexts;
    stats_.inc("sys.contexts_created");
    tracer_.ctxCreate(now, ctx.homePe, ctx.id, forkingPe);
    if (numShards() > 1) {
        // Shard bookkeeping: the descriptor ship above IS the explicit
        // cross-shard migration message when the shards differ - it
        // paid the bridge hops in bus.deliver. The directory learns
        // the child's channels so later iforks chase the consumer.
        int from = shardOfPe(forkingPe);
        int to = shardOfPe(ctx.homePe);
        int preferred = preferredShard >= 0 ? preferredShard : from;
        ++shardCtxLive_[static_cast<size_t>(to)];
        channelShard_[inChan] = to;
        stats_.inc(to == preferred ? "sys.shard_local_placements"
                                   : "sys.shard_remote_placements");
        if (to != from) {
            stats_.inc("sys.shard_migrations");
            tracer_.ctxMigrate(now, ctx.homePe, ctx.id, forkingPe);
        }
    }

    if (shipped.delivered) {
        pushReady(*slots[static_cast<size_t>(ctx.homePe)], ctx.readyAt,
                  ctx.id);
        if (shipped.duplicated)
            // Duplicate descriptor delivery: a second ready-queue
            // entry for the same context, skipped as stale once the
            // first one dispatches (idempotent delivery).
            pushReady(*slots[static_cast<size_t>(ctx.homePe)],
                      shipped.duplicateAt, ctx.id);
    } else {
        // The descriptor was lost beyond the retry bound: the context
        // exists but can never start. The watchdog/starvation exit
        // reports the resulting stall as a clean failure.
        stats_.inc("fault.ctx_ship_lost");
    }
    return ctx.id;
}

void
System::wakeContext(CtxId id, Cycle at)
{
    Context &ctx = contexts[id];
    panicIf(ctx.status == CtxStatus::Done, "waking a finished context");
    if (ctx.status == CtxStatus::Running) {
        if (!speculativelyRunning(ctx))
            return;  // Peer is mid-step on its own PE; it will observe.
        // The context is Running only under uncommitted speculation on
        // its home slot; the sequential core at this drain position
        // would still see it Ready in the queue and stage a duplicate
        // entry. Do exactly that - update readyAt and push - without
        // touching the status the speculation owns. The wake arrived
        // over the bus, so the entry lands at or after the window end
        // and cannot invalidate any speculated batch.
        ctx.readyAt = std::max(ctx.readyAt, at);
        pushReady(*slots[static_cast<size_t>(ctx.homePe)], ctx.readyAt,
                  ctx.id);
        return;
    }
    ctx.status = CtxStatus::Ready;
    ctx.readyAt = std::max(ctx.readyAt, at);
    pushReady(*slots[static_cast<size_t>(ctx.homePe)], ctx.readyAt,
              ctx.id);
}

HostStatus
System::hostSend(int pe_idx, Word channel, Word value)
{
    PeSlot &slot = *slots[static_cast<size_t>(pe_idx)];
    CtxId self = slot.running;
    if (recoveryOn_ && slot.replaying()) {
        // Restarted span: this send already happened before the PE
        // died; its token is in the cache and its wakes were
        // delivered. Replay the outcome with no side effects.
        const HostOp &logged = slot.hostLog[slot.logCursor++];
        panicIf(logged.kind != HostOp::Kind::Send ||
                    logged.arg != channel,
                "host-op replay divergence on send (restarted span "
                "took a different path)");
        return HostStatus::Done;
    }
    msg::ChannelOp op = cache.send(channel, self, value, slot.clock);
    if (traceEnabled())
        std::cerr << "[t=" << slot.clock << " pe" << pe_idx << " ctx"
                  << self << "] send ch" << channel << " val="
                  << static_cast<std::int32_t>(value)
                  << (op.completed ? " done" : " blocked") << "\n";
    if (op.completed) {
        for (CtxId peer_id : op.wakes) {
            Context &peer = contexts[peer_id];
            BusDelivery wake =
                bus.deliver(pe_idx, peer.homePe, slot.clock);
            if (!wake.delivered)
                continue;  // lost wake; watchdog reports the stall
            wakeContext(peer_id, wake.at);
            if (wake.duplicated)
                wakeContext(peer_id, wake.duplicateAt);
        }
        if (recoveryOn_)
            slot.appendOp({HostOp::Kind::Send, channel, 0, 0},
                          config_.recovery.maxLogOps);
        return HostStatus::Done;
    }
    // Blocked ops are never journaled: a restarted span re-issues the
    // request and blocks (or completes) afresh.
    return HostStatus::Blocked;
}

HostStatus
System::hostRecv(int pe_idx, Word channel, Word &value)
{
    PeSlot &slot = *slots[static_cast<size_t>(pe_idx)];
    CtxId self = slot.running;
    if (recoveryOn_ && slot.replaying()) {
        // Restarted span: the token was already consumed before the PE
        // died; hand back the logged value without touching the cache.
        const HostOp &logged = slot.hostLog[slot.logCursor++];
        panicIf(logged.kind != HostOp::Kind::Recv ||
                    logged.arg != channel,
                "host-op replay divergence on recv (restarted span "
                "took a different path)");
        value = logged.result;
        return HostStatus::Done;
    }
    msg::ChannelOp op = cache.recv(channel, self, slot.clock);
    if (traceEnabled())
        std::cerr << "[t=" << slot.clock << " pe" << pe_idx << " ctx"
                  << self << "] recv ch" << channel
                  << (op.completed ? " done val=" +
                          std::to_string(static_cast<std::int32_t>(
                              *op.value))
                                   : " blocked")
                  << "\n";
    if (op.completed) {
        value = *op.value;
        if (op.healed) {
            // The cache healed a checksum mismatch from the sender's
            // pristine copy; the NACK + resend round trip costs
            // bounded protocol cycles, booked as kernel time.
            slot.clock += op.penalty;
            slot.kernelCycles += op.penalty;
        } else if (op.corrupted && pendingFailure_.empty()) {
            // Checksum mismatch: the token was corrupted in the cache.
            // Without the recovery layer, detection is the only
            // defense this fabric offers, so the run ends with a
            // structured failure instead of silently computing on a
            // flipped bit.
            pendingFailure_ =
                cat("message corruption detected on channel ", channel,
                    " (checksum mismatch at cycle ", slot.clock, ")");
        }
        for (CtxId peer_id : op.wakes) {
            Context &peer = contexts[peer_id];
            BusDelivery notify =
                bus.deliver(pe_idx, peer.homePe, slot.clock);
            if (!notify.delivered)
                continue;  // lost wake; watchdog reports the stall
            wakeContext(peer_id, notify.at);
            if (notify.duplicated)
                wakeContext(peer_id, notify.duplicateAt);
        }
        if (recoveryOn_)
            slot.appendOp({HostOp::Kind::Recv, channel, value, 0},
                          config_.recovery.maxLogOps);
        return HostStatus::Done;
    }
    return HostStatus::Blocked;
}

TrapOutcome
System::hostTrap(int pe_idx, Word number, Word argument)
{
    PeSlot &slot = *slots[static_cast<size_t>(pe_idx)];
    if (recoveryOn_ && slot.replaying()) {
        // Restarted span: the trap already ran before the PE died
        // (forks forked, channels allocated). Replay the logged
        // outcome with no side effects; the charge is re-booked
        // because clocks were not rolled back past the span start.
        const HostOp &logged = slot.hostLog[slot.logCursor++];
        panicIf(logged.kind != HostOp::Kind::Trap ||
                    logged.arg != number,
                "host-op replay divergence on trap (restarted span "
                "took a different path)");
        TrapOutcome outcome;
        if (logged.hasResult)
            outcome.result = logged.result;
        outcome.kernelCycles = logged.kernelCycles;
        slot.kernelCycles += outcome.kernelCycles;
        return outcome;
    }
    TrapOutcome outcome = trapService(slot, number, argument);
    // Charged service cycles land in the PE's step time; book them
    // separately so the run report can split kernel from compute.
    if (outcome.status != HostStatus::Blocked) {
        slot.kernelCycles += outcome.kernelCycles;
        if (recoveryOn_ && !outcome.endContext)
            slot.appendOp({HostOp::Kind::Trap, number,
                           outcome.result.value_or(0),
                           outcome.kernelCycles,
                           outcome.result.has_value()},
                          config_.recovery.maxLogOps);
    }
    return outcome;
}

TrapOutcome
System::trapService(PeSlot &slot, Word number, Word argument)
{
    Context &self = contexts[slot.running];
    TrapOutcome outcome;
    switch (number) {
      case isa::TrapExit:
        outcome.endContext = true;
        outcome.kernelCycles = config_.exitCycles;
        return outcome;
      case isa::TrapRfork: {
        Word in = allocChannelPair(slot.index);
        createContext(argument, in, in + 1, slot.index, slot.clock);
        outcome.result = in;
        outcome.kernelCycles = config_.forkCycles;
        stats_.inc("sys.rforks");
        return outcome;
      }
      case isa::TrapIfork: {
        Word in = allocChannelPair(slot.index);
        // Distance-aware placement: the child inherits this context's
        // output channel, so home it in the shard of that channel's
        // consumer (per the directory) rather than the forker's -
        // pipeline stages chase their consumers across rings instead
        // of piling up where they were forked.
        int preferred = -1;
        if (numShards() > 1) {
            auto it = channelShard_.find(self.outChan);
            if (it != channelShard_.end())
                preferred = it->second;
        }
        createContext(argument, in, self.outChan, slot.index,
                      slot.clock, preferred);
        outcome.result = in;
        outcome.kernelCycles = config_.forkCycles;
        stats_.inc("sys.iforks");
        return outcome;
      }
      case isa::TrapGetIn:
        outcome.result = self.inChan;
        outcome.kernelCycles = config_.queryCycles;
        return outcome;
      case isa::TrapGetOut:
        outcome.result = self.outChan;
        outcome.kernelCycles = config_.queryCycles;
        return outcome;
      case isa::TrapAlloc: {
        Addr base = heapNext;
        heapNext = (heapNext + argument + 3) & ~static_cast<Addr>(3);
        fatalIf(heapNext > memory_->size(), "kernel heap exhausted");
        outcome.result = base;
        outcome.kernelCycles = config_.allocCycles;
        return outcome;
      }
      case isa::TrapNow:
        outcome.result = static_cast<Word>(slot.clock);
        outcome.kernelCycles = config_.queryCycles;
        return outcome;
      case isa::TrapWait:
        if (slot.clock >= static_cast<Cycle>(argument)) {
            outcome.kernelCycles = config_.queryCycles;
            return outcome;
        }
        slot.blockUntil = static_cast<Cycle>(argument);
        outcome.status = HostStatus::Blocked;
        return outcome;
      case isa::TrapChan:
        outcome.result = allocChannelPair(slot.index);
        outcome.kernelCycles = config_.queryCycles;
        return outcome;
      default:
        fatal("unknown kernel trap ", number);
    }
}

bool
System::dispatch(PeSlot &slot)
{
    if (slot.dead)
        return false;
    if (slot.running != msg::kNoCtx)
        return true;
    if (slot.readyQ.empty())
        return false;
    auto entry = slot.readyQ.top();
    slot.readyQ.pop();
    Context &ctx = contexts[entry.ctx];
    if (ctx.status != CtxStatus::Ready)
        return dispatch(slot);  // stale queue entry; skip it
    slot.clock = std::max(slot.clock, entry.readyAt);
    // Ready-queue wait: cycles between the context becoming runnable
    // and the PE actually picking it up (scheduler-induced latency,
    // before any context-load cost is charged).
    Cycle ready_wait = slot.clock - entry.readyAt;
    stats_.record("sys.ready_wait",
                  static_cast<std::uint64_t>(ready_wait));
    stats_.scoped(slot.scope)
        .record("ready_wait", static_cast<std::uint64_t>(ready_wait));

    if (slot.residentBlocked == ctx.id) {
        // The resident context's rendezvous completed: resume in place
        // with its registers still live. No roll-out, no reload. The
        // run span continues: its journal keeps accumulating until the
        // registers are finally saved somewhere.
        slot.residentBlocked = msg::kNoCtx;
        ctx.status = CtxStatus::Running;
        slot.running = ctx.id;
        slot.spanStart = slot.clock;
        stats_.inc("sys.resident_resumes");
        tracer_.ctxDispatch(slot.clock, slot.index, ctx.id);
        return true;
    }
    if (slot.residentBlocked != msg::kNoCtx)
        // Another context needs the PE: evict the resident one now,
        // paying the deferred save.
        evictResident(slot);
    slot.clock += config_.contextLoadCycles;
    slot.switchCycles += config_.contextLoadCycles;
    ctx.status = CtxStatus::Running;
    slot.running = ctx.id;
    slot.spanStart = slot.clock;
    slot.pe->loadContext(ctx.regs);
    if (recoveryOn_) {
        // Fresh span: from here until the next commit, ctx.regs stays
        // the restart image. A context handed over from a dead PE
        // brings the journal of its interrupted span along for replay.
        slot.hostLog = std::move(ctx.pendingReplay);
        ctx.pendingReplay.clear();
        slot.logCursor = 0;
        slot.logOverflow = false;
        slot.undoLog.clear();
    }
    ++switches;
    tracer_.ctxDispatch(slot.clock, slot.index, ctx.id);
    return true;
}

void
System::recordResidency(PeSlot &slot)
{
    // Residency: how long the context ran uninterrupted on the PE
    // before blocking, finishing, or being preempted. Long residencies
    // mean the lazy-switch machinery is paying off; a spray of short
    // ones means the run is rendezvous-bound.
    Cycle span = slot.clock - slot.spanStart;
    stats_.record("sys.residency", static_cast<std::uint64_t>(span));
    stats_.scoped(slot.scope)
        .record("residency", static_cast<std::uint64_t>(span));
}

void
System::park(PeSlot &slot, CtxStatus status)
{
    Context &ctx = contexts[slot.running];
    recordResidency(slot);
    tracer_.peBusy(slot.spanStart, slot.clock, slot.index, ctx.id);
    Cycle cost = slot.pe->rollOut() + config_.contextSaveCycles;
    slot.clock += cost;
    slot.switchCycles += cost;
    ctx.regs = slot.pe->saveContext();
    ctx.status = status;
    slot.running = msg::kNoCtx;
    commitSpan(slot);
    tracer_.ctxPark(slot.clock, slot.index, ctx.id,
                    status == CtxStatus::BlockedTime
                        ? trace::ParkReason::Timer
                        : trace::ParkReason::Channel);
}

void
System::evictResident(PeSlot &slot)
{
    Context &resident = contexts[slot.residentBlocked];
    Cycle cost = slot.pe->rollOut() + config_.contextSaveCycles;
    slot.clock += cost;
    slot.switchCycles += cost;
    resident.regs = slot.pe->saveContext();
    slot.residentBlocked = msg::kNoCtx;
    ++switches;
    stats_.inc("sys.evictions");
    commitSpan(slot);
}

void
System::preemptRunning(PeSlot &slot)
{
    // Checkpoint quiesce: force the running context out (registers
    // saved, span committed) and requeue it so the snapshot needs no
    // PE-internal state.
    CtxId id = slot.running;
    park(slot, CtxStatus::Ready);
    Context &ctx = contexts[id];
    ctx.readyAt = std::max(ctx.readyAt, slot.clock);
    pushReady(slot, ctx.readyAt, id);
}

void
System::commitSpan(PeSlot &slot)
{
    // The span's registers are safely stored (saveContext or context
    // end), so a restart can never reach back before this point: drop
    // the journal.
    if (!recoveryOn_)
        return;
    slot.hostLog.clear();
    slot.logCursor = 0;
    slot.logOverflow = false;
    slot.undoLog.clear();
}

void
System::finishContext(PeSlot &slot)
{
    Context &ctx = contexts[slot.running];
    recordResidency(slot);
    tracer_.peBusy(slot.spanStart, slot.clock, slot.index, ctx.id);
    tracer_.ctxFinish(slot.clock, slot.index, ctx.id);
    ctx.status = CtxStatus::Done;
    freeQueuePage(ctx.queuePage);
    slot.running = msg::kNoCtx;
    --liveContexts;
    if (numShards() > 1)
        --shardCtxLive_[static_cast<size_t>(shardOfPe(ctx.homePe))];
    stats_.inc("sys.contexts_finished");
    commitSpan(slot);
}

RunResult
System::run(const std::string &entry, Cycle max_cycles)
{
    panicIf(booted, "System::run may only be called once per instance");
    booted = true;
    Addr entry_addr = code_.labelAddr(entry);
    Word in = allocChannelPair(/*pe=*/0);
    createContext(entry_addr, in, in + 1, /*forkingPe=*/0, /*now=*/0);
    if (config_.telemetryEvery > 0)
        nextTelemetryAt_ = config_.telemetryEvery;
    if (recoveryOn_) {
        if (config_.recovery.checkpointEvery > 0)
            nextCheckpointAt_ = config_.recovery.checkpointEvery;
        // Boot checkpoint: even without periodic snapshots, a failed
        // run can always be replayed from the start.
        snapshot();
    }
    return runLoop(max_cycles);
}

RunResult
System::resume(Cycle max_cycles)
{
    panicIf(!booted, "System::resume before run()");
    return runLoop(max_cycles);
}

RunResult
System::runLoop(Cycle max_cycles)
{
    // The host deadline budget covers one loop entry (run or resume).
    runStart_ = std::chrono::steady_clock::now();
    hostGuardTick_ = 0;
    if (config_.core != SimCore::Event)
        return runLoopTick(max_cycles);
    // The windowed loop needs a positive lookahead to form windows,
    // and falls back to the sequential loop under fault injection:
    // faults can surface mid-batch failures (corruption, stalls) whose
    // effects cannot be staged for ordered replay, and sequential
    // execution of a faulted run is byte-identical by definition.
    if (config_.hostThreads > 1 && lookahead_ >= 1 && !faults_)
        return runLoopThreaded(max_cycles);
    return runLoopEvent(max_cycles);
}

RunResult
System::runLoopTick(Cycle max_cycles)
{
    RunResult result;
    // Watchdog bound: explicit, or 1M cycles automatically when fault
    // injection is active (fault-free runs keep the historical
    // behavior exactly).
    const Cycle watchdog =
        config_.watchdogCycles > 0 ? config_.watchdogCycles
        : faults_                  ? 1'000'000
                                   : 0;
    while (liveContexts > 0) {
        if (!pendingFailure_.empty())
            return failRun(pendingFailure_, /*watchdog=*/false);
        if (std::string why; hostAbortDue(why))
            return abortRun(why);
        // Pick the PE able to act soonest.
        PeSlot *best = nullptr;
        Cycle best_time = 0;
        for (auto &slot : slots) {
            auto t = slot->nextTime();
            if (t && (!best || *t < best_time)) {
                best = slot.get();
                best_time = *t;
            }
        }
        // Planned fail-stop: fires once simulated time reaches killAt.
        if (killArmed_ && best &&
            best_time >= config_.faultPlan.killAt) {
            injectPeKill(config_.faultPlan.killAt);
            continue;
        }
        // Kernel lease: the killed PE's silence is noticed once the
        // machine's frontier passes the lease deadline - or right away
        // if nothing can act at all.
        if (pendingDeadPe_ >= 0 && recoveryOn_ &&
            (!best || best_time >= deadDetectAt_)) {
            recoverDeadPe(deadDetectAt_);
            continue;
        }
        if (!best) {
            // Everyone starved: no context can ever run again. Under
            // fault injection this is an expected degraded outcome (a
            // message was lost beyond the retry bound), reported as a
            // clean failure; without faults it is a genuine deadlock
            // in the program, still a hard error.
            if (faults_) {
                if (traceEnabled())
                    std::cerr << dumpState();
                return failRun(
                    cat("deadlock: ", liveContexts,
                        " live contexts, none runnable (message lost "
                        "beyond the retry bound?)"),
                    /*watchdog=*/true);
            }
            fatal("deadlock: ", liveContexts,
                  " live contexts, none runnable\n", dumpState());
        }
        if (best_time > max_cycles) {
            // Timed out: report everything the run did do (the old
            // path returned zeroed statistics, hiding all progress).
            // Not replayable: a replay would only re-spend the budget.
            result.completed = false;
            result.failureReason =
                cat("cycle limit reached (", max_cycles, ")");
            replayable_ = false;
            finalizeRun(result);
            if (!config_.flightPath.empty())
                writeFlightDump(config_.flightPath,
                                result.failureReason);
            return result;
        }
        if (watchdog > 0 && best_time - lastProgress_ > watchdog)
            return failRun(
                cat("watchdog: no instruction retired in ", watchdog,
                    " cycles (last progress at cycle ", lastProgress_,
                    ")"),
                /*watchdog=*/true);
        // Periodic checkpoint, taken at a quiesced scheduler boundary.
        // Deferred while a fail-stop is pending (the dead PE's context
        // cannot be rolled out, and the imminent recovery would be
        // erased by a later restore anyway) and while any restarted
        // span is still replaying its host-op log: the quiesce preempt
        // would discard the unconsumed tail and the span would
        // re-execute those ops live, duplicating their side effects.
        bool replay_in_flight = false;
        for (auto &slot : slots)
            if (slot->replaying())
                replay_in_flight = true;
        if (nextCheckpointAt_ > 0 && best_time >= nextCheckpointAt_ &&
            pendingDeadPe_ < 0 && !replay_in_flight) {
            // Advance the schedule *before* capturing: the snapshot
            // then carries the next boundary, so a run warm-started
            // from it (durable resume or checkpoint replay) continues
            // to the next checkpoint instead of immediately
            // re-snapshotting the boundary it was saved at.
            while (nextCheckpointAt_ <= best_time)
                nextCheckpointAt_ += config_.recovery.checkpointEvery;
            snapshot();
            continue;
        }
        // Telemetry boundary: same quiesce conditions as checkpoints
        // (and evaluated after them, so a coincident boundary sees the
        // checkpoint's counter), but purely observational - no machine
        // state changes, so the loop continues into dispatch.
        if (nextTelemetryAt_ > 0 && best_time >= nextTelemetryAt_ &&
            pendingDeadPe_ < 0 && !replay_in_flight)
            emitTelemetry(best_time);

        PeSlot &slot = *best;
        if (!dispatch(slot))
            continue;
        if (recoveryOn_)
            // Journal this span's memory stores for rollback.
            memory_->setUndoLog(&slot.undoLog);

        // Run the context until it blocks, finishes, or a small batch
        // elapses (keeps PE clocks loosely synchronized).
        for (int batch = 0; batch < 16; ++batch) {
            Cycle before = slot.clock;
            StepResult step = slot.pe->step();
            slot.clock += step.cycles;
            slot.busyCycles += slot.clock - before;
            if (step.status != StepStatus::Blocked)
                lastProgress_ = std::max(lastProgress_, slot.clock);
            if (step.status == StepStatus::Executed) {
                // Stop as soon as this PE crosses the cycle budget
                // instead of finishing the batch: the overshoot is
                // bounded by one instruction, not 16. The outer loop
                // observes the exhausted clock and times out once no
                // PE below the budget can act.
                if (slot.clock > max_cycles)
                    break;
                continue;
            }
            if (step.status == StepStatus::ContextEnd) {
                slot.clock += config_.exitCycles;
                slot.switchCycles += config_.exitCycles;
                finishContext(slot);
            } else if (step.status == StepStatus::Blocked) {
                if (slot.blockUntil) {
                    Context &ctx = contexts[slot.running];
                    ctx.readyAt = *slot.blockUntil;
                    CtxId id = slot.running;
                    park(slot, CtxStatus::BlockedTime);
                    contexts[id].status = CtxStatus::Ready;
                    pushReady(slot, contexts[id].readyAt, id);
                    slot.blockUntil.reset();
                } else if (slot.readyQ.empty()) {
                    // Nothing else to run: stay resident (lazy switch).
                    Context &ctx = contexts[slot.running];
                    ctx.status = CtxStatus::BlockedChannel;
                    recordResidency(slot);
                    tracer_.peBusy(slot.spanStart, slot.clock,
                                   slot.index, ctx.id);
                    tracer_.ctxPark(slot.clock, slot.index, ctx.id,
                                    trace::ParkReason::Resident);
                    slot.residentBlocked = slot.running;
                    slot.running = msg::kNoCtx;
                } else {
                    park(slot, CtxStatus::BlockedChannel);
                }
            } else {
                panic("fret/rett executed inside a kernel-managed "
                      "context");
            }
            break;
        }
        if (recoveryOn_)
            memory_->setUndoLog(nullptr);
    }

    result.completed = true;
    replayable_ = false;
    finalizeRun(result);
    return result;
}

RunResult
System::runLoopEvent(Cycle max_cycles)
{
    RunResult result;
    const Cycle watchdog =
        config_.watchdogCycles > 0 ? config_.watchdogCycles
        : faults_                  ? 1'000'000
                                   : 0;
    // (Re)build the calendar from scratch: one entry per schedulable
    // slot. run() enters here after boot pushes, resume() after a
    // restore() reassigned every ready queue; leftovers from an
    // earlier loop invocation are meaningless either way.
    calendar_ = {};
    for (auto &slot : slots) {
        slot->calAt = -1;
        if (auto t = slot->nextTime())
            calSchedule(*slot, *t);
    }
    while (liveContexts > 0) {
        if (!pendingFailure_.empty())
            return failRun(pendingFailure_, /*watchdog=*/false);
        if (std::string why; hostAbortDue(why))
            return abortRun(why);
        // Validated peek: drop entries whose slot is no longer
        // schedulable, correct entries whose wake time moved, and stop
        // at the first entry matching its slot's current nextTime().
        // Every entry is a lower bound on its slot's wake (pushReady),
        // so the first match IS the global minimum, and the (cycle,
        // index) heap order picks the lowest PE index among ties -
        // decision-for-decision what the tick core's scan returns.
        PeSlot *best = nullptr;
        Cycle best_time = 0;
        while (!calendar_.empty()) {
            CalEntry top = calendar_.top();
            PeSlot &cand = *slots[static_cast<size_t>(top.pe)];
            if (top.at != cand.calAt) {
                // Superseded duplicate: a lower registration (or an
                // act) replaced this entry while it was buried.
                calendar_.pop();
                continue;
            }
            auto t = cand.nextTime();
            if (!t) {
                calendar_.pop();
                cand.calAt = -1;
                continue;
            }
            if (*t != top.at) {
                calendar_.pop();
                cand.calAt = -1;
                calSchedule(cand, *t);
                continue;
            }
            best = &cand;
            best_time = top.at;
            break;
        }
        // The guard sequence below must stay in lock-step with
        // runLoopTick: same conditions, same order, same exits. Guards
        // that `continue` leave the validated top in place; it is
        // re-validated (and survives or is corrected) next iteration.
        if (killArmed_ && best &&
            best_time >= config_.faultPlan.killAt) {
            injectPeKill(config_.faultPlan.killAt);
            continue;
        }
        if (pendingDeadPe_ >= 0 && recoveryOn_ &&
            (!best || best_time >= deadDetectAt_)) {
            recoverDeadPe(deadDetectAt_);
            continue;
        }
        if (!best) {
            if (faults_) {
                if (traceEnabled())
                    std::cerr << dumpState();
                return failRun(
                    cat("deadlock: ", liveContexts,
                        " live contexts, none runnable (message lost "
                        "beyond the retry bound?)"),
                    /*watchdog=*/true);
            }
            fatal("deadlock: ", liveContexts,
                  " live contexts, none runnable\n", dumpState());
        }
        if (best_time > max_cycles) {
            result.completed = false;
            result.failureReason =
                cat("cycle limit reached (", max_cycles, ")");
            replayable_ = false;
            finalizeRun(result);
            if (!config_.flightPath.empty())
                writeFlightDump(config_.flightPath,
                                result.failureReason);
            return result;
        }
        if (watchdog > 0 && best_time - lastProgress_ > watchdog)
            return failRun(
                cat("watchdog: no instruction retired in ", watchdog,
                    " cycles (last progress at cycle ", lastProgress_,
                    ")"),
                /*watchdog=*/true);
        bool replay_in_flight = false;
        for (auto &slot : slots)
            if (slot->replaying())
                replay_in_flight = true;
        if (nextCheckpointAt_ > 0 && best_time >= nextCheckpointAt_ &&
            pendingDeadPe_ < 0 && !replay_in_flight) {
            // Advance the schedule *before* capturing: the snapshot
            // then carries the next boundary, so a run warm-started
            // from it (durable resume or checkpoint replay) continues
            // to the next checkpoint instead of immediately
            // re-snapshotting the boundary it was saved at.
            while (nextCheckpointAt_ <= best_time)
                nextCheckpointAt_ += config_.recovery.checkpointEvery;
            snapshot();
            continue;
        }
        // Telemetry boundary (after checkpoints, exactly as in
        // runLoopTick; observational, so no continue).
        if (nextTelemetryAt_ > 0 && best_time >= nextTelemetryAt_ &&
            pendingDeadPe_ < 0 && !replay_in_flight)
            emitTelemetry(best_time);

        // Acting on the slot: consume its validated entry now and
        // re-register its next wake (if any) after the batch.
        PeSlot &slot = *best;
        calendar_.pop();
        slot.calAt = -1;
        if (!dispatch(slot)) {
            if (auto t = slot.nextTime())
                calSchedule(slot, *t);
            continue;
        }
        runBatchEvent(slot, max_cycles, 0);
        if (auto t = slot.nextTime())
            calSchedule(slot, *t);
    }

    result.completed = true;
    replayable_ = false;
    finalizeRun(result);
    return result;
}

void
System::runBatchEvent(PeSlot &slot, Cycle max_cycles, int first_step)
{
    if (recoveryOn_)
        memory_->setUndoLog(&slot.undoLog);

    for (int batch = first_step; batch < 16; ++batch) {
        Cycle before = slot.clock;
        StepResult step = slot.pe->stepFast();
        slot.clock += step.cycles;
        slot.busyCycles += slot.clock - before;
        if (step.status != StepStatus::Blocked)
            lastProgress_ = std::max(lastProgress_, slot.clock);
        if (step.status == StepStatus::Executed) {
            if (slot.clock > max_cycles)
                break;
            continue;
        }
        if (step.status == StepStatus::ContextEnd) {
            slot.clock += config_.exitCycles;
            slot.switchCycles += config_.exitCycles;
            finishContext(slot);
        } else if (step.status == StepStatus::Blocked) {
            if (slot.blockUntil) {
                Context &ctx = contexts[slot.running];
                ctx.readyAt = *slot.blockUntil;
                CtxId id = slot.running;
                park(slot, CtxStatus::BlockedTime);
                contexts[id].status = CtxStatus::Ready;
                pushReady(slot, contexts[id].readyAt, id);
                slot.blockUntil.reset();
            } else if (slot.readyQ.empty()) {
                Context &ctx = contexts[slot.running];
                ctx.status = CtxStatus::BlockedChannel;
                recordResidency(slot);
                tracer_.peBusy(slot.spanStart, slot.clock,
                               slot.index, ctx.id);
                tracer_.ctxPark(slot.clock, slot.index, ctx.id,
                                trace::ParkReason::Resident);
                slot.residentBlocked = slot.running;
                slot.running = msg::kNoCtx;
            } else {
                park(slot, CtxStatus::BlockedChannel);
            }
        } else {
            panic("fret/rett executed inside a kernel-managed "
                  "context");
        }
        break;
    }
    if (recoveryOn_)
        memory_->setUndoLog(nullptr);
}

bool
System::speculativelyRunning(const Context &ctx) const
{
    // Running, but only because an uncommitted speculation record on
    // its home slot dispatched it: the oldest uncommitted record saw
    // the slot idle, so the dispatch is staged, not yet sequential
    // history. (If the dispatch had already committed, the oldest
    // uncommitted record would have found the slot running.)
    const PeSlot &slot = *slots[static_cast<size_t>(ctx.homePe)];
    return !slot.specRecs.empty() && slot.running == ctx.id &&
           !slot.specRecs.front().hadRunningBefore;
}

bool
System::dispatchSpec(PeSlot &slot, SpecRec &rec)
{
    if (slot.dead)
        return false;
    rec.hadRunningBefore = slot.running != msg::kNoCtx;
    if (rec.hadRunningBefore)
        return true;
    if (slot.readyQ.empty())
        return false;
    auto entry = slot.readyQ.top();
    Context &ctx = contexts[entry.ctx];
    if (ctx.status != CtxStatus::Ready)
        // Stale or superseded entry. The sequential core skips these
        // by popping, which changes the queue the drain will see;
        // speculation must not guess, so it stops here having consumed
        // nothing and leaves the decision to the drain's live path.
        return false;
    slot.readyQ.pop();
    rec.poppedEntry = true;
    slot.clock = std::max(slot.clock, entry.readyAt);
    rec.readyWait =
        static_cast<std::uint64_t>(slot.clock - entry.readyAt);

    if (slot.residentBlocked == ctx.id) {
        slot.residentBlocked = msg::kNoCtx;
        ctx.status = CtxStatus::Running;
        slot.running = ctx.id;
        slot.spanStart = slot.clock;
        rec.residentResume = true;
        rec.dispatchCtx = ctx.id;
        rec.dispatchAt = slot.clock;
        return true;
    }
    if (slot.residentBlocked != msg::kNoCtx) {
        // evictResident, with the counter bumps staged for the drain.
        Context &resident = contexts[slot.residentBlocked];
        Cycle cost = slot.pe->rollOut() + config_.contextSaveCycles;
        slot.clock += cost;
        slot.switchCycles += cost;
        resident.regs = slot.pe->saveContext();
        slot.residentBlocked = msg::kNoCtx;
        ++rec.switchesDelta;
        rec.evicted = true;
        commitSpan(slot);
    }
    slot.clock += config_.contextLoadCycles;
    slot.switchCycles += config_.contextLoadCycles;
    ctx.status = CtxStatus::Running;
    slot.running = ctx.id;
    slot.spanStart = slot.clock;
    slot.pe->loadContext(ctx.regs);
    if (recoveryOn_) {
        slot.hostLog = std::move(ctx.pendingReplay);
        ctx.pendingReplay.clear();
        slot.logCursor = 0;
        slot.logOverflow = false;
        slot.undoLog.clear();
    }
    ++rec.switchesDelta;
    rec.dispatchCtx = ctx.id;
    rec.dispatchAt = slot.clock;
    return true;
}

void
System::specSlot(PeSlot &slot, Cycle window_end, Cycle spec_horizon,
                 Cycle max_cycles)
{
    // Runs on a gang worker thread, touching only this slot, its
    // contexts, their memory pages, and the thread-local undo
    // attachment. Host operations are deferred by the PE before any
    // architectural effect, so every speculated step is pure compute:
    // the only possible outcomes are Executed and Deferred.
    //
    // Two horizons govern how far ahead this may run. A *dispatch*
    // consults the ready queue, and the queue is only guaranteed to
    // match the sequential core's within the lookahead window: any
    // entry a drain act of this window still pushes lands at or after
    // the window end with a strictly later readyAt than the entry a
    // sub-window dispatch pops, so the pop is unaffected. Dispatches
    // are therefore limited to window_end. A *running* context,
    // however, never touches the queue again until its next host op -
    // its batches are pure slot-local compute wherever they start - so
    // continuation records may be banked out to spec_horizon (bounded
    // by kSpecBankRecords and the cycle budget) and committed by the
    // drains of later windows without another gang round. The caller
    // collapses spec_horizon to window_end whenever a time-triggered
    // guard (watchdog, periodic checkpoint) needs window-exact state.
    //
    // Bank bound: one visit appends at most this many records, so a
    // compute-bound (or non-terminating) context cannot grow the
    // record queue without limit between commits.
    constexpr std::size_t kSpecBankRecords = 256;
    if (!slot.specRecs.empty())
        // Banked records are still awaiting commit (and the last one
        // may be a deferred host op that must execute live first);
        // speculating further from post-bank state would double-run
        // the continuation. The drain empties the bank; a later round
        // re-banks.
        return;
    slot.pe->setDeferHostOps(true);
    while (slot.specRecs.size() < kSpecBankRecords) {
        auto t = slot.nextTime();
        if (!t)
            break;
        if (*t >= (slot.running != msg::kNoCtx ? spec_horizon
                                               : window_end))
            break;
        SpecRec rec;
        rec.start = *t;
        if (!dispatchSpec(slot, rec))
            break;
        bool stop = false;
        if (recoveryOn_)
            memory_->setUndoLog(&slot.undoLog);
        for (int batch = 0; batch < 16; ++batch) {
            rec.stepsDone = batch;
            Cycle before = slot.clock;
            StepResult step;
            try {
                step = slot.pe->stepFast();
            } catch (...) {
                // Replayed at this record's drain position, so the
                // diagnostic surfaces in sequential order.
                rec.error = std::current_exception();
                stop = true;
                break;
            }
            if (step.status == StepStatus::Deferred) {
                // Host op boundary: the drain re-executes this step
                // live (runBatchEvent resumes at stepsDone). No
                // further speculation on this slot - the op's outcome
                // decides what the queue looks like next.
                rec.deferred = true;
                stop = true;
                break;
            }
            slot.clock += step.cycles;
            slot.busyCycles += slot.clock - before;
            rec.lastProgress = slot.clock;
            rec.stepsDone = batch + 1;
            if (slot.clock > max_cycles)
                break;
        }
        slot.specRecs.push_back(std::move(rec));
        if (stop)
            break;
    }
    slot.pe->setDeferHostOps(false);
    if (recoveryOn_)
        memory_->setUndoLog(nullptr);
}

void
System::commitSpec(PeSlot &slot, Cycle max_cycles)
{
    // Replay one record's staged system-global effects at its drain
    // position - the exact order the sequential core would have
    // produced them in.
    SpecRec rec = std::move(slot.specRecs.front());
    slot.specRecs.pop_front();
    if (rec.readyWait) {
        stats_.record("sys.ready_wait", *rec.readyWait);
        stats_.scoped(slot.scope).record("ready_wait", *rec.readyWait);
    }
    if (rec.residentResume)
        stats_.inc("sys.resident_resumes");
    if (rec.evicted)
        stats_.inc("sys.evictions");
    switches += static_cast<std::uint64_t>(rec.switchesDelta);
    if (rec.dispatchCtx != static_cast<CtxId>(-1))
        tracer_.ctxDispatch(rec.dispatchAt, slot.index,
                            rec.dispatchCtx);
    if (rec.lastProgress >= 0)
        lastProgress_ = std::max(lastProgress_, rec.lastProgress);
    if (rec.error)
        std::rethrow_exception(rec.error);
    if (rec.deferred)
        // Continuation: finish the interrupted batch live, starting at
        // the deferred step. The host op now executes against the real
        // kernel, in order.
        runBatchEvent(slot, max_cycles, rec.stepsDone);
}

RunResult
System::runLoopThreaded(Cycle max_cycles)
{
    RunResult result;
    // runLoop routes fault-injected runs to the sequential loop, so
    // the fault-driven 1M-cycle watchdog default never applies here.
    const Cycle watchdog = config_.watchdogCycles;
    struct ThreadedFlag
    {
        bool &flag;
        explicit ThreadedFlag(bool &f) : flag(f) { flag = true; }
        ~ThreadedFlag() { flag = false; }
    } threaded(threadedRun_);
    if (!gang_)
        gang_ = std::make_unique<WorkerGang>(
            static_cast<unsigned>(partitions_.size()));

    while (liveContexts > 0) {
        if (!pendingFailure_.empty())
            return failRun(pendingFailure_, /*watchdog=*/false);
        if (std::string why; hostAbortDue(why))
            return abortRun(why);
        // Window top: the global minimum (virtual time, PE index) over
        // all slots - the same selection the sequential calendar peek
        // makes, found by scan since the calendar is idle here. A slot
        // holding banked speculation records is ordered by its oldest
        // *uncommitted* record's start, not by its live clock, which
        // has already run ahead of the committed timeline.
        PeSlot *best = nullptr;
        Cycle best_time = 0;
        for (auto &slot : slots) {
            std::optional<Cycle> t;
            if (!slot->specRecs.empty())
                t = slot->specRecs.front().start;
            else
                t = slot->nextTime();
            if (t && (!best || *t < best_time)) {
                best = slot.get();
                best_time = *t;
            }
        }
        // Guard sequence in lock-step with runLoopEvent. The kill and
        // lease guards are structurally dead (they require fault
        // injection, which runLoop routes away) but kept so the three
        // loops stay textually parallel.
        if (killArmed_ && best &&
            best_time >= config_.faultPlan.killAt) {
            injectPeKill(config_.faultPlan.killAt);
            continue;
        }
        if (pendingDeadPe_ >= 0 && recoveryOn_ &&
            (!best || best_time >= deadDetectAt_)) {
            recoverDeadPe(deadDetectAt_);
            continue;
        }
        if (!best)
            fatal("deadlock: ", liveContexts,
                  " live contexts, none runnable\n", dumpState());
        if (best_time > max_cycles) {
            result.completed = false;
            result.failureReason =
                cat("cycle limit reached (", max_cycles, ")");
            replayable_ = false;
            finalizeRun(result);
            if (!config_.flightPath.empty())
                writeFlightDump(config_.flightPath,
                                result.failureReason);
            return result;
        }
        if (watchdog > 0 && best_time - lastProgress_ > watchdog)
            return failRun(
                cat("watchdog: no instruction retired in ", watchdog,
                    " cycles (last progress at cycle ", lastProgress_,
                    ")"),
                /*watchdog=*/true);
        bool replay_in_flight = false;
        for (auto &slot : slots)
            if (slot->replaying())
                replay_in_flight = true;
        if (nextCheckpointAt_ > 0 && best_time >= nextCheckpointAt_ &&
            pendingDeadPe_ < 0 && !replay_in_flight) {
            // Advance the schedule *before* capturing: the snapshot
            // then carries the next boundary, so a run warm-started
            // from it (durable resume or checkpoint replay) continues
            // to the next checkpoint instead of immediately
            // re-snapshotting the boundary it was saved at.
            while (nextCheckpointAt_ <= best_time)
                nextCheckpointAt_ += config_.recovery.checkpointEvery;
            snapshot();
            continue;
        }
        // Telemetry boundary. The window cap below guarantees the
        // boundary is a window top, so the registry state sampled here
        // is exactly what the sequential loop would sample: every
        // speculation record up to this point has been committed.
        if (nextTelemetryAt_ > 0 && best_time >= nextTelemetryAt_ &&
            pendingDeadPe_ < 0 && !replay_in_flight)
            emitTelemetry(best_time);

        // Form the window [T0, W). W is capped by the lookahead and by
        // every time-triggered guard above, so each guard can only
        // fire at a window top - exactly where the sequential loop,
        // which re-evaluates them between batches, would fire it (each
        // cap exceeds T0 because its guard just passed).
        Cycle window_end = best_time + lookahead_;
        window_end = std::min(window_end, max_cycles + 1);
        if (killArmed_)
            window_end =
                std::min(window_end, config_.faultPlan.killAt);
        if (pendingDeadPe_ >= 0 && recoveryOn_)
            window_end = std::min(window_end, deadDetectAt_);
        if (nextCheckpointAt_ > 0)
            window_end = std::min(window_end, nextCheckpointAt_);
        if (nextTelemetryAt_ > 0)
            window_end = std::min(window_end, nextTelemetryAt_);
        if (watchdog > 0)
            window_end =
                std::min(window_end, lastProgress_ + watchdog + 1);
        panicIf(window_end <= best_time,
                "PDES window collapsed (guard/cap inconsistency)");

        // Speculation round. When no time-triggered guard needs
        // window-exact slot state (no watchdog, no periodic
        // checkpoints, no telemetry boundaries - all would have to
        // preempt or sample slots whose in-place state had run
        // ahead), a running context may
        // be banked all the way to the cycle budget: it never consults
        // the ready queue again until its next host op, so its batches
        // are pure slot-local compute wherever they start, and the
        // drain commits them window by window without another gang
        // round. Dispatches stay bounded by the window (they consult
        // the queue). Candidates are slots with no banked records that
        // can make speculative progress; fork the gang only when at
        // least two exist - a serial phase (the common startup and
        // drain-out shape) skips the barrier entirely and runs live
        // below.
        const bool banking = watchdog == 0 && nextCheckpointAt_ == 0 &&
                             nextTelemetryAt_ == 0;
        const Cycle spec_horizon =
            banking ? max_cycles + 1 : window_end;
        int active = 0;
        for (auto &slot : slots) {
            if (!slot->specRecs.empty() || slot->dead)
                continue;
            bool candidate;
            if (slot->running != msg::kNoCtx) {
                candidate = slot->clock < spec_horizon;
            } else {
                auto t = slot->nextTime();
                candidate = t && *t < window_end;
            }
            if (candidate)
                ++active;
        }
        if (active > 1)
            gang_->run([&](unsigned w) {
                for (int pe : partitions_[w])
                    specSlot(*slots[static_cast<size_t>(pe)],
                             window_end, spec_horizon, max_cycles);
            });

        // Ordered drain: replay the window in the sequential loop's
        // exact (time, PE index) order. One heap entry per slot; a
        // slot's key is its oldest uncommitted record's start time, or
        // its live nextTime() when speculation stopped short of the
        // window end. Banked records starting at or past the window
        // end are left for later windows - committing them now would
        // interleave their side effects ahead of other slots' sub-W
        // acts. Keys are stable while queued: a foreign act can only
        // push ready entries at or after W onto this slot (bus
        // lookahead), which cannot lower a sub-W key, and the slot's
        // own key is re-computed after each of its own items.
        struct DrainItem
        {
            Cycle at;
            int pe;
            bool operator>(const DrainItem &o) const
            {
                if (at != o.at)
                    return at > o.at;
                return pe > o.pe;
            }
        };
        std::priority_queue<DrainItem, std::vector<DrainItem>,
                            std::greater<>>
            drain;
        auto keyOf = [&](PeSlot &slot) -> std::optional<Cycle> {
            if (!slot.specRecs.empty()) {
                Cycle at = slot.specRecs.front().start;
                if (at < window_end)
                    return at;
                return std::nullopt;
            }
            if (auto t = slot.nextTime(); t && *t < window_end)
                return t;
            return std::nullopt;
        };
        for (auto &slot : slots)
            if (auto k = keyOf(*slot))
                drain.push({*k, slot->index});
        while (!drain.empty()) {
            if (!pendingFailure_.empty())
                break;  // surfaced as failRun at the loop top
            DrainItem item = drain.top();
            drain.pop();
            PeSlot &slot = *slots[static_cast<size_t>(item.pe)];
            if (!slot.specRecs.empty()) {
                commitSpec(slot, max_cycles);
            } else if (dispatch(slot)) {
                runBatchEvent(slot, max_cycles, 0);
            }
            if (auto k = keyOf(slot))
                drain.push({*k, slot.index});
        }
    }

    result.completed = true;
    replayable_ = false;
    finalizeRun(result);
    return result;
}

void
System::injectPeKill(Cycle at)
{
    killArmed_ = false;
    int victim = config_.faultPlan.killPe;
    victim = victim >= 0 ? victim % config_.numPes
                         : config_.numPes - 1;
    PeSlot &slot = *slots[static_cast<size_t>(victim)];
    slot.dead = true;
    slot.clock = std::max(slot.clock, at);
    if (faults_)
        faults_->notePlanned(fault::kPeKill);
    stats_.inc("fault.pe_kill");
    if (traceEnabled())
        std::cerr << "[t=" << at << "] KILL pe" << victim << "\n";
    tracer_.faultInject(at, victim, fault::kPeKill,
                        static_cast<std::uint64_t>(at));
    if (recoveryOn_) {
        pendingDeadPe_ = victim;
        deadDetectAt_ = at + config_.recovery.leaseCycles;
    }
    // Without recovery the PE just falls silent; the starvation or
    // watchdog exit reports the resulting stall as a clean failure.
}

void
System::recoverDeadPe(Cycle at)
{
    const int dead_pe = pendingDeadPe_;
    pendingDeadPe_ = -1;
    PeSlot &slot = *slots[static_cast<size_t>(dead_pe)];
    stats_.inc("fault.pekill.detected");
    if (traceEnabled())
        std::cerr << "[t=" << at << "] RECOVER-DEAD pe" << dead_pe
                  << " running=" << static_cast<long>(slot.running)
                  << " resident="
                  << static_cast<long>(slot.residentBlocked) << "\n";

    int alive = 0;
    for (auto &s : slots)
        if (!s->dead)
            ++alive;
    if (alive == 0) {
        pendingFailure_ = cat("pekill: PE ", dead_pe,
                              " fail-stopped and no PE survives");
        return;
    }

    // The context whose registers died with the PE (running, or
    // resident with a lazily deferred save) restarts from its
    // dispatch-time register image: roll its journaled memory stores
    // back and queue its host-op log for side-effect-free replay.
    CtxId loaded = slot.running != msg::kNoCtx ? slot.running
                                               : slot.residentBlocked;
    if (loaded != msg::kNoCtx) {
        Context &ctx = contexts[loaded];
        if (slot.logOverflow || slot.undoLog.overflowed) {
            // The span outran its journal bound, so a span restart
            // would be unsound. Fall back to checkpoint replay (or a
            // clean failure when none exists).
            pendingFailure_ =
                cat("pekill: context ", loaded, " ran past its span "
                    "journal bound; span restart impossible");
            slot.running = msg::kNoCtx;
            slot.residentBlocked = msg::kNoCtx;
            slot.readyQ = {};
            commitSpan(slot);
            return;
        }
        memory_->applyUndo(slot.undoLog);
        ctx.pendingReplay = std::move(slot.hostLog);
        if (ctx.status == CtxStatus::Running)
            ctx.status = CtxStatus::Ready;
        // A resident-blocked context stays BlockedChannel: the wake it
        // is waiting for will find it at its new home.
    }
    slot.running = msg::kNoCtx;
    slot.residentBlocked = msg::kNoCtx;
    slot.blockUntil.reset();
    slot.readyQ = {};
    commitSpan(slot);

    // Re-home every live context stranded on the dead PE. Shipping a
    // ready descriptor to its new home rides the (still faulty) ring
    // like any other kernel message.
    std::uint64_t moved = 0;
    const int dead_shard = numShards() > 1 ? shardOfPe(dead_pe) : 0;
    for (Context &ctx : contexts) {
        if (ctx.homePe != dead_pe || ctx.status == CtxStatus::Done)
            continue;
        // Sharded kernel: prefer a survivor in the dead PE's own shard
        // so re-homing does not scatter a ring's working set across
        // the backbone; placeSharded spills only when every shard-local
        // PE is worse than the global best (or the shard is wiped out).
        int target = numShards() > 1 ? placeSharded(dead_shard)
                                     : placeSurvivor();
        ctx.homePe = target;
        if (numShards() > 1) {
            int to = shardOfPe(target);
            if (to != dead_shard) {
                --shardCtxLive_[static_cast<size_t>(dead_shard)];
                ++shardCtxLive_[static_cast<size_t>(to)];
                channelShard_[ctx.inChan] = to;
                stats_.inc("sys.shard_migrations");
                tracer_.ctxMigrate(at, target, ctx.id, dead_pe);
            }
        }
        ++moved;
        if (ctx.status != CtxStatus::Ready)
            continue;  // Blocked: its wake lands on the new home.
        BusDelivery shipped = bus.deliver(dead_pe, target, at);
        if (!shipped.delivered) {
            stats_.inc("fault.ctx_ship_lost");
            continue;
        }
        ctx.readyAt = std::max(ctx.readyAt, shipped.at);
        pushReady(*slots[static_cast<size_t>(target)], ctx.readyAt,
                  ctx.id);
        if (shipped.duplicated)
            pushReady(*slots[static_cast<size_t>(target)],
                      shipped.duplicateAt, ctx.id);
    }
    if (moved > 0)
        stats_.inc("fault.pekill.recovered", moved);
    tracer_.faultRecover(at, dead_pe, fault::kPeKill, moved);
}

void
System::snapshot()
{
    // Quiesce: force every loaded context out so all register state
    // lives in the kernel's Context records.
    for (auto &slot : slots) {
        if (slot->dead) {
            panicIf(slot->running != msg::kNoCtx ||
                        slot->residentBlocked != msg::kNoCtx,
                    "snapshot during an undetected PE fail-stop");
            continue;
        }
        if (slot->running != msg::kNoCtx)
            preemptRunning(*slot);
        else if (slot->residentBlocked != msg::kNoCtx)
            evictResident(*slot);
    }
    stats_.inc("sys.checkpoints");
    if (traceEnabled()) {
        Cycle maxc = 0;
        for (auto &s : slots) maxc = std::max(maxc, s->clock);
        std::cerr << "[t=" << maxc << "] SNAPSHOT live=" << liveContexts
                  << "\n";
    }
    auto cp = std::make_unique<Checkpoint>();
    memory_->snapshotTo(cp->memory);
    cp->contexts = contexts;
    cp->freePages = freePages;
    cp->nextChannel = nextChannel;
    cp->heapNext = heapNext;
    cp->rrNext = rrNext;
    cp->shardRr = shardRr_;
    cp->shardCtxLive = shardCtxLive_;
    cp->channelShard = channelShard_;
    cp->liveContexts = liveContexts;
    cp->switches = switches;
    cp->killArmed = killArmed_;
    cp->pendingDeadPe = pendingDeadPe_;
    cp->deadDetectAt = deadDetectAt_;
    cp->nextCheckpointAt = nextCheckpointAt_;
    cp->lastProgress = lastProgress_;
    cp->nextTelemetryAt = nextTelemetryAt_;
    cp->stats = stats_;
    cp->cache = cache.snapshot();
    cp->bus = bus.snapshot();
    cp->trace = tracer_.mark();
    for (auto &slot : slots) {
        // Event core: fold pending stepFast tallies in before the
        // capture (no-op on the tick core, whose deltas stay zero).
        slot->pe->flushStats();
        cp->slotStates.push_back({slot->clock, slot->busyCycles,
                                  slot->kernelCycles,
                                  slot->switchCycles, slot->dead,
                                  slot->readyQ, slot->pe->stats()});
    }
    checkpoint_ = std::move(cp);
    // Durable persistence point: occamc's --checkpoint-file sink
    // serializes the fresh checkpoint here, so every boot/periodic
    // snapshot boundary is also a crash-recovery point on disk.
    if (checkpointSink_)
        checkpointSink_(*this);
    // Flight recorder: note the boundary, and refresh the on-disk
    // black box whenever this snapshot was durably persisted - a
    // kill -9 (which no handler can catch) then still leaves a
    // parseable post-mortem next to the checkpoint file.
    Cycle flight_now = 0;
    for (auto &s : slots)
        flight_now = std::max(flight_now, s->clock);
    flight_.checkpoint(flight_now, static_cast<int>(liveContexts));
    if (checkpointSink_ && !config_.flightPath.empty())
        writeFlightDump(config_.flightPath, "checkpoint");
}

bool
System::canRestore() const
{
    return checkpoint_ != nullptr;
}

void
System::restore()
{
    panicIf(!checkpoint_, "restore() without a prior snapshot()");
    if (traceEnabled())
        std::cerr << "RESTORE\n";
    const Checkpoint &cp = *checkpoint_;
    memory_->restoreBytes(cp.memory);
    contexts = cp.contexts;
    freePages = cp.freePages;
    nextChannel = cp.nextChannel;
    heapNext = cp.heapNext;
    rrNext = cp.rrNext;
    shardRr_ = cp.shardRr;
    shardCtxLive_ = cp.shardCtxLive;
    channelShard_ = cp.channelShard;
    liveContexts = cp.liveContexts;
    switches = cp.switches;
    killArmed_ = cp.killArmed;
    pendingDeadPe_ = cp.pendingDeadPe;
    deadDetectAt_ = cp.deadDetectAt;
    nextCheckpointAt_ = cp.nextCheckpointAt;
    lastProgress_ = cp.lastProgress;
    nextTelemetryAt_ = cp.nextTelemetryAt;
    stats_ = cp.stats;
    cache.restore(cp.cache);
    bus.restore(cp.bus);
    tracer_.rewind(cp.trace);
    for (std::size_t i = 0; i < slots.size(); ++i) {
        PeSlot &slot = *slots[i];
        const Checkpoint::SlotState &ss = cp.slotStates[i];
        slot.clock = ss.clock;
        slot.busyCycles = ss.busyCycles;
        slot.kernelCycles = ss.kernelCycles;
        slot.switchCycles = ss.switchCycles;
        slot.dead = ss.dead;
        slot.readyQ = ss.readyQ;
        slot.pe->stats() = ss.peStats;
        slot.pe->resetStatDeltas();
        slot.spanStart = slot.clock;
        slot.running = msg::kNoCtx;
        slot.residentBlocked = msg::kNoCtx;
        slot.blockUntil.reset();
        slot.hostLog.clear();
        slot.logCursor = 0;
        slot.logOverflow = false;
        slot.undoLog.clear();
    }
    pendingFailure_.clear();
    replayable_ = false;
    // Note: the fault injector's streams are deliberately NOT part of
    // the checkpoint. A replay draws a fresh (still deterministic)
    // fault schedule, so a deterministic failure is not simply
    // re-executed forever; injected counters keep accumulating across
    // replays.
    // The flight recorder deliberately does NOT rewind: it is a
    // record of what the host actually executed, abandoned replay
    // timelines included - exactly what a post-mortem wants.
    Cycle flight_now = 0;
    for (auto &s : slots)
        flight_now = std::max(flight_now, s->clock);
    flight_.noteRestore(flight_now);
}

// ---------------------------------------------------------------------------
// Durable checkpoints (see DESIGN.md "Durable checkpoints & resume").
//
// The on-disk image is the in-memory Checkpoint, serialized as a
// versioned container of individually-checksummed sections and written
// atomically. The fault injector's stream state IS persisted (unlike
// the in-memory restore note above): a cross-process resume continues
// the decision streams exactly where the snapshot left them, which is
// what makes a resumed fault-injected run byte-identical to an
// uninterrupted one from the snapshot point on - including any
// in-memory replays either run performs later, since both machines
// advance the same streams identically.
// ---------------------------------------------------------------------------

namespace {

constexpr const char *kCheckpointMagic = "QMCKPT01";
constexpr std::uint32_t kCheckpointVersion = 1;

} // namespace

std::string
configFingerprint(const SystemConfig &c)
{
    const pe::PeTiming &t = c.peTiming;
    const fault::RecoveryPlan &r = c.recovery;
    return cat(
        "pes=", c.numPes, ";rings=", c.busRings, ";parts=", c.busPartitions,
        ";topoexp=", int(c.busTopologyExplicit), ";mem=", c.memoryBytes,
        ";page=", c.pageWords, ";live=", c.maxLiveContexts,
        ";depth=", c.channelDepth, ";place=", int(c.placement),
        ";fork=", c.forkCycles, ";exit=", c.exitCycles,
        ";query=", c.queryCycles, ";alloc=", c.allocCycles,
        ";cload=", c.contextLoadCycles, ";csave=", c.contextSaveCycles,
        ";tim=", t.simpleCycles, ",", t.immWordCycles, ",", t.memoryCycles,
        ",", t.branchTakenCycles, ",", t.channelCycles, ",", t.trapCycles,
        ",", t.rollOutCyclesPerReg, ";wd=", c.watchdogCycles,
        ";faults=", fault::toString(c.faultPlan),
        ";rec=", int(r.enabled), ",", r.maxResends, ",", r.ackTimeout, ",",
        r.leaseCycles, ",", r.nackPenalty, ",", r.checkpointEvery, ",",
        r.maxReplays, ",", r.maxLogOps, ",", r.maxUndoWords,
        ";trace=", int(c.traceConfig.enabled), ",", c.traceConfig.maxEvents);
}

std::string
System::configFingerprint() const
{
    return cat(mp::configFingerprint(config_), ";code=",
               persist::crc32(code_.words.data(),
                              code_.words.size() * sizeof(Word)));
}

persist::Status
System::saveCheckpoint(const std::string &path) const
{
    using persist::ErrCode;
    using persist::Status;
    if (!checkpoint_)
        return Status::error(
            ErrCode::Mismatch,
            "no snapshot to persist (checkpoints require recovery mode)");
    const Checkpoint &cp = *checkpoint_;
    std::vector<persist::Section> sections;

    {
        persist::Encoder enc;
        enc.str(configFingerprint());
        sections.push_back({"META", enc.take()});
    }
    {
        persist::Encoder enc;
        enc.u64(cp.contexts.size());
        for (const Context &ctx : cp.contexts)
            persist::encodeContext(enc, ctx);
        enc.u64(cp.freePages.size());
        for (Addr p : cp.freePages)
            enc.u32(p);
        enc.u32(cp.nextChannel);
        enc.u32(cp.heapNext);
        enc.i64(cp.rrNext);
        enc.u64(cp.shardRr.size());
        for (int v : cp.shardRr)
            enc.i64(v);
        enc.u64(cp.shardCtxLive.size());
        for (std::uint64_t v : cp.shardCtxLive)
            enc.u64(v);
        enc.u64(cp.channelShard.size());
        for (const auto &[chan, shard] : cp.channelShard) {
            enc.u32(chan);
            enc.i64(shard);
        }
        enc.u64(cp.liveContexts);
        enc.u64(cp.switches);
        enc.u8(cp.killArmed ? 1 : 0);
        enc.i64(cp.pendingDeadPe);
        enc.i64(cp.deadDetectAt);
        enc.i64(cp.nextCheckpointAt);
        enc.i64(cp.lastProgress);
        sections.push_back({"KERN", enc.take()});
    }
    {
        persist::Encoder enc;
        persist::encodeSparseMemory(enc, cp.memory);
        sections.push_back({"MEMS", enc.take()});
    }
    {
        persist::Encoder enc;
        persist::encodeStatSet(enc, cp.stats);
        sections.push_back({"STAT", enc.take()});
    }
    {
        persist::Encoder enc;
        persist::encodeCacheSnapshot(enc, cp.cache);
        sections.push_back({"CACH", enc.take()});
    }
    {
        persist::Encoder enc;
        persist::encodeBusSnapshot(enc, cp.bus);
        sections.push_back({"BUSS", enc.take()});
    }
    {
        persist::Encoder enc;
        enc.u64(cp.slotStates.size());
        for (const Checkpoint::SlotState &ss : cp.slotStates) {
            enc.i64(ss.clock);
            enc.i64(ss.busyCycles);
            enc.i64(ss.kernelCycles);
            enc.i64(ss.switchCycles);
            enc.u8(ss.dead ? 1 : 0);
            // Flatten the ready queue by draining a copy. Rebuilding
            // by pushes is order-exact: entries are totally ordered by
            // (readyAt, ctx), so heap pop order is reproducible.
            auto q = ss.readyQ;
            enc.u64(q.size());
            while (!q.empty()) {
                enc.i64(q.top().readyAt);
                enc.u32(q.top().ctx);
                q.pop();
            }
            persist::encodeStatSet(enc, ss.peStats);
        }
        sections.push_back({"SLOT", enc.take()});
    }
    {
        // Recorder content up to the checkpoint mark, so a resumed
        // process exports the same trace an uninterrupted one would.
        persist::Encoder enc;
        persist::TraceState ts;
        const auto &events = tracer_.events();
        std::size_t upto = std::min(cp.trace.events, events.size());
        ts.events.assign(events.begin(),
                         events.begin() + static_cast<std::ptrdiff_t>(upto));
        ts.dropped = cp.trace.dropped;
        ts.kindCounts = cp.trace.kindCounts;
        persist::encodeTraceState(enc, ts);
        sections.push_back({"TRAC", enc.take()});
    }
    {
        persist::Encoder enc;
        enc.u8(faults_ ? 1 : 0);
        if (faults_) {
            fault::FaultInjector::PersistState s = faults_->persistState();
            for (std::uint64_t v : s.streams)
                enc.u64(v);
            enc.u64(s.payload);
            for (std::uint64_t v : s.counts)
                enc.u64(v);
            enc.u64(s.injected);
        }
        sections.push_back({"FALT", enc.take()});
    }

    std::vector<std::uint8_t> image = persist::buildContainer(
        kCheckpointMagic, kCheckpointVersion, sections);
    return persist::writeFileAtomic(path, image);
}

persist::Status
System::loadCheckpoint(const std::string &path)
{
    using persist::ErrCode;
    using persist::Status;
    if (booted)
        return Status::error(
            ErrCode::Mismatch,
            "loadCheckpoint is only valid on a system that has not run");
    std::vector<std::uint8_t> image;
    Status st = persist::readFile(path, image);
    if (!st.ok())
        return st;
    std::vector<persist::Section> sections;
    st = persist::parseContainer(image, kCheckpointMagic, kCheckpointVersion,
                                 sections);
    if (!st.ok())
        return st;

    auto find = [&](const char *tag) -> const persist::Section * {
        for (const auto &s : sections)
            if (s.tag == tag)
                return &s;
        return nullptr;
    };
    auto missing = [](const char *tag) {
        return Status::error(ErrCode::BadFormat,
                             cat("missing section ", tag));
    };
    auto bad = [](const char *tag, const std::string &why) {
        return Status::error(ErrCode::BadFormat,
                             cat("section ", tag, ": ", why));
    };

    const persist::Section *meta = find("META");
    if (!meta)
        return missing("META");
    {
        persist::Decoder dec(meta->payload);
        std::string fp = dec.str();
        if (!dec.ok())
            return bad("META", dec.error());
        std::string want = configFingerprint();
        if (fp != want)
            return Status::error(
                ErrCode::Mismatch,
                cat("checkpoint was written for a different configuration "
                    "(file: ", fp, " | machine: ", want, ")"));
    }

    // Decode every section into locals first: the machine mutates only
    // after the whole file has been decoded and validated, so a bad
    // checkpoint leaves this system cold and perfectly runnable.
    auto cp = std::make_unique<Checkpoint>();

    const persist::Section *kern = find("KERN");
    if (!kern)
        return missing("KERN");
    {
        persist::Decoder dec(kern->payload);
        std::size_t nctx = dec.length(dec.remaining());
        cp->contexts.reserve(nctx);
        for (std::size_t i = 0; i < nctx && dec.ok(); ++i)
            cp->contexts.push_back(persist::decodeContext(dec));
        std::size_t npages = dec.length(dec.remaining());
        cp->freePages.reserve(npages);
        for (std::size_t i = 0; i < npages && dec.ok(); ++i)
            cp->freePages.push_back(dec.u32());
        cp->nextChannel = dec.u32();
        cp->heapNext = dec.u32();
        cp->rrNext = static_cast<int>(dec.i64());
        std::size_t nrr = dec.length(dec.remaining());
        for (std::size_t i = 0; i < nrr && dec.ok(); ++i)
            cp->shardRr.push_back(static_cast<int>(dec.i64()));
        std::size_t nlive = dec.length(dec.remaining());
        for (std::size_t i = 0; i < nlive && dec.ok(); ++i)
            cp->shardCtxLive.push_back(dec.u64());
        std::size_t nshard = dec.length(dec.remaining());
        for (std::size_t i = 0; i < nshard && dec.ok(); ++i) {
            Word chan = dec.u32();
            int shard = static_cast<int>(dec.i64());
            if (dec.ok())
                cp->channelShard[chan] = shard;
        }
        cp->liveContexts = dec.u64();
        cp->switches = dec.u64();
        cp->killArmed = dec.u8() != 0;
        cp->pendingDeadPe = static_cast<int>(dec.i64());
        cp->deadDetectAt = dec.i64();
        cp->nextCheckpointAt = dec.i64();
        cp->lastProgress = dec.i64();
        if (!dec.ok())
            return bad("KERN", dec.error());
        if (!dec.atEnd())
            return bad("KERN", "trailing bytes");
        // Semantic validation: the CRC only proves the bytes were
        // written together, not that they describe this machine.
        std::uint64_t live = 0;
        for (std::size_t i = 0; i < cp->contexts.size(); ++i) {
            const Context &ctx = cp->contexts[i];
            if (ctx.id != i)
                return bad("KERN", cat("context ", i, " carries id ",
                                       ctx.id));
            if (ctx.homePe < 0 || ctx.homePe >= config_.numPes)
                return bad("KERN", cat("context ", i, " homed on PE ",
                                       ctx.homePe, " of a ",
                                       config_.numPes, "-PE machine"));
            if (ctx.status == CtxStatus::Running)
                return bad("KERN", cat("context ", i,
                                       " claims to be Running (snapshots "
                                       "are quiesced)"));
            if (ctx.status != CtxStatus::Done)
                ++live;
        }
        if (live != cp->liveContexts)
            return bad("KERN", cat("liveContexts says ", cp->liveContexts,
                                   ", context records say ", live));
        for (const auto &[chan, shard] : cp->channelShard)
            if (shard < 0 || shard >= numShards())
                return bad("KERN", cat("channel ", chan,
                                       " mapped to shard ", shard, " of ",
                                       numShards()));
        if (cp->pendingDeadPe >= config_.numPes)
            return bad("KERN", cat("pendingDeadPe ", cp->pendingDeadPe,
                                   " out of range"));
    }

    const persist::Section *mems = find("MEMS");
    if (!mems)
        return missing("MEMS");
    {
        persist::Decoder dec(mems->payload);
        cp->memory = persist::decodeSparseMemory(dec, memory_->size());
        if (!dec.ok())
            return bad("MEMS", dec.error());
        if (!dec.atEnd())
            return bad("MEMS", "trailing bytes");
    }

    const persist::Section *stat = find("STAT");
    if (!stat)
        return missing("STAT");
    {
        persist::Decoder dec(stat->payload);
        cp->stats = persist::decodeStatSet(dec);
        if (!dec.ok())
            return bad("STAT", dec.error());
        if (!dec.atEnd())
            return bad("STAT", "trailing bytes");
    }

    const persist::Section *cach = find("CACH");
    if (!cach)
        return missing("CACH");
    {
        persist::Decoder dec(cach->payload);
        cp->cache = persist::decodeCacheSnapshot(dec);
        if (!dec.ok())
            return bad("CACH", dec.error());
        if (!dec.atEnd())
            return bad("CACH", "trailing bytes");
    }

    const persist::Section *buss = find("BUSS");
    if (!buss)
        return missing("BUSS");
    {
        persist::Decoder dec(buss->payload);
        cp->bus = persist::decodeBusSnapshot(dec);
        if (!dec.ok())
            return bad("BUSS", dec.error());
        if (!dec.atEnd())
            return bad("BUSS", "trailing bytes");
        RingBus::Snapshot shape = bus.snapshot();
        if (cp->bus.partitionFree.size() != shape.partitionFree.size() ||
            cp->bus.bridgeFree.size() != shape.bridgeFree.size() ||
            cp->bus.backboneFree.size() != shape.backboneFree.size())
            return bad("BUSS", "ring shape does not match this topology");
    }

    const persist::Section *slot_sec = find("SLOT");
    if (!slot_sec)
        return missing("SLOT");
    {
        persist::Decoder dec(slot_sec->payload);
        std::size_t nslots = dec.length(dec.remaining());
        if (dec.ok() && nslots != slots.size())
            return bad("SLOT", cat("file has ", nslots,
                                   " PE slots, this machine has ",
                                   slots.size()));
        for (std::size_t i = 0; i < nslots && dec.ok(); ++i) {
            Checkpoint::SlotState ss;
            ss.clock = dec.i64();
            ss.busyCycles = dec.i64();
            ss.kernelCycles = dec.i64();
            ss.switchCycles = dec.i64();
            ss.dead = dec.u8() != 0;
            std::size_t nready = dec.length(dec.remaining());
            for (std::size_t r = 0; r < nready && dec.ok(); ++r) {
                Cycle readyAt = dec.i64();
                CtxId ctx = dec.u32();
                if (!dec.ok())
                    break;
                if (ctx >= cp->contexts.size())
                    return bad("SLOT", cat("ready entry names context ",
                                           ctx, " of ",
                                           cp->contexts.size()));
                ss.readyQ.push({readyAt, ctx});
            }
            ss.peStats = persist::decodeStatSet(dec);
            if (dec.ok())
                cp->slotStates.push_back(std::move(ss));
        }
        if (!dec.ok())
            return bad("SLOT", dec.error());
        if (!dec.atEnd())
            return bad("SLOT", "trailing bytes");
    }

    persist::TraceState ts;
    const persist::Section *trac = find("TRAC");
    if (!trac)
        return missing("TRAC");
    {
        persist::Decoder dec(trac->payload);
        ts = persist::decodeTraceState(dec);
        if (!dec.ok())
            return bad("TRAC", dec.error());
        if (!dec.atEnd())
            return bad("TRAC", "trailing bytes");
    }

    bool has_faults = false;
    fault::FaultInjector::PersistState fstate;
    const persist::Section *falt = find("FALT");
    if (!falt)
        return missing("FALT");
    {
        persist::Decoder dec(falt->payload);
        has_faults = dec.u8() != 0;
        if (has_faults) {
            for (std::uint64_t &v : fstate.streams)
                v = dec.u64();
            fstate.payload = dec.u64();
            for (std::uint64_t &v : fstate.counts)
                v = dec.u64();
            fstate.injected = dec.u64();
        }
        if (!dec.ok())
            return bad("FALT", dec.error());
        if (!dec.atEnd())
            return bad("FALT", "trailing bytes");
        if (has_faults != (faults_ != nullptr))
            return bad("FALT", "fault-injector presence does not match");
    }

    // Commit: everything decoded and validated; no failure paths below.
    if (faults_)
        faults_->restorePersistState(fstate);
    tracer_.restoreStream(std::move(ts.events), ts.dropped, ts.kindCounts);
    cp->trace = tracer_.mark();
    checkpoint_ = std::move(cp);
    booted = true;
    restore();
    // The telemetry schedule is host-side streaming state, not part
    // of the on-disk format: a durable resume re-aligns to the first
    // boundary after the resume point (restore() zeroed it from the
    // decoded checkpoint's default).
    if (config_.telemetryEvery > 0) {
        Cycle now = 0;
        for (auto &s : slots)
            now = std::max(now, s->clock);
        nextTelemetryAt_ =
            (now / config_.telemetryEvery + 1) * config_.telemetryEvery;
    }
    return Status::okStatus();
}

void
System::finalizeRun(RunResult &result)
{
    Cycle finish = 0;
    std::uint64_t instructions = 0;
    Cycle busy_total = 0, kernel_total = 0, switch_total = 0;
    for (auto &slot : slots) {
        // Event core: the per-PE registries are read (and merged)
        // below, so fold pending stepFast tallies in first.
        slot->pe->flushStats();
        finish = std::max(finish, slot->clock);
        instructions += slot->pe->stats().counter("pe.instructions");
        busy_total += slot->busyCycles;
        kernel_total += slot->kernelCycles;
        switch_total += slot->switchCycles;
        stats_.merge(slot->pe->stats());
        // Per-PE views: the same PE-local stats again under a "peN."
        // prefix, plus this slot's cycle breakdown, so the metrics
        // export can show where each PE's time went without losing the
        // aggregate view above.
        stats_.mergeScoped(slot->pe->stats(), slot->scope);
        StatScope scope = stats_.scoped(slot->scope);
        scope.set("clock", static_cast<double>(slot->clock));
        scope.set("cycles_busy", static_cast<double>(slot->busyCycles));
        scope.set("cycles_kernel",
                  static_cast<double>(slot->kernelCycles));
        scope.set("cycles_switch",
                  static_cast<double>(slot->switchCycles));
    }
    double busy = 0.0;
    for (auto &slot : slots)
        busy += finish > 0 ? static_cast<double>(slot->busyCycles) /
                                 static_cast<double>(finish)
                           : 0.0;
    stats_.merge(cache.stats());
    stats_.merge(bus.stats());
    result.cycles = finish;
    result.instructions = instructions;
    result.contexts = stats_.counter("sys.contexts_created");
    result.rendezvous = cache.stats().counter("msg.rendezvous");
    result.contextSwitches = switches;
    result.utilization = busy / config_.numPes;

    // Per-phase breakdown: every PE-cycle of the run is compute,
    // kernel (trap service + context switching), or blocked/idle. Bus
    // occupancy overlaps PE time and is reported as its own dimension.
    // Injected stall cycles inflate busyCycles without doing user
    // work, so they move from compute to blocked.
    Cycle stall_total =
        static_cast<Cycle>(stats_.counter("fault.pe_stall_cycles"));
    result.computeCycles = busy_total - kernel_total - stall_total;
    result.kernelCycles = kernel_total + switch_total;
    result.blockedCycles = finish * config_.numPes -
                           (busy_total + switch_total) + stall_total;
    result.busCycles = static_cast<Cycle>(
        stats_.counter("bus.transfer_cycles"));
    result.faultsInjected = faults_ ? faults_->injected() : 0;
    result.traceDropped = tracer_.dropped();

    // Unified per-kind accounting, indexed in FaultKind bit order.
    // Delay and stall faults are absorbed by the timing model: they
    // are injected but there is nothing to detect or recover.
    struct KindCounters
    {
        fault::FaultKind kind;
        const char *detected;
        const char *recovered;
    };
    static const KindCounters kind_table[fault::kNumFaultKinds] = {
        {fault::kBusDrop, "fault.drop.detected",
         "fault.drop.recovered"},
        {fault::kBusDup, "fault.dup.detected", "fault.dup.recovered"},
        {fault::kBusDelay, nullptr, nullptr},
        {fault::kCacheCorrupt, "fault.corrupt.detected",
         "fault.corrupt.recovered"},
        {fault::kPeStall, nullptr, nullptr},
        {fault::kPeKill, "fault.pekill.detected",
         "fault.pekill.recovered"},
    };
    std::uint64_t recovered_total = 0;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(fault::kNumFaultKinds); ++i) {
        const KindCounters &kc = kind_table[i];
        RunResult::FaultKindCounts &out = result.faultKinds[i];
        out.injected = faults_ ? faults_->injectedOf(kc.kind) : 0;
        out.detected =
            kc.detected ? stats_.counter(kc.detected) : 0;
        out.recovered =
            kc.recovered ? stats_.counter(kc.recovered) : 0;
        recovered_total += out.recovered;
    }
    result.faultRecoveries = recovered_total;

    stats_.set("sys.cycles", static_cast<double>(finish));
    stats_.set("sys.utilization", result.utilization);
    stats_.set("sys.cycles_compute",
               static_cast<double>(result.computeCycles));
    stats_.set("sys.cycles_kernel",
               static_cast<double>(result.kernelCycles));
    stats_.set("sys.cycles_blocked",
               static_cast<double>(result.blockedCycles));
    stats_.set("sys.cycles_bus", static_cast<double>(result.busCycles));
}

RunResult
System::failRun(const std::string &reason, bool watchdog)
{
    // Every structured failure (watchdog, starvation, corruption,
    // unrecoverable fail-stop) is worth one more try from the last
    // checkpoint when the caller has recovery enabled.
    replayable_ = true;
    RunResult result;
    result.completed = false;
    result.watchdogTripped = watchdog;
    result.failureReason = reason;
    finalizeRun(result);
    // Black box: every structured failure leaves a post-mortem next
    // to the checkpoint/metrics files (abortRun routes through here,
    // so deadline and signal exits are covered too).
    if (!config_.flightPath.empty())
        writeFlightDump(config_.flightPath, reason);
    return result;
}

bool
System::hostAbortDue(std::string &why)
{
    if (config_.hostDeadlineMs <= 0 &&
        !support::shutdownSignalsInstalled())
        return false;
    if ((++hostGuardTick_ & 0x3FFu) != 0)
        return false;
    if (support::shutdownRequested()) {
        why = cat("interrupted: ", support::shutdownSignalName(),
                  " received");
        return true;
    }
    if (config_.hostDeadlineMs > 0) {
        auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - runStart_)
                           .count();
        if (elapsed >= config_.hostDeadlineMs) {
            why = cat("deadline: run exceeded its host wall-clock budget (",
                      config_.hostDeadlineMs, " ms)");
            return true;
        }
    }
    return false;
}

RunResult
System::abortRun(const std::string &reason)
{
    RunResult result = failRun(reason, /*watchdog=*/false);
    // Host aborts depend on wall-clock timing, not simulated state: a
    // checkpoint replay would be non-deterministic, so never offer one.
    replayable_ = false;
    result.hostAborted = true;
    return result;
}

persist::Status
System::writeFlightDump(const std::string &path,
                        const std::string &reason)
{
    if (!flight_.enabled())
        return persist::Status::okStatus();
    obs::FlightHeader header;
    header.reason = reason;
    Cycle now = 0;
    for (auto &s : slots)
        now = std::max(now, s->clock);
    header.cycle = now;
    header.pes = config_.numPes;
    header.liveContexts = static_cast<int>(liveContexts);
    return flight_.dumpToFile(path, header);
}

StatSet
System::statsSnapshot()
{
    // Same folding order as finalizeRun, applied to a copy: global
    // registry, then each PE's aggregate + scoped view + cycle
    // breakdown scalars, then the cache and bus registries. Flushing
    // the event core's pending plain-counter deltas mutates only the
    // per-PE registries they were always destined for (snapshot() and
    // finalizeRun() flush at the same points), so the run's own
    // output is unchanged.
    for (auto &slot : slots)
        slot->pe->flushStats();
    StatSet out = stats_;
    for (auto &slot : slots) {
        out.merge(slot->pe->stats());
        out.mergeScoped(slot->pe->stats(), slot->scope);
        StatScope scope = out.scoped(slot->scope);
        scope.set("clock", static_cast<double>(slot->clock));
        scope.set("cycles_busy", static_cast<double>(slot->busyCycles));
        scope.set("cycles_kernel",
                  static_cast<double>(slot->kernelCycles));
        scope.set("cycles_switch",
                  static_cast<double>(slot->switchCycles));
    }
    out.merge(cache.stats());
    out.merge(bus.stats());
    return out;
}

void
System::emitTelemetry(Cycle best_time)
{
    // The stamp is the first boundary crossed; a quiet stretch that
    // slept through several boundaries advances the schedule past all
    // of them, so stamps stay aligned to multiples of telemetryEvery
    // and depend only on the simulated timeline.
    Cycle stamp = nextTelemetryAt_;
    while (nextTelemetryAt_ <= best_time)
        nextTelemetryAt_ += config_.telemetryEvery;
    if (telemetrySink_)
        telemetrySink_(*this, stamp);
}

std::string
System::dumpState() const
{
    std::ostringstream os;
    for (const Context &ctx : contexts) {
        if (ctx.status == CtxStatus::Done)
            continue;
        os << "ctx " << ctx.id << " pe=" << ctx.homePe << " pc="
           << ctx.regs.pc << " status=";
        switch (ctx.status) {
          case CtxStatus::Ready: os << "ready"; break;
          case CtxStatus::Running: os << "running"; break;
          case CtxStatus::BlockedChannel: os << "blocked-chan"; break;
          case CtxStatus::BlockedTime: os << "blocked-time"; break;
          case CtxStatus::Done: os << "done"; break;
        }
        os << " in=" << ctx.inChan << " out=" << ctx.outChan << "\n";
    }
    // With tracing on, the timeline tail shows what led up to a
    // deadlock or timeout - by far the most useful part of the report.
    if (tracer_.enabled())
        os << tracer_.summary();
    return os.str();
}

} // namespace qm::mp
