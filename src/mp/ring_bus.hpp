/**
 * @file
 * Partitioned ring-bus interconnect (thesis section 5.6, Fig 5.18),
 * optionally hierarchical.
 *
 * Flat topology (numRings == 1): the PEs sit on a shared bus that is
 * partitioned into segments and closed into a ring. A message travels
 * the ring in one direction, crossing every partition between source
 * and destination; each partition is an independently arbitrated
 * resource, so transfers through disjoint partitions proceed
 * concurrently while transfers sharing a partition serialize.
 *
 * Hierarchical topology (numRings == K > 1, "rings:KxM"): the PEs are
 * split into K local rings of M partitions each, joined by a backbone
 * ring of K segments. Each local ring owns one bridge - the single
 * entry/exit point between it and the backbone. A cross-ring message
 * exits its local ring (crossing the segments between the source and
 * the bridge), reserves the source bridge, rides the backbone segments
 * to the destination ring, reserves the destination bridge, and enters
 * the destination ring (crossing the segments up to the destination
 * PE). Bridges and backbone segments are independently arbitrated
 * resources like local segments, so saturation can now be attributed:
 * local contention shows up in bus.queue_wait, bridge/backbone
 * contention in bus.bridge_wait.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "support/stats.hpp"
#include "trace/trace.hpp"

namespace qm::mp {

using Cycle = std::int64_t;

/**
 * Outcome of one kernel-level message delivery over the ring
 * (RingBus::deliver). Without fault injection every delivery succeeds
 * on the first attempt with no duplicate.
 */
struct BusDelivery
{
    bool delivered = true;  ///< False: dropped beyond the retry bound.
    Cycle at = 0;           ///< Delivery time (last attempt if lost).
    int attempts = 1;       ///< Transfer attempts charged to the ring.
    bool duplicated = false;///< A second copy also arrives...
    Cycle duplicateAt = 0;  ///< ...at this time.
};

/** Ring-bus configuration. */
struct RingBusConfig
{
    int numPes = 4;
    /**
     * Bus partitions (Fig 5.18 shows 4 PEs on 2 partitions). With
     * numRings > 1 this is the partition count of EACH local ring
     * (the M in "rings:KxM").
     */
    int numPartitions = 2;
    /** Cycles to cross one partition segment. */
    Cycle hopCycles = 4;
    /** Fixed per-message overhead (arbitration + header). */
    Cycle messageOverhead = 2;
    /**
     * Local rings (the K in "rings:KxM"). 1 = the flat single ring,
     * byte-identical to the pre-topology model.
     */
    int numRings = 1;
    /** Cycles to cross one inter-ring bridge (hierarchical only). */
    Cycle bridgeCycles = 1;
    /** Cycles per backbone segment hop (hierarchical only). */
    Cycle backboneHopCycles = 1;
};

/**
 * A parsed --topology specification. "ring" is the flat default,
 * "ring:P" a flat ring with P partitions, "rings:KxM" the hierarchy
 * of K local rings with M partitions each.
 */
struct RingTopology
{
    int rings = 1;
    int partitions = 2;
};

/**
 * Parse a --topology argument. Accepts "ring", "ring:P", and
 * "rings:KxM"; throws FatalError (naming the flag) on anything else.
 * Fitting the parsed machine onto a given PE count is validated by the
 * RingBus constructor, which rejects impossible combinations instead
 * of silently clamping them.
 */
RingTopology parseTopology(const std::string &text);

/** Render a topology as its canonical --topology spelling. */
std::string topologyName(const RingTopology &topology);

/** Time-aware transfer model for the (optionally hierarchical) ring. */
class RingBus
{
  public:
    explicit RingBus(RingBusConfig config);

    /** Local rings in the topology (1 = flat). */
    int numRings() const { return config_.numRings; }

    /** Local ring owning PE @p pe (always 0 when flat). */
    int ringOf(int pe) const;

    /** First PE of local ring @p ring. */
    int ringBase(int ring) const;

    /** PEs on local ring @p ring. */
    int ringSize(int ring) const;

    /** Partition index owning PE @p pe's bus tap (flat topology). */
    int partitionOf(int pe) const;

    /**
     * Segments crossed travelling from @p src to @p dst: partition
     * crossings on the flat ring, or local-exit + backbone + local-entry
     * segment crossings in the hierarchy (bridges not included; they
     * are counted by bus.bridge_transfers).
     */
    int partitionsCrossed(int src, int dst) const;

    /**
     * Schedule a one-word message from PE @p src to PE @p dst entering
     * the bus at time @p now. Returns the delivery time; partition
     * (and bridge/backbone) reservations serialize conflicting
     * transfers.
     */
    Cycle transfer(int src, int dst, Cycle now);

    /**
     * Kernel-level delivery of one message: a transfer() plus the
     * fault model. With an injector attached, a remote transfer may be
     * dropped (retried with exponential backoff up to the plan's retry
     * bound, then reported undelivered), delayed by a bounded extra
     * latency, or duplicated (the copy rides the ring again). Without
     * an injector this is exactly transfer().
     *
     * With a recovery plan attached and enabled, link-layer loss is
     * additionally covered end-to-end: the sender waits out an ack
     * timeout and retransmits, up to RecoveryPlan::maxResends times,
     * before the delivery is finally reported lost.
     *
     * Accounting split (see DESIGN.md): every attempt occupies the
     * ring and books occupancy-level statistics (contention, hop and
     * transfer cycle counters, the trace span); only attempts that
     * actually arrive sample the delivered-level distributions
     * (bus.remote_transfers, bus.hops/queue_wait/latency). Attempts
     * the fault model drops bump bus.dropped_attempt instead, so the
     * latency histograms never count phantom deliveries.
     */
    BusDelivery deliver(int src, int dst, Cycle now);

    /**
     * Minimum unloaded cross-PE delivery latency over all ordered
     * src != dst pairs: the PDES lookahead. Every cross-PE effect in
     * the system rides a deliver() whose arrival is at least the
     * departure time plus this bound (contention, fault delays, and
     * retransmits only push arrivals later), so PEs inside a window
     * of this length cannot influence each other. Returns 0 on a
     * single-PE machine (no cross-PE pair exists).
     */
    Cycle minCrossLatency() const;

    const StatSet &stats() const { return stats_; }

    /** Attach the system's event recorder (may be null). */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /** Attach the system's fault injector (may be null). */
    void setFaultInjector(fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /** Attach the system's recovery plan (null or disabled = PR 3). */
    void setRecovery(const fault::RecoveryPlan *recovery)
    {
        recovery_ = recovery;
    }

    /** Deep-copyable timing state for System checkpoints. */
    struct Snapshot
    {
        std::vector<Cycle> partitionFree;
        std::vector<Cycle> bridgeFree;
        std::vector<Cycle> backboneFree;
        StatSet stats;
    };

    Snapshot
    snapshot() const
    {
        return {partitionFree, bridgeFree, backboneFree, stats_};
    }

    void
    restore(const Snapshot &snap)
    {
        partitionFree = snap.partitionFree;
        bridgeFree = snap.bridgeFree;
        backboneFree = snap.backboneFree;
        stats_ = snap.stats;
        // The assignment rebuilt the stat maps; cached slot pointers
        // into the old maps are dead.
        counters_ = CounterHandles{};
        histograms_ = HistogramHandles{};
    }

  private:
    /**
     * One ring occupation: the timing outcome of pushing a message
     * through every segment (and bridge) between src and dst, with the
     * occupancy-level statistics already booked. deliver() books the
     * delivered-level statistics (bookDelivered) only for the attempt
     * that actually arrives.
     */
    struct Attempt
    {
        Cycle at = 0;       ///< Arrival time.
        int hops = 0;       ///< Segments crossed.
        Cycle waited = 0;   ///< Total arbitration wait along the path.
        Cycle bridgeWaited = 0;  ///< Wait on bridges + backbone only.
    };

    /** Occupy every resource on the src->dst path starting at now. */
    Attempt occupyRing(int src, int dst, Cycle now);

    /** Book the delivered-level statistics for a landed attempt. */
    void bookDelivered(const Attempt &attempt, Cycle now);

    /** Local partition of @p pe within its ring (hierarchical). */
    int localPartitionOf(int pe) const;

    /**
     * Cached map slots for transfer()'s per-message statistics (the
     * rendezvous hot path). Resolved on first actual use - so a stat
     * a run never emits still creates no map entry - and invalidated
     * whenever stats_ is reassigned (restore()).
     */
    struct CounterHandles
    {
        std::uint64_t *localTransfers = nullptr;
        std::uint64_t *remoteTransfers = nullptr;
        std::uint64_t *contentionCycles = nullptr;
        std::uint64_t *hopCount = nullptr;
        std::uint64_t *transferCycles = nullptr;
        std::uint64_t *bridgeTransfers = nullptr;
        std::uint64_t *backboneHops = nullptr;
    };
    struct HistogramHandles
    {
        Histogram *hops = nullptr;
        Histogram *queueWait = nullptr;
        Histogram *latency = nullptr;
        Histogram *bridgeWait = nullptr;
    };

    std::uint64_t &
    counterSlot(std::uint64_t *&slot, const char *name)
    {
        if (!slot)
            slot = &stats_.counterRef(name);
        return *slot;
    }

    Histogram &
    histogramSlot(Histogram *&slot, const char *name)
    {
        if (!slot)
            slot = &stats_.histogramRef(name);
        return *slot;
    }

    RingBusConfig config_;
    /** Earliest free cycle per local segment (ring-major order). */
    std::vector<Cycle> partitionFree;
    /** Earliest free cycle per bridge (hierarchical only). */
    std::vector<Cycle> bridgeFree;
    /** Earliest free cycle per backbone segment (hierarchical only). */
    std::vector<Cycle> backboneFree;
    StatSet stats_;
    CounterHandles counters_;
    HistogramHandles histograms_;
    trace::Tracer *tracer_ = nullptr;
    fault::FaultInjector *faults_ = nullptr;
    const fault::RecoveryPlan *recovery_ = nullptr;
};

} // namespace qm::mp
