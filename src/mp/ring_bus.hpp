/**
 * @file
 * Partitioned ring-bus interconnect (thesis section 5.6, Fig 5.18).
 *
 * The PEs sit on a shared bus that is partitioned into segments and
 * closed into a ring. A message travels the ring in one direction,
 * crossing every partition between source and destination; each
 * partition is an independently arbitrated resource, so transfers
 * through disjoint partitions proceed concurrently while transfers
 * sharing a partition serialize.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "support/stats.hpp"
#include "trace/trace.hpp"

namespace qm::mp {

using Cycle = std::int64_t;

/**
 * Outcome of one kernel-level message delivery over the ring
 * (RingBus::deliver). Without fault injection every delivery succeeds
 * on the first attempt with no duplicate.
 */
struct BusDelivery
{
    bool delivered = true;  ///< False: dropped beyond the retry bound.
    Cycle at = 0;           ///< Delivery time (last attempt if lost).
    int attempts = 1;       ///< Transfer attempts charged to the ring.
    bool duplicated = false;///< A second copy also arrives...
    Cycle duplicateAt = 0;  ///< ...at this time.
};

/** Ring-bus configuration. */
struct RingBusConfig
{
    int numPes = 4;
    /** Bus partitions (Fig 5.18 shows 4 PEs on 2 partitions). */
    int numPartitions = 2;
    /** Cycles to cross one partition segment. */
    Cycle hopCycles = 4;
    /** Fixed per-message overhead (arbitration + header). */
    Cycle messageOverhead = 2;
};

/** Time-aware transfer model for the partitioned ring. */
class RingBus
{
  public:
    explicit RingBus(RingBusConfig config);

    /** Partition index owning PE @p pe's bus tap. */
    int partitionOf(int pe) const;

    /** Partitions crossed travelling the ring from @p src to @p dst. */
    int partitionsCrossed(int src, int dst) const;

    /**
     * Schedule a one-word message from PE @p src to PE @p dst entering
     * the bus at time @p now. Returns the delivery time; partition
     * reservations serialize conflicting transfers.
     */
    Cycle transfer(int src, int dst, Cycle now);

    /**
     * Kernel-level delivery of one message: a transfer() plus the
     * fault model. With an injector attached, a remote transfer may be
     * dropped (retried with exponential backoff up to the plan's retry
     * bound, then reported undelivered), delayed by a bounded extra
     * latency, or duplicated (the copy rides the ring again). Without
     * an injector this is exactly transfer().
     *
     * With a recovery plan attached and enabled, link-layer loss is
     * additionally covered end-to-end: the sender waits out an ack
     * timeout and retransmits, up to RecoveryPlan::maxResends times,
     * before the delivery is finally reported lost.
     */
    BusDelivery deliver(int src, int dst, Cycle now);

    const StatSet &stats() const { return stats_; }

    /** Attach the system's event recorder (may be null). */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /** Attach the system's fault injector (may be null). */
    void setFaultInjector(fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /** Attach the system's recovery plan (null or disabled = PR 3). */
    void setRecovery(const fault::RecoveryPlan *recovery)
    {
        recovery_ = recovery;
    }

    /** Deep-copyable timing state for System checkpoints. */
    struct Snapshot
    {
        std::vector<Cycle> partitionFree;
        StatSet stats;
    };

    Snapshot
    snapshot() const
    {
        return {partitionFree, stats_};
    }

    void
    restore(const Snapshot &snap)
    {
        partitionFree = snap.partitionFree;
        stats_ = snap.stats;
        // The assignment rebuilt the stat maps; cached slot pointers
        // into the old maps are dead.
        counters_ = CounterHandles{};
        histograms_ = HistogramHandles{};
    }

  private:
    /**
     * Cached map slots for transfer()'s per-message statistics (the
     * rendezvous hot path). Resolved on first actual use - so a stat
     * a run never emits still creates no map entry - and invalidated
     * whenever stats_ is reassigned (restore()).
     */
    struct CounterHandles
    {
        std::uint64_t *localTransfers = nullptr;
        std::uint64_t *remoteTransfers = nullptr;
        std::uint64_t *contentionCycles = nullptr;
        std::uint64_t *hopCount = nullptr;
        std::uint64_t *transferCycles = nullptr;
    };
    struct HistogramHandles
    {
        Histogram *hops = nullptr;
        Histogram *queueWait = nullptr;
        Histogram *latency = nullptr;
    };

    std::uint64_t &
    counterSlot(std::uint64_t *&slot, const char *name)
    {
        if (!slot)
            slot = &stats_.counterRef(name);
        return *slot;
    }

    Histogram &
    histogramSlot(Histogram *&slot, const char *name)
    {
        if (!slot)
            slot = &stats_.histogramRef(name);
        return *slot;
    }

    RingBusConfig config_;
    /** Earliest free cycle per partition. */
    std::vector<Cycle> partitionFree;
    StatSet stats_;
    CounterHandles counters_;
    HistogramHandles histograms_;
    trace::Tracer *tracer_ = nullptr;
    fault::FaultInjector *faults_ = nullptr;
    const fault::RecoveryPlan *recovery_ = nullptr;
};

} // namespace qm::mp
