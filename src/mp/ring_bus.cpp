#include "mp/ring_bus.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace qm::mp {

RingBus::RingBus(RingBusConfig config) : config_(config)
{
    fatalIf(config_.numPes < 1, "ring bus needs at least one PE");
    fatalIf(config_.numPartitions < 1, "ring bus needs >= 1 partition");
    if (config_.numPartitions > config_.numPes)
        config_.numPartitions = config_.numPes;
    partitionFree.assign(static_cast<size_t>(config_.numPartitions), 0);
}

int
RingBus::partitionOf(int pe) const
{
    panicIf(pe < 0 || pe >= config_.numPes, "PE index out of range");
    // PEs are spread evenly over the partitions in ring order.
    return pe * config_.numPartitions / config_.numPes;
}

int
RingBus::partitionsCrossed(int src, int dst) const
{
    if (src == dst)
        return 0;
    // Walk the ring upward from src to dst counting partition boundaries
    // crossed (inclusive of the destination's partition entry).
    int crossings = 1;
    int pe = src;
    while (pe != dst) {
        int next = (pe + 1) % config_.numPes;
        if (partitionOf(next) != partitionOf(pe))
            ++crossings;
        pe = next;
    }
    return std::min(crossings, config_.numPartitions);
}

Cycle
RingBus::transfer(int src, int dst, Cycle now)
{
    if (src == dst) {
        // Intra-PE transfers stay inside the local message processor.
        stats_.inc("bus.local_transfers");
        return now + config_.messageOverhead;
    }
    stats_.inc("bus.remote_transfers");

    Cycle t = now + config_.messageOverhead;
    // Reserve each partition along the path in order.
    int first = partitionOf(src);
    int hops = partitionsCrossed(src, dst);
    for (int i = 0; i < hops; ++i) {
        int partition = (first + i) % config_.numPartitions;
        Cycle &free_at = partitionFree[static_cast<size_t>(partition)];
        Cycle start = std::max(t, free_at);
        Cycle wait = start - t;
        if (wait > 0)
            stats_.inc("bus.contention_cycles",
                       static_cast<std::uint64_t>(wait));
        t = start + config_.hopCycles;
        free_at = t;
    }
    stats_.inc("bus.hop_count", static_cast<std::uint64_t>(hops));
    stats_.inc("bus.transfer_cycles", static_cast<std::uint64_t>(t - now));
    if (tracer_)
        tracer_->busTransfer(now, t, src, dst, hops);
    return t;
}

} // namespace qm::mp
