#include "mp/ring_bus.hpp"

#include <algorithm>

#include "support/cli.hpp"
#include "support/diagnostics.hpp"

namespace qm::mp {

namespace {

/**
 * Closed-form count of partition boundaries crossed walking upward
 * (with wraparound) from index @p src to @p dst over @p pes positions
 * spread evenly across @p partitions groups, inclusive of the
 * destination's partition entry. Algebraically identical to the
 * PE-by-PE reference walk (mp_test keeps the walk and asserts the
 * equivalence exhaustively): partition indices are monotone in ring
 * order, so an upward path crosses exactly one boundary per partition
 * change, plus the wrap boundary between the last partition and
 * partition 0 when the path passes the ring seam.
 */
int
crossingsClosedForm(int src, int dst, int pes, int partitions)
{
    if (src == dst)
        return 0;
    auto part = [&](int pe) { return pe * partitions / pes; };
    int crossings;
    if (src < dst)
        crossings = 1 + part(dst) - part(src);
    else
        crossings = 1 + (partitions - 1 - part(src)) +
                    (partitions > 1 ? 1 : 0) + part(dst);
    return std::min(crossings, partitions);
}

} // namespace

RingTopology
parseTopology(const std::string &text)
{
    RingTopology topology;
    if (text == "ring")
        return topology;
    if (text.rfind("ring:", 0) == 0) {
        topology.partitions = static_cast<int>(
            parseIntArg(text.substr(5), "--topology ring:P", 1, 4096));
        return topology;
    }
    if (text.rfind("rings:", 0) == 0) {
        std::string spec = text.substr(6);
        std::size_t split = spec.find('x');
        fatalIf(split == std::string::npos || split == 0 ||
                    split + 1 >= spec.size(),
                "--topology expects ring, ring:P, or rings:KxM, got '",
                text, "'");
        topology.rings = static_cast<int>(parseIntArg(
            spec.substr(0, split), "--topology rings:K", 2, 4096));
        topology.partitions = static_cast<int>(parseIntArg(
            spec.substr(split + 1), "--topology rings:KxM", 1, 4096));
        return topology;
    }
    fatal("--topology expects ring, ring:P, or rings:KxM, got '", text,
          "'");
}

std::string
topologyName(const RingTopology &topology)
{
    if (topology.rings <= 1)
        return topology.partitions == 2
                   ? "ring"
                   : cat("ring:", topology.partitions);
    return cat("rings:", topology.rings, "x", topology.partitions);
}

RingBus::RingBus(RingBusConfig config) : config_(config)
{
    fatalIf(config_.numPes < 1, "ring bus needs at least one PE");
    fatalIf(config_.numPartitions < 1, "ring bus needs >= 1 partition");
    fatalIf(config_.numRings < 1, "ring bus needs >= 1 ring");
    fatalIf(config_.numRings > config_.numPes, "ring bus: ",
            config_.numRings, " rings cannot seat on ", config_.numPes,
            " PEs (every ring needs at least one PE)");
    if (config_.numRings == 1) {
        // More partitions than PEs would leave segments with no bus
        // tap: a mistyped --topology would quietly simulate a machine
        // that cannot exist, so reject it outright.
        fatalIf(config_.numPartitions > config_.numPes, "ring bus: ",
                config_.numPartitions, " partitions on ",
                config_.numPes,
                " PEs leaves partitions without a PE; use at most ",
                config_.numPes, " partitions");
    } else {
        int min_ring = config_.numPes;
        for (int ring = 0; ring < config_.numRings; ++ring)
            min_ring = std::min(min_ring, ringSize(ring));
        fatalIf(config_.numPartitions > min_ring, "ring bus: rings:",
                config_.numRings, "x", config_.numPartitions,
                " needs >= ", config_.numPartitions,
                " PEs per ring, but the smallest ring has only ",
                min_ring, " of ", config_.numPes, " PEs");
    }
    partitionFree.assign(static_cast<size_t>(config_.numRings) *
                             static_cast<size_t>(config_.numPartitions),
                         0);
    if (config_.numRings > 1) {
        bridgeFree.assign(static_cast<size_t>(config_.numRings), 0);
        backboneFree.assign(static_cast<size_t>(config_.numRings), 0);
    }
}

int
RingBus::ringOf(int pe) const
{
    panicIf(pe < 0 || pe >= config_.numPes, "PE index out of range");
    // PEs are spread evenly over the rings in contiguous blocks.
    return pe * config_.numRings / config_.numPes;
}

int
RingBus::ringBase(int ring) const
{
    // Smallest PE index whose ringOf is >= ring: ceil(ring * N / K).
    return static_cast<int>(
        (static_cast<long>(ring) * config_.numPes + config_.numRings -
         1) /
        config_.numRings);
}

int
RingBus::ringSize(int ring) const
{
    return ringBase(ring + 1) - ringBase(ring);
}

int
RingBus::localPartitionOf(int pe) const
{
    int ring = ringOf(pe);
    return (pe - ringBase(ring)) * config_.numPartitions /
           ringSize(ring);
}

int
RingBus::partitionOf(int pe) const
{
    panicIf(pe < 0 || pe >= config_.numPes, "PE index out of range");
    if (config_.numRings <= 1)
        // PEs are spread evenly over the partitions in ring order.
        return pe * config_.numPartitions / config_.numPes;
    // Hierarchical: global segment index, ring-major.
    return ringOf(pe) * config_.numPartitions + localPartitionOf(pe);
}

int
RingBus::partitionsCrossed(int src, int dst) const
{
    if (src == dst)
        return 0;
    if (config_.numRings <= 1)
        return crossingsClosedForm(src, dst, config_.numPes,
                                   config_.numPartitions);
    int src_ring = ringOf(src);
    int dst_ring = ringOf(dst);
    if (src_ring == dst_ring) {
        int base = ringBase(src_ring);
        return crossingsClosedForm(src - base, dst - base,
                                   ringSize(src_ring),
                                   config_.numPartitions);
    }
    // Cross-ring: exit segments from the source partition through the
    // end of its ring, the backbone segments between the rings, and
    // entry segments from the destination ring's seam to the
    // destination partition. Bridges are separate resources, counted
    // by bus.bridge_transfers rather than as segment hops.
    int exit_hops = config_.numPartitions - localPartitionOf(src);
    int entry_hops = localPartitionOf(dst) + 1;
    int backbone =
        (dst_ring - src_ring + config_.numRings) % config_.numRings;
    return exit_hops + backbone + entry_hops;
}

Cycle
RingBus::minCrossLatency() const
{
    // Mirror of occupyRing's cost accumulation with every reservation
    // free: messageOverhead plus the per-resource costs along the
    // path. Contention (and the fault model's delays/backoff) only
    // ever push an arrival later than this unloaded bound.
    Cycle best = 0;
    for (int src = 0; src < config_.numPes; ++src) {
        for (int dst = 0; dst < config_.numPes; ++dst) {
            if (src == dst)
                continue;
            Cycle cost = config_.messageOverhead;
            if (config_.numRings <= 1 || ringOf(src) == ringOf(dst)) {
                cost += static_cast<Cycle>(partitionsCrossed(src, dst)) *
                        config_.hopCycles;
            } else {
                int exit_hops =
                    config_.numPartitions - localPartitionOf(src);
                int entry_hops = localPartitionOf(dst) + 1;
                int backbone = (ringOf(dst) - ringOf(src) +
                                config_.numRings) %
                               config_.numRings;
                cost += static_cast<Cycle>(exit_hops + entry_hops) *
                            config_.hopCycles +
                        2 * config_.bridgeCycles +
                        static_cast<Cycle>(backbone) *
                            config_.backboneHopCycles;
            }
            if (best == 0 || cost < best)
                best = cost;
        }
    }
    return best;
}

RingBus::Attempt
RingBus::occupyRing(int src, int dst, Cycle now)
{
    Attempt attempt;
    Cycle t = now + config_.messageOverhead;
    Cycle waited = 0;
    Cycle bridge_waited = 0;
    // Reserve one arbitrated resource (local segment, bridge, or
    // backbone segment) along the path, in travel order.
    auto reserve = [&](std::vector<Cycle> &pool, int index, Cycle cost,
                       bool bridge) {
        Cycle &free_at = pool[static_cast<size_t>(index)];
        Cycle start = std::max(t, free_at);
        Cycle wait = start - t;
        if (wait > 0) {
            counterSlot(counters_.contentionCycles,
                        "bus.contention_cycles") +=
                static_cast<std::uint64_t>(wait);
            if (bridge)
                bridge_waited += wait;
        }
        waited += wait;
        t = start + cost;
        free_at = t;
    };

    const int rings = config_.numRings;
    const int parts = config_.numPartitions;
    int hops;
    if (rings <= 1 || ringOf(src) == ringOf(dst)) {
        // Flat ring, or both endpoints on the same local ring: reserve
        // each crossed segment in order starting at the source's
        // partition.
        const int ring = rings <= 1 ? 0 : ringOf(src);
        const int first = rings <= 1 ? partitionOf(src)
                                     : localPartitionOf(src);
        hops = partitionsCrossed(src, dst);
        for (int i = 0; i < hops; ++i)
            reserve(partitionFree, ring * parts + (first + i) % parts,
                    config_.hopCycles, false);
    } else {
        const int src_ring = ringOf(src);
        const int dst_ring = ringOf(dst);
        const int exit_hops = parts - localPartitionOf(src);
        const int entry_hops = localPartitionOf(dst) + 1;
        const int backbone =
            (dst_ring - src_ring + rings) % rings;
        for (int i = 0; i < exit_hops; ++i)
            reserve(partitionFree,
                    src_ring * parts + localPartitionOf(src) + i,
                    config_.hopCycles, false);
        reserve(bridgeFree, src_ring, config_.bridgeCycles, true);
        for (int i = 0; i < backbone; ++i)
            reserve(backboneFree, (src_ring + i) % rings,
                    config_.backboneHopCycles, true);
        reserve(bridgeFree, dst_ring, config_.bridgeCycles, true);
        for (int i = 0; i < entry_hops; ++i)
            reserve(partitionFree, dst_ring * parts + i,
                    config_.hopCycles, false);
        hops = exit_hops + backbone + entry_hops;
        counterSlot(counters_.bridgeTransfers,
                    "bus.bridge_transfers") += 1;
        counterSlot(counters_.backboneHops, "bus.backbone_hops") +=
            static_cast<std::uint64_t>(backbone);
    }
    counterSlot(counters_.hopCount, "bus.hop_count") +=
        static_cast<std::uint64_t>(hops);
    counterSlot(counters_.transferCycles, "bus.transfer_cycles") +=
        static_cast<std::uint64_t>(t - now);
    if (tracer_)
        tracer_->busTransfer(now, t, src, dst, hops, bridge_waited);
    attempt.at = t;
    attempt.hops = hops;
    attempt.waited = waited;
    attempt.bridgeWaited = bridge_waited;
    return attempt;
}

void
RingBus::bookDelivered(const Attempt &attempt, Cycle now)
{
    counterSlot(counters_.remoteTransfers, "bus.remote_transfers") += 1;
    histogramSlot(histograms_.hops, "bus.hops")
        .sample(static_cast<std::uint64_t>(attempt.hops));
    histogramSlot(histograms_.queueWait, "bus.queue_wait")
        .sample(static_cast<std::uint64_t>(attempt.waited));
    histogramSlot(histograms_.latency, "bus.latency")
        .sample(static_cast<std::uint64_t>(attempt.at - now));
    if (config_.numRings > 1)
        histogramSlot(histograms_.bridgeWait, "bus.bridge_wait")
            .sample(static_cast<std::uint64_t>(attempt.bridgeWaited));
}

Cycle
RingBus::transfer(int src, int dst, Cycle now)
{
    if (src == dst) {
        // Intra-PE transfers stay inside the local message processor.
        counterSlot(counters_.localTransfers, "bus.local_transfers") += 1;
        return now + config_.messageOverhead;
    }
    Attempt attempt = occupyRing(src, dst, now);
    bookDelivered(attempt, now);
    return attempt.at;
}

BusDelivery
RingBus::deliver(int src, int dst, Cycle now)
{
    BusDelivery delivery;
    // Intra-PE messages never ride the ring, so bus faults only apply
    // to remote transfers.
    if (!faults_ || src == dst) {
        delivery.at = transfer(src, dst, now);
        return delivery;
    }

    // Link layer: bounded retries with exponential backoff. End-to-end
    // layer (recovery only): after the link gives up, the sender waits
    // out its ack timeout and retransmits, up to maxResends times.
    const bool e2e = recovery_ && recovery_->enabled;
    const int max_resends = e2e ? recovery_->maxResends : 0;
    Cycle depart = now;
    int attempts = 0;
    std::uint64_t drops = 0;
    bool delivered = false;
    for (int resend = 0; resend <= max_resends && !delivered;
         ++resend) {
        if (resend > 0) {
            depart += recovery_->ackTimeout;
            stats_.inc("fault.bus_resend");
            if (tracer_)
                tracer_->faultRecover(
                    depart, src, fault::kBusDrop,
                    static_cast<std::uint64_t>(resend) << 32);
        }
        for (int attempt_no = 0;; ++attempt_no) {
            // Every attempt occupies the ring for real, but only the
            // one that lands counts as a delivery (bookDelivered): the
            // hops/latency distributions must describe messages that
            // arrived, not phantoms the fault model dropped.
            Attempt attempt = occupyRing(src, dst, depart);
            ++attempts;
            if (!faults_->fire(fault::kBusDrop)) {
                bookDelivered(attempt, depart);
                delivery.at = attempt.at;
                delivered = true;
                break;
            }
            ++drops;
            stats_.inc("bus.dropped_attempt");
            stats_.inc("fault.bus_drop");
            stats_.inc("fault.drop.detected");
            if (tracer_)
                tracer_->faultInject(attempt.at, src, fault::kBusDrop,
                                     static_cast<std::uint64_t>(dst));
            if (attempt_no >= faults_->plan().maxRetries) {
                // Link retry budget exhausted; without the end-to-end
                // layer the message is lost here.
                depart = attempt.at;
                break;
            }
            // Exponential backoff, exponent clamped against shift
            // overflow.
            Cycle backoff = faults_->plan().retryBackoff
                            << std::min(attempt_no, 16);
            stats_.inc("fault.bus_retry");
            stats_.inc("fault.bus_backoff_cycles",
                       static_cast<std::uint64_t>(backoff));
            stats_.record("fault.backoff",
                          static_cast<std::uint64_t>(backoff));
            if (tracer_)
                tracer_->faultRecover(
                    attempt.at + backoff, src, fault::kBusDrop,
                    static_cast<std::uint64_t>(attempt_no + 1));
            depart = attempt.at + backoff;
        }
    }
    delivery.attempts = attempts;
    // Reliability overhead, as a distribution: how many ring occupations
    // one kernel message cost under the active fault plan.
    stats_.record("fault.delivery_attempts",
                  static_cast<std::uint64_t>(attempts));
    if (!delivered) {
        // The message is permanently lost. The caller (kernel) leaves
        // the receiver unwoken; the System watchdog converts any
        // resulting livelock into a clean structured failure, and the
        // checkpoint-replay policy gets a chance to retry the run.
        stats_.inc("fault.bus_lost");
        delivery.delivered = false;
        delivery.at = depart;
        return delivery;
    }
    if (drops > 0)
        // Every drop on this delivery was compensated by a retry or an
        // end-to-end retransmission.
        stats_.inc("fault.drop.recovered", drops);

    if (faults_->fire(fault::kBusDelay)) {
        Cycle extra = faults_->delayCycles();
        stats_.inc("fault.bus_delay");
        stats_.inc("fault.bus_delay_cycles",
                   static_cast<std::uint64_t>(extra));
        if (tracer_)
            tracer_->faultInject(delivery.at, src, fault::kBusDelay,
                                 static_cast<std::uint64_t>(extra));
        delivery.at += extra;
    }

    if (faults_->fire(fault::kBusDup)) {
        // The duplicate occupies the ring like any other transfer;
        // delivery must be idempotent, so it only perturbs timing.
        stats_.inc("fault.bus_dup");
        delivery.duplicated = true;
        delivery.duplicateAt = transfer(src, dst, delivery.at);
        if (tracer_)
            tracer_->faultInject(delivery.at, src, fault::kBusDup,
                                 static_cast<std::uint64_t>(dst));
    }
    return delivery;
}

} // namespace qm::mp
