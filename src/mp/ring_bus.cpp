#include "mp/ring_bus.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace qm::mp {

RingBus::RingBus(RingBusConfig config) : config_(config)
{
    fatalIf(config_.numPes < 1, "ring bus needs at least one PE");
    fatalIf(config_.numPartitions < 1, "ring bus needs >= 1 partition");
    if (config_.numPartitions > config_.numPes)
        config_.numPartitions = config_.numPes;
    partitionFree.assign(static_cast<size_t>(config_.numPartitions), 0);
}

int
RingBus::partitionOf(int pe) const
{
    panicIf(pe < 0 || pe >= config_.numPes, "PE index out of range");
    // PEs are spread evenly over the partitions in ring order.
    return pe * config_.numPartitions / config_.numPes;
}

int
RingBus::partitionsCrossed(int src, int dst) const
{
    if (src == dst)
        return 0;
    // Walk the ring upward from src to dst counting partition boundaries
    // crossed (inclusive of the destination's partition entry).
    int crossings = 1;
    int pe = src;
    while (pe != dst) {
        int next = (pe + 1) % config_.numPes;
        if (partitionOf(next) != partitionOf(pe))
            ++crossings;
        pe = next;
    }
    return std::min(crossings, config_.numPartitions);
}

Cycle
RingBus::transfer(int src, int dst, Cycle now)
{
    if (src == dst) {
        // Intra-PE transfers stay inside the local message processor.
        counterSlot(counters_.localTransfers, "bus.local_transfers") += 1;
        return now + config_.messageOverhead;
    }
    counterSlot(counters_.remoteTransfers, "bus.remote_transfers") += 1;

    Cycle t = now + config_.messageOverhead;
    // Reserve each partition along the path in order.
    int first = partitionOf(src);
    int hops = partitionsCrossed(src, dst);
    Cycle waited = 0;
    for (int i = 0; i < hops; ++i) {
        int partition = (first + i) % config_.numPartitions;
        Cycle &free_at = partitionFree[static_cast<size_t>(partition)];
        Cycle start = std::max(t, free_at);
        Cycle wait = start - t;
        if (wait > 0)
            counterSlot(counters_.contentionCycles,
                        "bus.contention_cycles") +=
                static_cast<std::uint64_t>(wait);
        waited += wait;
        t = start + config_.hopCycles;
        free_at = t;
    }
    counterSlot(counters_.hopCount, "bus.hop_count") +=
        static_cast<std::uint64_t>(hops);
    counterSlot(counters_.transferCycles, "bus.transfer_cycles") +=
        static_cast<std::uint64_t>(t - now);
    histogramSlot(histograms_.hops, "bus.hops")
        .sample(static_cast<std::uint64_t>(hops));
    histogramSlot(histograms_.queueWait, "bus.queue_wait")
        .sample(static_cast<std::uint64_t>(waited));
    histogramSlot(histograms_.latency, "bus.latency")
        .sample(static_cast<std::uint64_t>(t - now));
    if (tracer_)
        tracer_->busTransfer(now, t, src, dst, hops);
    return t;
}

BusDelivery
RingBus::deliver(int src, int dst, Cycle now)
{
    BusDelivery delivery;
    // Intra-PE messages never ride the ring, so bus faults only apply
    // to remote transfers.
    if (!faults_ || src == dst) {
        delivery.at = transfer(src, dst, now);
        return delivery;
    }

    // Link layer: bounded retries with exponential backoff. End-to-end
    // layer (recovery only): after the link gives up, the sender waits
    // out its ack timeout and retransmits, up to maxResends times.
    const bool e2e = recovery_ && recovery_->enabled;
    const int max_resends = e2e ? recovery_->maxResends : 0;
    Cycle depart = now;
    int attempts = 0;
    std::uint64_t drops = 0;
    bool delivered = false;
    for (int resend = 0; resend <= max_resends && !delivered;
         ++resend) {
        if (resend > 0) {
            depart += recovery_->ackTimeout;
            stats_.inc("fault.bus_resend");
            if (tracer_)
                tracer_->faultRecover(
                    depart, src, fault::kBusDrop,
                    static_cast<std::uint64_t>(resend) << 32);
        }
        for (int attempt = 0;; ++attempt) {
            Cycle at = transfer(src, dst, depart);
            ++attempts;
            if (!faults_->fire(fault::kBusDrop)) {
                delivery.at = at;
                delivered = true;
                break;
            }
            ++drops;
            stats_.inc("fault.bus_drop");
            stats_.inc("fault.drop.detected");
            if (tracer_)
                tracer_->faultInject(at, src, fault::kBusDrop,
                                     static_cast<std::uint64_t>(dst));
            if (attempt >= faults_->plan().maxRetries) {
                // Link retry budget exhausted; without the end-to-end
                // layer the message is lost here.
                depart = at;
                break;
            }
            // Exponential backoff, exponent clamped against shift
            // overflow.
            Cycle backoff = faults_->plan().retryBackoff
                            << std::min(attempt, 16);
            stats_.inc("fault.bus_retry");
            stats_.inc("fault.bus_backoff_cycles",
                       static_cast<std::uint64_t>(backoff));
            stats_.record("fault.backoff",
                          static_cast<std::uint64_t>(backoff));
            if (tracer_)
                tracer_->faultRecover(
                    at + backoff, src, fault::kBusDrop,
                    static_cast<std::uint64_t>(attempt + 1));
            depart = at + backoff;
        }
    }
    delivery.attempts = attempts;
    // Reliability overhead, as a distribution: how many ring occupations
    // one kernel message cost under the active fault plan.
    stats_.record("fault.delivery_attempts",
                  static_cast<std::uint64_t>(attempts));
    if (!delivered) {
        // The message is permanently lost. The caller (kernel) leaves
        // the receiver unwoken; the System watchdog converts any
        // resulting livelock into a clean structured failure, and the
        // checkpoint-replay policy gets a chance to retry the run.
        stats_.inc("fault.bus_lost");
        delivery.delivered = false;
        delivery.at = depart;
        return delivery;
    }
    if (drops > 0)
        // Every drop on this delivery was compensated by a retry or an
        // end-to-end retransmission.
        stats_.inc("fault.drop.recovered", drops);

    if (faults_->fire(fault::kBusDelay)) {
        Cycle extra = faults_->delayCycles();
        stats_.inc("fault.bus_delay");
        stats_.inc("fault.bus_delay_cycles",
                   static_cast<std::uint64_t>(extra));
        if (tracer_)
            tracer_->faultInject(delivery.at, src, fault::kBusDelay,
                                 static_cast<std::uint64_t>(extra));
        delivery.at += extra;
    }

    if (faults_->fire(fault::kBusDup)) {
        // The duplicate occupies the ring like any other transfer;
        // delivery must be idempotent, so it only perturbs timing.
        stats_.inc("fault.bus_dup");
        delivery.duplicated = true;
        delivery.duplicateAt = transfer(src, dst, delivery.at);
        if (tracer_)
            tracer_->faultInject(delivery.at, src, fault::kBusDup,
                                 static_cast<std::uint64_t>(dst));
    }
    return delivery;
}

} // namespace qm::mp
