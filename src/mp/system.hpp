/**
 * @file
 * Queue-machine multiprocessor system (thesis Chapters 5.6 and 6).
 *
 * N processing elements share one instruction space (pure code) and one
 * data memory, connected by a partitioned ring bus. The multiprocessing
 * kernel implements the Table 6.1 entry points (reached by trap
 * instructions), manages the Fig 6.4 context lifecycle, allocates
 * operand-queue pages and channels, places forked contexts on PEs, and
 * routes channel rendezvous through the message cache, charging ring-bus
 * transfer time for inter-PE messages.
 *
 * Substitution note (see DESIGN.md): the kernel's logic runs in C++
 * rather than in queue-machine code, but it is entered through the same
 * trap numbers and charges configurable cycle costs, exactly as the
 * thesis's Concurrent Euclid simulation charged kernel overheads.
 */
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "isa/assembler.hpp"
#include "obs/flight.hpp"
#include "isa/runtime.hpp"
#include "mp/ring_bus.hpp"
#include "msg/message_cache.hpp"
#include "pe/memory.hpp"
#include "pe/pe.hpp"
#include "persist/io.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "trace/trace.hpp"

namespace qm::mp {

using isa::Addr;
using isa::Word;
using msg::CtxId;

/** Where a forked context is placed (thesis scheduling policy knob). */
enum class Placement
{
    LeastLoaded, ///< Emptiest runnable queue, cyclic tie-break (default).
    RoundRobin,  ///< Cyclic over the ring.
    Local,       ///< Always on the forking PE (degenerate baseline).
};

/**
 * Simulation inner-loop implementation (see DESIGN.md "Event-driven
 * simulation core"). Both cores produce byte-identical RunResult,
 * statistics, metrics, and trace output - the differential test suite
 * holds them to it across the fuzz/fault/recovery corpora.
 */
enum class SimCore
{
    /**
     * The historical loop: every iteration linearly scans all PE slots
     * for the lowest-clock schedulable one. Kept verbatim (including
     * its eagerly-zeroed memory and per-step instruction decode) as
     * the reference implementation and the host-performance baseline.
     */
    Tick,
    /**
     * Next-event calendar queue: each slot registers its next wake
     * cycle in a min-heap keyed by (cycle, PE index) and the scheduler
     * jumps straight to the earliest one, with a predecoded-instruction
     * arena, plain-counter statistics, and lazily-zeroed memory on the
     * hot path. The default.
     */
    Event,
};

/** Memory map constants shared with the compiler. */
constexpr Addr kQueuePagePool = 0x0000'1000;  ///< Up to ~6 MB of pages.
constexpr Addr kDataBase = 0x0060'0000;       ///< Compiler data segment.
constexpr Addr kHeapBase = 0x0100'0000;       ///< TrapAlloc heap.

/** System-wide configuration. */
struct SystemConfig
{
    int numPes = 1;
    /**
     * Bus partitions - per local ring when busRings > 1. The default
     * is adaptive: it is clamped to numPes by busConfig() so the
     * 1-PE default machine stays valid. An explicit --topology sets
     * busTopologyExplicit and is validated strictly instead (the
     * RingBus constructor rejects machines that cannot exist).
     */
    int busPartitions = 2;
    /** Local rings ("rings:KxM" topology); 1 = the flat single ring. */
    int busRings = 1;
    /** Set by --topology: skip the adaptive default clamp above. */
    bool busTopologyExplicit = false;
    std::size_t memoryBytes = 32u << 20;
    int pageWords = 256;         ///< Operand-queue page size per context.
    int maxLiveContexts = 2048;  ///< Queue-page pool size.
    int channelDepth = 8;        ///< Message-cache tokens per channel.
    Placement placement = Placement::LeastLoaded;
    SimCore core = SimCore::Event;  ///< Inner-loop implementation.

    /**
     * Host worker threads for one run (--threads): the event core
     * advances PEs in bounded synchronous windows (lookahead = minimum
     * unloaded ring-bus latency) and speculates the pure compute
     * portion of each window's batches across this many threads,
     * byte-identical to the sequential core on every surface for any
     * value. 1 = the plain sequential event loop. Ignored by the tick
     * reference core (which stays serial), and capped at numPes.
     */
    int hostThreads = 1;

    // Kernel service costs in cycles (trap entry cost is charged by the
    // PE's own timing on top of these).
    long forkCycles = 12;
    long exitCycles = 4;
    long queryCycles = 1;   ///< getin/getout/now/chan.
    long allocCycles = 4;
    long contextLoadCycles = 6;  ///< Scheduler dispatch + register load.
    long contextSaveCycles = 4;  ///< On top of per-register roll-out.

    RingBusConfig
    busConfig() const
    {
        RingBusConfig bus;
        bus.numPes = numPes;
        bus.numRings = busRings;
        bus.numPartitions =
            busTopologyExplicit ? busPartitions
                                : std::min(busPartitions, numPes);
        return bus;
    }

    /** Apply a parsed --topology spec (see mp::parseTopology). */
    void
    setTopology(const RingTopology &topology)
    {
        busRings = topology.rings;
        busPartitions = topology.partitions;
        busTopologyExplicit = true;
    }

    pe::PeTiming peTiming{};

    /** Cycle-level event recording (off by default; see src/trace). */
    trace::TraceConfig traceConfig{};

    /** Seeded fault injection (off by default; see src/fault). */
    fault::FaultPlan faultPlan{};

    /**
     * Opt-in recovery layer (off by default; see src/fault and
     * DESIGN.md "Recoverable execution"): end-to-end retransmission on
     * the ring, checksum-heal + dedup in the message cache, PE-lease
     * fail-stop recovery, and checkpoint/restore support.
     */
    fault::RecoveryPlan recovery{};

    /**
     * Watchdog: if no instruction retires for this many simulated
     * cycles, the run ends with a structured failure report instead of
     * hanging or dying on a deadlock panic. 0 = automatic: enabled
     * (with a 1M-cycle bound) exactly when fault injection is active,
     * so fault-free runs behave byte-identically to before.
     */
    Cycle watchdogCycles = 0;

    /**
     * Host wall-clock deadline for one run-loop entry (run() or
     * resume()), in milliseconds. 0 = no deadline. When the budget is
     * exhausted the run ends with a structured `deadline:` failure
     * (hostAborted set) instead of wedging a sweep forever. Checked
     * coarsely (every ~1k scheduling rounds) so the fault-free hot
     * path pays nothing measurable. Host-side only: never part of the
     * simulated timeline or the checkpoint fingerprint.
     */
    long hostDeadlineMs = 0;

    /**
     * Where the always-on flight recorder (src/obs) auto-dumps its
     * `qm.flight.v1` black box: written on every structured failure
     * exit (watchdog, deadlock, deadline, shutdown signal, cycle
     * budget) and refreshed at each checkpoint boundary so even a
     * kill -9 leaves a post-mortem on disk. Empty = no automatic
     * dumps (the recorder still records; drivers can dump manually
     * via System::writeFlightDump). Host-side only: never part of
     * the simulated timeline or the checkpoint fingerprint.
     */
    std::string flightPath;

    /**
     * Emit a telemetry snapshot every N simulated cycles (0 = off).
     * Snapshots fire at deterministic cycle boundaries evaluated at
     * the same guard points as periodic checkpoints, so the stream is
     * byte-identical across cores, --threads, and --jobs. Host-side
     * only: excluded from the checkpoint fingerprint; an interrupted
     * stream re-aligns to the next boundary after the resume point.
     */
    Cycle telemetryEvery = 0;

    /** Label stamped into telemetry snapshots (program/series name). */
    std::string telemetryLabel;
};

/**
 * Deterministic textual digest of every simulation-relevant field of
 * @p config: machine shape, kernel costs, timing, fault/recovery
 * plans, and trace enablement. Host-side choices that are byte-inert
 * by invariant (SimCore, hostThreads, hostDeadlineMs) are deliberately
 * excluded. System::configFingerprint() extends this with a CRC of
 * the loaded object code; the sweep journal combines it with per-spec
 * program/verification digests.
 */
std::string configFingerprint(const SystemConfig &config);

/** Context lifecycle states (thesis Fig 6.4). */
enum class CtxStatus
{
    Ready,
    Running,
    BlockedChannel,
    BlockedTime,
    Done,
};

/**
 * One completed host interaction (send/recv/trap) of the current run
 * span, recorded only when recovery is enabled. Restarting a span
 * after a PE fail-stop replays these outcomes from the log instead of
 * re-executing them, so forks are not forked twice and tokens are not
 * deposited twice (see DESIGN.md "Recoverable execution").
 */
struct HostOp
{
    enum class Kind : std::uint8_t { Send, Recv, Trap };
    Kind kind = Kind::Send;
    Word arg = 0;     ///< Channel id (send/recv) or trap number.
    Word result = 0;  ///< Received value / trap result.
    long kernelCycles = 0;  ///< Charged service cycles (traps).
    bool hasResult = false; ///< Trap produced a value (e.g. not wait).
};

/** One context: an activation of an acyclic data-flow graph. */
struct Context
{
    CtxId id = 0;
    pe::ContextState regs;
    CtxStatus status = CtxStatus::Ready;
    int homePe = 0;
    Word inChan = isa::kNullChannel;
    Word outChan = isa::kNullChannel;
    Addr queuePage = 0;
    Cycle readyAt = 0;
    /**
     * Host-op log handed over by a dead PE: replayed (instead of
     * re-executed) when the context restarts from its span-start
     * registers on a surviving PE. Empty in normal operation.
     */
    std::vector<HostOp> pendingReplay;
};

/** Result of a complete (or timed-out) program run. */
struct RunResult
{
    bool completed = false;   ///< All contexts terminated.
    Cycle cycles = 0;         ///< Finish time (max PE clock).
    std::uint64_t instructions = 0;
    std::uint64_t contexts = 0;      ///< Contexts created.
    std::uint64_t rendezvous = 0;    ///< Channel transfers completed.
    std::uint64_t contextSwitches = 0;
    double utilization = 0.0;        ///< Mean busy fraction over PEs.

    // Where the cycles went, summed over PEs (see DESIGN.md
    // "Observability"). computeCycles + kernelCycles + blockedCycles
    // accounts for every PE-cycle of the run; busCycles measures ring
    // occupancy, which overlaps PE execution.
    Cycle computeCycles = 0;  ///< Instruction execution (user work).
    Cycle kernelCycles = 0;   ///< Trap service + context switching.
    Cycle blockedCycles = 0;  ///< PE idle (starved, blocked, stalled).
    Cycle busCycles = 0;      ///< Ring-bus transfer occupancy.

    // Degraded-run reporting (see src/fault). A run that cannot make
    // progress (lost message, detected corruption, livelock) ends
    // cleanly with completed=false and a human-readable reason instead
    // of hanging or throwing.
    bool watchdogTripped = false;    ///< Watchdog/starvation ended the run.
    std::string failureReason;       ///< Empty on a completed run.
    std::uint64_t faultsInjected = 0;   ///< Faults fired (all kinds).
    /**
     * Faults survived: drops compensated by a retry or an end-to-end
     * retransmission, duplicates rejected by sequence-number dedup,
     * corruptions healed from the pristine copy, and contexts
     * re-dispatched off a fail-stopped PE. (Before the recovery layer
     * this counter mixed retries and bare detections; it is now
     * exactly the sum of the per-kind recovered counts below.)
     */
    std::uint64_t faultRecoveries = 0;
    /**
     * Events the tracer discarded after hitting its maxEvents cap. A
     * non-zero value means any exported trace is truncated and
     * trace-derived analyses (qmprof) undercount.
     */
    std::uint64_t traceDropped = 0;
    /**
     * The run was cut short by the *host*, not the simulated machine:
     * a wall-clock deadline expired or a shutdown signal arrived.
     * Host-aborted results are non-deterministic by nature (they
     * depend on host timing) and are therefore never journaled by the
     * sweep runner and never worth a checkpoint replay.
     */
    bool hostAborted = false;
    /** Unified per-kind accounting, indexed by FaultKind bit index. */
    struct FaultKindCounts
    {
        std::uint64_t injected = 0;   ///< Faults of this kind fired.
        std::uint64_t detected = 0;   ///< Noticed by checksum/timeout/lease.
        std::uint64_t recovered = 0;  ///< Survived via the recovery layer.
    };
    std::array<FaultKindCounts, fault::kNumFaultKinds> faultKinds{};
};

/** The whole simulated machine. */
class System
{
  public:
    System(const isa::ObjectCode &code, SystemConfig config);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Data memory (for loading benchmark inputs / reading results). */
    pe::Memory &memory() { return *memory_; }

    /**
     * Boot a context at @p entry and simulate until every context has
     * terminated or @p max_cycles elapses on some PE. With recovery
     * enabled a boot snapshot is taken first (and periodic ones every
     * recovery.checkpointEvery cycles), so a failed run can be rolled
     * back with restore() and re-driven with resume().
     */
    RunResult run(const std::string &entry,
                  Cycle max_cycles = 500'000'000);

    /**
     * Capture a checkpoint of the complete machine state. Running and
     * resident-blocked contexts are first quiesced (preempted with
     * their registers saved), so the snapshot needs no PE-internal
     * state and a restored machine resumes purely from kernel state.
     */
    void snapshot();

    /** A snapshot exists to restore() to. */
    bool canRestore() const;

    /**
     * Roll the machine back to the last snapshot: memory, contexts,
     * channel state, bus timing, statistics, and trace all rewind.
     * The fault injector's streams deliberately do NOT rewind, so a
     * replay draws a fresh (still deterministic) fault schedule
     * instead of re-losing the identical message forever.
     */
    void restore();

    /**
     * Re-enter the simulation loop after restore(). Only valid on a
     * booted system.
     */
    RunResult resume(Cycle max_cycles = 500'000'000);

    /**
     * The last run ended with a failure worth replaying from the
     * checkpoint (watchdog, starvation, detected corruption - but not
     * an exhausted cycle budget, which a replay would only re-spend).
     */
    bool replayable() const { return replayable_; }

    // --- Durable checkpoints (see DESIGN.md "Durable checkpoints") -------

    /**
     * Serialize the last snapshot() to @p path: a versioned,
     * per-section-checksummed container written atomically (temp file
     * + fsync + rename), so a crash mid-write leaves either the old
     * file or the new one, never a torn hybrid. Requires a prior
     * snapshot(). Returns a structured Status instead of throwing; a
     * failed write leaves any existing file at @p path untouched.
     */
    persist::Status saveCheckpoint(const std::string &path) const;

    /**
     * Warm-start this (un-run) system from a checkpoint file: verify
     * magic/version/section checksums and the configuration
     * fingerprint, rebuild the in-memory checkpoint, and restore() to
     * it. On any failure the system is left untouched (still cold,
     * still runnable) and a structured Status says why - corruption is
     * detected and refused, never a crash or a silently-wrong resume.
     * On success, drive the machine with resume().
     */
    persist::Status loadCheckpoint(const std::string &path);

    /**
     * Hook invoked after every snapshot() (boot and periodic), with
     * this system as the argument - the persistence point for
     * `occamc --checkpoint-file`. Exceptions from the sink propagate
     * out of the run loop.
     */
    void
    setCheckpointSink(std::function<void(System &)> sink)
    {
        checkpointSink_ = std::move(sink);
    }

    /**
     * Canonical description of everything that must match for a
     * checkpoint to be resumable on this system: machine shape,
     * kernel costs, timing, fault/recovery plans, trace enablement,
     * and a CRC of the object code. Host-side choices that are
     * byte-inert by invariant (SimCore, hostThreads, deadline) are
     * deliberately excluded, so a checkpoint saved under --core tick
     * resumes under --core event --threads 4 and vice versa.
     */
    std::string configFingerprint() const;

    /** Aggregate statistics from the last run. */
    const StatSet &stats() const { return stats_; }

    /**
     * Consistent mid-run view of the statistics registry: the global
     * StatSet plus every PE slot's pending plain-counter deltas and
     * per-PE scoped views, folded the same way finalizeRun() folds
     * them at the end. Purely observational — the run's own stats are
     * not perturbed. Used by the telemetry stream.
     */
    StatSet statsSnapshot();

    /** The always-on flight recorder (see src/obs/flight.hpp). */
    const obs::FlightRecorder &flight() const { return flight_; }

    /**
     * Dump the flight recorder's black box to @p path with @p reason,
     * stamped with the current cycle high-water mark and live-context
     * count. No-op (ok Status) when QM_FLIGHT=0 disabled the
     * recorder. Called automatically on failure exits when
     * config.flightPath is set; public for drivers' fatal-error
     * paths.
     */
    persist::Status writeFlightDump(const std::string &path,
                                    const std::string &reason);

    /**
     * Hook invoked at every telemetry boundary (config.telemetryEvery
     * > 0) with this system and the boundary cycle stamp. The sink
     * runs on the simulation thread between batches; it must not
     * mutate the machine.
     */
    void
    setTelemetrySink(std::function<void(System &, Cycle)> sink)
    {
        telemetrySink_ = std::move(sink);
    }

    /** The run's event recorder (empty unless tracing is enabled). */
    const trace::Tracer &tracer() const { return tracer_; }

    /** Per-channel/context diagnostic dump (deadlock analysis). */
    std::string dumpState() const;

  private:
    friend class HostAdapter;

    struct PeSlot;

    // --- Kernel services -------------------------------------------------
    /**
     * @p preferredShard steers distance-aware placement in sharded
     * (multi-ring) mode: -1 means "the forking PE's shard". Ignored on
     * the flat ring.
     */
    CtxId createContext(Word codeAddr, Word inChan, Word outChan,
                        int forkingPe, Cycle now,
                        int preferredShard = -1);
    /** @p pe records the allocating shard in the channel directory. */
    Word allocChannelPair(int pe);
    Addr allocQueuePage();
    void freeQueuePage(Addr page);
    int placeContext(int forkingPe, int preferredShard = -1);
    void wakeContext(CtxId ctx, Cycle at);

    // --- Sharded kernel (hierarchical topologies; see DESIGN.md) ---------
    /** Shards in the kernel = local rings in the topology. */
    int numShards() const { return config_.busRings; }
    int shardOfPe(int pe) const { return bus.ringOf(pe); }
    /**
     * Least-loaded live PE within @p shard (per-shard rotation cursor
     * breaks ties); spills to the global least-loaded PE only when
     * every PE of the shard is busier than the global minimum.
     */
    int placeSharded(int shard);
    /** Sum of ready-queue depths + running flags over a shard's PEs. */
    std::size_t shardLoad(int shard) const;

    // Host operations, invoked from the PE mid-step.
    pe::HostStatus hostSend(int pe, Word channel, Word value);
    pe::HostStatus hostRecv(int pe, Word channel, Word &value);
    pe::TrapOutcome hostTrap(int pe, Word number, Word argument);
    pe::TrapOutcome trapService(PeSlot &slot, Word number,
                                Word argument);

    // --- Scheduling ------------------------------------------------------
    bool dispatch(PeSlot &slot);   ///< Load next ready context if idle.
    /** Book the ending run span's length into the residency metrics. */
    void recordResidency(PeSlot &slot);
    void park(PeSlot &slot, CtxStatus status);
    void finishContext(PeSlot &slot);
    void evictResident(PeSlot &slot);
    /** Forced preemption (checkpoint quiesce): park + requeue Ready. */
    void preemptRunning(PeSlot &slot);
    /** End the current run span: clear its host-op and undo logs. */
    void commitSpan(PeSlot &slot);

    /**
     * Enqueue @p ctx on @p slot's ready queue and, on the event core,
     * register the slot's wake in the calendar. Every ready-queue push
     * must go through here (or be followed by an explicit calendar
     * re-registration): the calendar invariant is that whenever a slot
     * has a nextTime(), at least one calendar entry is <= it.
     */
    void pushReady(PeSlot &slot, Cycle readyAt, CtxId ctx);

    /**
     * Register @p slot in the calendar at time @p at, unless its live
     * entry (PeSlot::calAt) is already an equal-or-lower bound. Keeps
     * at most one live entry per slot; an improved registration turns
     * the old entry into a duplicate that the scheduler drops when it
     * surfaces.
     */
    void calSchedule(PeSlot &slot, Cycle at);

    // --- Recovery (see DESIGN.md "Recoverable execution") ---------------
    /** Dispatches on config_.core (shared by run() and resume()). */
    RunResult runLoop(Cycle max_cycles);
    /** The historical scan-all-slots loop, kept verbatim. */
    RunResult runLoopTick(Cycle max_cycles);
    /** The calendar-queue loop (see DESIGN.md). */
    RunResult runLoopEvent(Cycle max_cycles);

    // --- PDES window scheduler (hostThreads > 1; see DESIGN.md) ----------
    /**
     * Conservative synchronous windowed loop: byte-identical to
     * runLoopEvent for any thread count. Windows are [T0, W) with
     * W - T0 bounded by the bus lookahead and by every guard the
     * sequential loop evaluates between batches (kill/lease/
     * checkpoint/watchdog/budget), so those guards can only fire at
     * window boundaries - exactly where the sequential loop would
     * fire them.
     */
    RunResult runLoopThreaded(Cycle max_cycles);
    /**
     * Speculation record: one 16-step batch run ahead of its global
     * order on a worker thread, with every system-global side effect
     * (stats samples, the dispatch trace event, the context-switch
     * counter, progress watermark) staged for ordered replay by the
     * window drain. Slot-local and context-local state is mutated in
     * place - proven equivalent because cross-PE influence inside a
     * window is impossible (lookahead) and host ops are deferred.
     */
    struct SpecRec
    {
        Cycle start = 0;      ///< Selection key (slot nextTime()).
        int stepsDone = 0;    ///< Executed steps (batch resumes here).
        bool deferred = false;    ///< Ended on a deferred host op.
        bool poppedEntry = false; ///< Dispatch consumed a ready entry.
        bool hadRunningBefore = false;  ///< Slot was mid-context.
        CtxId dispatchCtx = static_cast<CtxId>(-1);  ///< Trace event.
        Cycle dispatchAt = 0;
        bool residentResume = false;
        bool evicted = false;
        int switchesDelta = 0;
        Cycle lastProgress = -1;  ///< Watermark after the last step.
        std::optional<std::uint64_t> readyWait;  ///< Queue-wait sample.
        std::exception_ptr error;  ///< Rethrown at drain position.
    };
    /**
     * Speculate one slot ahead of the committed timeline (worker
     * thread). Dispatches are bounded by @p window_end (they consult
     * the ready queue, which is only lookahead-stable inside the
     * window); continuation batches of a running context are bounded
     * by @p spec_horizon, which the caller widens to the cycle budget
     * when no time-triggered guard needs window-exact state - that
     * "banking" lets one gang round cover many windows.
     */
    void specSlot(PeSlot &slot, Cycle window_end, Cycle spec_horizon,
                  Cycle max_cycles);
    /**
     * Staged twin of dispatch(): true if a batch should run. False
     * ends speculation for the slot *without* consuming anything -
     * taken when the top ready entry is not plainly dispatchable
     * (stale or superseded), which only the drain can decide.
     */
    bool dispatchSpec(PeSlot &slot, SpecRec &rec);
    /** Replay one record's staged effects (+ continuation batch). */
    void commitSpec(PeSlot &slot, Cycle max_cycles);
    /**
     * The 16-step batch body shared verbatim by runLoopEvent, the
     * window drain's live selections, and deferred-batch
     * continuations (which resume at @p first_step).
     */
    void runBatchEvent(PeSlot &slot, Cycle max_cycles, int first_step);
    /**
     * Scheduling load of one slot as the sequential core would see it
     * at the drain's current position: uncommitted speculation has
     * already popped ready entries and possibly started a context, so
     * those effects are added back.
     */
    std::size_t slotLoad(const PeSlot &slot) const;
    /** Is @p ctx Running only because of uncommitted speculation? */
    bool speculativelyRunning(const Context &ctx) const;
    void injectPeKill(Cycle at);
    /** Lease expired: re-dispatch the dead PE's contexts. */
    void recoverDeadPe(Cycle at);
    /** LeastLoaded placement over live PEs (skips fail-stopped ones). */
    int placeSurvivor();

    /**
     * End-of-run bookkeeping shared by the normal and timeout exits:
     * folds per-PE and message-cache statistics into stats_, computes
     * finish time, utilization, and the compute/kernel/bus/blocked
     * cycle breakdown. Everything except `completed` is filled in.
     */
    void finalizeRun(RunResult &result);

    /**
     * Fill in the end-of-run failure fields shared by the watchdog,
     * starvation, and corruption exits, then finalize.
     */
    RunResult failRun(const std::string &reason, bool watchdog);

    /**
     * Throttled host-side abort check shared by all three run loops:
     * true (with @p why filled in) when a shutdown signal arrived or
     * the config_.hostDeadlineMs budget for this run-loop entry is
     * exhausted. Polls the wall clock only every ~1k calls, and only
     * when a deadline or signal handler is actually armed.
     */
    bool hostAbortDue(std::string &why);
    /** Structured host-abort exit (hostAborted set, not replayable). */
    RunResult abortRun(const std::string &reason);

    const isa::ObjectCode &code_;
    SystemConfig config_;
    std::unique_ptr<pe::Memory> memory_;
    RingBus bus;
    msg::MessageCache cache;
    /** Present exactly when config_.faultPlan is enabled. */
    std::unique_ptr<fault::FaultInjector> faults_;
    /** Sticky mid-run failure (e.g. detected token corruption). */
    std::string pendingFailure_;

    std::vector<std::unique_ptr<PeSlot>> slots;

    /**
     * Event-core calendar: lower-bound wake registrations, one or more
     * per schedulable slot. Entries are never eagerly removed when a
     * slot's wake time moves; the scheduler validates the top against
     * the slot's current nextTime() and corrects or drops stale
     * entries as they surface (a lazy min-heap). Ordered by (cycle,
     * PE index) so ties resolve to the lowest index, exactly like the
     * tick core's linear scan.
     */
    struct CalEntry
    {
        Cycle at = 0;
        int pe = 0;
        bool operator>(const CalEntry &o) const
        {
            if (at != o.at)
                return at > o.at;
            return pe > o.pe;
        }
    };
    std::priority_queue<CalEntry, std::vector<CalEntry>, std::greater<>>
        calendar_;
    /** Shared lazy decode cache (event core only). */
    std::unique_ptr<isa::DecodedProgram> decoded_;

    std::vector<Context> contexts;
    std::vector<Addr> freePages;
    Word nextChannel = 2;  ///< 0 reserved, allocate pairs from 2.
    Addr heapNext = kHeapBase;
    int rrNext = 0;        ///< Round-robin placement cursor.

    // Sharded-kernel state (sized/maintained only when numShards() > 1
    // so flat-ring runs stay byte-identical on every surface).
    std::vector<int> shardRr_;           ///< Per-shard tie cursors.
    std::vector<std::uint64_t> shardCtxLive_;  ///< Live ctx per shard.
    /**
     * Channel directory: channel id -> shard of the allocating PE.
     * Ifork consults it to place a child near the consumer of its
     * output channel (distance-aware placement).
     */
    std::map<Word, int> channelShard_;
    bool booted = false;
    std::uint64_t liveContexts = 0;
    std::uint64_t switches = 0;

    // PDES state (inert unless config_.hostThreads > 1 on the event
    // core; see DESIGN.md "Deterministic intra-run parallelism").
    Cycle lookahead_ = 0;   ///< bus.minCrossLatency(), cached at init.
    bool threadedRun_ = false;  ///< Inside runLoopThreaded (skips the
                                ///< calendar bookkeeping in pushReady).
    std::unique_ptr<WorkerGang> gang_;  ///< Started on first windowed run.
    std::vector<std::vector<int>> partitions_;  ///< Worker -> owned PEs.

    // Recovery state (all inert unless config_.recovery.enabled).
    bool recoveryOn_ = false;
    bool killArmed_ = false;       ///< Planned pekill not yet fired.
    int pendingDeadPe_ = -1;       ///< Killed PE awaiting lease expiry.
    Cycle deadDetectAt_ = 0;       ///< When the kernel notices.
    Cycle nextCheckpointAt_ = 0;   ///< Next periodic snapshot.
    Cycle lastProgress_ = 0;       ///< Watchdog progress marker.
    bool replayable_ = false;
    struct Checkpoint;
    std::unique_ptr<Checkpoint> checkpoint_;

    // Durable-checkpoint and host-abort plumbing.
    std::function<void(System &)> checkpointSink_;
    std::chrono::steady_clock::time_point runStart_{};
    unsigned hostGuardTick_ = 0;

    // Telemetry stream state (inert unless config_.telemetryEvery > 0).
    Cycle nextTelemetryAt_ = 0;  ///< Next snapshot boundary.
    std::function<void(System &, Cycle)> telemetrySink_;
    /** Telemetry boundary reached: advance and invoke the sink. */
    void emitTelemetry(Cycle best_time);

    StatSet stats_;
    // The flight recorder must outlive the tracer, whose sink pointer
    // refers to it (members destroy in reverse declaration order).
    obs::FlightRecorder flight_;
    trace::Tracer tracer_;
};

} // namespace qm::mp
