#include "msg/message_cache.hpp"

#include "support/diagnostics.hpp"

namespace qm::msg {

std::string
toString(ChannelState state)
{
    switch (state) {
      case ChannelState::Idle: return "Idle";
      case ChannelState::Full: return "Full";
      case ChannelState::RecvWait: return "RecvWait";
    }
    panic("unreachable channel state");
}

std::uint8_t
tokenChecksum(Word value)
{
    Word folded = value ^ (value >> 16);
    folded ^= folded >> 8;
    return static_cast<std::uint8_t>(folded & 0xFF);
}

MessageCache::MessageCache(int capacity) : capacity_(capacity)
{
    fatalIf(capacity < 1, "message cache capacity must be >= 1");
}

ChannelOp
MessageCache::send(Word channel, CtxId ctx, Word value,
                   trace::Cycle now)
{
    ChannelEntry &entry = entries[channel];
    ChannelOp op;
    counterSlot(counters_.sendRequests, "msg.send_requests") += 1;
    if (static_cast<int>(entry.values.size()) >= capacity_) {
        entry.sendWaiters.push_back(ctx);
        op.blocked = true;
        return op;
    }
    std::uint64_t seq = entry.nextSeq++;
    entry.values.push_back(
        {value, tokenChecksum(value), seq, value, now});
    histogramSlot(histograms_.fifoDepth, "msg.fifo_depth")
        .sample(static_cast<std::uint64_t>(entry.values.size()));
    if (faults_ && faults_->fire(fault::kCacheCorrupt)) {
        // Flip one bit of the slot just written, keeping the send-time
        // checksum (and the sender's pristine retransmit copy): the
        // receive side detects the mismatch.
        entry.values.back().value =
            faults_->corruptWord(entry.values.back().value);
        stats_.inc("fault.cache_corrupt");
        if (tracer_)
            tracer_->faultInject(now, -1, fault::kCacheCorrupt,
                                 channel);
    }
    if (faults_ && recoveryOn() && faults_->fire(fault::kBusDup)) {
        // A duplicated deposit arrives carrying the same sequence
        // number; the entry already holds (or has consumed past) that
        // seq, so receiver-side dedup rejects it outright. Idempotent
        // by protocol, not by luck.
        stats_.inc("fault.cache_dup");
        stats_.inc("fault.dup.detected");
        stats_.inc("fault.dup.recovered");
        if (tracer_) {
            tracer_->faultInject(now, -1, fault::kBusDup, channel);
            tracer_->faultRecover(now, -1, fault::kBusDup, seq);
        }
    }
    op.completed = true;
    if (!entry.recvWaiters.empty()) {
        op.wakes.push_back(entry.recvWaiters.front());
        entry.recvWaiters.pop_front();
    }
    return op;
}

ChannelOp
MessageCache::recv(Word channel, CtxId ctx, trace::Cycle now)
{
    ChannelEntry &entry = entries[channel];
    ChannelOp op;
    counterSlot(counters_.recvRequests, "msg.recv_requests") += 1;
    if (entry.values.empty()) {
        entry.recvWaiters.push_back(ctx);
        op.blocked = true;
        return op;
    }
    Token token = entry.values.front();
    entry.values.pop_front();
    op.completed = true;
    op.value = token.value;
    if (faults_ && tokenChecksum(token.value) != token.sum) {
        op.corrupted = true;
        stats_.inc("fault.corrupt_detected");
        stats_.inc("fault.corrupt.detected");
        if (tracer_)
            tracer_->faultRecover(now, -1, fault::kCacheCorrupt,
                                  channel);
        if (recoveryOn()) {
            // NACK + deterministic resend: the sender's pristine copy
            // replaces the corrupted slot, and the round trip costs
            // bounded protocol cycles instead of the whole run.
            op.value = token.pristine;
            op.healed = true;
            op.penalty = recovery_->nackPenalty;
            stats_.inc("fault.corrupt.recovered");
            stats_.inc("fault.nack_penalty_cycles",
                       static_cast<std::uint64_t>(op.penalty));
            stats_.record("fault.nack_penalty",
                          static_cast<std::uint64_t>(op.penalty));
        }
    }
    counterSlot(counters_.rendezvous, "msg.rendezvous") += 1;
    // Send-to-rendezvous latency. The receiver's clock can lag the
    // sender's (PE clocks are only loosely synchronized), so clamp at
    // zero rather than recording a wrapped negative.
    histogramSlot(histograms_.latency, "msg.latency")
        .sample(now >= token.sentAt
                    ? static_cast<std::uint64_t>(now - token.sentAt)
                    : 0);
    if (tracer_)
        tracer_->rendezvous(now, channel, ctx, *op.value);
    if (!entry.sendWaiters.empty()) {
        op.wakes.push_back(entry.sendWaiters.front());
        entry.sendWaiters.pop_front();
    }
    return op;
}

ChannelState
MessageCache::state(Word channel) const
{
    auto it = entries.find(channel);
    if (it == entries.end())
        return ChannelState::Idle;
    if (!it->second.values.empty())
        return ChannelState::Full;
    if (!it->second.recvWaiters.empty())
        return ChannelState::RecvWait;
    return ChannelState::Idle;
}

const ChannelEntry *
MessageCache::entry(Word channel) const
{
    auto it = entries.find(channel);
    return it == entries.end() ? nullptr : &it->second;
}

std::size_t
MessageCache::pendingChannels() const
{
    std::size_t count = 0;
    for (const auto &[id, entry] : entries)
        if (!entry.values.empty() || !entry.recvWaiters.empty())
            ++count;
    return count;
}

} // namespace qm::msg
