/**
 * @file
 * Message-cache channel state machine (thesis section 5.5, Tables
 * 5.3/5.4, Figures 5.14-5.17, and the accessible-state analysis of
 * Table 6.7 / Fig 6.13).
 *
 * The thesis implements channels with dedicated message-processor and
 * message-cache hardware; operand/token queueing is "an integral part
 * of data-flow machines" (section 2.7), and every value sent over a
 * splice channel is a distinct arc of the data-flow graph with its own
 * token-carrying capacity of one. The cache entry therefore holds a
 * small FIFO of in-flight values: a send deposits into the FIFO and the
 * sending context continues, blocking only when the FIFO is full; a
 * receive takes the oldest value, or parks until one arrives.
 *
 * Entry states (Fig 5.16/5.17 protocol):
 *   Idle     - no values, no parked receivers.
 *   Full     - one or more values queued, awaiting receivers.
 *   RecvWait - receivers parked, awaiting values.
 *
 * Requests that find the entry unable to serve them park in per-entry
 * waiter queues and are woken to retry, in arrival order, whenever the
 * entry can make progress - so no wakeup is ever lost.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "isa/fields.hpp"
#include "support/stats.hpp"
#include "trace/trace.hpp"

namespace qm::msg {

using isa::Word;

/** Protocol state of one channel entry. */
enum class ChannelState
{
    Idle,
    Full,
    RecvWait,
};

std::string toString(ChannelState state);

/** Opaque context identifier (kernel context ids). */
using CtxId = std::uint32_t;
constexpr CtxId kNoCtx = 0xFFFFFFFFu;

/** Outcome of presenting a send or receive request to the cache. */
struct ChannelOp
{
    bool completed = false;       ///< Request retired this attempt.
    bool blocked = false;         ///< Requester must park and retry.
    /** Checksum mismatch on the received token (fault detection). */
    bool corrupted = false;
    /** Mismatch healed from the pristine copy (recovery enabled). */
    bool healed = false;
    /** Protocol cycles to charge (NACK + pristine-copy resend). */
    fault::Cycle penalty = 0;
    std::optional<Word> value;    ///< Received value (receive only).
    /** Contexts to make ready (woken peers / queued waiters). */
    std::vector<CtxId> wakes;
};

/**
 * One in-flight token: the value, the checksum stamped at send time
 * (so cache-slot corruption is detectable at receive time), the
 * channel sequence number (so a duplicated delivery is rejectable),
 * the sender's pristine retransmit copy (so a detected corruption is
 * healable by a deterministic resend), and the send-time cycle stamp
 * (so the receive side can charge the full send-to-rendezvous latency
 * to the `msg.latency` histogram).
 */
struct Token
{
    Word value = 0;
    std::uint8_t sum = 0;
    std::uint64_t seq = 0;
    Word pristine = 0;
    trace::Cycle sentAt = 0;
};

/** XOR-folded byte checksum; detects any single-bit flip. */
std::uint8_t tokenChecksum(Word value);

/** One channel's protocol entry (Fig 5.15 format). */
struct ChannelEntry
{
    std::deque<Token> values;      ///< In-flight tokens, oldest first.
    std::deque<CtxId> sendWaiters; ///< Parked senders (FIFO full).
    std::deque<CtxId> recvWaiters; ///< Parked receivers (FIFO empty).
    std::uint64_t nextSeq = 0;     ///< Send-side sequence counter.
};

/**
 * The message cache: channel-id -> protocol entry, with the transition
 * functions of Tables 5.3/5.4. One instance is shared by the kernel in
 * this reproduction (the thesis distributes entries across per-PE
 * caches; the protocol states and transitions are identical, and the
 * per-hop transfer costs are charged by the ring-bus model instead).
 */
class MessageCache
{
  public:
    /** @p capacity = tokens one entry can hold before senders park. */
    explicit MessageCache(int capacity = 8);

    /**
     * Present a send request from context @p ctx: deposit into the
     * FIFO (completed; wakes one parked receiver), or park when the
     * FIFO is at capacity. @p now stamps trace events.
     */
    ChannelOp send(Word channel, CtxId ctx, Word value,
                   trace::Cycle now = 0);

    /**
     * Present a receive request from context @p ctx: take the oldest
     * value (completed; wakes one parked sender), or park when no
     * value is available. @p now stamps trace events.
     */
    ChannelOp recv(Word channel, CtxId ctx, trace::Cycle now = 0);

    /** Current state of @p channel (Idle if never touched). */
    ChannelState state(Word channel) const;

    /** Entry inspection for tests/diagnostics. */
    const ChannelEntry *entry(Word channel) const;

    /** Number of channels not currently Idle. */
    std::size_t pendingChannels() const;

    int capacity() const { return capacity_; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    /** Attach the system's event recorder (may be null). */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /**
     * Attach the system's fault injector (may be null). With cache
     * corruption enabled, a send may flip one bit of the token it just
     * deposited; the mismatch against the send-time checksum is
     * reported by the receiving recv() via ChannelOp::corrupted.
     */
    void setFaultInjector(fault::FaultInjector *faults)
    {
        faults_ = faults;
    }

    /**
     * Attach the system's recovery plan (null or disabled = PR 3
     * detect-and-fail behavior). With recovery on, a duplicated
     * deposit is rejected by its sequence number and a receive-side
     * checksum mismatch heals from the token's pristine copy, charging
     * ChannelOp::penalty protocol cycles instead of failing the run.
     */
    void setRecovery(const fault::RecoveryPlan *recovery)
    {
        recovery_ = recovery;
    }

    /** Deep-copyable protocol state for System checkpoints. */
    struct Snapshot
    {
        std::map<Word, ChannelEntry> entries;
        StatSet stats;
    };

    Snapshot
    snapshot() const
    {
        return {entries, stats_};
    }

    void
    restore(const Snapshot &snap)
    {
        entries = snap.entries;
        stats_ = snap.stats;
        // The assignment rebuilt the stat maps; cached slot pointers
        // into the old maps are dead.
        counters_ = CounterHandles{};
        histograms_ = HistogramHandles{};
    }

  private:
    bool recoveryOn() const
    {
        return recovery_ != nullptr && recovery_->enabled;
    }

    /**
     * Cached map slots for the send/recv hot-path statistics. Resolved
     * on first use (creation order in the stat map is unchanged) and
     * invalidated whenever stats_ is reassigned (restore()).
     */
    struct CounterHandles
    {
        std::uint64_t *sendRequests = nullptr;
        std::uint64_t *recvRequests = nullptr;
        std::uint64_t *rendezvous = nullptr;
    };
    struct HistogramHandles
    {
        Histogram *fifoDepth = nullptr;
        Histogram *latency = nullptr;
    };

    std::uint64_t &
    counterSlot(std::uint64_t *&slot, const char *name)
    {
        if (!slot)
            slot = &stats_.counterRef(name);
        return *slot;
    }

    Histogram &
    histogramSlot(Histogram *&slot, const char *name)
    {
        if (!slot)
            slot = &stats_.histogramRef(name);
        return *slot;
    }

    int capacity_;
    std::map<Word, ChannelEntry> entries;
    StatSet stats_;
    CounterHandles counters_;
    HistogramHandles histograms_;
    trace::Tracer *tracer_ = nullptr;
    fault::FaultInjector *faults_ = nullptr;
    const fault::RecoveryPlan *recovery_ = nullptr;
};

} // namespace qm::msg
