/**
 * @file
 * Shared corpus of structured random OCCAM programs (and the fault /
 * recovery plans the chaos suites pair them with). Extracted from the
 * original fuzz differential suite so the simulation-core differential
 * gate can replay the exact same corpora: same seeds, same programs,
 * same fault schedules.
 */
#pragma once

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "support/rng.hpp"

namespace qm::fuzz {

/** Generates one random (well-formed, terminating) program per seed. */
class ProgramGen
{
  public:
    explicit ProgramGen(std::uint64_t seed) : rng(seed) {}

    std::string
    generate()
    {
        os << "var res[8], arr[8]:\n";
        os << "var v0, v1, v2, v3:\n";
        os << "seq\n";
        // Deterministic initialization.
        for (int i = 0; i < 4; ++i)
            line(1, "v" + std::to_string(i) + " := " +
                        std::to_string(rng.range(-9, 9)));
        line(1, "seq zz = [0 for 8]");
        line(2, "arr[zz] := zz * " + std::to_string(rng.range(1, 5)));
        // Random statement soup.
        int budget = 6 + static_cast<int>(rng.below(6));
        for (int i = 0; i < budget; ++i)
            statement(1);
        // Observable results.
        for (int i = 0; i < 4; ++i)
            line(1, "res[" + std::to_string(i) + "] := v" +
                        std::to_string(i));
        for (int i = 0; i < 4; ++i)
            line(1, "res[" + std::to_string(4 + i) + "] := arr[" +
                        std::to_string(static_cast<int>(rng.below(8))) +
                        "]");
        return os.str();
    }

  private:
    void
    line(int depth, const std::string &text)
    {
        for (int i = 0; i < depth; ++i)
            os << "  ";
        os << text << "\n";
    }

    std::string
    var()
    {
        return "v" + std::to_string(rng.below(4));
    }

    /** Array index guaranteed in [0, 8). */
    std::string
    index()
    {
        // ((e \ 4) + 4) \ 8 is always in range even for negative e.
        return "(((" + expr(1) + " \\ 4) + 4) \\ 8)";
    }

    std::string
    expr(int depth)
    {
        if (depth >= 3 || rng.below(3) == 0) {
            switch (rng.below(3)) {
              case 0: return std::to_string(rng.range(-9, 9));
              case 1: return var();
              default: return "arr[" +
                              std::to_string(
                                  static_cast<int>(rng.below(8))) +
                              "]";
            }
        }
        static const char *ops[] = {"+", "-", "*"};
        return "(" + expr(depth + 1) + " " +
               ops[rng.below(3)] + " " + expr(depth + 1) + ")";
    }

    std::string
    condition()
    {
        static const char *rel[] = {"<", ">", "=", "<>", "<=", ">="};
        return "(" + expr(2) + ") " + rel[rng.below(6)] + " (" +
               expr(2) + ")";
    }

    void
    statement(int depth)
    {
        if (depth >= 3) {
            line(depth, var() + " := " + expr(1));
            return;
        }
        switch (rng.below(6)) {
          case 0:
            line(depth, var() + " := " + expr(1));
            return;
          case 1:
            line(depth, "arr[" + index() + "] := " + expr(1));
            return;
          case 2: {
            // Bounded loop via replicated seq.
            std::string i = "i" + std::to_string(fresh++);
            line(depth, "seq " + i + " = [0 for " +
                            std::to_string(rng.range(1, 4)) + "]");
            statement(depth + 1);
            return;
          }
          case 3: {
            line(depth, "if");
            line(depth + 1, condition());
            statement(depth + 2);
            line(depth + 1, "true");  // default arm keeps it total
            statement(depth + 2);
            return;
          }
          case 4: {
            // Par with components writing disjoint scalars.
            line(depth, "par");
            line(depth + 1, "v0 := " + disjointExpr(0));
            line(depth + 1, "v1 := " + disjointExpr(1));
            return;
          }
          default: {
            // Replicated par writing disjoint array slots.
            std::string i = "p" + std::to_string(fresh++);
            line(depth, "par " + i + " = [0 for 4]");
            line(depth + 1, "arr[" + i + "] := " + i + " + " +
                                std::to_string(rng.range(-5, 5)));
            return;
          }
        }
    }

    /** Expression not reading the scalar another component writes. */
    std::string
    disjointExpr(int writer)
    {
        // Reads only v2/v3 and arr, which no par component writes.
        std::string base =
            rng.below(2) == 0 ? "v2" : "v3";
        (void)writer;
        return "(" + base + " + " +
               std::to_string(rng.range(-9, 9)) + ")";
    }

    SplitMix64 rng;
    std::ostringstream os;
    int fresh = 0;
};

/** Program-corpus seed for index @p idx (all three corpora share it). */
inline std::uint64_t
corpusSeed(int idx)
{
    return 0xF00D + static_cast<std::uint64_t>(idx) * 0x9E37;
}

/** PE count the corpora sweep per index. */
inline int
corpusPes(int idx)
{
    return 1 + idx % 4;
}

/**
 * One pinned multi-partition recovery scenario: a machine big enough
 * for a real "rings:KxM" hierarchy plus a fault plan whose recovery
 * (retransmits, fail-stop re-dispatch) must push traffic across ring
 * bridges. Replayed by the fault suite (must recover exactly) and by
 * core_differential_test (both simulation cores byte-identical).
 */
struct PartitionedRecoverySpec
{
    const char *faults;  ///< fault::parseFaultPlan spec.
    int pes;             ///< Machine size (>= 8: real hierarchies).
    int rings;           ///< K local rings...
    int partitions;      ///< ...of M partitions each.
};

/**
 * The pinned multi-partition recovery corpus. Every entry either kills
 * a PE (homed on a different ring than the boot context, so recovery
 * re-dispatch migrates across a bridge) or loses heavily enough that
 * end-to-end retransmits repeatedly re-cross bridges.
 */
inline const PartitionedRecoverySpec kPartitionedRecoveryCorpus[] = {
    {"seed=3,rate=0.5,kinds=drop,retries=1", 8, 2, 2},
    {"seed=9,rate=0.6,kinds=drop+dup,retries=0", 8, 4, 1},
    {"seed=2,killat=600,killpe=5", 8, 2, 2},
    {"seed=13,rate=0.3,kinds=drop,retries=1,killat=900,killpe=9", 16,
     4, 2},
    {"seed=21,rate=0.5,kinds=drop+dup+corrupt,retries=0,killat=800,"
     "killpe=12", 16, 2, 4},
    {"seed=30,rate=0.4,kinds=drop,retries=0,killat=700,killpe=20", 24,
     8, 1},
};

/**
 * Corpus width: @p fallback by default, overridable with the
 * QM_FUZZ_ITERS environment variable (used by the nightly chaos CI
 * job to soak far wider than a developer checkout).
 */
inline int
fuzzIters(int fallback)
{
    const char *env = std::getenv("QM_FUZZ_ITERS");
    if (env == nullptr || *env == '\0')
        return fallback;
    int iters = std::atoi(env);
    return iters > 0 ? iters : fallback;
}

} // namespace qm::fuzz
