/**
 * @file
 * Tests for acyclic data-flow graphs and the indexed queue machine
 * (thesis sections 3.5-3.6).
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "dfg/graph.hpp"
#include "dfg/iqm.hpp"
#include "dfg/scheduler.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace {

using namespace qm;
using namespace qm::dfg;

/** d <- a/(a+b) + (a+b)*c: the Fig 3.6 / Table 3.4 example. */
struct Table34Graph
{
    Dfg graph;
    int a, b, c, sum, quot, prod, root;

    Table34Graph()
    {
        a = graph.addInput("a");
        b = graph.addInput("b");
        c = graph.addInput("c");
        sum = graph.addNode("+", {a, b});
        quot = graph.addNode("/", {a, sum});
        prod = graph.addNode("*", {sum, c});
        root = graph.addNode("+", {quot, prod});
    }
};

TEST(Dfg, StructureQueries)
{
    Table34Graph t;
    EXPECT_EQ(t.graph.size(), 7);
    EXPECT_EQ(t.graph.inputs(), (std::vector<int>{t.a, t.b, t.c}));
    EXPECT_EQ(t.graph.sinks(), (std::vector<int>{t.root}));
    EXPECT_EQ(t.graph.arity(t.sum), 2);
    EXPECT_EQ(t.graph.arity(t.a), 0);
    // a feeds both + (slot 0) and / (slot 0).
    auto consumers = t.graph.consumers(t.a);
    ASSERT_EQ(consumers.size(), 2u);
    EXPECT_EQ(consumers[0], (Consumer{t.sum, 0}));
    EXPECT_EQ(consumers[1], (Consumer{t.quot, 0}));
}

TEST(Dfg, ReachesImplementsPartialOrder)
{
    Table34Graph t;
    EXPECT_TRUE(t.graph.reaches(t.a, t.root));
    EXPECT_TRUE(t.graph.reaches(t.sum, t.prod));
    EXPECT_FALSE(t.graph.reaches(t.prod, t.sum));
    EXPECT_FALSE(t.graph.reaches(t.b, t.quot) &&
                 t.graph.reaches(t.quot, t.b));
    EXPECT_TRUE(t.graph.reaches(t.b, t.b));  // reflexive
    EXPECT_FALSE(t.graph.reaches(t.c, t.quot));  // incomparable pair
}

TEST(Dfg, IsTopologicalValidation)
{
    Table34Graph t;
    std::vector<int> good = {t.a, t.b, t.c, t.sum, t.quot, t.prod, t.root};
    EXPECT_TRUE(t.graph.isTopological(good));
    std::vector<int> bad = {t.sum, t.a, t.b, t.c, t.quot, t.prod, t.root};
    EXPECT_FALSE(t.graph.isTopological(bad));
    std::vector<int> short_order = {t.a, t.b};
    EXPECT_FALSE(t.graph.isTopological(short_order));
    std::vector<int> dup = {t.a, t.a, t.c, t.sum, t.quot, t.prod, t.root};
    EXPECT_FALSE(t.graph.isTopological(dup));
}

TEST(Dfg, AddNodeRejectsForwardReferences)
{
    Dfg graph;
    EXPECT_THROW(graph.addNode("+", {0, 1}), PanicError);
}

TEST(Dfg, DotOutputContainsNodesAndEdges)
{
    Table34Graph t;
    std::string dot = t.graph.toDot("t34");
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Iqm, Table34ProgramEvaluatesCorrectly)
{
    // a=40, b=10, c=3: d = 40/50 + 50*3 = 0 + 150 = 150.
    Table34Graph t;
    std::vector<int> order = {t.a, t.b, t.c, t.sum, t.quot, t.prod,
                              t.root};
    IqmProgram program = buildProgram(t.graph, order);
    NodeValues values =
        evalProgram(t.graph, program, {{"a", 40}, {"b", 10}, {"c", 3}});
    EXPECT_EQ(values[static_cast<size_t>(t.sum)], 50);
    EXPECT_EQ(values[static_cast<size_t>(t.quot)], 0);
    EXPECT_EQ(values[static_cast<size_t>(t.prod)], 150);
    EXPECT_EQ(values[static_cast<size_t>(t.root)], 150);
}

TEST(Iqm, Table34IndicesFollowConstruction)
{
    // With the natural order a,b,c,+,/,*,+ the front indices are
    // o = 0,0,0,0,2,4,6 and the result sets place shared values twice.
    Table34Graph t;
    std::vector<int> order = {t.a, t.b, t.c, t.sum, t.quot, t.prod,
                              t.root};
    IqmProgram program = buildProgram(t.graph, order);
    // a feeds + at slot 0 (o=0) and / at slot 0 (o=2): indices {0, 2}.
    EXPECT_EQ(program.instrs[0].resultIndices, (std::vector<int>{0, 2}));
    // b feeds + slot 1: {1}.
    EXPECT_EQ(program.instrs[1].resultIndices, (std::vector<int>{1}));
    // c feeds * slot 1: {5}.
    EXPECT_EQ(program.instrs[2].resultIndices, (std::vector<int>{5}));
    // + feeds / slot 1 (index 3) and * slot 0 (index 4): {3, 4}.
    EXPECT_EQ(program.instrs[3].resultIndices, (std::vector<int>{3, 4}));
    // / feeds final + slot 0: {6}; * feeds slot 1: {7}.
    EXPECT_EQ(program.instrs[4].resultIndices, (std::vector<int>{6}));
    EXPECT_EQ(program.instrs[5].resultIndices, (std::vector<int>{7}));
    EXPECT_TRUE(program.instrs[6].resultIndices.empty());
    EXPECT_EQ(program.queueDepth(), 8);
}

TEST(Iqm, OffsetsAreRelativeToPostConsumeFront)
{
    Table34Graph t;
    std::vector<int> order = {t.a, t.b, t.c, t.sum, t.quot, t.prod,
                              t.root};
    IqmProgram program = buildProgram(t.graph, order);
    // Instruction 0 (fetch a): front 0, arity 0 -> offsets equal indices.
    EXPECT_EQ(program.instrs[0].resultOffsets, (std::vector<int>{0, 2}));
    // Instruction 3 (+): front 0, consumes 2 -> indices {3,4} = +1,+2.
    EXPECT_EQ(program.instrs[3].resultOffsets, (std::vector<int>{1, 2}));
}

TEST(Iqm, NonTopologicalOrderPanics)
{
    Table34Graph t;
    std::vector<int> bad = {t.sum, t.a, t.b, t.c, t.quot, t.prod, t.root};
    EXPECT_THROW(buildProgram(t.graph, bad), PanicError);
}

TEST(Iqm, EveryTopologicalOrderEvaluatesCorrectly)
{
    // The main Chapter 3 theorem: ANY sequence respecting pi_G is a valid
    // program. Enumerate all permutations of the 7-node example, filter
    // to topological ones, and check each evaluates to the same values.
    Table34Graph t;
    std::vector<int> perm = {0, 1, 2, 3, 4, 5, 6};
    InputValues inputs = {{"a", 40}, {"b", 10}, {"c", 3}};
    int checked = 0;
    do {
        if (!t.graph.isTopological(perm))
            continue;
        IqmProgram program = buildProgram(t.graph, perm);
        NodeValues values = evalProgram(t.graph, program, inputs);
        ASSERT_EQ(values[static_cast<size_t>(t.root)], 150);
        ++checked;
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_GT(checked, 10);  // the example has many linearizations
}

TEST(Iqm, RandomDagsEvaluateConsistently)
{
    // Property sweep: random DAGs evaluated via the indexed queue agree
    // with direct recursive evaluation, for scheduler-chosen orders.
    SplitMix64 rng(0xDF6);
    for (int trial = 0; trial < 200; ++trial) {
        Dfg graph;
        InputValues inputs;
        int n_inputs = static_cast<int>(rng.range(1, 4));
        for (int i = 0; i < n_inputs; ++i) {
            std::string name = "v" + std::to_string(i);
            graph.addInput(name);
            inputs[name] = rng.range(-20, 20);
        }
        int extra = static_cast<int>(rng.range(1, 12));
        for (int i = 0; i < extra; ++i) {
            int which = static_cast<int>(rng.below(4));
            int a = static_cast<int>(rng.below(
                static_cast<std::uint64_t>(graph.size())));
            if (which == 0) {
                graph.addNode("neg", {a});
            } else {
                int b = static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(graph.size())));
                static const char *ops[] = {"+", "-", "*"};
                graph.addNode(ops[which - 1], {a, b});
            }
        }

        // Reference values by direct propagation in id order.
        NodeValues expected(static_cast<size_t>(graph.size()));
        for (int id = 0; id < graph.size(); ++id) {
            std::vector<std::int64_t> operands;
            for (int arg : graph.node(id).args)
                operands.push_back(expected[static_cast<size_t>(arg)]);
            expected[static_cast<size_t>(id)] =
                arithActor(graph.node(id), operands, inputs);
        }

        std::vector<int> order = schedule(graph);
        ASSERT_TRUE(graph.isTopological(order));
        IqmProgram program = buildProgram(graph, order);
        NodeValues values = evalProgram(graph, program, inputs);
        ASSERT_EQ(values, expected);
    }
}

TEST(Iqm, RenderProgramMentionsOperatorsAndOffsets)
{
    Table34Graph t;
    IqmProgram program = buildProgram(
        t.graph, std::vector<int>{t.a, t.b, t.c, t.sum, t.quot, t.prod,
                                  t.root});
    auto lines = renderProgram(t.graph, program);
    ASSERT_EQ(lines.size(), 7u);
    EXPECT_EQ(lines[0], "fetch a  -> +0,+2");
    EXPECT_EQ(lines[3], "+  -> +1,+2");
    EXPECT_EQ(lines[6], "+");
}

} // namespace
