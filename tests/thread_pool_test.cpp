/**
 * @file
 * Tests for the support thread pool behind the parallel experiment
 * runner: task completion, exception propagation, pool reuse, and the
 * parallelFor index-coverage and serial-degeneration guarantees.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hpp"

namespace {

using namespace qm;

TEST(ThreadPool, DefaultWorkersIsPositive)
{
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, SurvivesFailedTasksAndStaysUsable)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&, i] {
            if (i % 2 == 0)
                throw std::runtime_error("even task failed");
            ran.fetch_add(1);
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // Odd tasks still ran, and the pool accepts more work; the error
    // was consumed by the first wait.
    EXPECT_EQ(ran.load(), 5);
    pool.submit([&] { ran.fetch_add(1); });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 6);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(257);
    parallelFor(hits.size(), 8,
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SerialJobsRunInlineInIndexOrder)
{
    std::vector<std::size_t> order;
    parallelFor(10, 1, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 10u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, ZeroCountIsANoOp)
{
    bool called = false;
    parallelFor(0, 4, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesBodyException)
{
    EXPECT_THROW(parallelFor(16, 4,
                             [](std::size_t i) {
                                 if (i == 7)
                                     throw std::logic_error("boom");
                             }),
                 std::logic_error);
}

TEST(ParallelFor, ResultsIndependentOfJobCount)
{
    auto compute = [](unsigned jobs) {
        std::vector<long> out(64, 0);
        parallelFor(out.size(), jobs, [&](std::size_t i) {
            long v = static_cast<long>(i);
            out[i] = v * v + 3 * v + 1;
        });
        return out;
    };
    std::vector<long> serial = compute(1);
    EXPECT_EQ(compute(2), serial);
    EXPECT_EQ(compute(8), serial);
}

} // namespace
