/**
 * @file
 * Tests for the support thread pool behind the parallel experiment
 * runner: task completion, exception propagation, pool reuse, and the
 * parallelFor index-coverage and serial-degeneration guarantees.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hpp"

namespace {

using namespace qm;

TEST(ThreadPool, DefaultWorkersIsPositive)
{
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, SurvivesFailedTasksAndStaysUsable)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&, i] {
            if (i % 2 == 0)
                throw std::runtime_error("even task failed");
            ran.fetch_add(1);
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // Odd tasks still ran, and the pool accepts more work; the error
    // was consumed by the first wait.
    EXPECT_EQ(ran.load(), 5);
    pool.submit([&] { ran.fetch_add(1); });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 6);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(257);
    parallelFor(hits.size(), 8,
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SerialJobsRunInlineInIndexOrder)
{
    std::vector<std::size_t> order;
    parallelFor(10, 1, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 10u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, ZeroCountIsANoOp)
{
    bool called = false;
    parallelFor(0, 4, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesBodyException)
{
    EXPECT_THROW(parallelFor(16, 4,
                             [](std::size_t i) {
                                 if (i == 7)
                                     throw std::logic_error("boom");
                             }),
                 std::logic_error);
}

TEST(ThreadPool, WaitOnEmptyPoolReturnsImmediately)
{
    // No submitted tasks: wait() must not block or throw.
    ThreadPool pool(3);
    EXPECT_NO_THROW(pool.wait());
    // And stays usable afterwards.
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, MoreWorkersThanTasks)
{
    // Idle workers must neither steal nor duplicate the few tasks.
    ThreadPool pool(8);
    std::atomic<int> ran{0};
    for (int i = 0; i < 3; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ParallelFor, MoreJobsThanItems)
{
    // The pool is clamped to the item count; every index still runs
    // exactly once.
    std::vector<std::atomic<int>> hits(3);
    parallelFor(hits.size(), 16,
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, ZeroItemsWithParallelJobsIsANoOp)
{
    // The zero-count early-out must fire before any pool is built.
    bool called = false;
    parallelFor(0, 16, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, SerialExceptionPropagates)
{
    // jobs <= 1 takes the inline path, whose throw must escape
    // directly (not via the pool's capture-and-rethrow).
    EXPECT_THROW(parallelFor(4, 1,
                             [](std::size_t i) {
                                 if (i == 2)
                                     throw std::runtime_error("inline");
                             }),
                 std::runtime_error);
}

TEST(WorkerGang, RunsEveryWorkerEachRound)
{
    WorkerGang gang(4);
    EXPECT_EQ(gang.workers(), 4u);
    std::vector<std::atomic<int>> hits(4);
    for (int round = 0; round < 50; ++round)
        gang.run([&](unsigned w) { hits[w].fetch_add(1); });
    for (std::size_t w = 0; w < hits.size(); ++w)
        EXPECT_EQ(hits[w].load(), 50) << "worker " << w;
}

TEST(WorkerGang, SingleWorkerRunsInline)
{
    WorkerGang gang(1);
    std::thread::id caller = std::this_thread::get_id();
    std::thread::id seen;
    gang.run([&](unsigned w) {
        EXPECT_EQ(w, 0u);
        seen = std::this_thread::get_id();
    });
    EXPECT_EQ(seen, caller);
}

TEST(WorkerGang, RethrowsFirstWorkerException)
{
    WorkerGang gang(3);
    EXPECT_THROW(gang.run([](unsigned w) {
        if (w == 1)
            throw std::runtime_error("worker 1 failed");
    }),
                 std::runtime_error);
    // The gang survives a failed round and keeps running.
    std::atomic<int> ran{0};
    gang.run([&](unsigned) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 3);
}

TEST(WorkerGang, JoinBarrierPublishesWorkerWrites)
{
    // Writes made by gang members before the join barrier must be
    // visible to the caller without extra synchronization.
    WorkerGang gang(4);
    std::vector<long> out(4, 0);
    for (int round = 1; round <= 20; ++round) {
        gang.run([&](unsigned w) { out[w] = round * (w + 1); });
        for (unsigned w = 0; w < 4; ++w)
            ASSERT_EQ(out[w], long(round) * (w + 1));
    }
}

TEST(ParallelFor, ResultsIndependentOfJobCount)
{
    auto compute = [](unsigned jobs) {
        std::vector<long> out(64, 0);
        parallelFor(out.size(), jobs, [&](std::size_t i) {
            long v = static_cast<long>(i);
            out[i] = v * v + 3 * v + 1;
        });
        return out;
    };
    std::vector<long> serial = compute(1);
    EXPECT_EQ(compute(2), serial);
    EXPECT_EQ(compute(8), serial);
}

} // namespace
