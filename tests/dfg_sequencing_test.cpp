/**
 * @file
 * Tests for the input-sequencing heuristic and the priority scheduler
 * (thesis section 4.5/4.7, Figures 4.13-4.16, 4.20, Tables 4.4/4.5).
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "dfg/graph.hpp"
#include "dfg/scheduler.hpp"
#include "dfg/sequencing.hpp"
#include "support/rng.hpp"

namespace {

using namespace qm;
using namespace qm::dfg;

/** e <- ((a+b) * (-c)) / d: the Fig 4.14 example. */
struct Fig414Graph
{
    Dfg graph;
    int a, b, c, d, sum, neg, prod, quot, e;

    Fig414Graph()
    {
        a = graph.addInput("a");
        b = graph.addInput("b");
        c = graph.addInput("c");
        d = graph.addInput("d");
        sum = graph.addNode("+", {a, b});
        neg = graph.addNode("neg", {c});
        prod = graph.addNode("*", {sum, neg});
        quot = graph.addNode("/", {prod, d});
        e = graph.addNode("store", {quot});
    }
};

TEST(Sequencing, DepthFirstListProperty)
{
    // Fig 4.13 property: all successors of a node precede it in the
    // list; all predecessors follow it.
    Fig414Graph t;
    std::vector<int> list = depthFirstList(t.graph);
    ASSERT_EQ(static_cast<int>(list.size()), t.graph.size());
    std::vector<int> pos(static_cast<size_t>(t.graph.size()));
    for (std::size_t i = 0; i < list.size(); ++i)
        pos[static_cast<size_t>(list[i])] = static_cast<int>(i);
    for (int v = 0; v < t.graph.size(); ++v)
        for (int s : t.graph.successors(v))
            EXPECT_LT(pos[static_cast<size_t>(s)],
                      pos[static_cast<size_t>(v)]);
}

TEST(Sequencing, Table44CostsMatchThesis)
{
    Fig414Graph t;
    CostAnalysis costs = analyzeCosts(t.graph);
    // C(v) per Table 4.4.
    EXPECT_EQ(costs.cost[static_cast<size_t>(t.a)], 1);
    EXPECT_EQ(costs.cost[static_cast<size_t>(t.b)], 1);
    EXPECT_EQ(costs.cost[static_cast<size_t>(t.c)], 1);
    EXPECT_EQ(costs.cost[static_cast<size_t>(t.d)], 1);
    EXPECT_EQ(costs.cost[static_cast<size_t>(t.sum)], 3);
    EXPECT_EQ(costs.cost[static_cast<size_t>(t.neg)], 2);
    EXPECT_EQ(costs.cost[static_cast<size_t>(t.prod)], 6);
    EXPECT_EQ(costs.cost[static_cast<size_t>(t.quot)], 8);
    EXPECT_EQ(costs.cost[static_cast<size_t>(t.e)], 9);
}

TEST(Sequencing, Table44RequiredInputSets)
{
    Fig414Graph t;
    CostAnalysis costs = analyzeCosts(t.graph);
    auto istar = [&](int v) {
        return costs.requiredInputs[static_cast<size_t>(v)];
    };
    EXPECT_EQ(istar(t.sum), (std::vector<int>{t.a, t.b}));
    EXPECT_EQ(istar(t.neg), (std::vector<int>{t.c}));
    EXPECT_EQ(istar(t.prod), (std::vector<int>{t.a, t.b, t.c}));
    EXPECT_EQ(istar(t.quot), (std::vector<int>{t.a, t.b, t.c, t.d}));
    EXPECT_EQ(istar(t.e), (std::vector<int>{t.a, t.b, t.c, t.d}));
}

TEST(Sequencing, Table45WeightsMatchThesis)
{
    Fig414Graph t;
    CostAnalysis costs = analyzeCosts(t.graph);
    std::vector<long> w = inputWeights(t.graph, costs);
    EXPECT_EQ(w[static_cast<size_t>(t.a)], 27);
    EXPECT_EQ(w[static_cast<size_t>(t.b)], 27);
    EXPECT_EQ(w[static_cast<size_t>(t.c)], 26);
    EXPECT_EQ(w[static_cast<size_t>(t.d)], 18);
}

TEST(Sequencing, InputOrderIsWeightDescending)
{
    // The thesis finds {a,b,c,d} and {b,a,c,d} acceptable; stable sort
    // keeps insertion order on the a/b tie.
    Fig414Graph t;
    EXPECT_EQ(orderInputs(t.graph),
              (std::vector<int>{t.a, t.b, t.c, t.d}));
}

TEST(Sequencing, PredecessorSetsIncludeSelf)
{
    Fig414Graph t;
    CostAnalysis costs = analyzeCosts(t.graph);
    for (int v = 0; v < t.graph.size(); ++v) {
        const auto &pstar =
            costs.predecessorSet[static_cast<size_t>(v)];
        EXPECT_TRUE(std::binary_search(pstar.begin(), pstar.end(), v));
    }
}

TEST(Scheduler, ProducesTopologicalOrders)
{
    Fig414Graph t;
    std::vector<int> order = schedule(t.graph);
    EXPECT_TRUE(t.graph.isTopological(order));
    order = schedule(t.graph, fifoPriority);
    EXPECT_TRUE(t.graph.isTopological(order));
}

TEST(Scheduler, PriorityClassesMatchThesisList)
{
    EXPECT_EQ(actorPriority("rfork"), 1);
    EXPECT_EQ(actorPriority("ifork"), 1);
    EXPECT_EQ(actorPriority("send"), 2);
    EXPECT_EQ(actorPriority("store"), 3);
    EXPECT_EQ(actorPriority("storb"), 3);
    EXPECT_EQ(actorPriority("+"), 4);
    EXPECT_EQ(actorPriority("fetch"), 5);
    EXPECT_EQ(actorPriority("fchb"), 5);
    EXPECT_EQ(actorPriority("recv"), 6);
    EXPECT_EQ(actorPriority("wait"), 7);
}

TEST(Scheduler, ForkRunsBeforeIndependentArithmetic)
{
    // A ready fork must be emitted before ready arithmetic so parallel
    // contexts start as early as possible.
    Dfg graph;
    int x = graph.addInput("x");
    int y = graph.addInput("y");
    int add = graph.addNode("+", {x, y});
    (void)add;
    int code = graph.addConst(100);
    int fork = graph.addNode("rfork", {code});
    std::vector<int> order = schedule(graph);
    auto pos = [&](int id) {
        return std::find(order.begin(), order.end(), id) - order.begin();
    };
    // Once its const operand is placed, the fork outranks + and inputs.
    EXPECT_LT(pos(fork), pos(add));
}

TEST(Scheduler, RandomGraphsScheduleCompletely)
{
    SplitMix64 rng(0x5EED);
    for (int trial = 0; trial < 100; ++trial) {
        Dfg graph;
        int n = static_cast<int>(rng.range(1, 30));
        graph.addInput("i0");
        for (int i = 1; i < n; ++i) {
            if (rng.below(3) == 0) {
                graph.addInput("i" + std::to_string(i));
            } else {
                int a = static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(graph.size())));
                int b = static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(graph.size())));
                graph.addNode("+", {a, b});
            }
        }
        std::vector<int> order = schedule(graph);
        ASSERT_TRUE(graph.isTopological(order));
    }
}

} // namespace
