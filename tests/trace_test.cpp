/**
 * @file
 * Tests for the cycle-level trace layer: the flag-gated recorder, the
 * event cap, the plain-text summary, and the Chrome trace_event JSON
 * exporter.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/json.hpp"
#include "trace/analyze.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace {

using namespace qm;
using namespace qm::trace;

TraceConfig
enabledConfig()
{
    TraceConfig config;
    config.enabled = true;
    return config;
}

TEST(Tracer, DisabledByDefaultAndRecordsNothing)
{
    Tracer tracer;
    EXPECT_FALSE(tracer.enabled());
    tracer.ctxCreate(0, 0, 1, 0);
    tracer.rendezvous(5, 2, 1, 42);
    tracer.peBusy(0, 10, 0, 1);
    EXPECT_TRUE(tracer.events().empty());
    EXPECT_EQ(tracer.countOf(EventKind::CtxCreate), 0u);
}

TEST(Tracer, RecordsTypedEventsWithCycleStamps)
{
    Tracer tracer(enabledConfig());
    tracer.ctxCreate(7, /*homePe=*/1, /*ctx=*/3, /*forkingPe=*/0);
    tracer.ctxDispatch(9, 1, 3);
    tracer.trapEnter(12, 1, /*trap=*/1, /*serviceCycles=*/12);
    tracer.busTransfer(14, 20, 0, 1, 1);
    tracer.rendezvous(21, /*channel=*/4, /*receiver=*/3, /*value=*/99);
    tracer.ctxPark(25, 1, 3, ParkReason::Channel);
    tracer.peBusy(9, 25, 1, 3);
    tracer.ctxFinish(30, 1, 3);

    ASSERT_EQ(tracer.events().size(), 8u);
    EXPECT_EQ(tracer.countOf(EventKind::CtxCreate), 1u);
    EXPECT_EQ(tracer.countOf(EventKind::PeBusy), 1u);
    const Event &create = tracer.events().front();
    EXPECT_EQ(create.kind, EventKind::CtxCreate);
    EXPECT_EQ(create.at, 7);
    EXPECT_EQ(create.pe, 1);
    EXPECT_EQ(create.ctx, 3u);
    EXPECT_EQ(create.a, 0u);  // forking PE
}

TEST(Tracer, EventCapDropsInsteadOfGrowing)
{
    TraceConfig config;
    config.enabled = true;
    config.maxEvents = 4;
    Tracer tracer(config);
    for (int i = 0; i < 10; ++i)
        tracer.ctxDispatch(i, 0, 0);
    EXPECT_EQ(tracer.events().size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    EXPECT_EQ(tracer.countOf(EventKind::CtxDispatch), 4u);
}

TEST(Tracer, SummaryListsKindsAndBusyTime)
{
    Tracer tracer(enabledConfig());
    tracer.peBusy(0, 10, 0, 1);
    tracer.peBusy(12, 20, 0, 2);
    tracer.ctxPark(25, 0, 2, ParkReason::Timer);
    std::string summary = tracer.summary();
    EXPECT_NE(summary.find("pe-busy: 2"), std::string::npos);
    EXPECT_NE(summary.find("ctx-park: 1"), std::string::npos);
    EXPECT_NE(summary.find("busy 18 cycles over 2 spans"),
              std::string::npos);
    EXPECT_NE(summary.find("(timer)"), std::string::npos);
}

TEST(ChromeExport, EmitsTraceEventsArrayWithProcessMetadata)
{
    Tracer tracer(enabledConfig());
    tracer.ctxCreate(0, 0, 0, 0);
    tracer.ctxDispatch(2, 0, 0);
    tracer.peBusy(2, 40, 0, 0);
    tracer.trapEnter(10, 0, 1, 12);
    tracer.busTransfer(12, 18, 0, 1, 1);
    tracer.rendezvous(20, 2, 0, 7);
    tracer.ctxFinish(40, 0, 0);

    std::string json = chromeTraceJson(tracer);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"PE 0\""), std::string::npos);
    EXPECT_NE(json.find("\"ring bus\""), std::string::npos);
    EXPECT_NE(json.find("\"channels\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // Flow events thread the context lifecycle.
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);

    // Structurally balanced (cheap well-formedness check; the mp_test
    // integration is cross-checked against a real JSON parser in CI
    // via the bench reports).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

/**
 * A small hand-built two-PE scenario with a known critical path:
 * ctx 0 boots on pe0, forks ctx 1 to pe1 mid-span, parks on a
 * channel, and resumes to finish last.
 */
Tracer
syntheticTrace()
{
    Tracer tracer(enabledConfig());
    tracer.ctxCreate(0, 0, 0, 0);
    tracer.ctxDispatch(2, 0, 0);
    tracer.ctxCreate(5, 1, 1, 0);  // forked by pe0 during [2,10)
    tracer.ctxPark(10, 0, 0, ParkReason::Channel);
    tracer.peBusy(2, 10, 0, 0);
    tracer.ctxDispatch(8, 1, 1);
    tracer.rendezvous(20, 3, 1, 99);
    tracer.ctxFinish(25, 1, 1);
    tracer.peBusy(8, 25, 1, 1);
    tracer.ctxDispatch(30, 0, 0);
    tracer.ctxFinish(40, 0, 0);
    tracer.peBusy(30, 40, 0, 0);
    return tracer;
}

TEST(Analyze, CriticalPathWalksBackwardFromLastFinish)
{
    Tracer tracer = syntheticTrace();
    Profile profile = analyzeTrace(tracer.events());
    EXPECT_EQ(profile.totalCycles, 40);
    EXPECT_EQ(profile.numPes, 2);
    EXPECT_EQ(profile.contexts, 2u);
    EXPECT_EQ(profile.finished, 2u);

    // ctx 0 finishes last (cycle 40); walking backward gives
    // run [30,40], channel-blocked [10,30], run [2,10], startup [0,2].
    ASSERT_EQ(profile.criticalPath.size(), 4u);
    const auto &path = profile.criticalPath;
    EXPECT_EQ(path[0].kind, PathSegment::Kind::Run);
    EXPECT_EQ(path[0].from, 30);
    EXPECT_EQ(path[0].to, 40);
    EXPECT_EQ(path[0].pe, 0);
    EXPECT_EQ(path[1].kind, PathSegment::Kind::Blocked);
    EXPECT_EQ(path[1].from, 10);
    EXPECT_EQ(path[1].to, 30);
    EXPECT_EQ(path[1].reason, "channel");
    EXPECT_EQ(path[2].kind, PathSegment::Kind::Run);
    EXPECT_EQ(path[2].from, 2);
    EXPECT_EQ(path[2].to, 10);
    EXPECT_EQ(path[3].kind, PathSegment::Kind::Blocked);
    EXPECT_EQ(path[3].reason, "startup");

    // The path tiles [0,40] exactly: its length can never exceed the
    // run's total cycles (the qmprof invariant).
    EXPECT_EQ(profile.criticalPathCycles, 40);
    EXPECT_LE(profile.criticalPathCycles, profile.totalCycles);
}

TEST(Analyze, BlockedTimeAttributionPerContext)
{
    Tracer tracer = syntheticTrace();
    Profile profile = analyzeTrace(tracer.events());
    ASSERT_EQ(profile.blockedTop.size(), 2u);
    // ctx 0: 2 startup + 20 channel; ctx 1: 3 startup.
    EXPECT_EQ(profile.blockedTop[0].ctx, 0u);
    EXPECT_EQ(profile.blockedTop[0].total, 22);
    EXPECT_EQ(profile.blockedTop[0].startup, 2);
    EXPECT_EQ(profile.blockedTop[0].channel, 20);
    EXPECT_EQ(profile.blockedTop[0].timer, 0);
    EXPECT_EQ(profile.blockedTop[1].ctx, 1u);
    EXPECT_EQ(profile.blockedTop[1].total, 3);
    EXPECT_EQ(profile.blockedTop[1].startup, 3);
    EXPECT_TRUE(profile.starved.empty());

    // Per-PE busy totals come straight from the spans.
    ASSERT_EQ(profile.peTimelines.size(), 2u);
    EXPECT_EQ(profile.peTimelines[0].busy, 18);  // [2,10) + [30,40)
    EXPECT_EQ(profile.peTimelines[1].busy, 17);  // [8,25)
}

TEST(Analyze, StarvationDigestFlagsUnfinishedContexts)
{
    Tracer tracer(enabledConfig());
    tracer.ctxCreate(0, 0, 0, 0);
    tracer.ctxDispatch(1, 0, 0);
    tracer.peBusy(1, 5, 0, 0);
    tracer.ctxFinish(5, 0, 0);
    tracer.ctxCreate(2, 1, 7, 0);   // never dispatched
    tracer.ctxCreate(3, 0, 8, 0);   // parked forever
    tracer.ctxDispatch(4, 0, 8);
    tracer.ctxPark(6, 0, 8, ParkReason::Channel);
    Profile profile = analyzeTrace(tracer.events());
    ASSERT_EQ(profile.starved.size(), 2u);
    EXPECT_EQ(profile.starved[0].ctx, 7u);
    EXPECT_FALSE(profile.starved[0].dispatched);
    EXPECT_EQ(profile.starved[0].lastState, "never dispatched");
    EXPECT_EQ(profile.starved[1].ctx, 8u);
    EXPECT_TRUE(profile.starved[1].dispatched);
    EXPECT_NE(profile.starved[1].lastState.find("parked (channel)"),
              std::string::npos);
    std::string report = profile.render();
    EXPECT_NE(report.find("2 context(s) never finished"),
              std::string::npos);
}

TEST(Analyze, ChromeJsonRoundTripPreservesTheAnalysis)
{
    Tracer tracer = syntheticTrace();
    std::string path = testing::TempDir() + "/qm_roundtrip_trace.json";
    writeChromeTraceFile(path, tracer);
    std::uint64_t dropped = 123;
    std::vector<Event> reloaded = loadChromeTrace(path, &dropped);
    EXPECT_EQ(dropped, 0u);  // overwritten from the file
    Profile live = analyzeTrace(tracer.events());
    Profile fromFile = analyzeTrace(reloaded);
    EXPECT_EQ(live.render(), fromFile.render());
    EXPECT_EQ(fromFile.criticalPathCycles, live.criticalPathCycles);
    std::remove(path.c_str());
}

TEST(Analyze, RenderSectionsArePresentAndDeterministic)
{
    Tracer tracer = syntheticTrace();
    Profile profile = analyzeTrace(tracer.events());
    std::string report = profile.render();
    EXPECT_NE(report.find("critical path:"), std::string::npos);
    EXPECT_NE(report.find("top contexts by blocked time:"),
              std::string::npos);
    EXPECT_NE(report.find("per-PE utilization"), std::string::npos);
    EXPECT_NE(report.find("all 2 contexts finished"),
              std::string::npos);
    EXPECT_EQ(report, analyzeTrace(tracer.events()).render());
}

TEST(JsonWriter, EscapesAndNestsCorrectly)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject()
        .key("name").value("a\"b\\c\nd")
        .key("list").beginArray().value(1).value(2.5).value(true)
        .endArray()
        .key("empty").beginObject().endObject()
        .endObject();
    EXPECT_EQ(os.str(),
              "{\"name\":\"a\\\"b\\\\c\\nd\","
              "\"list\":[1,2.500000,true],"
              "\"empty\":{}}");
}

} // namespace
