/**
 * @file
 * Tests for the cycle-level trace layer: the flag-gated recorder, the
 * event cap, the plain-text summary, and the Chrome trace_event JSON
 * exporter.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "support/json.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace {

using namespace qm;
using namespace qm::trace;

TraceConfig
enabledConfig()
{
    TraceConfig config;
    config.enabled = true;
    return config;
}

TEST(Tracer, DisabledByDefaultAndRecordsNothing)
{
    Tracer tracer;
    EXPECT_FALSE(tracer.enabled());
    tracer.ctxCreate(0, 0, 1, 0);
    tracer.rendezvous(5, 2, 1, 42);
    tracer.peBusy(0, 10, 0, 1);
    EXPECT_TRUE(tracer.events().empty());
    EXPECT_EQ(tracer.countOf(EventKind::CtxCreate), 0u);
}

TEST(Tracer, RecordsTypedEventsWithCycleStamps)
{
    Tracer tracer(enabledConfig());
    tracer.ctxCreate(7, /*homePe=*/1, /*ctx=*/3, /*forkingPe=*/0);
    tracer.ctxDispatch(9, 1, 3);
    tracer.trapEnter(12, 1, /*trap=*/1, /*serviceCycles=*/12);
    tracer.busTransfer(14, 20, 0, 1, 1);
    tracer.rendezvous(21, /*channel=*/4, /*receiver=*/3, /*value=*/99);
    tracer.ctxPark(25, 1, 3, ParkReason::Channel);
    tracer.peBusy(9, 25, 1, 3);
    tracer.ctxFinish(30, 1, 3);

    ASSERT_EQ(tracer.events().size(), 8u);
    EXPECT_EQ(tracer.countOf(EventKind::CtxCreate), 1u);
    EXPECT_EQ(tracer.countOf(EventKind::PeBusy), 1u);
    const Event &create = tracer.events().front();
    EXPECT_EQ(create.kind, EventKind::CtxCreate);
    EXPECT_EQ(create.at, 7);
    EXPECT_EQ(create.pe, 1);
    EXPECT_EQ(create.ctx, 3u);
    EXPECT_EQ(create.a, 0u);  // forking PE
}

TEST(Tracer, EventCapDropsInsteadOfGrowing)
{
    TraceConfig config;
    config.enabled = true;
    config.maxEvents = 4;
    Tracer tracer(config);
    for (int i = 0; i < 10; ++i)
        tracer.ctxDispatch(i, 0, 0);
    EXPECT_EQ(tracer.events().size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    EXPECT_EQ(tracer.countOf(EventKind::CtxDispatch), 4u);
}

TEST(Tracer, SummaryListsKindsAndBusyTime)
{
    Tracer tracer(enabledConfig());
    tracer.peBusy(0, 10, 0, 1);
    tracer.peBusy(12, 20, 0, 2);
    tracer.ctxPark(25, 0, 2, ParkReason::Timer);
    std::string summary = tracer.summary();
    EXPECT_NE(summary.find("pe-busy: 2"), std::string::npos);
    EXPECT_NE(summary.find("ctx-park: 1"), std::string::npos);
    EXPECT_NE(summary.find("busy 18 cycles over 2 spans"),
              std::string::npos);
    EXPECT_NE(summary.find("(timer)"), std::string::npos);
}

TEST(ChromeExport, EmitsTraceEventsArrayWithProcessMetadata)
{
    Tracer tracer(enabledConfig());
    tracer.ctxCreate(0, 0, 0, 0);
    tracer.ctxDispatch(2, 0, 0);
    tracer.peBusy(2, 40, 0, 0);
    tracer.trapEnter(10, 0, 1, 12);
    tracer.busTransfer(12, 18, 0, 1, 1);
    tracer.rendezvous(20, 2, 0, 7);
    tracer.ctxFinish(40, 0, 0);

    std::string json = chromeTraceJson(tracer);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"PE 0\""), std::string::npos);
    EXPECT_NE(json.find("\"ring bus\""), std::string::npos);
    EXPECT_NE(json.find("\"channels\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // Flow events thread the context lifecycle.
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);

    // Structurally balanced (cheap well-formedness check; the mp_test
    // integration is cross-checked against a real JSON parser in CI
    // via the bench reports).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(JsonWriter, EscapesAndNestsCorrectly)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject()
        .key("name").value("a\"b\\c\nd")
        .key("list").beginArray().value(1).value(2.5).value(true)
        .endArray()
        .key("empty").beginObject().endObject()
        .endObject();
    EXPECT_EQ(os.str(),
              "{\"name\":\"a\\\"b\\\\c\\nd\","
              "\"list\":[1,2.500000,true],"
              "\"empty\":{}}");
}

} // namespace
