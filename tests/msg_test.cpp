/**
 * @file
 * Exhaustive tests for the message-cache channel state machine
 * (thesis Tables 5.3/5.4, Figures 5.14-5.17, Table 6.7).
 *
 * Each cache entry carries a small FIFO of in-flight tokens (every
 * value of a splice sequence is its own capacity-one data-flow arc):
 * sends deposit and continue, blocking only at capacity; receives take
 * the oldest value or park until one arrives.
 */
#include <gtest/gtest.h>

#include <set>

#include "msg/message_cache.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace qm;
using namespace qm::msg;

constexpr CtxId kSender = 1;
constexpr CtxId kReceiver = 2;
constexpr CtxId kThird = 3;

TEST(MessageCache, SendFirstDepositsAndCompletes)
{
    MessageCache cache;
    EXPECT_EQ(cache.state(5), ChannelState::Idle);

    ChannelOp s1 = cache.send(5, kSender, 42);
    EXPECT_TRUE(s1.completed);   // the cache entry carries the value
    EXPECT_FALSE(s1.blocked);
    EXPECT_EQ(cache.state(5), ChannelState::Full);

    ChannelOp r1 = cache.recv(5, kReceiver);
    EXPECT_TRUE(r1.completed);
    ASSERT_TRUE(r1.value.has_value());
    EXPECT_EQ(*r1.value, 42u);
    EXPECT_TRUE(r1.wakes.empty());  // the sender never parked
    EXPECT_EQ(cache.state(5), ChannelState::Idle);
}

TEST(MessageCache, RecvFirstParksThenWakes)
{
    MessageCache cache;
    ChannelOp r1 = cache.recv(9, kReceiver);
    EXPECT_TRUE(r1.blocked);
    EXPECT_EQ(cache.state(9), ChannelState::RecvWait);

    ChannelOp s1 = cache.send(9, kSender, 77);
    EXPECT_TRUE(s1.completed);
    ASSERT_EQ(s1.wakes.size(), 1u);
    EXPECT_EQ(s1.wakes[0], kReceiver);
    EXPECT_EQ(cache.state(9), ChannelState::Full);

    // The woken receiver retries and takes the value.
    ChannelOp r2 = cache.recv(9, kReceiver);
    EXPECT_TRUE(r2.completed);
    EXPECT_EQ(*r2.value, 77u);
    EXPECT_EQ(cache.state(9), ChannelState::Idle);
}

TEST(MessageCache, ValuesDrainInFifoOrder)
{
    MessageCache cache;
    for (Word v = 1; v <= 5; ++v)
        EXPECT_TRUE(cache.send(7, kSender, v).completed);
    for (Word v = 1; v <= 5; ++v) {
        ChannelOp r = cache.recv(7, kReceiver);
        ASSERT_TRUE(r.completed);
        EXPECT_EQ(*r.value, v);
    }
    EXPECT_EQ(cache.state(7), ChannelState::Idle);
}

TEST(MessageCache, SendBlocksAtCapacity)
{
    MessageCache cache(2);
    EXPECT_TRUE(cache.send(5, kSender, 1).completed);
    EXPECT_TRUE(cache.send(5, kSender, 2).completed);
    ChannelOp s3 = cache.send(5, kThird, 3);
    EXPECT_TRUE(s3.blocked);

    // Draining one value wakes the parked sender to retry.
    ChannelOp r = cache.recv(5, kReceiver);
    EXPECT_EQ(*r.value, 1u);
    ASSERT_EQ(r.wakes.size(), 1u);
    EXPECT_EQ(r.wakes[0], kThird);
    EXPECT_TRUE(cache.send(5, kThird, 3).completed);
}

TEST(MessageCache, CapacityMustBePositive)
{
    EXPECT_THROW(MessageCache cache(0), FatalError);
}

TEST(MessageCache, ChannelsAreIndependent)
{
    MessageCache cache;
    cache.send(1, kSender, 10);
    cache.send(2, kSender, 20);
    EXPECT_EQ(cache.state(1), ChannelState::Full);
    EXPECT_EQ(cache.state(2), ChannelState::Full);
    ChannelOp r = cache.recv(2, kReceiver);
    EXPECT_EQ(*r.value, 20u);
    EXPECT_EQ(cache.state(1), ChannelState::Full);
    EXPECT_EQ(cache.pendingChannels(), 1u);
}

TEST(MessageCache, MultipleParkedReceiversWakeOnePerDeposit)
{
    MessageCache cache;
    EXPECT_TRUE(cache.recv(5, kReceiver).blocked);
    EXPECT_TRUE(cache.recv(5, kThird).blocked);

    ChannelOp s1 = cache.send(5, kSender, 9);
    ASSERT_EQ(s1.wakes.size(), 1u);
    EXPECT_EQ(s1.wakes[0], kReceiver);  // first-come, first-served

    ChannelOp s2 = cache.send(5, kSender, 10);
    ASSERT_EQ(s2.wakes.size(), 1u);
    EXPECT_EQ(s2.wakes[0], kThird);
}

TEST(MessageCache, WokenReceiverRacesSafely)
{
    // A woken receiver that loses the race to a running receiver simply
    // parks again: no value is lost or duplicated.
    MessageCache cache;
    cache.recv(5, kReceiver);
    cache.send(5, kSender, 1);
    // kThird takes the value before kReceiver retries.
    ChannelOp thief = cache.recv(5, kThird);
    EXPECT_TRUE(thief.completed);
    EXPECT_EQ(*thief.value, 1u);
    // kReceiver retries, finds nothing, parks again.
    ChannelOp retry = cache.recv(5, kReceiver);
    EXPECT_TRUE(retry.blocked);
    // Next deposit wakes it again.
    ChannelOp s2 = cache.send(5, kSender, 2);
    ASSERT_EQ(s2.wakes.size(), 1u);
    EXPECT_EQ(s2.wakes[0], kReceiver);
}

/**
 * Exhaustive accessibility sweep (thesis Table 6.7/Fig 6.13): from every
 * reachable state, applying every request type keeps the machine inside
 * the documented state set.
 */
TEST(MessageCache, AllReachableStatesAreAccessible)
{
    std::set<ChannelState> seen;
    for (int mask = 0; mask < (1 << 4); ++mask) {
        MessageCache cache(2);
        CtxId next_sender = 10;
        CtxId next_receiver = 20;
        seen.insert(cache.state(1));
        for (int step = 0; step < 4; ++step) {
            if ((mask >> step) & 1)
                cache.send(1, next_sender++, 55);
            else
                cache.recv(1, next_receiver++);
            seen.insert(cache.state(1));
        }
    }
    EXPECT_TRUE(seen.count(ChannelState::Idle));
    EXPECT_TRUE(seen.count(ChannelState::Full));
    EXPECT_TRUE(seen.count(ChannelState::RecvWait));
    EXPECT_EQ(seen.size(), 3u);
}

TEST(MessageCache, StateNamesRender)
{
    EXPECT_EQ(toString(ChannelState::Idle), "Idle");
    EXPECT_EQ(toString(ChannelState::Full), "Full");
    EXPECT_EQ(toString(ChannelState::RecvWait), "RecvWait");
}

} // namespace
