/**
 * @file
 * Differential tests: the abstract context-graph interpreter and the
 * cycle-level multiprocessor must compute identical observable memory
 * for every compiled program. A divergence isolates code-generation
 * bugs (queue offsets, dup chains, trap encoding) from graph-building
 * bugs.
 */
#include <gtest/gtest.h>

#include "mp/system.hpp"
#include "occam/codegen.hpp"
#include "occam/compiler.hpp"
#include "occam/graph_interp.hpp"
#include "occam/ift.hpp"
#include "occam/parser.hpp"
#include "programs/benchmarks.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace qm;
using namespace qm::occam;

/** Build context graphs + object code and run both executors. */
struct Differential
{
    ContextProgram contexts;
    isa::Addr arrayBase = 0;

    std::vector<std::int64_t> abstractWords;
    std::vector<std::int64_t> machineWords;

    Differential(const std::string &source, const std::string &array,
                 std::size_t count)
    {
        Program program = parse(source);
        SymbolTable table = analyze(program);
        Ift ift = Ift::build(program, table);
        contexts = buildContextGraphs(program, table, ift);

        // Find the array's static address.
        for (const auto &[sym, addr] : contexts.dataAddress)
            if (table.symbol(sym).name == array)
                arrayBase = addr;

        // Abstract run.
        GraphInterpreter interp(contexts);
        InterpResult abstract = interp.run();
        EXPECT_TRUE(abstract.completed);
        for (std::size_t i = 0; i < count; ++i)
            abstractWords.push_back(interp.readWord(
                arrayBase + static_cast<isa::Addr>(i) * 4));

        // Machine run.
        isa::ObjectCode object =
            isa::assemble(generateAssembly(contexts));
        mp::SystemConfig config;
        config.numPes = 4;
        mp::System system(object, config);
        mp::RunResult machine = system.run(contexts.mainLabel);
        EXPECT_TRUE(machine.completed);
        for (std::size_t i = 0; i < count; ++i)
            machineWords.push_back(static_cast<std::int32_t>(
                system.memory().readWord(
                    arrayBase + static_cast<isa::Addr>(i) * 4)));
    }
};

TEST(GraphInterp, AgreesOnArithmetic)
{
    Differential d(
        "var r[3]:\n"
        "var x:\n"
        "seq\n"
        "  x := 12\n"
        "  r[0] := (x * x) - 1\n"
        "  r[1] := x / 5\n"
        "  r[2] := -x\n",
        "r", 3);
    EXPECT_EQ(d.abstractWords, d.machineWords);
    EXPECT_EQ(d.abstractWords[0], 143);
    EXPECT_EQ(d.abstractWords[2], -12);
}

TEST(GraphInterp, AgreesOnControlFlow)
{
    Differential d(
        "var r[2]:\n"
        "var i, acc:\n"
        "seq\n"
        "  i := 0\n"
        "  acc := 1\n"
        "  while i < 8\n"
        "    seq\n"
        "      if\n"
        "        (i \\ 2) = 0\n"
        "          acc := acc * 2\n"
        "        (i \\ 2) <> 0\n"
        "          acc := acc + 3\n"
        "      i := i + 1\n"
        "  r[0] := acc\n"
        "  r[1] := i\n",
        "r", 2);
    EXPECT_EQ(d.abstractWords, d.machineWords);
}

TEST(GraphInterp, AgreesOnChannelsAndPar)
{
    Differential d(
        "var r[2]:\n"
        "chan c:\n"
        "var got:\n"
        "seq\n"
        "  par\n"
        "    seq k = [1 for 6]\n"
        "      c ! k * k\n"
        "    seq\n"
        "      got := 0\n"
        "      seq k = [1 for 6]\n"
        "        var v:\n"
        "        seq\n"
        "          c ? v\n"
        "          got := got + v\n"
        "  r[0] := got\n"
        "  r[1] := 7\n",
        "r", 2);
    EXPECT_EQ(d.abstractWords, d.machineWords);
    EXPECT_EQ(d.abstractWords[0], 91);  // 1+4+9+16+25+36
}

TEST(GraphInterp, AgreesOnProcedures)
{
    Differential d(
        "var r[1]:\n"
        "proc tri (value n, var out) =\n"
        "  if\n"
        "    n <= 0\n"
        "      out := 0\n"
        "    n > 0\n"
        "      var sub:\n"
        "      seq\n"
        "        tri (n - 1, sub)\n"
        "        out := n + sub\n"
        ":\n"
        "var t:\n"
        "seq\n"
        "  tri (10, t)\n"
        "  r[0] := t\n",
        "r", 1);
    EXPECT_EQ(d.abstractWords, d.machineWords);
    EXPECT_EQ(d.abstractWords[0], 55);
}

/** The four thesis benchmarks agree between executors. */
class BenchmarkDifferentialTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BenchmarkDifferentialTest, ExecutorsAgree)
{
    programs::Benchmark bench =
        programs::thesisBenchmarks()[static_cast<size_t>(GetParam())];
    Differential d(bench.source, bench.resultArray,
                   bench.expected.size());
    EXPECT_EQ(d.abstractWords, d.machineWords) << bench.name;
    for (std::size_t i = 0; i < bench.expected.size(); ++i)
        EXPECT_EQ(d.abstractWords[i], bench.expected[i])
            << bench.name << "[" << i << "]";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkDifferentialTest,
                         ::testing::Range(0, 4));

TEST(GraphInterp, DetectsDeadlock)
{
    Program program = parse(
        "chan c:\n"
        "var x:\n"
        "c ? x\n");
    SymbolTable table = analyze(program);
    Ift ift = Ift::build(program, table);
    ContextProgram contexts = buildContextGraphs(program, table, ift);
    GraphInterpreter interp(contexts);
    EXPECT_THROW(interp.run(), FatalError);
}

} // namespace
