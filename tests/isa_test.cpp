/**
 * @file
 * Tests for the QMPE instruction-set encoding and the assembler
 * (thesis sections 5.3.3-5.3.5, Tables 5.1/5.2, Figures 5.6/5.7).
 */
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/fields.hpp"
#include "isa/instruction.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace qm;
using namespace qm::isa;

Instruction
roundTrip(const Instruction &instr)
{
    std::vector<Word> words;
    instr.encode(words);
    std::size_t index = 0;
    Instruction decoded = Instruction::decode(words, index);
    EXPECT_EQ(index, words.size());
    return decoded;
}

TEST(Isa, OpcodeValuesFollowTable52)
{
    // Spot-check the octal assignments.
    EXPECT_EQ(static_cast<int>(Opcode::Dup1), 000);
    EXPECT_EQ(static_cast<int>(Opcode::Dup2), 004);
    EXPECT_EQ(static_cast<int>(Opcode::Send), 010);
    EXPECT_EQ(static_cast<int>(Opcode::Store), 011);
    EXPECT_EQ(static_cast<int>(Opcode::Fetch), 015);
    EXPECT_EQ(static_cast<int>(Opcode::Plus), 030);
    EXPECT_EQ(static_cast<int>(Opcode::Ge), 041);
    EXPECT_EQ(static_cast<int>(Opcode::His), 050);
    EXPECT_EQ(static_cast<int>(Opcode::Bne), 062);
    EXPECT_EQ(static_cast<int>(Opcode::Trap), 071);
    EXPECT_EQ(static_cast<int>(Opcode::Rett), 075);
}

TEST(Isa, MnemonicRoundTrips)
{
    for (Opcode op : {Opcode::Dup1, Opcode::Send, Opcode::Fetch,
                      Opcode::Plus, Opcode::Minus, Opcode::Mul,
                      Opcode::Eq, Opcode::Bne, Opcode::Trap}) {
        Opcode back;
        ASSERT_TRUE(opcodeFromMnemonic(mnemonic(op), back));
        EXPECT_EQ(back, op);
    }
    Opcode out;
    EXPECT_FALSE(opcodeFromMnemonic("nonsense", out));
}

TEST(Isa, BasicFormatRoundTrip)
{
    Instruction instr;
    instr.op = Opcode::Plus;
    instr.src1 = Src::window(0);
    instr.src2 = Src::window(1);
    instr.dst1 = 0;
    instr.dst2 = 2;
    instr.qpInc = 2;
    instr.continueFlag = true;

    Instruction decoded = roundTrip(instr);
    EXPECT_EQ(decoded.op, Opcode::Plus);
    EXPECT_EQ(decoded.src1.kind, SrcKind::WindowReg);
    EXPECT_EQ(decoded.src1.reg, 0);
    EXPECT_EQ(decoded.src2.reg, 1);
    EXPECT_EQ(decoded.dst1, 0);
    EXPECT_EQ(decoded.dst2, 2);
    EXPECT_EQ(decoded.qpInc, 2);
    EXPECT_TRUE(decoded.continueFlag);
    EXPECT_EQ(instr.sizeWords(), 1);
}

TEST(Isa, GlobalRegisterMode)
{
    Instruction instr;
    instr.op = Opcode::Or;
    instr.src1 = Src::global(17);
    instr.src2 = Src::global(31);
    Instruction decoded = roundTrip(instr);
    EXPECT_EQ(decoded.src1.kind, SrcKind::GlobalReg);
    EXPECT_EQ(decoded.src1.reg, 17);
    EXPECT_EQ(decoded.src2.reg, 31);
}

TEST(Isa, SmallImmediateFullRange)
{
    for (int v = kSmallImmMin; v <= kSmallImmMax; ++v) {
        Instruction instr;
        instr.op = Opcode::Minus;
        instr.src1 = Src::immediate(v);
        instr.src2 = Src::immediate(-v);
        Instruction decoded = roundTrip(instr);
        EXPECT_EQ(decoded.src1.imm, v);
        EXPECT_EQ(decoded.src2.imm, -v);
        EXPECT_EQ(instr.sizeWords(), 1);
    }
}

TEST(Isa, ImmediateWordWhenOutOfSmallRange)
{
    Instruction instr;
    instr.op = Opcode::Plus;
    instr.src1 = Src::immediate(1000000);
    instr.src2 = Src::immediate(-16);  // just below the small range
    EXPECT_EQ(instr.sizeWords(), 3);
    Instruction decoded = roundTrip(instr);
    EXPECT_EQ(decoded.src1.kind, SrcKind::ImmWord);
    EXPECT_EQ(decoded.src1.imm, 1000000);
    EXPECT_EQ(decoded.src2.imm, -16);
}

TEST(Isa, DupFormatRoundTrip)
{
    Instruction instr;
    instr.op = Opcode::Dup2;
    instr.dupDst1 = 255;
    instr.dupDst2 = 30;
    Instruction decoded = roundTrip(instr);
    EXPECT_EQ(decoded.dupDst1, 255);
    EXPECT_EQ(decoded.dupDst2, 30);
    EXPECT_EQ(instr.sizeWords(), 1);
}

TEST(Isa, EncodeRejectsOverflow)
{
    Instruction instr;
    instr.op = Opcode::Plus;
    instr.qpInc = 8;
    std::vector<Word> words;
    EXPECT_THROW(instr.encode(words), PanicError);

    Instruction dup;
    dup.op = Opcode::Dup1;
    dup.dupDst1 = 256;
    EXPECT_THROW(dup.encode(words), PanicError);
}

TEST(Isa, DecodeRejectsIllegalOpcode)
{
    std::vector<Word> words = {0x3Fu << 25};  // opcode 077 unassigned
    std::size_t index = 0;
    EXPECT_THROW(Instruction::decode(words, index), PanicError);
}

TEST(Assembler, ThesisExampleSequence)
{
    // The section 5.3.4 example: plus++ r0,r1 :r0,r2 >  /  dup1 :r30
    ObjectCode code = assemble(
        "plus++ r0,r1 :r0,r2 >\n"
        "dup1 :r30\n");
    ASSERT_EQ(code.words.size(), 2u);
    std::size_t index = 0;
    Instruction plus = Instruction::decode(code.words, index);
    EXPECT_EQ(plus.op, Opcode::Plus);
    EXPECT_EQ(plus.qpInc, 2);
    EXPECT_EQ(plus.dst1, 0);
    EXPECT_EQ(plus.dst2, 2);
    EXPECT_TRUE(plus.continueFlag);
    Instruction dup = Instruction::decode(code.words, index);
    EXPECT_EQ(dup.op, Opcode::Dup1);
    EXPECT_EQ(dup.dupDst1, 30);
}

TEST(Assembler, QpIncNumericSuffix)
{
    ObjectCode a = assemble("plus+3 r0,r1 :r0\n");
    ObjectCode b = assemble("plus+++ r0,r1 :r0\n");
    EXPECT_EQ(a.words, b.words);
}

TEST(Assembler, RegisterAliases)
{
    ObjectCode code = assemble("plus qp,#0 :nar\n");
    std::size_t index = 0;
    Instruction instr = Instruction::decode(code.words, index);
    EXPECT_EQ(instr.src1.reg, RegQp);
    EXPECT_EQ(instr.dst1, RegNar);
}

TEST(Assembler, LabelsAndBranchOffsets)
{
    // beq loops back: offset is relative to the next instruction.
    ObjectCode code = assemble(
        "top:\n"
        "  plus r0,#1 :r0\n"
        "  bne r0,@top\n"
        "  fret\n");
    EXPECT_EQ(code.labelAddr("top"), 0u);
    std::size_t index = 1;  // skip plus (1 word)
    Instruction branch = Instruction::decode(code.words, index);
    EXPECT_EQ(branch.op, Opcode::Bne);
    EXPECT_EQ(branch.src2.kind, SrcKind::ImmWord);
    // branch occupies words 1..2 (instr + imm); next = 3; target = 0.
    EXPECT_EQ(branch.src2.imm, -3);
}

TEST(Assembler, LabelAsAbsoluteOperand)
{
    ObjectCode code = assemble(
        "  fetch @data :r17\n"
        "  fret\n"
        "data:\n"
        "  .word 12345\n");
    std::size_t index = 0;
    Instruction fetch = Instruction::decode(code.words, index);
    EXPECT_EQ(fetch.src1.kind, SrcKind::ImmWord);
    EXPECT_EQ(fetch.src1.imm,
              static_cast<SWord>(code.labelAddr("data")));
    EXPECT_EQ(code.words[code.labelAddr("data")], 12345u);
}

TEST(Assembler, CommentsAndBlankLines)
{
    ObjectCode code = assemble(
        "; full-line comment\n"
        "\n"
        "  plus r0,r1 :r0  ; trailing comment\n");
    EXPECT_EQ(code.words.size(), 1u);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble("frobnicate r0\n"), FatalError);
    EXPECT_THROW(assemble("plus r0,@nowhere :r0\n"), FatalError);
    EXPECT_THROW(assemble("dup2 :r1\n"), FatalError);
    EXPECT_THROW(assemble("x: x: plus r0,r1 :r0\n"), FatalError);
    EXPECT_THROW(assemble("plus r0,r1 :r0 garbage\n"), FatalError);
    EXPECT_THROW(assemble("plus r99,r1 :r0\n"), FatalError);
}

TEST(Assembler, NumberOverflowIsALineDiagnosticNotACrash)
{
    // r99999999999 used to escape as an uncaught std::out_of_range
    // from std::stoi; both overflow forms must surface as ordinary
    // assembler diagnostics carrying the offending line number.
    try {
        assemble("plus r99999999999,r1 :r0\n");
        FAIL() << "expected a FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 1"),
                  std::string::npos)
            << e.what();
    }
    try {
        assemble("plus r0,r1 :r0\nplus #99999999999999999999,r1 :r0\n");
        FAIL() << "expected a FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
    // Trailing junk after the digits is a malformed register, not a
    // silently truncated parse ("r12x" is not r12).
    EXPECT_THROW(assemble("plus r12x,r1 :r0\n"), FatalError);
}

TEST(Assembler, DisassemblerRoundTripsText)
{
    std::string source =
        "start:\n"
        "  plus++ r0,r1 :r0,r2 >\n"
        "  dup1 :r30\n"
        "  minus #0,r0 :r17\n"
        "  bne r17,@start\n"
        "  trap #3,#0\n"
        "  fret\n";
    ObjectCode code = assemble(source);
    auto lines = disassemble(code);
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines[0], "start:");
    EXPECT_NE(lines[1].find("plus+2 r0,r1 :r0,r2 >"), std::string::npos);
    // Re-decode everything without throwing.
    std::size_t index = 0;
    while (index < code.words.size())
        Instruction::decode(code.words, index);
}

} // namespace
