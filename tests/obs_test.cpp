/**
 * @file
 * Observability layer tests: the always-on flight recorder (rings,
 * counts, qm.flight.v1 dumps, QM_FLIGHT kill switch), the telemetry
 * stream (determinism across cores and host threads), the Prometheus
 * exposition writer, and the qmprof cross-run analytics (diff verdicts
 * and flight post-mortems).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "mp/system.hpp"
#include "obs/analytics.hpp"
#include "obs/flight.hpp"
#include "occam/compiler.hpp"
#include "sim/telemetry.hpp"
#include "support/json_parse.hpp"
#include "support/stats.hpp"

namespace {

using namespace qm;

trace::Event
makeEvent(trace::EventKind kind, std::int64_t at, int pe = 0,
          trace::CtxId ctx = trace::kNoCtx)
{
    trace::Event event;
    event.kind = kind;
    event.pe = static_cast<std::int16_t>(pe);
    event.ctx = ctx;
    event.at = at;
    return event;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "obs_test_" + name;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::trunc);
    out << content;
}

// --- FlightRing ----------------------------------------------------------

TEST(FlightRing, KeepsEverythingBelowCapacity)
{
    obs::FlightRing ring("test", 4);
    for (int i = 0; i < 3; ++i)
        ring.push(makeEvent(trace::EventKind::CtxCreate, i));
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.recorded(), 3u);
    std::vector<trace::Event> ordered = ring.ordered();
    ASSERT_EQ(ordered.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(ordered[static_cast<std::size_t>(i)].at, i);
}

TEST(FlightRing, OverwritesOldestPastCapacityAndUnwrapsInOrder)
{
    obs::FlightRing ring("test", 4);
    for (int i = 0; i < 11; ++i)
        ring.push(makeEvent(trace::EventKind::CtxCreate, i));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.recorded(), 11u);
    std::vector<trace::Event> ordered = ring.ordered();
    ASSERT_EQ(ordered.size(), 4u);
    // Oldest-to-newest: 7, 8, 9, 10.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(ordered[static_cast<std::size_t>(i)].at, 7 + i);
}

// --- FlightRecorder ------------------------------------------------------

TEST(FlightRecorder, RoutesKindsToComponentRingsAndCountsExactly)
{
    obs::FlightRecorder recorder;
    ASSERT_TRUE(recorder.enabled());
    recorder.record(makeEvent(trace::EventKind::CtxDispatch, 1, 0, 7));
    recorder.record(makeEvent(trace::EventKind::CtxPark, 2, 0, 7));
    recorder.record(makeEvent(trace::EventKind::BusTransfer, 3, 1));
    recorder.record(makeEvent(trace::EventKind::Rendezvous, 4));
    recorder.record(makeEvent(trace::EventKind::TrapEnter, 5, 2));
    recorder.record(makeEvent(trace::EventKind::FaultInject, 6, 0));

    EXPECT_EQ(recorder.countOf(trace::EventKind::CtxDispatch), 1u);
    EXPECT_EQ(recorder.countOf(trace::EventKind::CtxPark), 1u);
    EXPECT_EQ(recorder.countOf(trace::EventKind::BusTransfer), 1u);
    EXPECT_EQ(recorder.countOf(trace::EventKind::CtxFinish), 0u);

    // sched, bus, kernel, fault, checkpoint — in that order.
    const std::vector<obs::FlightRing> &rings = recorder.rings();
    ASSERT_EQ(rings.size(), 5u);
    EXPECT_STREQ(rings[0].name(), "sched");
    EXPECT_EQ(rings[0].recorded(), 2u);  // dispatch + park
    EXPECT_STREQ(rings[1].name(), "bus");
    EXPECT_EQ(rings[1].recorded(), 2u);  // transfer + rendezvous
    EXPECT_STREQ(rings[2].name(), "kernel");
    EXPECT_EQ(rings[2].recorded(), 1u);
    EXPECT_STREQ(rings[3].name(), "fault");
    EXPECT_EQ(rings[3].recorded(), 1u);
    EXPECT_EQ(rings[4].recorded(), 0u);
}

TEST(FlightRecorder, CheckpointAndRestoreLandInTheCheckpointRing)
{
    obs::FlightRecorder recorder;
    recorder.checkpoint(100, 5);
    recorder.checkpoint(200, 3);
    recorder.noteRestore(100);
    EXPECT_EQ(recorder.checkpoints(), 2u);
    EXPECT_EQ(recorder.restores(), 1u);
    EXPECT_EQ(recorder.rings()[4].recorded(), 3u);
    std::vector<trace::Event> ordered = recorder.rings()[4].ordered();
    ASSERT_EQ(ordered.size(), 3u);
    EXPECT_EQ(ordered[0].kind, obs::kCheckpointKind);
    EXPECT_EQ(ordered[0].a, 5u);  // live contexts at the boundary
    EXPECT_EQ(ordered[2].kind, obs::kRestoreKind);
}

TEST(FlightRecorder, DumpIsSchemaValidJson)
{
    obs::FlightRecorder recorder;
    recorder.record(makeEvent(trace::EventKind::CtxDispatch, 42, 1, 9));
    recorder.checkpoint(50, 2);

    obs::FlightHeader header;
    header.reason = "watchdog: test";
    header.cycle = 99;
    header.pes = 4;
    header.liveContexts = 2;
    JsonValue doc = parseJson(recorder.dump(header));
    EXPECT_EQ(doc.str("schema"), "qm.flight.v1");
    EXPECT_EQ(doc.str("reason"), "watchdog: test");
    EXPECT_EQ(doc.intval("cycle"), 99);
    EXPECT_EQ(doc.intval("pes"), 4);
    EXPECT_EQ(doc.intval("live_contexts"), 2);
    EXPECT_EQ(doc.get("counts").intval("ctx-dispatch"), 1);
    EXPECT_EQ(doc.get("counts").intval("checkpoint"), 1);
    // Zero counts are omitted, not written as 0.
    EXPECT_TRUE(doc.get("counts").get("ctx-finish").isNull());
    ASSERT_EQ(doc.get("rings").items.size(), 5u);
    const JsonValue &sched = doc.get("rings").items[0];
    EXPECT_EQ(sched.str("name"), "sched");
    EXPECT_EQ(sched.intval("recorded"), 1);
    ASSERT_EQ(sched.get("events").items.size(), 1u);
    const JsonValue &event = sched.get("events").items[0];
    EXPECT_EQ(event.str("kind"), "ctx-dispatch");
    EXPECT_EQ(event.intval("at"), 42);
    EXPECT_EQ(event.intval("ctx"), 9);
    EXPECT_EQ(event.intval("pe"), 1);
}

TEST(FlightRecorder, KillSwitchDisablesRecordingAndDumping)
{
    ::setenv("QM_FLIGHT", "0", 1);
    obs::FlightRecorder recorder;
    ::unsetenv("QM_FLIGHT");
    EXPECT_FALSE(recorder.enabled());
    recorder.record(makeEvent(trace::EventKind::CtxDispatch, 1));
    recorder.checkpoint(10, 1);
    EXPECT_EQ(recorder.countOf(trace::EventKind::CtxDispatch), 0u);
    EXPECT_EQ(recorder.checkpoints(), 0u);
}

TEST(FlightRecorder, MarkerFileIsAParseableDump)
{
    std::string path = tempPath("marker.flight.json");
    ASSERT_TRUE(obs::writeFlightMarker(path, "run-start").ok());
    JsonValue doc = parseJsonFile(path);
    EXPECT_EQ(doc.str("schema"), "qm.flight.v1");
    EXPECT_EQ(doc.str("reason"), "run-start");
    std::remove(path.c_str());
}

TEST(FlightKindName, CoversSyntheticKinds)
{
    EXPECT_STREQ(obs::flightKindName(obs::kCheckpointKind),
                 "checkpoint");
    EXPECT_STREQ(obs::flightKindName(obs::kRestoreKind), "restore");
    EXPECT_STREQ(obs::flightKindName(trace::EventKind::CtxPark),
                 "ctx-park");
}

// --- System integration --------------------------------------------------

/** Three contexts, two channels: exercises sched + bus rings. */
const char *kPipelineSource = R"(var results[2]:
chan a:
chan b:
var total, count:
seq
  total := 0
  count := 0
  par
    seq i = [1 for 16]
      a ! i
    seq j = [1 for 16]
      var x:
      seq
        a ? x
        b ! x * x
    seq k = [1 for 16]
      var y:
      seq
        b ? y
        total := total + y
        count := count + 1
  results[0] := total
  results[1] := count
)";

const occam::CompiledProgram &
pipelineProgram()
{
    static occam::CompiledProgram program =
        occam::compileOccam(kPipelineSource);
    return program;
}

TEST(FlightSystem, RecorderSeesEventsWithTracingOff)
{
    const occam::CompiledProgram &program = pipelineProgram();
    mp::SystemConfig config;
    config.numPes = 2;
    ASSERT_FALSE(config.traceConfig.enabled);
    mp::System system(program.object, config);
    mp::RunResult result = system.run(program.mainLabel);
    ASSERT_TRUE(result.completed);
    // The Tracer is off (no events buffered) yet the sink saw the run.
    EXPECT_TRUE(system.tracer().events().empty());
    EXPECT_GT(system.flight().countOf(trace::EventKind::CtxDispatch),
              0u);
    EXPECT_GT(system.flight().countOf(trace::EventKind::Rendezvous),
              0u);
    obs::FlightHeader header;
    header.reason = "test";
    JsonValue doc = parseJson(system.flight().dump(header));
    EXPECT_EQ(doc.str("schema"), "qm.flight.v1");
}

TEST(FlightSystem, WriteFlightDumpProducesParseableFile)
{
    const occam::CompiledProgram &program = pipelineProgram();
    mp::SystemConfig config;
    config.numPes = 2;
    mp::System system(program.object, config);
    mp::RunResult result = system.run(program.mainLabel);
    ASSERT_TRUE(result.completed);
    std::string path = tempPath("system.flight.json");
    ASSERT_TRUE(system.writeFlightDump(path, "test-dump").ok());
    JsonValue doc = parseJsonFile(path);
    EXPECT_EQ(doc.str("reason"), "test-dump");
    EXPECT_EQ(doc.intval("pes"), 2);
    EXPECT_GT(doc.get("counts").intval("ctx-dispatch"), 0);
    std::remove(path.c_str());
}

// --- Telemetry determinism -----------------------------------------------

std::vector<std::string>
telemetryLines(mp::SimCore core, int threads)
{
    const occam::CompiledProgram &program = pipelineProgram();
    mp::SystemConfig config;
    config.numPes = 2;
    config.core = core;
    config.hostThreads = threads;
    config.telemetryEvery = 50;
    mp::System system(program.object, config);
    std::vector<std::string> lines;
    system.setTelemetrySink([&lines](mp::System &sys, mp::Cycle cycle) {
        lines.push_back(sim::telemetryLine("t", 2, cycle,
                                           sys.statsSnapshot()));
    });
    mp::RunResult result = system.run(program.mainLabel);
    EXPECT_TRUE(result.completed);
    return lines;
}

TEST(Telemetry, StreamIsByteIdenticalAcrossCoresAndThreads)
{
    std::vector<std::string> event1 =
        telemetryLines(mp::SimCore::Event, 1);
    ASSERT_FALSE(event1.empty());
    EXPECT_EQ(event1, telemetryLines(mp::SimCore::Tick, 1));
    EXPECT_EQ(event1, telemetryLines(mp::SimCore::Event, 4));
}

TEST(Telemetry, LinesAreCycleStampedSchemaTaggedAndMonotone)
{
    std::vector<std::string> lines =
        telemetryLines(mp::SimCore::Event, 1);
    ASSERT_GE(lines.size(), 2u);
    std::int64_t last_cycle = 0;
    long long last_instructions = 0;
    for (const std::string &line : lines) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.back(), '\n');
        JsonValue doc = parseJson(line);
        EXPECT_EQ(doc.str("schema"), "qm.telemetry.v1");
        EXPECT_EQ(doc.str("label"), "t");
        EXPECT_EQ(doc.intval("pes"), 2);
        std::int64_t cycle = doc.intval("cycle");
        EXPECT_GT(cycle, last_cycle);
        last_cycle = cycle;
        long long instructions =
            doc.get("counters").intval("pe.instructions");
        EXPECT_GE(instructions, last_instructions);
        last_instructions = instructions;
        EXPECT_FALSE(doc.get("histograms").members.empty());
    }
}

// --- Prometheus exposition -----------------------------------------------

TEST(Prometheus, RendersAllFourMetricFamilies)
{
    StatSet stats;
    stats.inc("pe.instructions", 42);
    stats.set("pe0.clock", 128.0);
    stats.sample("host.ms", 2.5);
    stats.record("bus.latency", 0);
    stats.record("bus.latency", 3);
    stats.record("bus.latency", 3);
    std::string text = renderPrometheus(stats);

    EXPECT_NE(text.find("# TYPE qm_pe_instructions counter\n"
                        "qm_pe_instructions 42\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE qm_pe0_clock gauge\n"
                        "qm_pe0_clock 128.000000\n"),
              std::string::npos);
    EXPECT_NE(text.find("qm_host_ms_count 1\n"), std::string::npos);
    // log2 histogram: the zeros bucket (le="0") holds the single 0;
    // [2,4) holds both 3s; cumulative counts, mandatory +Inf bucket.
    EXPECT_NE(text.find("qm_bus_latency_bucket{le=\"0\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("qm_bus_latency_bucket{le=\"3\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("qm_bus_latency_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("qm_bus_latency_sum 6\n"), std::string::npos);
    EXPECT_NE(text.find("qm_bus_latency_count 3\n"),
              std::string::npos);
}

TEST(Prometheus, SanitizesNamesToExpositionCharset)
{
    StatSet stats;
    stats.inc("pe0.ready-wait/max", 1);
    std::string text = renderPrometheus(stats, "qm");
    EXPECT_NE(text.find("qm_pe0_ready_wait_max 1\n"),
              std::string::npos);
}

// --- qmprof diff ---------------------------------------------------------

/** Minimal BENCH document with one series and @p cycles at 4 PEs. */
std::string
benchDoc(long cycles, bool verified = true)
{
    std::ostringstream os;
    os << "{\"bench\":\"t\",\"series\":[{\"name\":\"s\",\"runs\":"
          "[{\"pes\":4,\"completed\":true,\"verified\":"
       << (verified ? "true" : "false") << ",\"cycles\":" << cycles
       << "}]}]}";
    return os.str();
}

int
diffDocs(const std::string &baseline, const std::string &current,
         std::string *out_text = nullptr,
         const obs::DiffOptions &options = {})
{
    std::string base_path = tempPath("diff_base.json");
    std::string cur_path = tempPath("diff_cur.json");
    writeFile(base_path, baseline);
    writeFile(cur_path, current);
    std::ostringstream out, err;
    int rc = obs::diffReports(base_path, cur_path, options, out, err);
    if (out_text != nullptr)
        *out_text = out.str() + err.str();
    std::remove(base_path.c_str());
    std::remove(cur_path.c_str());
    return rc;
}

TEST(QmprofDiff, IdenticalReportsPass)
{
    std::string text;
    EXPECT_EQ(diffDocs(benchDoc(1000), benchDoc(1000), &text), 0);
    EXPECT_NE(text.find("unchanged"), std::string::npos);
    EXPECT_NE(text.find("all 1 baseline cells within tolerance"),
              std::string::npos);
}

TEST(QmprofDiff, SmallDriftWithinTolerancePasses)
{
    // +5% < the default 10% cycle tolerance; reported as a note.
    std::string text;
    EXPECT_EQ(diffDocs(benchDoc(1000), benchDoc(1050), &text), 0);
    EXPECT_NE(text.find("slower"), std::string::npos);
}

TEST(QmprofDiff, RegressionPastToleranceFails)
{
    std::string text;
    EXPECT_EQ(diffDocs(benchDoc(1000), benchDoc(1200), &text), 1);
    EXPECT_NE(text.find("FAIL"), std::string::npos);
    EXPECT_NE(text.find("refresh the baseline"), std::string::npos);
}

TEST(QmprofDiff, TightenedToleranceCatchesSmallDrift)
{
    obs::DiffOptions options;
    options.tolerance = 0.01;
    EXPECT_EQ(diffDocs(benchDoc(1000), benchDoc(1050), nullptr,
                       options),
              1);
}

TEST(QmprofDiff, UnverifiedCurrentCellFails)
{
    std::string text;
    EXPECT_EQ(diffDocs(benchDoc(1000), benchDoc(1000, false), &text),
              1);
    EXPECT_NE(text.find("no longer verifies"), std::string::npos);
}

TEST(QmprofDiff, MissingCurrentCellFails)
{
    std::string current =
        "{\"bench\":\"t\",\"series\":[{\"name\":\"s\",\"runs\":[]}]}";
    std::string text;
    EXPECT_EQ(diffDocs(benchDoc(1000), current, &text), 1);
    EXPECT_NE(text.find("missing from current report"),
              std::string::npos);
}

TEST(QmprofDiff, NewCellWithoutBaselineIsANoteNotAFailure)
{
    std::string current =
        "{\"bench\":\"t\",\"series\":[{\"name\":\"s\",\"runs\":"
        "[{\"pes\":4,\"completed\":true,\"verified\":true,"
        "\"cycles\":1000},{\"pes\":8,\"completed\":true,"
        "\"verified\":true,\"cycles\":600}]}]}";
    std::string text;
    EXPECT_EQ(diffDocs(benchDoc(1000), current, &text), 0);
    EXPECT_NE(text.find("new cell, no baseline"), std::string::npos);
}

TEST(QmprofDiff, UnreadableInputExitsTwo)
{
    std::string good_path = tempPath("diff_good.json");
    writeFile(good_path, benchDoc(1000));
    std::ostringstream out, err;
    EXPECT_EQ(obs::diffReports(tempPath("diff_nope.json"), good_path,
                               {}, out, err),
              2);
    std::remove(good_path.c_str());
}

TEST(QmprofDiff, MismatchedBenchNamesFail)
{
    std::string other =
        "{\"bench\":\"other\",\"series\":[{\"name\":\"s\",\"runs\":"
        "[{\"pes\":4,\"completed\":true,\"verified\":true,"
        "\"cycles\":1000}]}]}";
    std::string text;
    EXPECT_EQ(diffDocs(benchDoc(1000), other, &text), 1);
    EXPECT_NE(text.find("comparing different benches"),
              std::string::npos);
}

// --- qmprof flight -------------------------------------------------------

TEST(QmprofFlight, RendersPostMortemFromARealDump)
{
    obs::FlightRecorder recorder;
    // Context 7 dispatches then parks on a channel; context 8 finishes
    // and must not be blamed.
    trace::Event park =
        makeEvent(trace::EventKind::CtxPark, 120, 1, 7);
    park.a = 0;  // ParkReason::Channel
    recorder.record(makeEvent(trace::EventKind::CtxDispatch, 100, 1, 7));
    recorder.record(park);
    recorder.record(makeEvent(trace::EventKind::CtxDispatch, 90, 0, 8));
    recorder.record(makeEvent(trace::EventKind::CtxFinish, 110, 0, 8));
    recorder.record(makeEvent(trace::EventKind::TrapEnter, 95, 0));

    obs::FlightHeader header;
    header.reason = "deadlock: 1 live contexts, none runnable";
    header.cycle = 130;
    header.pes = 2;
    header.liveContexts = 1;
    std::string path = tempPath("postmortem.flight.json");
    ASSERT_TRUE(recorder.dumpToFile(path, header).ok());

    std::ostringstream out, err;
    EXPECT_EQ(obs::analyzeFlight(path, {}, out, err), 0);
    std::string text = out.str();
    EXPECT_NE(text.find("deadlock: 1 live contexts"),
              std::string::npos);
    EXPECT_NE(text.find("ctx 7: parked (channel)"),
              std::string::npos);
    EXPECT_EQ(text.find("ctx 8: parked"), std::string::npos);
    EXPECT_NE(text.find("probable cause"), std::string::npos);
    EXPECT_NE(text.find("parked and never redispatched"),
              std::string::npos);
    EXPECT_NE(text.find("ring sched: 4 recorded"), std::string::npos);
    std::remove(path.c_str());
}

TEST(QmprofFlight, RejectsNonFlightJson)
{
    std::string path = tempPath("notflight.json");
    writeFile(path, "{\"schema\":\"qm.metrics.v1\"}");
    std::ostringstream out, err;
    EXPECT_EQ(obs::analyzeFlight(path, {}, out, err), 2);
    std::remove(path.c_str());
}

} // namespace
