/**
 * @file
 * Differential gate between the two simulation cores: the event-driven
 * calendar scheduler (SimCore::Event, the default) must be
 * BYTE-IDENTICAL to the unit-tick scan it replaced (SimCore::Tick) on
 * every observable surface - RunResult fields, the rendered statistics
 * registry, the Chrome trace stream, the full simulated memory image,
 * and the BENCH / metrics JSON documents - across the same corpora the
 * fuzz suites run: plain programs, seeded fault injection, and the
 * harsh recovery mix with fail-stops and checkpoint replay.
 *
 * Honors QM_FUZZ_ITERS like the fuzz suites (the nightly chaos job
 * widens every corpus).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "fault/fault.hpp"
#include "fuzz_corpus.hpp"
#include "isa/assembler.hpp"
#include "mp/system.hpp"
#include "occam/codegen.hpp"
#include "occam/compiler.hpp"
#include "occam/ift.hpp"
#include "occam/parser.hpp"
#include "sim/bench_json.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "trace/export.hpp"

namespace {

using namespace qm;
using namespace qm::occam;
using fuzz::corpusPes;
using fuzz::corpusSeed;
using fuzz::fuzzIters;
using fuzz::ProgramGen;

/** Everything one core produced that the other must reproduce. */
struct CoreRun
{
    mp::RunResult result;
    int replays = 0;
    std::string stats;           ///< StatSet::render() of the system.
    std::string trace;           ///< Chrome trace JSON, full stream.
    std::vector<std::uint8_t> memory;
};

isa::ObjectCode
compileCorpusProgram(int idx, std::string *main_label)
{
    ProgramGen gen(corpusSeed(idx));
    std::string source = gen.generate();
    Program ast = parse(source);
    SymbolTable table = analyze(ast);
    Ift ift = Ift::build(ast, table);
    ContextProgram contexts = buildContextGraphs(ast, table, ift);
    *main_label = contexts.mainLabel;
    return isa::assemble(generateAssembly(contexts));
}

CoreRun
runCore(const isa::ObjectCode &object, const std::string &main_label,
        mp::SystemConfig config, mp::SimCore core)
{
    config.core = core;
    // Record the full event stream so the comparison covers trace
    // emission order and timestamps, not just the end state.
    config.traceConfig.enabled = true;
    mp::System system(object, config);
    CoreRun run;
    run.result = system.run(main_label);
    while (!run.result.completed && config.recovery.enabled &&
           system.replayable() && system.canRestore() &&
           run.replays < config.recovery.maxReplays) {
        system.restore();
        ++run.replays;
        run.result = system.resume();
    }
    run.stats = system.stats().render();
    run.trace = trace::chromeTraceJson(system.tracer());
    system.memory().snapshotTo(run.memory);
    return run;
}

void
expectIdentical(const CoreRun &tick, const CoreRun &event)
{
    const mp::RunResult &a = tick.result;
    const mp::RunResult &b = event.result;
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.contexts, b.contexts);
    EXPECT_EQ(a.rendezvous, b.rendezvous);
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.kernelCycles, b.kernelCycles);
    EXPECT_EQ(a.blockedCycles, b.blockedCycles);
    EXPECT_EQ(a.busCycles, b.busCycles);
    EXPECT_EQ(a.watchdogTripped, b.watchdogTripped);
    EXPECT_EQ(a.failureReason, b.failureReason);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.faultRecoveries, b.faultRecoveries);
    EXPECT_EQ(a.traceDropped, b.traceDropped);
    for (std::size_t k = 0; k < a.faultKinds.size(); ++k) {
        EXPECT_EQ(a.faultKinds[k].injected, b.faultKinds[k].injected)
            << "kind bit " << k;
        EXPECT_EQ(a.faultKinds[k].detected, b.faultKinds[k].detected)
            << "kind bit " << k;
        EXPECT_EQ(a.faultKinds[k].recovered, b.faultKinds[k].recovered)
            << "kind bit " << k;
    }
    EXPECT_EQ(tick.replays, event.replays);
    EXPECT_EQ(tick.stats, event.stats);
    EXPECT_EQ(tick.trace, event.trace);
    EXPECT_EQ(tick.memory, event.memory);
}

class FuzzCoreDifferentialTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzCoreDifferentialTest, PlainCorpusByteIdentical)
{
    std::string main_label;
    isa::ObjectCode object =
        compileCorpusProgram(GetParam(), &main_label);
    mp::SystemConfig config;
    config.numPes = corpusPes(GetParam());
    expectIdentical(
        runCore(object, main_label, config, mp::SimCore::Tick),
        runCore(object, main_label, config, mp::SimCore::Event));
}

INSTANTIATE_TEST_SUITE_P(PlainCorpus, FuzzCoreDifferentialTest,
                         ::testing::Range(0, fuzzIters(80)));

class FuzzCoreFaultDifferentialTest
    : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzCoreFaultDifferentialTest, FaultCorpusByteIdentical)
{
    // Same plans as FuzzFaultDifferentialTest: the injector's decision
    // stream is consumed at the same sites in both cores, so even the
    // injected fault schedule must line up event for event.
    std::string main_label;
    isa::ObjectCode object =
        compileCorpusProgram(GetParam(), &main_label);
    mp::SystemConfig config;
    config.numPes = corpusPes(GetParam());
    fault::FaultPlan plan;
    plan.seed = 0xFA117 + static_cast<std::uint64_t>(GetParam());
    plan.rate = 0.03;
    plan.kinds = fault::kBusDrop | fault::kBusDelay | fault::kPeStall;
    config.faultPlan = plan;
    config.watchdogCycles = 200'000;
    expectIdentical(
        runCore(object, main_label, config, mp::SimCore::Tick),
        runCore(object, main_label, config, mp::SimCore::Event));
}

INSTANTIATE_TEST_SUITE_P(FaultCorpus, FuzzCoreFaultDifferentialTest,
                         ::testing::Range(0, fuzzIters(40)));

class FuzzCoreRecoveryDifferentialTest
    : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzCoreRecoveryDifferentialTest, RecoveryCorpusByteIdentical)
{
    // The harsh mix: loss past the retry bound, duplication,
    // corruption, periodic fail-stop, recovery on, periodic
    // checkpoints, bounded replay. Exercises snapshot/restore under
    // both cores - the stat-delta flush points must make checkpoint
    // contents (and everything downstream) agree exactly.
    std::string main_label;
    isa::ObjectCode object =
        compileCorpusProgram(GetParam(), &main_label);
    mp::SystemConfig config;
    config.numPes = corpusPes(GetParam());
    fault::FaultPlan plan;
    plan.seed = 0x5EC0 + static_cast<std::uint64_t>(GetParam());
    plan.rate = 0.25;
    plan.kinds =
        fault::kBusDrop | fault::kBusDup | fault::kCacheCorrupt;
    plan.maxRetries = 1;
    if (GetParam() % 3 == 0) {
        plan.kinds |= fault::kPeKill;
        plan.killAt = 200;
        plan.killPe = GetParam() % 4;
    }
    config.faultPlan = plan;
    config.watchdogCycles = 200'000;
    config.recovery.enabled = true;
    config.recovery.checkpointEvery = 300;
    expectIdentical(
        runCore(object, main_label, config, mp::SimCore::Tick),
        runCore(object, main_label, config, mp::SimCore::Event));
}

INSTANTIATE_TEST_SUITE_P(RecoveryCorpus,
                         FuzzCoreRecoveryDifferentialTest,
                         ::testing::Range(0, fuzzIters(40)));

class FuzzCorePartitionedDifferentialTest
    : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzCorePartitionedDifferentialTest,
       PartitionedPlainCorpusByteIdentical)
{
    // The plain corpus again, but on hierarchical multi-partition
    // machines: cross-ring transfers, bridge arbitration, and sharded
    // kernel placement must be byte-identical under both cores.
    std::string main_label;
    isa::ObjectCode object =
        compileCorpusProgram(GetParam(), &main_label);
    mp::SystemConfig config;
    config.numPes = 8 + 8 * (GetParam() % 2);  // 8 or 16 PEs
    static const mp::RingTopology kShapes[] = {
        {2, 2}, {4, 1}, {2, 4}, {4, 2}};
    config.setTopology(kShapes[GetParam() % 4]);
    expectIdentical(
        runCore(object, main_label, config, mp::SimCore::Tick),
        runCore(object, main_label, config, mp::SimCore::Event));
}

INSTANTIATE_TEST_SUITE_P(PartitionedPlainCorpus,
                         FuzzCorePartitionedDifferentialTest,
                         ::testing::Range(0, fuzzIters(24)));

class PartitionedRecoveryDifferentialTest
    : public ::testing::TestWithParam<int>
{
};

TEST_P(PartitionedRecoveryDifferentialTest,
       PinnedPartitionedCorpusByteIdentical)
{
    // The pinned multi-partition recovery corpus (fuzz_corpus.hpp):
    // PE kills plus loss on hierarchical machines, so checkpoint
    // replay, cross-shard re-dispatch, and bridge-crossing
    // retransmits all run under both cores.
    const fuzz::PartitionedRecoverySpec &entry =
        fuzz::kPartitionedRecoveryCorpus[static_cast<std::size_t>(
            GetParam())];
    SCOPED_TRACE(entry.faults);
    std::string main_label;
    isa::ObjectCode object =
        compileCorpusProgram(GetParam(), &main_label);
    mp::SystemConfig config;
    config.numPes = entry.pes;
    config.setTopology({entry.rings, entry.partitions});
    config.faultPlan = fault::parseFaultPlan(entry.faults);
    config.watchdogCycles = 200'000;
    config.recovery.enabled = true;
    config.recovery.checkpointEvery = 300;
    config.recovery.maxResends = 64;
    expectIdentical(
        runCore(object, main_label, config, mp::SimCore::Tick),
        runCore(object, main_label, config, mp::SimCore::Event));
}

INSTANTIATE_TEST_SUITE_P(
    PinnedPartitionedCorpus, PartitionedRecoveryDifferentialTest,
    ::testing::Range(0,
                     static_cast<int>(std::size(
                         fuzz::kPartitionedRecoveryCorpus))));

TEST(CoreDifferential, WatchdogAccountingPinned)
{
    // Pinned chaos scenario engineered to end runs through the
    // watchdog/starvation path: aggressive loss with a single link
    // retry, no recovery layer, and a tight watchdog. Whatever the
    // exact outcome per index, both cores must agree on the
    // watchdog-tripped flag, the failure reason string, and the cycle
    // the run died at.
    bool saw_trip = false;
    for (int idx = 0; idx < 6; ++idx) {
        SCOPED_TRACE(idx);
        std::string main_label;
        isa::ObjectCode object = compileCorpusProgram(idx, &main_label);
        mp::SystemConfig config;
        config.numPes = 4;
        fault::FaultPlan plan;
        plan.seed = 0xD06 + static_cast<std::uint64_t>(idx);
        plan.rate = 0.5;
        plan.kinds = fault::kBusDrop;
        plan.maxRetries = 1;
        config.faultPlan = plan;
        config.watchdogCycles = 3000;
        CoreRun tick =
            runCore(object, main_label, config, mp::SimCore::Tick);
        CoreRun event =
            runCore(object, main_label, config, mp::SimCore::Event);
        expectIdentical(tick, event);
        saw_trip = saw_trip || tick.result.watchdogTripped;
    }
    // The scenario must actually exercise the path it pins.
    EXPECT_TRUE(saw_trip);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(CoreDifferential, BenchAndMetricsJsonByteIdentical)
{
    // The exported documents - the surfaces CI diffing actually
    // consumes - compared byte for byte. Host timing is measured by
    // runOnce either way but stays out of the default BENCH document,
    // which is exactly why the comparison can be exact.
    std::string source = ProgramGen(corpusSeed(0)).generate();
    occam::CompiledProgram program = occam::compileOccam(source);

    auto series_for = [&](mp::SimCore core) {
        mp::SystemConfig config;
        config.core = core;
        sim::SpeedupSeries series;
        series.name = "corpus0";
        for (int pes : {1, 2, 4})
            series.runs.push_back(
                sim::runOnce(program, "", {}, pes, config));
        return series;
    };
    sim::SpeedupSeries tick = series_for(mp::SimCore::Tick);
    sim::SpeedupSeries event = series_for(mp::SimCore::Event);

    // Host timing is machine-dependent by design; everything else in
    // the report must match field for field.
    for (std::size_t i = 0; i < tick.runs.size(); ++i) {
        EXPECT_EQ(tick.runs[i].cycles, event.runs[i].cycles);
        EXPECT_EQ(tick.runs[i].completed, event.runs[i].completed);
        EXPECT_EQ(tick.runs[i].stats.render(),
                  event.runs[i].stats.render());
        EXPECT_GE(tick.runs[i].hostWallMs, 0.0);
        EXPECT_GE(event.runs[i].hostWallMs, 0.0);
    }

    std::string tick_bench =
        sim::writeBenchJson("corediff", {tick}, "core_diff_tick.json");
    std::string event_bench = sim::writeBenchJson(
        "corediff", {event}, "core_diff_event.json");
    EXPECT_EQ(slurp(tick_bench), slurp(event_bench));
    std::remove(tick_bench.c_str());
    std::remove(event_bench.c_str());

    std::string tick_metrics = sim::writeMetricsJson(
        "corediff", {tick}, "core_diff_tick_metrics.json");
    std::string event_metrics = sim::writeMetricsJson(
        "corediff", {event}, "core_diff_event_metrics.json");
    EXPECT_EQ(slurp(tick_metrics), slurp(event_metrics));
    std::remove(tick_metrics.c_str());
    std::remove(event_metrics.c_str());
}

} // namespace
