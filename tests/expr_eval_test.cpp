/**
 * @file
 * Tests for queue/stack-machine evaluation (thesis sections 3.2-3.3).
 *
 * The central theorem of Chapter 3: evaluating the level-order traversal
 * of a parse tree on a simple queue machine computes the same value as
 * evaluating the post-order traversal on a stack machine.
 */
#include <gtest/gtest.h>

#include "expr/enumerate.hpp"
#include "expr/eval.hpp"
#include "expr/parse_tree.hpp"
#include "expr/traversal.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace {

using namespace qm;
using namespace qm::expr;

const Env kThesisEnv = {{"a", 6}, {"b", 7}, {"c", 20}, {"d", 8}, {"e", 3}};

TEST(Eval, Table31QueueAndStackAgree)
{
    // f <- a*b + (c-d)/e with a=6,b=7,c=20,d=8,e=3: 42 + 12/3 = 46.
    ParseTree tree = ParseTree::parse("a*b + (c-d)/e");
    EXPECT_EQ(evalTree(tree, kThesisEnv), 46);
    EXPECT_EQ(evalQueue(tree, levelOrder(tree), kThesisEnv), 46);
    EXPECT_EQ(evalStack(tree, postOrder(tree), kThesisEnv), 46);
}

TEST(Eval, Table31RenderedSequencesMatchThesis)
{
    ParseTree tree = ParseTree::parse("a*b + (c-d)/e");
    auto queue_seq = renderSequence(tree, levelOrder(tree));
    std::vector<std::string> expected_queue = {
        "fetch c", "fetch d", "fetch a", "fetch b", "sub",
        "fetch e", "mul", "div", "add"};
    EXPECT_EQ(queue_seq, expected_queue);

    auto stack_seq = renderSequence(tree, postOrder(tree));
    std::vector<std::string> expected_stack = {
        "fetch a", "fetch b", "mul", "fetch c", "fetch d",
        "sub", "fetch e", "div", "add"};
    EXPECT_EQ(stack_seq, expected_stack);
}

TEST(Eval, QueueSequenceIsPermutationOfStackSequence)
{
    // Thesis observation: the queue sequence is a permutation of the
    // stack sequence using the same instruction set.
    ParseTree tree = ParseTree::parse("a*b + (c-d)/e");
    auto queue_seq = renderSequence(tree, levelOrder(tree));
    auto stack_seq = renderSequence(tree, postOrder(tree));
    std::sort(queue_seq.begin(), queue_seq.end());
    std::sort(stack_seq.begin(), stack_seq.end());
    EXPECT_EQ(queue_seq, stack_seq);
}

TEST(Eval, UnaryMinus)
{
    ParseTree tree = ParseTree::parse("-(a - b)");
    Env env = {{"a", 3}, {"b", 10}};
    EXPECT_EQ(evalTree(tree, env), 7);
    EXPECT_EQ(evalQueue(tree, levelOrder(tree), env), 7);
    EXPECT_EQ(evalStack(tree, postOrder(tree), env), 7);
}

TEST(Eval, NumericLiterals)
{
    ParseTree tree = ParseTree::parse("2*3 + 10/5");
    EXPECT_EQ(evalQueue(tree, levelOrder(tree), {}), 8);
}

TEST(Eval, DivisionByZeroIsFatal)
{
    ParseTree tree = ParseTree::parse("a/b");
    Env env = {{"a", 1}, {"b", 0}};
    EXPECT_THROW(evalQueue(tree, levelOrder(tree), env), FatalError);
}

TEST(Eval, UnboundVariableIsFatal)
{
    ParseTree tree = ParseTree::parse("zz");
    EXPECT_THROW(evalTree(tree, {}), FatalError);
}

TEST(Eval, InvalidSequencePanics)
{
    // A post-order sequence fed to the queue machine consumes the wrong
    // operands; depending on the shape the machine underflows or produces
    // a non-singleton final queue. The evaluator must detect it.
    ParseTree tree = ParseTree::parse("a*b + (c-d)/e");
    auto bad = postOrder(tree);
    // "a b * ..." on a queue machine: * consumes a and b (ok), but the
    // subsequent ops consume the wrong items, leaving an invalid final
    // state. Deliberately craft a clearly-broken sequence instead: op
    // first, nothing queued.
    std::vector<int> op_first = {tree.root()};
    EXPECT_THROW(evalQueue(tree, op_first, {}), PanicError);
    EXPECT_THROW(evalStack(tree, op_first, {}), PanicError);
}

/** Property sweep: level-order queue evaluation equals tree evaluation. */
class EvalPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EvalPropertyTest, QueueLevelOrderEqualsStackPostOrder)
{
    int n = GetParam();
    SplitMix64 rng(0xBEEF + static_cast<std::uint64_t>(n));
    forEachTree(n, [&](const ParseTree &shape) {
        // Rebuild the shape with varied operators and leaf values.
        // Operators cycle over +,-,* (division is excluded to keep every
        // sequence well-defined for arbitrary operand values).
        ParseTree tree;
        int op_counter = 0;
        std::function<int(int)> rebuild = [&](int id) -> int {
            const Node &node = shape.node(id);
            if (node.kind == OpKind::Leaf)
                return tree.addLeaf(node.label);
            if (node.kind == OpKind::Unary)
                return tree.addUnary("neg", rebuild(node.left));
            static const char *ops[] = {"+", "-", "*"};
            int l = rebuild(node.left);
            int r = rebuild(node.right);
            return tree.addBinary(ops[op_counter++ % 3], l, r);
        };
        tree.setRoot(rebuild(shape.root()));

        Env env;
        for (int i = 0; i < tree.size(); ++i)
            if (tree.node(i).kind == OpKind::Leaf)
                env[tree.node(i).label] = rng.range(-9, 9);

        std::int64_t expected = evalTree(tree, env);
        ASSERT_EQ(evalQueue(tree, levelOrder(tree), env), expected)
            << tree.toString();
        ASSERT_EQ(evalStack(tree, postOrder(tree), env), expected)
            << tree.toString();
    });
}

INSTANTIATE_TEST_SUITE_P(AllSizes, EvalPropertyTest,
                         ::testing::Range(1, 10));

} // namespace
